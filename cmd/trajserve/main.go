// Command trajserve serves the TrajPattern miner, scorer and predictor as
// a hardened long-running HTTP JSON service: weighted admission control
// with bounded queueing and 429 load shedding, per-route deadlines that
// propagate into the miner, panic isolation, and a two-stage SIGTERM
// drain (finish or gracefully interrupt in-flight work, flush trace and
// metrics, exit 0).
//
// Usage:
//
//	trajserve -in zebra.jsonl -addr :8080
//	trajserve -in bus.jsonl -patterns mined.json -capacity 16 -queue 32
//	trajserve -in zebra.jsonl -mine-shards 4 -capacity 16
//	trajserve -in zebra.jsonl -mine-shards 4 -mine-procs 4
//	trajserve -in zebra.jsonl -trace run.trace -debug-addr localhost:6060
//	trajserve -in zebra.jsonl -log-format json -log-level info
//	trajserve -in zebra.jsonl -ingest-wal /var/lib/trajserve/wal -ingest-window 256
//
// Routes: POST /v1/score, /v1/mine, /v1/predict, /v1/ingest (with
// -ingest-wal); GET /healthz, /readyz, /metrics (Prometheus text
// exposition; ?format=json for the stamped report), /v1/ingest/status.
//
// With -ingest-wal, POST /v1/ingest accepts location reports durably: a
// 200 means the report is fsynced into a crash-replayable write-ahead
// log. A restarted process replays the log and rebuilds its sliding
// windows before /readyz flips ready, and a background loop re-mines the
// windowed data continuously — /v1/mine and /v1/predict serve the latest
// complete generation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"trajpattern/internal/cli"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/serve"
)

func main() {
	// Hidden worker mode: `trajserve -shard-worker i/n ...` mines exactly
	// one shard to its checkpoint file and exits with a typed status. The
	// supervised /v1/mine route (-mine-procs) launches these from its own
	// binary; dispatch happens before normal flag parsing so the worker
	// owns its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(cli.ShardWorkerMain(os.Args[2:]))
	}
	var (
		in       = flag.String("in", "", "input trajectory file (required)")
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		patterns = flag.String("patterns", "", "preload mined patterns (JSON) so /v1/predict works immediately")
		gridN    = flag.Int("gridn", 12, "grid side (G = gridn²)")
		deltaMul = flag.Float64("delta", 1, "indifferent threshold δ as a multiple of the cell size")
		capacity = flag.Int64("capacity", serve.DefaultCapacity, "admission capacity in weight units (mine costs -mine-weight)")
		queue    = flag.Int("queue", serve.DefaultMaxQueue, "admission wait-queue bound; beyond it requests are shed with 429")
		mineWt   = flag.Int64("mine-weight", serve.DefaultMineWeight, "admission weight of one /v1/mine request (multiplied by -mine-shards, clamped to -capacity)")
		shards   = flag.Int("mine-shards", 1, "partition /v1/mine across this many dataset shards with a merged top-k (1 = single-partition, -1 = one per CPU)")
		procs    = flag.Int("mine-procs", 0, "run /v1/mine shards as supervised worker processes, this many at a time (0 = in-process goroutines; needs -mine-shards > 1)")
		deadline = flag.Duration("deadline", serve.DefaultDeadline, "per-request deadline (queue wait included)")
		ingWAL   = flag.String("ingest-wal", "", "enable durable streaming ingest (POST /v1/ingest) with the write-ahead log in this directory")
		ingWin   = flag.Int("ingest-window", 0, "per-object sliding-window record cap for ingest (0 = default)")
		ingFsync = flag.Int("ingest-fsync-every", 0, "max reports per ingest WAL group commit (0 = default)")
		maxWall  = flag.Duration("mine-maxwall", 0, "cap on a mine request's wall-clock budget (0 = 80% of -deadline)")
		grace    = flag.Duration("grace", serve.DefaultGrace, "drain grace for in-flight requests on SIGTERM")
		trcPath  = flag.String("trace", "", "record request/miner spans and write the journal here at exit")
		metOut   = flag.String("metricsout", "", "write the provenance-stamped metrics report (JSON) here at exit")
		dbgAddr  = flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /trace/status on this address")
		logFlags cli.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "trajserve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajserve: %v\n", err)
		os.Exit(2)
	}
	lc := cli.Lifecycle{W: os.Stderr, Logger: logger}

	ctx, stop := cli.SignalContextLogged(context.Background(), lc, "trajserve")
	defer stop()

	err = serve.Run(ctx, serve.Options{
		Addr:         *addr,
		DataPath:     *in,
		PatternsPath: *patterns,
		Server: serve.Config{
			GridN:            *gridN,
			DeltaMul:         *deltaMul,
			Capacity:         *capacity,
			MaxQueue:         *queue,
			MineWeight:       *mineWt,
			MineShards:       *shards,
			MineProcs:        *procs,
			ScoreDeadline:    *deadline,
			MineDeadline:     *deadline,
			PredictDeadline:  *deadline,
			MaxMineWallTime:  *maxWall,
			IngestWALDir:     *ingWAL,
			IngestWindow:     *ingWin,
			IngestFsyncEvery: *ingFsync,
			IngestDeadline:   *deadline,
		},
		Grace:      *grace,
		TracePath:  *trcPath,
		MetricsOut: *metOut,
		DebugAddr:  *dbgAddr,
		Log:        os.Stderr,
		Logger:     logger,
	}, nil)
	if err != nil {
		lc.Error(fmt.Sprintf("trajserve: %v", err), "fatal", slogx.Err(err))
		os.Exit(1)
	}
}
