// Command trajpredict runs the Figure 3 location-prediction experiment in
// isolation: it simulates the bus fleet, mines top-k NM and match velocity
// patterns on the training traces, and reports the mis-prediction
// reduction each pattern set achieves for the LM, LKF and RMF prediction
// modules on the held-out traces.
//
// Usage:
//
//	trajpredict                 # paper-comparable scale
//	trajpredict -scale 0.3 -k 30
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"trajpattern/internal/cli"
	"trajpattern/internal/exp"
	"trajpattern/internal/obs/slogx"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1, "bus dataset scale in (0,1]")
		k      = flag.Int("k", 50, "patterns to mine")
		minLen = flag.Int("minlen", 4, "minimum pattern length (the paper uses 4)")
		seed   = flag.Uint64("seed", 1, "random seed")

		logFlags cli.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "trajpredict: %v\n", lerr)
		os.Exit(2)
	}
	lc := cli.Lifecycle{W: os.Stderr, Logger: logger}

	// First SIGINT/SIGTERM cancels the experiment; a second aborts.
	ctx, stopSignals := cli.SignalContextLogged(context.Background(), lc, "trajpredict")
	defer stopSignals()

	res, err := exp.RunE2(ctx, exp.E2Options{
		Bus:    exp.BusOptions{Scale: *scale, Seed: *seed},
		K:      *k,
		MinLen: *minLen,
	})
	if err != nil {
		lc.Error(fmt.Sprintf("trajpredict: %v", err), "fatal", slogx.Err(err))
		os.Exit(1)
	}
	fmt.Println(res.Table.String())
}
