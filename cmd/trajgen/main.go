// Command trajgen generates the synthetic datasets of the TrajPattern
// evaluation as JSON-lines trajectory files consumable by trajmine.
//
// Usage:
//
//	trajgen -kind zebra -out zebra.jsonl -n 100 -len 100 -seed 1
//	trajgen -kind tpr -out tpr.jsonl -n 100 -len 100
//	trajgen -kind posture -out posture.jsonl -n 50 -len 120
//	trajgen -kind bus -out bus.jsonl -scale 1
//
// The zebra, tpr and posture kinds emit imprecise datasets directly
// (observation noise + σ = U/C); the bus kind runs the full §3.1 reporting
// pipeline (dead reckoning, message loss, snapshot synchronization) and
// emits the velocity trajectories the §6.1 experiments mine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"trajpattern/internal/cli"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/traj"
)

func main() {
	var (
		kind  = flag.String("kind", "zebra", "dataset kind: zebra, tpr, posture or bus")
		out   = flag.String("out", "", "output file (required)")
		n     = flag.Int("n", 100, "number of trajectories (zebra/tpr/posture)")
		ln    = flag.Int("len", 100, "average trajectory length (zebra/tpr/posture)")
		u     = flag.Float64("u", 0.02, "tolerable uncertainty distance U")
		c     = flag.Float64("c", 2, "confidence constant c (σ = U/c)")
		scale = flag.Float64("scale", 1, "bus dataset scale (1 = 500 traces)")
		seed  = flag.Uint64("seed", 1, "random seed")

		logFlags cli.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "trajgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "trajgen: %v\n", lerr)
		os.Exit(2)
	}
	lc := cli.Lifecycle{W: os.Stderr, Logger: logger}
	// A SIGINT/SIGTERM before the (atomic) write leaves any existing output
	// file untouched; a partial dataset is never written.
	ctx, stopSignals := cli.SignalContextLogged(context.Background(), lc, "trajgen")
	defer stopSignals()
	ds, err := cli.Generate(cli.GenOptions{
		Kind: *kind, N: *n, Len: *ln, U: *u, C: *c, Scale: *scale, Seed: *seed,
	})
	if err != nil {
		lc.Error(fmt.Sprintf("trajgen: %v", err), "generate failed", slogx.Err(err))
		os.Exit(1)
	}
	if ctx.Err() != nil {
		lc.Error(fmt.Sprintf("trajgen: interrupted (%v); not writing %s", context.Cause(ctx), *out),
			"interrupted — output not written",
			slog.String("cause", fmt.Sprint(context.Cause(ctx))), slog.String("path", *out))
		os.Exit(1)
	}
	if err := traj.WriteFile(*out, ds); err != nil {
		lc.Error(fmt.Sprintf("trajgen: %v", err), "write failed", slogx.Err(err))
		os.Exit(1)
	}
	// The result line goes to stdout in plain mode (it is the command's
	// output, not a status note), and becomes a structured record like the
	// other lifecycle events otherwise.
	done := cli.Lifecycle{W: os.Stdout, Logger: logger}
	done.Notice(fmt.Sprintf("wrote %d trajectories (avg length %.1f, mean σ %.4g) to %s",
		ds.NumTrajectories(), ds.AvgLength(), ds.MeanSigma(), *out),
		"dataset written",
		slog.Int("trajectories", ds.NumTrajectories()),
		slog.Float64("avg_len", ds.AvgLength()),
		slog.Float64("mean_sigma", ds.MeanSigma()),
		slog.String("path", *out))
}
