// Command trajbench regenerates the tables and figures of the TrajPattern
// evaluation (Section 6) plus the ablations, printing markdown tables. It
// can also emit a machine-readable bench.json (wall time, allocations and
// the deterministic miner/scorer work counters) and gate against a
// committed baseline, which is how CI detects benchmark regressions.
//
// Usage:
//
//	trajbench                             # run every experiment at the default scale
//	trajbench -exp e3,e6                  # run selected experiments
//	trajbench -scale 0.3                  # shrink the workloads
//	trajbench -exp e3 -metrics            # print the obs snapshot per experiment
//	trajbench -exp e3,e7 -scale 0.3 -json bench.json
//	trajbench -exp e3,e7 -scale 0.3 -check results/bench_baseline.json -tol 15
//	trajbench -exp e3 -cpuprofile cpu.pprof -memprofile mem.pprof
//	trajbench -exp e3 -trace run.trace -progress
//	trajbench -debug-addr localhost:6060
//
// Experiments: e1 (§6.1 pattern lengths), e2 (Figure 3), e3–e6
// (Figure 4a–d), e7 (Figure 4e), e8 (§6.1 on posture data), e9 (pattern
// classifier), a1–a6 (ablations).
//
// The -check gate compares the deterministic work counters (NM
// evaluations, candidates, prunes — identical across machines for a fixed
// scale and seed) within ±tol percent; add -checktime to also gate on wall
// time against a baseline produced on the same machine. The command exits
// non-zero when any experiment fails or the check finds a regression.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"trajpattern/internal/cli"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/trace"
)

func main() {
	var (
		which      = flag.String("exp", "all", "comma-separated experiment ids (e1..e9, a1..a6) or 'all'")
		scale      = flag.Float64("scale", 1, "workload scale in (0,1]")
		seed       = flag.Uint64("seed", 1, "random seed")
		metrics    = flag.Bool("metrics", false, "print each experiment's obs metrics snapshot")
		jsonPath   = flag.String("json", "", "write machine-readable results (bench.json) to this file")
		checkPath  = flag.String("check", "", "baseline bench.json to compare against; exit non-zero on regression")
		tol        = flag.Float64("tol", cli.DefaultBenchTolerance, "allowed drift percentage for -check")
		checkTime  = flag.Bool("checktime", false, "also gate -check on wall time (same-machine baselines only)")
		scaling    = flag.Bool("scaling", false, "measure the sharded miner's scaling curve (1/2/4 shards) and gate it against the baseline's floor under -check")
		trcPath    = flag.String("trace", "", "write a span/event journal (JSONL) here and a Chrome trace to <file>.json")
		prog       = flag.Bool("progress", false, "print a live one-line progress status to stderr")
		dbgAddr    = flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /trace/status on this address")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")

		logFlags cli.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "trajbench: %v\n", lerr)
		os.Exit(2)
	}
	lc := cli.Lifecycle{W: os.Stderr, Logger: logger}

	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		lc.Error(fmt.Sprintf("trajbench: %v", err), "start profiles failed", slogx.Err(err))
		os.Exit(1)
	}

	var tracer *trace.Tracer
	if *trcPath != "" {
		tracer = trace.New()
	}
	holder := &cli.MetricsHolder{}
	if *dbgAddr != "" {
		url, stop, derr := cli.StartDebugServer(*dbgAddr, holder, tracer)
		if derr != nil {
			lc.Error(fmt.Sprintf("trajbench: %v", derr), "debug server failed", slogx.Err(derr))
			os.Exit(1)
		}
		defer stop() //nolint:errcheck // process is exiting anyway
		lc.Notice(fmt.Sprintf("trajbench: debug server at %s", url), "debug server up", slog.String("url", url))
	}
	var printer *cli.ProgressPrinter
	if *prog {
		printer = cli.NewProgressPrinter(os.Stderr, 0)
	}

	// First SIGINT/SIGTERM stops between experiments and still flushes
	// completed results and the trace journal; a second aborts.
	ctx, stopSignals := cli.SignalContextLogged(context.Background(), lc, "trajbench")
	defer stopSignals()

	_, err = cli.RunBench(ctx, os.Stdout, cli.BenchOptions{
		Experiments: strings.Split(*which, ","),
		Scale:       *scale,
		Seed:        *seed,
		ShowMetrics: *metrics,
		JSONPath:    *jsonPath,
		CheckPath:   *checkPath,
		TolPct:      *tol,
		CheckTime:   *checkTime,
		Scaling:     *scaling,
		Tracer:      tracer,
		Progress:    printer.Update,
		Holder:      holder,
	})
	stopSignals()
	printer.Done()
	if terr := cli.SaveTrace(*trcPath, tracer); terr != nil {
		lc.Error(fmt.Sprintf("trajbench: %v", terr), "save trace failed", slogx.Err(terr))
		if err == nil {
			err = terr
		}
	} else if tracer != nil {
		lc.Notice(fmt.Sprintf("trajbench: wrote %d trace records to %s (+ %s.json)",
			tracer.Len(), *trcPath, *trcPath),
			"trace written", slog.Int("records", tracer.Len()), slog.String("path", *trcPath))
	}
	if perr := stopProfiles(); perr != nil {
		lc.Error(fmt.Sprintf("trajbench: %v", perr), "stop profiles failed", slogx.Err(perr))
		if err == nil {
			err = perr
		}
	}
	if err != nil {
		lc.Error(fmt.Sprintf("%v", err), "fatal", slogx.Err(err))
		os.Exit(1)
	}
}
