// Command trajbench regenerates the tables and figures of the TrajPattern
// evaluation (Section 6) plus the ablations, printing markdown tables.
//
// Usage:
//
//	trajbench                 # run every experiment at the default scale
//	trajbench -exp e3,e6      # run selected experiments
//	trajbench -scale 0.3      # shrink the workloads
//
// Experiments: e1 (§6.1 pattern lengths), e2 (Figure 3), e3–e6
// (Figure 4a–d), e7 (Figure 4e), e8 (§6.1 on posture data), e9 (pattern
// classifier), a1–a6 (ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trajpattern/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "comma-separated experiment ids (e1..e7, a1..a3) or 'all'")
		scale = flag.Float64("scale", 1, "workload scale in (0,1]")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	selected := map[string]bool{}
	if *which == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "a1", "a2", "a3", "a4", "a5", "a6"} {
			selected[id] = true
		}
	} else {
		for _, id := range strings.Split(*which, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	bus := exp.BusOptions{Scale: *scale, Seed: *seed}
	sweep := exp.SweepOptions{Scale: *scale, Seed: *seed}

	runners := []struct {
		id  string
		run func() (fmt.Stringer, error)
	}{
		{"e1", func() (fmt.Stringer, error) {
			r, err := exp.RunE1(exp.E1Options{Bus: bus})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"e2", func() (fmt.Stringer, error) {
			r, err := exp.RunE2(exp.E2Options{Bus: bus})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"e3", func() (fmt.Stringer, error) { return deref(exp.RunE3(sweep)) }},
		{"e4", func() (fmt.Stringer, error) { return deref(exp.RunE4(sweep)) }},
		{"e5", func() (fmt.Stringer, error) { return deref(exp.RunE5(sweep)) }},
		{"e6", func() (fmt.Stringer, error) { return deref(exp.RunE6(sweep)) }},
		{"e7", func() (fmt.Stringer, error) {
			return deref(exp.RunE7(exp.E7Options{Sweep: sweep}))
		}},
		{"e8", func() (fmt.Stringer, error) {
			r, err := exp.RunE8(exp.E8Options{Seed: *seed})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"e9", func() (fmt.Stringer, error) {
			r, err := exp.RunE9(exp.E9Options{Bus: bus})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"a1", func() (fmt.Stringer, error) { return derefTable(exp.RunA1(sweep)) }},
		{"a2", func() (fmt.Stringer, error) { return derefTable(exp.RunA2(sweep)) }},
		{"a3", func() (fmt.Stringer, error) { return derefTable(exp.RunA3(sweep)) }},
		{"a4", func() (fmt.Stringer, error) { return derefTable(exp.RunA4(sweep)) }},
		{"a5", func() (fmt.Stringer, error) { return derefTable(exp.RunA5(sweep)) }},
		{"a6", func() (fmt.Stringer, error) { return derefTable(exp.RunA6(sweep)) }},
	}

	failed := false
	for _, r := range runners {
		if !selected[r.id] {
			continue
		}
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajbench: %s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(out.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", r.id, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

func deref(s *exp.Series, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return *s, nil
}

func derefTable(t *exp.Table, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return *t, nil
}
