// Command trajmine mines the top-k trajectory patterns by normalized match
// from a JSON-lines trajectory file (see trajgen) and presents them as
// pattern groups.
//
// Usage:
//
//	trajmine -in zebra.jsonl -k 20 -gridn 12
//	trajmine -in bus.jsonl -k 50 -minlen 4 -measure match
//	trajmine -in zebra.jsonl -viz
//	trajmine -in zebra.jsonl -metrics -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"

	"trajpattern/internal/cli"
	"trajpattern/internal/traj"
)

func main() {
	var (
		in      = flag.String("in", "", "input trajectory file (required)")
		k       = flag.Int("k", 10, "number of patterns to mine")
		gridN   = flag.Int("gridn", 12, "grid side (G = gridn²)")
		minLen  = flag.Int("minlen", 1, "minimum pattern length (§5 variant)")
		maxLen  = flag.Int("maxlen", 8, "maximum pattern length")
		deltaMu = flag.Float64("delta", 1, "indifferent threshold δ as a multiple of the cell size")
		measure = flag.String("measure", "nm", "measure: nm (TrajPattern), pb (projection baseline) or match ([14])")
		groups  = flag.Bool("groups", true, "cluster the result into pattern groups")
		viz     = flag.Bool("viz", false, "render ASCII heatmap of the data and the best pattern")
		save    = flag.String("savepats", "", "persist scored patterns to this JSON file")
		metrics = flag.Bool("metrics", false, "collect and print miner/scorer metrics")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "trajmine: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := traj.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajmine: %v\n", err)
		os.Exit(1)
	}
	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajmine: %v\n", err)
		os.Exit(1)
	}
	_, err = cli.Mine(os.Stdout, ds, cli.MineOptions{
		K:        *k,
		GridN:    *gridN,
		MinLen:   *minLen,
		MaxLen:   *maxLen,
		DeltaMul: *deltaMu,
		Measure:  *measure,
		Groups:   *groups,
		Viz:      *viz,
		SavePath: *save,
		Metrics:  *metrics,
	})
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintf(os.Stderr, "trajmine: %v\n", perr)
		if err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajmine: %v\n", err)
		os.Exit(1)
	}
}
