// Command trajmine mines the top-k trajectory patterns by normalized match
// from a JSON-lines trajectory file (see trajgen) and presents them as
// pattern groups.
//
// Usage:
//
//	trajmine -in zebra.jsonl -k 20 -gridn 12
//	trajmine -in bus.jsonl -k 50 -minlen 4 -measure match
//	trajmine -in zebra.jsonl -viz
//	trajmine -in zebra.jsonl -metrics -cpuprofile cpu.pprof
//	trajmine -in zebra.jsonl -trace run.trace -progress
//	trajmine -in zebra.jsonl -debug-addr localhost:6060
//	trajmine -in zebra.jsonl -checkpoint run.ckpt -maxwall 30s
//	trajmine -in zebra.jsonl -checkpoint run.ckpt -resume
//	trajmine -in zebra.jsonl -k 20 -shards 4
//	trajmine -in zebra.jsonl -shards 4 -checkpoint run.ckpt -resume
//	trajmine -in zebra.jsonl -shards 4 -shard-procs 4 -shard-retries 3 -shard-stall 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"

	"trajpattern/internal/cli"
	"trajpattern/internal/obs"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// effectiveShards maps the -shards flag to MineOptions.Shards: 0 means
// one shard per CPU, anything else passes through (1 keeps the
// single-partition miner).
func effectiveShards(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func main() {
	// Hidden worker mode: `trajmine -shard-worker i/n ...` mines exactly
	// one shard to its checkpoint file and exits with a typed status.
	// The supervisor (-shard-procs) launches these; dispatch happens
	// before normal flag parsing so the worker owns its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(cli.ShardWorkerMain(os.Args[2:]))
	}
	var (
		in      = flag.String("in", "", "input trajectory file (required)")
		k       = flag.Int("k", 10, "number of patterns to mine")
		gridN   = flag.Int("gridn", 12, "grid side (G = gridn²)")
		minLen  = flag.Int("minlen", 1, "minimum pattern length (§5 variant)")
		maxLen  = flag.Int("maxlen", 8, "maximum pattern length")
		deltaMu = flag.Float64("delta", 1, "indifferent threshold δ as a multiple of the cell size")
		measure = flag.String("measure", "nm", "measure: nm (TrajPattern), pb (projection baseline) or match ([14])")
		shards  = flag.Int("shards", 1, "partition the dataset across this many shards and merge the per-shard top-k (0 = one per CPU; nm only)")
		groups  = flag.Bool("groups", true, "cluster the result into pattern groups")
		viz     = flag.Bool("viz", false, "render ASCII heatmap of the data and the best pattern")
		save    = flag.String("savepats", "", "persist scored patterns to this JSON file")
		metrics = flag.Bool("metrics", false, "collect and print miner/scorer metrics")
		metOut  = flag.String("metricsout", "", "write the provenance-stamped metrics report (JSON) to this file")
		trcPath = flag.String("trace", "", "write a span/event journal (JSONL) here and a Chrome trace to <file>.json")
		prog    = flag.Bool("progress", false, "print a live one-line progress status to stderr")
		dbgAddr = flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /trace/status on this address")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file")
		maxIter = flag.Int("maxiters", 0, "bound the miner's grow iterations (0 = default; nm only)")
		maxWall = flag.Duration("maxwall", 0, "wall-clock budget; report best-so-far when it elapses (nm only)")
		ckpt    = flag.String("checkpoint", "", "write crash-safe miner checkpoints to this file (nm only)")
		ckEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in iterations")
		resume  = flag.Bool("resume", false, "restore miner state from -checkpoint before mining")

		shProcs   = flag.Int("shard-procs", 0, "run shards as supervised worker processes, this many at a time (0 = in-process goroutines; needs -shards > 1)")
		shRetries = flag.Int("shard-retries", 0, "per-shard worker attempt budget under -shard-procs (0 = default)")
		shStall   = flag.Duration("shard-stall", 0, "kill and relaunch a worker whose checkpoint stops advancing for this long (0 = disabled)")

		logFlags cli.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "trajmine: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "trajmine: %v\n", lerr)
		os.Exit(2)
	}
	lc := cli.Lifecycle{W: os.Stderr, Logger: logger}
	ds, err := traj.ReadFile(*in)
	if err != nil {
		lc.Error(fmt.Sprintf("trajmine: %v", err), "read dataset failed", slogx.Err(err))
		os.Exit(1)
	}
	stopProfiles, err := cli.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lc.Error(fmt.Sprintf("trajmine: %v", err), "start profiles failed", slogx.Err(err))
		os.Exit(1)
	}

	var tracer *trace.Tracer
	if *trcPath != "" {
		tracer = trace.New()
	}
	var reg *obs.Registry
	if *metrics || *metOut != "" || *dbgAddr != "" {
		reg = obs.New()
	}
	if *dbgAddr != "" {
		holder := &cli.MetricsHolder{}
		holder.Set(reg)
		url, stop, derr := cli.StartDebugServer(*dbgAddr, holder, tracer)
		if derr != nil {
			lc.Error(fmt.Sprintf("trajmine: %v", derr), "debug server failed", slogx.Err(derr))
			os.Exit(1)
		}
		defer stop() //nolint:errcheck // process is exiting anyway
		lc.Notice(fmt.Sprintf("trajmine: debug server at %s", url), "debug server up", slog.String("url", url))
	}
	var printer *cli.ProgressPrinter
	if *prog {
		printer = cli.NewProgressPrinter(os.Stderr, 0)
	}

	// First SIGINT/SIGTERM drains the run gracefully (best-so-far report,
	// partial saves, trace journal); a second aborts.
	ctx, stopSignals := cli.SignalContextLogged(context.Background(), lc, "trajmine")
	defer stopSignals()

	_, err = cli.Mine(ctx, os.Stdout, ds, cli.MineOptions{
		K:               *k,
		GridN:           *gridN,
		MinLen:          *minLen,
		MaxLen:          *maxLen,
		DeltaMul:        *deltaMu,
		Measure:         *measure,
		Shards:          effectiveShards(*shards),
		Groups:          *groups,
		Viz:             *viz,
		SavePath:        *save,
		Metrics:         *metrics,
		MetricsOut:      *metOut,
		Registry:        reg,
		Tracer:          tracer,
		OnProgress:      printer.Update,
		MaxIters:        *maxIter,
		MaxWallTime:     *maxWall,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckEvery,
		Resume:          *resume,
		ShardProcs:      *shProcs,
		ShardRetries:    *shRetries,
		ShardStall:      *shStall,
		DataPath:        *in,
	})
	stopSignals()
	printer.Done()
	if terr := cli.SaveTrace(*trcPath, tracer); terr != nil {
		lc.Error(fmt.Sprintf("trajmine: %v", terr), "save trace failed", slogx.Err(terr))
		if err == nil {
			err = terr
		}
	} else if tracer != nil {
		lc.Notice(fmt.Sprintf("trajmine: wrote %d trace records to %s (+ %s.json)",
			tracer.Len(), *trcPath, *trcPath),
			"trace written", slog.Int("records", tracer.Len()), slog.String("path", *trcPath))
	}
	if perr := stopProfiles(); perr != nil {
		lc.Error(fmt.Sprintf("trajmine: %v", perr), "stop profiles failed", slogx.Err(perr))
		if err == nil {
			err = perr
		}
	}
	if err != nil {
		lc.Error(fmt.Sprintf("trajmine: %v", err), "fatal", slogx.Err(err))
		os.Exit(1)
	}
}
