// Package trajpattern is the public API of the TrajPattern library, a
// from-scratch Go reproduction of "TrajPattern: Mining Sequential Patterns
// from Imprecise Trajectories of Mobile Objects" (Yang & Hu, EDBT 2006).
//
// The library mines the top-k sequential patterns — by the paper's
// normalized match (NM) measure — from sets of imprecise trajectories,
// where every snapshot of a trajectory is a 2-D normal distribution over
// the object's true location rather than an exact point.
//
// # Quick start
//
//	ds := trajpattern.Dataset{ /* trajectories of (mean, sigma) points */ }
//	g := trajpattern.NewSquareGrid(16)
//	scorer, err := trajpattern.NewScorer(ds, trajpattern.ScorerConfig{
//		Grid:  g,
//		Delta: g.CellWidth(),
//	})
//	if err != nil { ... }
//	res, err := trajpattern.Mine(ctx, scorer, trajpattern.MinerConfig{K: 10})
//	if err != nil { ... }
//	groups, err := trajpattern.DiscoverGroups(patternsOf(res), g,
//		trajpattern.DefaultGamma(ds.MeanSigma()))
//
// The facade re-exports the implementation packages under internal/: the
// trajectory data model (internal/traj), the space grid (internal/grid),
// the scorer and miner (internal/core), the location-reporting simulation
// (internal/report), the prediction models of the Figure 3 experiment
// (internal/predict), the baselines (internal/baseline) and the dataset
// generators (internal/datagen). See DESIGN.md for the full system
// inventory and EXPERIMENTS.md for the reproduced evaluation.
package trajpattern

import (
	"context"

	"trajpattern/internal/baseline"
	"trajpattern/internal/classify"
	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/predict"
	"trajpattern/internal/report"
	"trajpattern/internal/stat"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// Geometry.
type (
	// Point is a 2-D location or velocity.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Grid discretizes space into cells; cell centers are pattern positions.
	Grid = grid.Grid
	// Cell is an integer grid coordinate.
	Cell = grid.Cell
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect returns the rectangle spanned by two corners.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// UnitSquare is the [0,1]² mining space used by the examples.
func UnitSquare() Rect { return geom.UnitSquare() }

// NewGrid partitions bounds into nx × ny cells.
func NewGrid(bounds Rect, nx, ny int) *Grid { return grid.New(bounds, nx, ny) }

// NewSquareGrid partitions the unit square into n × n cells.
func NewSquareGrid(n int) *Grid { return grid.NewSquare(n) }

// Trajectory data model.
type (
	// TrajPoint is one snapshot: true location ~ N(Mean, Sigma²·I).
	TrajPoint = traj.Point
	// Trajectory is a per-snapshot sequence of imprecise locations.
	Trajectory = traj.Trajectory
	// Dataset is a set of trajectories, the mining input.
	Dataset = traj.Dataset
	// Report is one asynchronous location fix (time, location).
	Report = traj.Report
	// SyncConfig describes snapshot synchronization (§3.2).
	SyncConfig = traj.SyncConfig
)

// TrajP builds a TrajPoint from coordinates and standard deviation.
func TrajP(x, y, sigma float64) TrajPoint { return traj.P(x, y, sigma) }

// Synchronize interpolates asynchronous reports onto a snapshot schedule.
func Synchronize(reports []Report, cfg SyncConfig) (Trajectory, error) {
	return traj.Synchronize(reports, cfg)
}

// ReadDatasetFile loads a JSON-lines dataset file.
func ReadDatasetFile(path string) (Dataset, error) { return traj.ReadFile(path) }

// WriteDatasetFile stores a dataset as JSON lines.
func WriteDatasetFile(path string, d Dataset) error { return traj.WriteFile(path, d) }

// Core pattern mining.
type (
	// Pattern is a sequence of grid cell indices.
	Pattern = core.Pattern
	// ScoredPattern pairs a pattern with its NM value.
	ScoredPattern = core.ScoredPattern
	// Scorer evaluates match/NM measures over a dataset.
	Scorer = core.Scorer
	// ScorerConfig parameterizes scoring (grid, δ, probability mode).
	ScorerConfig = core.Config
	// ProbMode selects box or disk Prob(l,σ,p,δ).
	ProbMode = core.ProbMode
	// MinerConfig parameterizes the TrajPattern algorithm.
	MinerConfig = core.MinerConfig
	// MineResult is the miner output (top-k patterns plus statistics).
	MineResult = core.Result
	// MinerStats summarizes the work a Mine call performed.
	MinerStats = core.MinerStats
	// Group is a pattern group: pairwise-similar equal-length patterns.
	Group = core.Group
	// WildPattern is a pattern with "don't care" positions (§5).
	WildPattern = core.WildPattern
	// GapPattern is a pattern with variable gaps between segments (§5).
	GapPattern = core.GapPattern
	// ScoredWildPattern pairs a wild pattern with its NM value.
	ScoredWildPattern = core.ScoredWildPattern
)

// Probability modes for ScorerConfig.Mode.
const (
	ProbBox  = core.ProbBox
	ProbDisk = core.ProbDisk
)

// Wildcard is the "don't care" cell value in a WildPattern.
const Wildcard = core.Wildcard

// NewScorer indexes a dataset for match/NM evaluation.
func NewScorer(d Dataset, cfg ScorerConfig) (*Scorer, error) { return core.NewScorer(d, cfg) }

// Mine runs the TrajPattern algorithm: top-k patterns by NM. Cancelling
// ctx (or setting MinerConfig.MaxWallTime) interrupts the run gracefully:
// the result carries the best-so-far top-k with MineResult.Interrupted
// set rather than an error. See MinerConfig.CheckpointPath and
// MinerConfig.Resume for crash-safe checkpointing of long runs.
func Mine(ctx context.Context, s *Scorer, cfg MinerConfig) (*MineResult, error) {
	return core.Mine(ctx, s, cfg)
}

// MineWithWildcards runs Mine and then the Section 5 wildcard refinement:
// up to maxRun "*" symbols are inserted wherever that improves a mined
// pattern's NM, and the refined set is re-ranked.
func MineWithWildcards(ctx context.Context, s *Scorer, cfg MinerConfig, maxRun int) ([]ScoredWildPattern, *MineResult, error) {
	return core.MineWithWildcards(ctx, s, cfg, maxRun)
}

// DiscoverGroups clusters patterns into pattern groups (§4.2).
func DiscoverGroups(patterns []Pattern, g *Grid, gamma float64) ([]Group, error) {
	return core.DiscoverGroups(patterns, g, gamma)
}

// Similar reports whether two equal-length patterns are within gamma at
// every snapshot (Definition 1).
func Similar(a, b Pattern, g *Grid, gamma float64) bool { return core.Similar(a, b, g, gamma) }

// Explanation breaks a pattern's NM down per trajectory.
type Explanation = core.Explanation

// Observability. Attach a registry via ScorerConfig.Metrics and
// MinerConfig.Metrics to collect miner/scorer instrumentation; leaving the
// fields nil keeps the hot paths free of collection cost.
type (
	// MetricsRegistry collects atomic counters, gauges and phase timers.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, with
	// deterministic text (String) and JSON serialization.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// Tracing. Attach a tracer via ScorerConfig.Tracer and MinerConfig.Tracer
// to record structured spans (miner iterations, scorer batches) and typed
// events (candidates admitted, pruned, readmitted); a nil tracer keeps the
// hot paths at a single pointer check. Export the records as a JSONL
// journal (Tracer.Journal) or a Chrome trace-event file loadable in
// Perfetto (Tracer.WriteChromeTrace).
type (
	// Tracer buffers structured spans and events of a mining run.
	Tracer = trace.Tracer
	// TraceEvent is one journal record (span or instant event).
	TraceEvent = trace.Event
	// TraceAttrs carries the key/value payload of a span or event.
	TraceAttrs = trace.Attrs
	// TraceStatus summarizes a tracer's buffered records.
	TraceStatus = trace.Status
)

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return trace.New() }

// Provenance identifies the build and host that produced a run.
type Provenance = obs.Provenance

// CollectProvenance captures the current build and host identity.
func CollectProvenance() Provenance { return obs.CollectProvenance() }

// SavePatterns persists scored patterns as JSON.
func SavePatterns(path string, patterns []ScoredPattern) error {
	return core.SavePatterns(path, patterns)
}

// LoadPatterns reads scored patterns saved by SavePatterns. The optional
// validate callback can reject patterns (e.g. against a grid).
func LoadPatterns(path string, validate func(Pattern) error) ([]ScoredPattern, error) {
	return core.LoadPatterns(path, validate)
}

// StreamNM evaluates patterns against a dataset streamed from a JSON-lines
// file in one pass with constant memory (§4.4). Cancelling ctx interrupts
// the scan between records and returns an error.
func StreamNM(ctx context.Context, path string, cfg ScorerConfig, patterns []Pattern) ([]float64, error) {
	return core.StreamNM(ctx, core.NewFileCursor(path), cfg, patterns)
}

// DefaultGamma is the paper's recommended group distance γ = 3σ̄.
func DefaultGamma(sigmaBar float64) float64 { return core.DefaultGamma(sigmaBar) }

// Baselines.
type (
	// PBConfig parameterizes the projection-based NM miner.
	PBConfig = baseline.PBConfig
	// PBResult is MinePB's output.
	PBResult = baseline.PBResult
	// MatchConfig parameterizes the top-k match miner of [14].
	MatchConfig = baseline.MatchConfig
	// MatchResult is MineMatch's output.
	MatchResult = baseline.MatchResult
	// ScoredMatch pairs a pattern with its match value.
	ScoredMatch = baseline.ScoredMatch
)

// MinePB mines top-k NM patterns with the projection-based baseline.
func MinePB(s *Scorer, cfg PBConfig) (*PBResult, error) { return baseline.MinePB(s, cfg) }

// MineMatch mines top-k patterns under the match measure of [14].
func MineMatch(s *Scorer, cfg MatchConfig) (*MatchResult, error) {
	return baseline.MineMatch(s, cfg)
}

// Location reporting simulation (§3.1).
type (
	// ReportConfig parameterizes the reporting scheme (U, C, loss).
	ReportConfig = report.Config
	// ReportResult is one device's simulation outcome.
	ReportResult = report.Result
)

// SimulateReporting runs the device/server reporting protocol for one path.
func SimulateReporting(times []float64, path []Point, cfg ReportConfig, rng *RNG) (ReportResult, error) {
	return report.Simulate(times, path, cfg, rng)
}

// BuildReportedDataset runs the reporting protocol over many paths and
// synchronizes the received reports into an imprecise dataset.
func BuildReportedDataset(times []float64, paths [][]Point, cfg ReportConfig, start, interval float64, count int, rng *RNG) (Dataset, []ReportResult, error) {
	return report.BuildDataset(times, paths, cfg, start, interval, count, rng)
}

// Prediction models (Figure 3).
type (
	// Predictor is a one-step-ahead location predictor.
	Predictor = predict.Predictor
	// PatternPredictor overlays mined patterns on a base predictor.
	PatternPredictor = predict.PatternPredictor
	// PatternMode selects velocity or location pattern semantics.
	PatternMode = predict.PatternMode
	// Evaluation summarizes mis-prediction counting.
	Evaluation = predict.Evaluation
)

// Pattern modes for PatternPredictor.Mode.
const (
	VelocityPatterns = predict.VelocityPatterns
	LocationPatterns = predict.LocationPatterns
)

// NewLinearPredictor returns the linear model LM of [12].
func NewLinearPredictor() Predictor { return predict.NewLinear() }

// NewKalmanPredictor returns the linear Kalman filter LKF of [2].
func NewKalmanPredictor(q, r float64) Predictor { return predict.NewKalman(q, r) }

// NewRMFPredictor returns the recursive motion function RMF of [11].
func NewRMFPredictor(order, window int) Predictor { return predict.NewRMF(order, window) }

// NewAdaptivePredictor returns a selector that tracks each base model's
// recent error and predicts with the current best — addressing the paper's
// observation that a mobile object may change its type of movement at any
// time. With no models it wraps LM, LKF and RMF.
func NewAdaptivePredictor(decay float64, models ...Predictor) Predictor {
	return predict.NewAdaptive(decay, models...)
}

// EvaluatePredictor counts mis-predictions of p on the paths with
// tolerance u.
func EvaluatePredictor(p Predictor, paths [][]Point, u float64) (Evaluation, error) {
	return predict.Evaluate(p, paths, u)
}

// Reduction is the relative mis-prediction reduction plotted in Figure 3.
func Reduction(base, enhanced Evaluation) float64 { return predict.Reduction(base, enhanced) }

// Data generators.
type (
	// BusConfig parameterizes the §6.1-style bus simulator.
	BusConfig = datagen.BusConfig
	// BusTrace is one bus-day trace.
	BusTrace = datagen.BusTrace
	// ZebraConfig parameterizes the §6.2 ZebraNet-style generator.
	ZebraConfig = datagen.ZebraConfig
	// TPRConfig parameterizes the [9]-style uniform workload.
	TPRConfig = datagen.TPRConfig
	// PostureConfig parameterizes the human-posture dataset simulator.
	PostureConfig = datagen.PostureConfig
)

// GenerateBuses simulates the bus fleet and returns all traces.
func GenerateBuses(cfg BusConfig) ([]BusTrace, error) { return datagen.Buses(cfg) }

// GenerateZebraDataset generates a ZebraNet-style imprecise dataset.
func GenerateZebraDataset(cfg ZebraConfig, u, c float64) (Dataset, error) {
	return datagen.ZebraDataset(cfg, u, c)
}

// GenerateTPRDataset generates a uniform-workload imprecise dataset.
func GenerateTPRDataset(cfg TPRConfig, u, c float64) (Dataset, error) {
	return datagen.TPRDataset(cfg, u, c)
}

// GeneratePostureDataset generates a human-posture imprecise dataset (the
// paper's second real data set, simulated).
func GeneratePostureDataset(cfg PostureConfig, u, c float64) (Dataset, error) {
	return datagen.PostureDataset(cfg, u, c)
}

// Classification (the introduction's classifier use case).
type (
	// Classifier scores trajectories against per-class pattern sets.
	Classifier = classify.Classifier
	// ClassifierConfig parameterizes classifier training.
	ClassifierConfig = classify.Config
)

// TrainClassifier mines a top-k pattern set per labeled class. ctx
// cancellation interrupts the per-class mining runs gracefully; the
// classifier is then trained on each class's best-so-far patterns.
func TrainClassifier(ctx context.Context, classes map[string]Dataset, cfg ClassifierConfig) (*Classifier, error) {
	return classify.Train(ctx, classes, cfg)
}

// BoxProb is the paper's Prob(l, σ, p, δ) under the default box
// interpretation: the probability that a location distributed N(l, σ²I₂)
// lies within the axis-aligned square of half-width δ around p.
func BoxProb(l Point, sigma float64, p Point, delta float64) float64 {
	return stat.BoxProb2D(l.X, l.Y, sigma, p.X, p.Y, delta)
}

// DiskProb is Prob(l, σ, p, δ) under the disk interpretation: the
// probability that the location lies within Euclidean distance δ of p.
func DiskProb(l Point, sigma float64, p Point, delta float64) float64 {
	return stat.DiskProb2D(l.X, l.Y, sigma, p.X, p.Y, delta)
}

// RNG is the deterministic random generator used across the library.
type RNG = stat.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return stat.NewRNG(seed) }
