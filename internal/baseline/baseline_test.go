package baseline

import (
	"context"
	"math"
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// walkDataset builds trajectories that repeatedly walk the given cell path
// with noise, planting strong patterns.
func walkDataset(seed uint64, g *grid.Grid, path []int, nTraj, reps int, sigma, noise float64) traj.Dataset {
	rng := stat.NewRNG(seed)
	d := make(traj.Dataset, nTraj)
	for i := range d {
		var tr traj.Trajectory
		for r := 0; r < reps; r++ {
			for _, cell := range path {
				c := g.CenterAt(cell)
				tr = append(tr, traj.P(c.X+rng.Normal(0, noise), c.Y+rng.Normal(0, noise), sigma))
			}
		}
		d[i] = tr
	}
	return d
}

func newScorer(t *testing.T, data traj.Dataset, n int) *core.Scorer {
	t.Helper()
	g := grid.NewSquare(n)
	s, err := core.NewScorer(data, core.Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPBValidation(t *testing.T) {
	s := newScorer(t, walkDataset(1, grid.NewSquare(2), []int{0, 1}, 3, 2, 0.05, 0.02), 2)
	if _, err := MinePB(s, PBConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := MinePB(s, PBConfig{K: 1, MinLen: 5, MaxLen: 3}); err == nil {
		t.Error("MinLen > MaxLen accepted")
	}
	if _, err := MinePB(s, PBConfig{K: 1, Seeds: []int{}}); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := MinePB(s, PBConfig{K: 1, MaxLen: -1}); err == nil {
		t.Error("negative MaxLen accepted")
	}
}

func TestPBMatchesExhaustive(t *testing.T) {
	g := grid.NewSquare(2)
	data := walkDataset(3, g, []int{0, 1, 3}, 6, 3, 0.05, 0.02)
	s := newScorer(t, data, 2)
	seeds := s.AllCells()
	k, maxLen := 8, 4
	pb, err := MinePB(s, PBConfig{K: k, MaxLen: maxLen, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ExhaustiveNM(s, seeds, k, 1, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Patterns) != len(oracle) {
		t.Fatalf("count: PB %d vs oracle %d", len(pb.Patterns), len(oracle))
	}
	for i := range oracle {
		if math.Abs(pb.Patterns[i].NM-oracle[i].NM) > 1e-9 {
			t.Errorf("rank %d: PB %v (%v) vs oracle %v (%v)",
				i, pb.Patterns[i].NM, pb.Patterns[i].Pattern, oracle[i].NM, oracle[i].Pattern)
		}
	}
	if pb.Stats.NMEvaluations == 0 || pb.Stats.PrefixesExpanded == 0 {
		t.Errorf("stats empty: %+v", pb.Stats)
	}
}

func TestPBAgreesWithTrajPattern(t *testing.T) {
	// The paper's two NM miners must return the same top-k on structured
	// data (both are exact).
	g := grid.NewSquare(3)
	data := walkDataset(5, g, []int{0, 4, 8}, 8, 3, 0.05, 0.02)
	sPB := newScorer(t, data, 3)
	sTP := newScorer(t, data, 3)
	k, maxLen := 6, 4
	pb, err := MinePB(sPB, PBConfig{K: k, MaxLen: maxLen, Seeds: sPB.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.Mine(context.Background(), sTP, core.MinerConfig{K: k, MaxLen: maxLen, Seeds: sTP.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Patterns) != len(tp.Patterns) {
		t.Fatalf("count: PB %d vs TrajPattern %d", len(pb.Patterns), len(tp.Patterns))
	}
	for i := range pb.Patterns {
		if math.Abs(pb.Patterns[i].NM-tp.Patterns[i].NM) > 1e-9 {
			t.Errorf("rank %d NM: PB %v (%v) vs TrajPattern %v (%v)", i,
				pb.Patterns[i].NM, pb.Patterns[i].Pattern,
				tp.Patterns[i].NM, tp.Patterns[i].Pattern)
		}
	}
}

func TestPBMinLen(t *testing.T) {
	g := grid.NewSquare(2)
	data := walkDataset(7, g, []int{0, 1, 3, 2}, 5, 3, 0.05, 0.02)
	s := newScorer(t, data, 2)
	pb, err := MinePB(s, PBConfig{K: 4, MinLen: 3, MaxLen: 5, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range pb.Patterns {
		if len(sp.Pattern) < 3 {
			t.Errorf("MinLen violated: %v", sp.Pattern)
		}
	}
	oracle, err := ExhaustiveNM(s, s.AllCells(), 4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oracle {
		if math.Abs(pb.Patterns[i].NM-oracle[i].NM) > 1e-9 {
			t.Errorf("rank %d: PB %v vs oracle %v", i, pb.Patterns[i].NM, oracle[i].NM)
		}
	}
}

func TestMatchMinerValidation(t *testing.T) {
	s := newScorer(t, walkDataset(9, grid.NewSquare(2), []int{0, 1}, 3, 2, 0.05, 0.02), 2)
	if _, err := MineMatch(s, MatchConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := MineMatch(s, MatchConfig{K: 1, MinLen: 9, MaxLen: 2}); err == nil {
		t.Error("MinLen > MaxLen accepted")
	}
	if _, err := MineMatch(s, MatchConfig{K: 1, Seeds: []int{}}); err == nil {
		t.Error("empty seeds accepted")
	}
}

func TestMatchMinerTopKAreSingularsWithoutMinLen(t *testing.T) {
	// The paper's criticism of the match measure: without a length floor
	// the best patterns are the shortest ones.
	g := grid.NewSquare(2)
	data := walkDataset(11, g, []int{0, 1, 3}, 6, 3, 0.05, 0.02)
	s := newScorer(t, data, 2)
	res, err := MineMatch(s, MatchConfig{K: 3, MaxLen: 4, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range res.Patterns {
		if len(sm.Pattern) != 1 {
			t.Errorf("non-singular in unconstrained top-k: %v (match %v)", sm.Pattern, sm.Match)
		}
	}
}

func TestMatchMinerMatchesExhaustive(t *testing.T) {
	g := grid.NewSquare(2)
	data := walkDataset(13, g, []int{0, 1, 3, 2}, 6, 3, 0.05, 0.02)
	s := newScorer(t, data, 2)
	k, minLen, maxLen := 6, 3, 5
	res, err := MineMatch(s, MatchConfig{K: k, MinLen: minLen, MaxLen: maxLen, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ExhaustiveMatch(s, s.AllCells(), k, minLen, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != len(oracle) {
		t.Fatalf("count: %d vs %d", len(res.Patterns), len(oracle))
	}
	for i := range oracle {
		if math.Abs(res.Patterns[i].Match-oracle[i].Match) > 1e-12 {
			t.Errorf("rank %d: miner %v (%v) vs oracle %v (%v)", i,
				res.Patterns[i].Match, res.Patterns[i].Pattern,
				oracle[i].Match, oracle[i].Pattern)
		}
	}
	if res.Stats.Levels < minLen {
		t.Errorf("stats: explored only %d levels", res.Stats.Levels)
	}
}

func TestExhaustiveValidation(t *testing.T) {
	s := newScorer(t, walkDataset(15, grid.NewSquare(2), []int{0}, 2, 2, 0.05, 0.02), 2)
	if _, err := ExhaustiveNM(s, nil, 1, 1, 2); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := ExhaustiveNM(s, s.AllCells(), 0, 1, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExhaustiveNM(s, s.AllCells(), 1, 3, 2); err == nil {
		t.Error("inverted bounds accepted")
	}
	// Space guard: 4^30 is out of reach.
	if _, err := ExhaustiveNM(s, s.AllCells(), 1, 1, 30); err == nil {
		t.Error("huge space accepted")
	}
}

func TestMatchVsNMPatternLengths(t *testing.T) {
	// §6.1's qualitative claim: with the same length floor, the top-k NM
	// patterns are on average at least as long as the top-k match
	// patterns (match decays with length; NM does not).
	g := grid.NewSquare(3)
	data := walkDataset(17, g, []int{0, 4, 8, 4}, 10, 4, 0.04, 0.02)
	sNM := newScorer(t, data, 3)
	sM := newScorer(t, data, 3)
	k, minLen, maxLen := 10, 2, 6
	nmRes, err := core.Mine(context.Background(), sNM, core.MinerConfig{K: k, MinLen: minLen, MaxLen: maxLen})
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := MineMatch(sM, MatchConfig{K: k, MinLen: minLen, MaxLen: maxLen})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(ls []int) float64 {
		var s float64
		for _, l := range ls {
			s += float64(l)
		}
		return s / float64(len(ls))
	}
	var nmLens, mLens []int
	for _, p := range nmRes.Patterns {
		nmLens = append(nmLens, len(p.Pattern))
	}
	for _, p := range mRes.Patterns {
		mLens = append(mLens, len(p.Pattern))
	}
	if avg(nmLens) < avg(mLens) {
		t.Errorf("NM avg length %.2f < match avg length %.2f", avg(nmLens), avg(mLens))
	}
}
