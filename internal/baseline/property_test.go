package baseline

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// randomTiny builds a small random dataset on the unit square.
func randomTiny(seed uint64) traj.Dataset {
	rng := stat.NewRNG(seed)
	n := 2 + rng.Intn(3)
	d := make(traj.Dataset, n)
	for i := range d {
		ln := 5 + rng.Intn(6)
		tr := make(traj.Trajectory, ln)
		for j := range tr {
			tr[j] = traj.P(rng.Float64(), rng.Float64(), 0.1+rng.Float64()*0.1)
		}
		d[i] = tr
	}
	return d
}

// Property: on random tiny instances, MinePB returns exactly the
// exhaustive top-k NM values (PB's bound is admissible).
func TestQuickPBExactness(t *testing.T) {
	f := func(seed uint64) bool {
		data := randomTiny(seed)
		g := grid.NewSquare(2)
		s, err := core.NewScorer(data, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return false
		}
		seeds := s.AllCells()
		pb, err := MinePB(s, PBConfig{K: 5, MaxLen: 3, Seeds: seeds})
		if err != nil {
			return false
		}
		oracle, err := ExhaustiveNM(s, seeds, 5, 1, 3)
		if err != nil {
			return false
		}
		if len(pb.Patterns) != len(oracle) {
			return false
		}
		for i := range oracle {
			if math.Abs(pb.Patterns[i].NM-oracle[i].NM) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: MineMatch (beam priming + indexed join + bound skipping)
// returns exactly the exhaustive top-k match values, including with a
// length floor.
func TestQuickMatchMinerExactness(t *testing.T) {
	f := func(seed uint64, minLenRaw uint8) bool {
		data := randomTiny(seed)
		minLen := 1 + int(minLenRaw)%3
		g := grid.NewSquare(2)
		s, err := core.NewScorer(data, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return false
		}
		seeds := s.AllCells()
		res, err := MineMatch(s, MatchConfig{K: 5, MinLen: minLen, MaxLen: 3, Seeds: seeds})
		if err != nil {
			return false
		}
		oracle, err := ExhaustiveMatch(s, seeds, 5, minLen, 3)
		if err != nil {
			return false
		}
		if len(res.Patterns) != len(oracle) {
			return false
		}
		for i := range oracle {
			if math.Abs(res.Patterns[i].Match-oracle[i].Match) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the TrajPattern miner's top-1 always equals the exhaustive
// top-1 (the strongest pattern is never lost by pruning or caps), and its
// answer values never exceed the oracle's rank-for-rank.
func TestQuickTrajPatternVsOracle(t *testing.T) {
	f := func(seed uint64) bool {
		data := randomTiny(seed)
		g := grid.NewSquare(2)
		s, err := core.NewScorer(data, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return false
		}
		seeds := s.AllCells()
		res, err := core.Mine(context.Background(), s, core.MinerConfig{K: 5, MaxLen: 3, Seeds: seeds})
		if err != nil {
			return false
		}
		oracle, err := ExhaustiveNM(s, seeds, 5, 1, 3)
		if err != nil {
			return false
		}
		if len(res.Patterns) == 0 || len(oracle) == 0 {
			return false
		}
		if math.Abs(res.Patterns[0].NM-oracle[0].NM) > 1e-9 {
			return false
		}
		for i := range res.Patterns {
			if i < len(oracle) && res.Patterns[i].NM > oracle[i].NM+1e-9 {
				return false // better than exhaustive is impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
