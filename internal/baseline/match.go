package baseline

import (
	"fmt"
	"math"
	"sort"

	"trajpattern/internal/core"
)

// MatchConfig parameterizes the top-k match miner.
type MatchConfig struct {
	// K is the number of patterns to mine. Required.
	K int
	// MinLen restricts the answer to patterns of at least this length.
	// Because the match measure decays with length, the interesting
	// comparisons of §6.1 use MinLen >= 3 (otherwise the top-k are all
	// singulars). Zero or one means no constraint.
	MinLen int
	// MaxLen caps pattern length. Zero means core.DefaultMaxLen.
	MaxLen int
	// Seeds is the singular alphabet. Nil means Scorer.ObservedCells(1).
	Seeds []int
}

// MatchStats reports the work done by one match-mining run.
type MatchStats struct {
	Levels     int // number of levels explored
	Candidates int // candidate patterns scored
	Survivors  int // patterns retained as extension bases across all levels
}

// ScoredMatch pairs a pattern with its match value Σ_T M(P, T).
type ScoredMatch struct {
	Pattern core.Pattern
	Match   float64
}

// MatchResult is the output of MineMatch.
type MatchResult struct {
	Patterns []ScoredMatch
	Stats    MatchStats
}

// MineMatch mines the exact top-k patterns by the match measure of [14].
// Match obeys the Apriori property (extending a pattern never increases
// its match), so the miner proceeds level-wise: level j candidates are
// joins of surviving (j-1)-patterns that overlap in j-2 positions, pruned
// when either maximal proper contiguous sub-pattern did not survive, and a
// pattern survives while its match reaches the running kth-best threshold.
// This reproduces the output set of the border-collapsing algorithm of
// [14]; see the package comment.
func MineMatch(s *core.Scorer, cfg MatchConfig) (*MatchResult, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("baseline: MatchConfig.K must be > 0, got %d", cfg.K)
	}
	if cfg.MaxLen == 0 {
		cfg.MaxLen = core.DefaultMaxLen
	}
	if cfg.MinLen < 1 {
		cfg.MinLen = 1
	}
	if cfg.MinLen > cfg.MaxLen {
		return nil, fmt.Errorf("baseline: MinLen %d exceeds MaxLen %d", cfg.MinLen, cfg.MaxLen)
	}
	seeds := cfg.Seeds
	if seeds == nil {
		seeds = s.ObservedCells(1)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("baseline: no seed cells")
	}

	var stats MatchStats
	top := newTopMatch(cfg.K)

	// Level 1.
	level := make([]ScoredMatch, 0, len(seeds))
	for _, c := range seeds {
		p := core.Pattern{c}
		sm := ScoredMatch{Pattern: p, Match: s.Match(p)}
		stats.Candidates++
		if cfg.MinLen <= 1 {
			top.offer(sm)
		}
		level = append(level, sm)
	}
	stats.Levels = 1

	// With a length floor, ω stays -Inf until K patterns of that length
	// exist, which lets the early levels grow without any pruning. A
	// greedy beam primes ω with real length-MinLen patterns first; every
	// beam pattern is scored exactly, so the threshold is always a valid
	// lower bound on the final kth-best.
	if cfg.MinLen > 1 {
		stats.Candidates += primeMatchThreshold(s, cfg, level, top)
	}

	for j := 2; j <= cfg.MaxLen && len(level) > 0; j++ {
		// Threshold pruning of extension bases: a pattern below ω cannot
		// have a super-pattern at or above ω (Apriori).
		omega, full := top.threshold()
		var bases []ScoredMatch
		for _, sm := range level {
			if !full || sm.Match >= omega {
				bases = append(bases, sm)
			}
		}
		stats.Survivors += len(bases)
		if len(bases) == 0 {
			break
		}
		surviving := make(map[string]float64, len(bases))
		for _, sm := range bases {
			surviving[sm.Pattern.Key()] = sm.Match
		}

		// Candidate generation: GSP-style join of patterns overlapping in
		// j-2 positions, via a prefix index so only joinable pairs are
		// enumerated; at j == 2 this is the full cross product.
		cand := make(map[string]core.Pattern)
		propose := func(p core.Pattern) {
			// Apriori prune: both maximal contiguous sub-patterns must
			// have survived, and the candidate's optimistic match (the
			// smaller parent match) must still reach ω.
			ma, okA := surviving[p.DropFirst().Key()]
			mb, okB := surviving[p.DropLast().Key()]
			if !okA || !okB {
				return
			}
			if full && math.Min(ma, mb) < omega {
				return
			}
			cand[p.Key()] = p
		}
		if j == 2 {
			for _, a := range bases {
				for _, b := range bases {
					propose(core.Pattern{a.Pattern[0], b.Pattern[0]})
				}
			}
		} else {
			// Index bases by their length-(j-2) prefix.
			byPrefix := make(map[string][]core.Pattern, len(bases))
			for _, b := range bases {
				k := b.Pattern.DropLast().Key()
				byPrefix[k] = append(byPrefix[k], b.Pattern)
			}
			for _, a := range bases {
				suffix := a.Pattern.DropFirst().Key()
				for _, b := range byPrefix[suffix] {
					propose(a.Pattern.Concat(core.Pattern{b[len(b)-1]}))
				}
			}
		}
		keys := make([]string, 0, len(cand))
		for k := range cand {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		next := make([]ScoredMatch, 0, len(keys))
		for _, k := range keys {
			p := cand[k]
			sm := ScoredMatch{Pattern: p, Match: s.Match(p)}
			stats.Candidates++
			if j >= cfg.MinLen {
				top.offer(sm)
			}
			next = append(next, sm)
		}
		level = next
		stats.Levels = j
	}

	return &MatchResult{Patterns: top.sorted(), Stats: stats}, nil
}

// primeMatchThreshold grows a small beam of prefixes to length MinLen,
// offering every scored pattern of sufficient length to top so ω becomes
// finite before the level-wise phase. It returns the number of patterns
// scored. The beam width trades priming cost against threshold quality.
func primeMatchThreshold(s *core.Scorer, cfg MatchConfig, singulars []ScoredMatch, top *topMatch) int {
	const beamWidth = 48
	scored := 0

	beam := append([]ScoredMatch(nil), singulars...)
	sortScoredMatch(beam)
	if len(beam) > beamWidth {
		beam = beam[:beamWidth]
	}
	heads := make([]core.Pattern, len(beam))
	for i, sm := range beam {
		heads[i] = sm.Pattern
	}

	frontier := beam
	for length := 2; length <= cfg.MinLen; length++ {
		var next []ScoredMatch
		for _, f := range frontier {
			for _, h := range heads {
				p := f.Pattern.Concat(core.Pattern{h[len(h)-1]})
				sm := ScoredMatch{Pattern: p, Match: s.Match(p)}
				scored++
				if length >= cfg.MinLen {
					top.offer(sm)
				}
				next = append(next, sm)
			}
		}
		sortScoredMatch(next)
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		frontier = next
	}
	return scored
}

// topMatch maintains the running k-best set under the match measure,
// deduplicating by pattern key (the beam primer and the level-wise phase
// can both score the same pattern).
type topMatch struct {
	k     int
	items []ScoredMatch
	seen  map[string]bool
}

func newTopMatch(k int) *topMatch {
	return &topMatch{k: k, seen: make(map[string]bool)}
}

func (t *topMatch) offer(sm ScoredMatch) {
	if t.seen[sm.Pattern.Key()] {
		return
	}
	t.items = append(t.items, sm)
	sortScoredMatch(t.items)
	if len(t.items) > t.k {
		t.items = t.items[:t.k]
	}
	t.seen = make(map[string]bool, len(t.items))
	for _, held := range t.items {
		t.seen[held.Pattern.Key()] = true
	}
}

func (t *topMatch) threshold() (float64, bool) {
	if len(t.items) < t.k {
		return math.Inf(-1), false
	}
	return t.items[len(t.items)-1].Match, true
}

func (t *topMatch) sorted() []ScoredMatch {
	out := append([]ScoredMatch(nil), t.items...)
	sortScoredMatch(out)
	return out
}

func sortScoredMatch(sms []ScoredMatch) {
	sort.Slice(sms, func(i, j int) bool {
		if sms[i].Match != sms[j].Match {
			return sms[i].Match > sms[j].Match
		}
		if len(sms[i].Pattern) != len(sms[j].Pattern) {
			return len(sms[i].Pattern) < len(sms[j].Pattern)
		}
		return sms[i].Pattern.Key() < sms[j].Pattern.Key()
	})
}
