// Package baseline implements the comparison algorithms of the TrajPattern
// paper's evaluation (Section 6):
//
//   - PB, the projection-based top-k NM miner used as the efficiency
//     baseline in Figure 4. It grows prefixes and bounds unspecified
//     positions by each trajectory's best singular log-probability — the
//     deliberately loose bound whose blow-up in k and G the paper analyzes.
//   - MatchMiner, a top-k miner for the unnormalized match measure of [14]
//     (Yang et al., SIGMOD 2002). The match measure keeps the Apriori
//     property, so a level-wise candidate-generation miner with
//     threshold pruning reproduces the output of the border-collapsing
//     algorithm; the sampling machinery of [14] is an optimization of the
//     search control, not of the result set.
//   - Exhaustive, a brute-force enumerator usable as a test oracle on tiny
//     instances.
//
// All three return results in the same deterministic order as core.Mine so
// outputs are directly comparable.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"trajpattern/internal/core"
)

// PBConfig parameterizes the projection-based miner.
type PBConfig struct {
	// K is the number of patterns to mine. Required.
	K int
	// MinLen, when > 1, restricts the answer set to patterns of at least
	// that length (the threshold ω is then maintained over long patterns
	// only, matching the Section 5 variant).
	MinLen int
	// MaxLen caps pattern length; required for termination of the PB
	// bound (without it every prefix remains extensible — exactly the
	// weakness §6.2 describes). Zero means core.DefaultMaxLen.
	MaxLen int
	// Seeds is the singular alphabet. Nil means Scorer.ObservedCells(1).
	Seeds []int
}

// PBStats reports the work done by one PB run.
type PBStats struct {
	PrefixesExpanded int // prefixes that passed the extensibility bound
	PrefixesPruned   int // prefixes cut by the bound
	NMEvaluations    int // patterns scored
}

// PBResult is the output of MinePB.
type PBResult struct {
	Patterns []core.ScoredPattern
	Stats    PBStats
}

// MinePB mines the exact top-k patterns by NM using projection-based
// prefix growth ([13]-style search control applied to the NM measure).
//
// For a prefix A of length i, the NM of any super-pattern A·X of total
// length n is at most Σ_T (logM_A(T) + (n−i)·β_T)/n where β_T is
// trajectory T's best singular log-probability over the alphabet. Because
// logM_A(T) ≤ i·β_T, this bound is non-decreasing in n, so its value at
// n = MaxLen is the admissible optimistic bound; a prefix is expanded only
// while that bound reaches the running top-k threshold ω.
func MinePB(s *core.Scorer, cfg PBConfig) (*PBResult, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("baseline: PBConfig.K must be > 0, got %d", cfg.K)
	}
	if cfg.MaxLen == 0 {
		cfg.MaxLen = core.DefaultMaxLen
	}
	if cfg.MaxLen < 1 {
		return nil, fmt.Errorf("baseline: PBConfig.MaxLen must be >= 1")
	}
	if cfg.MinLen < 1 {
		cfg.MinLen = 1
	}
	if cfg.MinLen > cfg.MaxLen {
		return nil, fmt.Errorf("baseline: MinLen %d exceeds MaxLen %d", cfg.MinLen, cfg.MaxLen)
	}
	seeds := cfg.Seeds
	if seeds == nil {
		seeds = s.ObservedCells(1)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("baseline: no seed cells")
	}

	var stats PBStats
	beta := s.BestSingularLogProb(seeds)
	var sumBeta float64
	for _, b := range beta {
		sumBeta += b
	}

	top := newTopK(cfg.K)

	// bestLogM returns Σ_T max-window log M(A, T) for the prefix, which
	// both scores the prefix (NM = per-T value / len) and feeds the bound.
	// We recompute via the scorer's NM (logM = NM·len per trajectory is
	// not recoverable from the aggregate), so we track the per-trajectory
	// values ourselves during expansion.

	type frame struct {
		pat     core.Pattern
		logM    []float64 // per-trajectory best-window log-match of pat
		sumLogM float64
	}

	nTraj := s.NumTrajectories()

	score := func(p core.Pattern) frame {
		f := frame{pat: p, logM: make([]float64, nTraj)}
		for ti := 0; ti < nTraj; ti++ {
			v := s.NMTrajectory(p, ti) * float64(len(p))
			f.logM[ti] = v
			f.sumLogM += v
		}
		stats.NMEvaluations++
		return f
	}

	admit := func(f frame) {
		if len(f.pat) >= cfg.MinLen {
			top.offer(core.ScoredPattern{Pattern: f.pat.Clone(), NM: f.sumLogM / float64(len(f.pat))})
		}
	}

	// extensible reports whether any super-pattern of f could still reach
	// the current threshold.
	extensible := func(f frame) bool {
		i := len(f.pat)
		if i >= cfg.MaxLen {
			return false
		}
		omega, full := top.threshold()
		if !full {
			return true
		}
		n := float64(cfg.MaxLen)
		ub := sumBeta + (f.sumLogM-float64(i)*sumBeta)/n
		return ub >= omega-1e-12
	}

	// Depth-first expansion in deterministic seed order.
	var stack []frame
	for idx := len(seeds) - 1; idx >= 0; idx-- {
		f := score(core.Pattern{seeds[idx]})
		admit(f)
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !extensible(f) {
			stats.PrefixesPruned++
			continue
		}
		stats.PrefixesExpanded++
		for idx := len(seeds) - 1; idx >= 0; idx-- {
			child := score(f.pat.Concat(core.Pattern{seeds[idx]}))
			admit(child)
			stack = append(stack, child)
		}
	}

	return &PBResult{Patterns: top.sorted(), Stats: stats}, nil
}

// topK maintains the running k-best set with the miner's tie-breaking.
type topK struct {
	k     int
	items []core.ScoredPattern
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) offer(sp core.ScoredPattern) {
	t.items = append(t.items, sp)
	sortScored(t.items)
	if len(t.items) > t.k {
		t.items = t.items[:t.k]
	}
}

// threshold returns the current kth-best NM and whether k items are held.
func (t *topK) threshold() (float64, bool) {
	if len(t.items) < t.k {
		return math.Inf(-1), false
	}
	return t.items[len(t.items)-1].NM, true
}

func (t *topK) sorted() []core.ScoredPattern {
	out := append([]core.ScoredPattern(nil), t.items...)
	sortScored(out)
	return out
}

// sortScored orders by NM descending, then length ascending, then key —
// identical to core.Mine's ordering.
func sortScored(sps []core.ScoredPattern) {
	sort.Slice(sps, func(i, j int) bool {
		if sps[i].NM != sps[j].NM {
			return sps[i].NM > sps[j].NM
		}
		if len(sps[i].Pattern) != len(sps[j].Pattern) {
			return len(sps[i].Pattern) < len(sps[j].Pattern)
		}
		return sps[i].Pattern.Key() < sps[j].Pattern.Key()
	})
}
