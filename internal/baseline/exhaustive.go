package baseline

import (
	"fmt"

	"trajpattern/internal/core"
)

// MaxExhaustiveSpace bounds the |seeds|^maxLen search space Exhaustive is
// willing to enumerate; beyond it the call errors instead of running for
// hours. The oracle is a correctness tool for tiny instances only.
const MaxExhaustiveSpace = 50_000_000

// ExhaustiveNM enumerates every pattern over the seed alphabet with length
// in [minLen, maxLen] and returns the exact top-k by NM. It is the test
// oracle for the other miners.
func ExhaustiveNM(s *core.Scorer, seeds []int, k, minLen, maxLen int) ([]core.ScoredPattern, error) {
	if err := checkExhaustive(seeds, k, minLen, maxLen); err != nil {
		return nil, err
	}
	top := newTopK(k)
	enumerate(seeds, minLen, maxLen, func(p core.Pattern) {
		top.offer(core.ScoredPattern{Pattern: p.Clone(), NM: s.NM(p)})
	})
	return top.sorted(), nil
}

// ExhaustiveMatch is ExhaustiveNM for the match measure.
func ExhaustiveMatch(s *core.Scorer, seeds []int, k, minLen, maxLen int) ([]ScoredMatch, error) {
	if err := checkExhaustive(seeds, k, minLen, maxLen); err != nil {
		return nil, err
	}
	top := newTopMatch(k)
	enumerate(seeds, minLen, maxLen, func(p core.Pattern) {
		top.offer(ScoredMatch{Pattern: p.Clone(), Match: s.Match(p)})
	})
	return top.sorted(), nil
}

func checkExhaustive(seeds []int, k, minLen, maxLen int) error {
	if k <= 0 {
		return fmt.Errorf("baseline: k must be > 0")
	}
	if len(seeds) == 0 {
		return fmt.Errorf("baseline: no seed cells")
	}
	if minLen < 1 || maxLen < minLen {
		return fmt.Errorf("baseline: invalid length bounds [%d,%d]", minLen, maxLen)
	}
	space := 1.0
	total := 0.0
	for l := 1; l <= maxLen; l++ {
		space *= float64(len(seeds))
		total += space
		if total > MaxExhaustiveSpace {
			return fmt.Errorf("baseline: exhaustive space %d^%d exceeds limit %d",
				len(seeds), maxLen, MaxExhaustiveSpace)
		}
	}
	return nil
}

// enumerate visits every pattern over seeds with length in [minLen,
// maxLen], in lexicographic seed order.
func enumerate(seeds []int, minLen, maxLen int, visit func(core.Pattern)) {
	var cur core.Pattern
	var rec func()
	rec = func() {
		if len(cur) >= minLen {
			visit(cur)
		}
		if len(cur) == maxLen {
			return
		}
		for _, c := range seeds {
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
}
