// Package stat provides the numerical machinery behind the TrajPattern
// measures: univariate normal distribution functions, the probability mass
// of a 2-D isotropic normal over boxes and disks (the Prob(l,σ,p,δ) of the
// paper), scaled Bessel functions, small dense linear algebra for the
// prediction models, deterministic random sources, and descriptive
// statistics for the experiment harness.
package stat

import "math"

// Sqrt2 is cached to avoid recomputing in hot probability loops.
var sqrt2 = math.Sqrt(2)

// NormalPDF returns the density of N(mu, sigma²) at x. For sigma <= 0 it
// returns +Inf at x == mu and 0 elsewhere (the degenerate point mass).
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		//trajlint:allow floatcmp -- degenerate point mass: the density is +Inf exactly at mu and 0 everywhere else
		if x == mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma²). For sigma <= 0 it
// returns the step function of the degenerate point mass at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x >= mu {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*sqrt2))
}

// NormalIntervalProb returns P(a <= X <= b) for X ~ N(mu, sigma²).
// It is exact (up to erfc accuracy) and returns 0 when b < a.
func NormalIntervalProb(a, b, mu, sigma float64) float64 {
	if b < a {
		return 0
	}
	if sigma <= 0 {
		if mu >= a && mu <= b {
			return 1
		}
		return 0
	}
	// Difference of erfc values keeps precision in the tails where two
	// near-1 CDFs would cancel.
	lo := (a - mu) / (sigma * sqrt2)
	hi := (b - mu) / (sigma * sqrt2)
	p := 0.5 * (math.Erfc(lo) - math.Erfc(hi))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NormalQuantile returns the x with NormalCDF(x, mu, sigma) = p, computed by
// bisection on the CDF. p outside (0,1) returns ∓Inf. Accuracy is ~1e-12
// relative to sigma, plenty for test oracles and data generation.
func NormalQuantile(p, mu, sigma float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if sigma <= 0 {
		return mu
	}
	lo, hi := -40.0, 40.0 // standard-normal z bounds
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(-mid/sqrt2) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return mu + sigma*(lo+hi)/2
}

// BoxProb2D is the paper's Prob(l, σ, p, δ) under the "box" interpretation:
// the probability that a point drawn from the isotropic 2-D normal
// N(l, σ²I) falls inside the axis-aligned square [p.x±δ]×[p.y±δ]. Because
// the coordinates are independent the mass factorizes into two 1-D interval
// probabilities.
//
// lx, ly is the distribution mean (the expected location), px, py the
// pattern position and delta the indifference threshold.
func BoxProb2D(lx, ly, sigma, px, py, delta float64) float64 {
	if delta < 0 {
		return 0
	}
	return NormalIntervalProb(px-delta, px+delta, lx, sigma) *
		NormalIntervalProb(py-delta, py+delta, ly, sigma)
}
