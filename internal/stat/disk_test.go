package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestI0eKnownValues(t *testing.T) {
	// Reference values: I0(x)*exp(-x) for x = 0, 1, 5, 20, 100.
	cases := []struct {
		x, want float64
	}{
		{0, 1},
		{1, 0.46575960759364043},   // I0(1)=1.2660658..., e^-1 scaling
		{5, 0.18354081260932836},   // I0(5)=27.239871...
		{20, 0.08978031188482602},  // power-series branch
		{25, 0.08019677354743671},  // first point on the asymptotic branch
		{100, 0.03994437929909668}, // deep asymptotic branch
	}
	for _, c := range cases {
		if got := I0e(c.x); math.Abs(got-c.want) > 1e-9*(1+c.want) {
			t.Errorf("I0e(%v) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
	// Even function.
	if I0e(-3) != I0e(3) {
		t.Error("I0e not even")
	}
}

func TestI0eBranchContinuity(t *testing.T) {
	// The series/asymptotic switch at x=25 must be smooth. I0e has slope
	// ≈ -I0e(x)/(2x) ≈ -0.0016 there, so over the 2e-6 gap the function
	// itself moves ~3.2e-9; any branch mismatch beyond ~1e-11 would show
	// up on top of that.
	lo, hi := I0e(24.999999), I0e(25.000001)
	slope := -I0e(25) / (2 * 25)
	expectedChange := slope * 2e-6
	if diff := hi - lo; math.Abs(diff-expectedChange) > 1e-10 {
		t.Errorf("I0e branch mismatch: hi-lo = %g, expected ≈%g from slope", diff, expectedChange)
	}
}

func TestDiskProbCentral(t *testing.T) {
	// Centered disk: P(‖X‖<δ) = 1 - exp(-δ²/2σ²) (Rayleigh CDF).
	for _, c := range []struct{ delta, sigma float64 }{
		{1, 1}, {0.5, 1}, {2, 0.7}, {3, 1},
	} {
		want := 1 - math.Exp(-c.delta*c.delta/(2*c.sigma*c.sigma))
		got := DiskProb2D(0, 0, c.sigma, 0, 0, c.delta)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("central disk δ=%v σ=%v: got %v want %v", c.delta, c.sigma, got, want)
		}
	}
}

func TestDiskProbMonteCarlo(t *testing.T) {
	// Off-center disks validated against Monte Carlo.
	rng := NewRNG(42)
	cases := []struct {
		lx, ly, sigma, px, py, delta float64
	}{
		{0, 0, 1, 1, 0, 1},
		{0, 0, 1, 2, 1, 0.8},
		{0.3, -0.2, 0.5, 0.5, 0.5, 0.4},
		{0, 0, 0.2, 1.5, 0, 0.3}, // far offset: small probability
	}
	const n = 400000
	for _, c := range cases {
		hits := 0
		for i := 0; i < n; i++ {
			x := rng.Normal(c.lx, c.sigma)
			y := rng.Normal(c.ly, c.sigma)
			if math.Hypot(x-c.px, y-c.py) <= c.delta {
				hits++
			}
		}
		mc := float64(hits) / n
		got := DiskProb2D(c.lx, c.ly, c.sigma, c.px, c.py, c.delta)
		se := math.Sqrt(mc*(1-mc)/n) + 1e-6
		if math.Abs(got-mc) > 5*se+1e-4 {
			t.Errorf("DiskProb2D%+v = %v, Monte Carlo = %v (se %v)", c, got, mc, se)
		}
	}
}

func TestDiskProbDegenerate(t *testing.T) {
	if DiskProb2D(0, 0, 0, 0.1, 0, 0.2) != 1 {
		t.Error("σ=0 inside disk should be 1")
	}
	if DiskProb2D(0, 0, 0, 1, 0, 0.2) != 0 {
		t.Error("σ=0 outside disk should be 0")
	}
	if DiskProb2D(0, 0, 1, 0, 0, -0.5) != 0 {
		t.Error("negative delta should be 0")
	}
}

func TestDiskProbFarTails(t *testing.T) {
	// Disk entirely beyond the 9σ bump: ~0.
	if got := DiskProb2D(0, 0, 0.01, 1, 0, 0.05); got != 0 {
		t.Errorf("far disk = %v, want 0", got)
	}
	// Disk covering everything: ~1.
	if got := DiskProb2D(0, 0, 0.01, 0, 0, 10); math.Abs(got-1) > 1e-9 {
		t.Errorf("covering disk = %v, want 1", got)
	}
}

// Property: disk probability is within [0,1], monotone in delta, and always
// at most the probability of the circumscribed box (and at least the
// inscribed box, δ/√2).
func TestQuickDiskVsBox(t *testing.T) {
	f := func(lxs, lys, ss, ds uint16) bool {
		lx := float64(lxs%200)/100 - 1 // [-1, 1)
		ly := float64(lys%200)/100 - 1
		sigma := 0.05 + float64(ss%100)/100 // [0.05, 1.05)
		delta := 0.01 + float64(ds%100)/50  // [0.01, 2.01)
		disk := DiskProb2D(lx, ly, sigma, 0, 0, delta)
		if disk < 0 || disk > 1 {
			return false
		}
		// Monotone in delta.
		if DiskProb2D(lx, ly, sigma, 0, 0, delta/2) > disk+1e-9 {
			return false
		}
		outer := BoxProb2D(lx, ly, sigma, 0, 0, delta)
		inner := BoxProb2D(lx, ly, sigma, 0, 0, delta/math.Sqrt2)
		return inner <= disk+1e-6 && disk <= outer+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
