package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
