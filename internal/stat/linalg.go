package stat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by the linear solvers when the system matrix is
// (numerically) singular.
var ErrSingular = errors.New("stat: singular matrix")

// Matrix is a small dense row-major matrix. It is sized for the prediction
// models (Kalman filters and recursive motion functions use 2×2 to 8×8
// systems), not for large-scale numerics.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stat: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must all have the
// same length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stat: MatrixFromRows on empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("stat: ragged rows in MatrixFromRows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·n as a new matrix. It panics on shape mismatch.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("stat: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			//trajlint:allow floatcmp -- exact-zero sparsity skip: 0*x contributes exactly nothing, so only literal zeros may be skipped
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// Add returns m + n as a new matrix. It panics on shape mismatch.
func (m *Matrix) Add(n *Matrix) *Matrix {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("stat: Add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += n.Data[i]
	}
	return out
}

// Sub returns m - n as a new matrix. It panics on shape mismatch.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("stat: Sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= n.Data[i]
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// MulVec returns m·v. It panics if len(v) != m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("stat: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// SolveLinear solves A·x = b for square A using Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stat: SolveLinear needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("stat: SolveLinear rhs length %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			//trajlint:allow floatcmp -- exact-zero elimination skip: a zero multiplier leaves the row bit-identical
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Inverse returns the inverse of square matrix a, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stat: Inverse needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	out := NewMatrix(n, n)
	e := make([]float64, n)
	for col := 0; col < n; col++ {
		for i := range e {
			e[i] = 0
		}
		e[col] = 1
		x, err := SolveLinear(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, col, x[i])
		}
	}
	return out, nil
}

// LeastSquares solves min ‖A·x - b‖₂ via the normal equations AᵀA·x = Aᵀb
// with a small Tikhonov ridge (lambda) for numerical robustness. The systems
// fitted by the recursive motion function predictor are tiny, so normal
// equations are appropriate.
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("stat: LeastSquares rhs length %d != %d", len(b), a.Rows)
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Data[i*ata.Cols+i] += lambda
	}
	return SolveLinear(ata, at.MulVec(b))
}
