package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 9 {
		t.Error("Clone not deep")
	}
	tr := m.T()
	if tr.At(1, 0) != 2 || tr.At(0, 1) != 3 {
		t.Error("T wrong")
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
	id := Identity(2)
	if am := a.Mul(id); am.At(0, 0) != 1 || am.At(1, 1) != 4 {
		t.Error("Mul by identity changed matrix")
	}
}

func TestMatrixAddSubScaleMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := Identity(2)
	if s := a.Add(b); s.At(0, 0) != 2 || s.At(1, 1) != 5 {
		t.Error("Add wrong")
	}
	if d := a.Sub(b); d.At(0, 0) != 0 || d.At(0, 1) != 2 {
		t.Error("Sub wrong")
	}
	if sc := a.Scale(2); sc.At(1, 1) != 8 {
		t.Error("Scale wrong")
	}
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v", v)
	}
}

func TestSolveLinear(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Inputs unchanged.
	if a.At(0, 0) != 2 || b[0] != 8 {
		t.Error("SolveLinear mutated inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	if _, err := SolveLinear(MatrixFromRows([][]float64{{1, 2}}), []float64{1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := SolveLinear(Identity(2), []float64{1}); err == nil {
		t.Error("expected error for rhs length mismatch")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[1] != 3 {
		t.Errorf("x = %v", x)
	}
}

func TestInverse(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-12 {
				t.Errorf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
	if _, err := Inverse(MatrixFromRows([][]float64{{1, 1}, {1, 1}})); !errors.Is(err, ErrSingular) {
		t.Error("expected ErrSingular for singular inverse")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2x + 1 fitted exactly through three collinear points.
	a := MatrixFromRows([][]float64{{0, 1}, {1, 1}, {2, 1}})
	b := []float64{1, 3, 5}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line; residual of LS solution must be <= residual of the true
	// generating parameters.
	rng := NewRNG(7)
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / 10
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 3*x - 2 + rng.Normal(0, 0.1)
	}
	sol, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	resid := func(p []float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			r := b[i] - (a.At(i, 0)*p[0] + a.At(i, 1)*p[1])
			s += r * r
		}
		return s
	}
	if resid(sol) > resid([]float64{3, -2})+1e-9 {
		t.Errorf("LS residual %v worse than true params %v", resid(sol), resid([]float64{3, -2}))
	}
}

// Property: SolveLinear returns x with A·x ≈ b for random well-conditioned
// systems (diagonally dominant by construction).
func TestQuickSolveLinear(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(5)
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := rng.Uniform(-1, 1)
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, a.At(i, i)+rowSum+1) // diagonal dominance
			b[i] = rng.Uniform(-10, 10)
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
