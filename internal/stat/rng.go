package stat

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// used by the data generators and simulators. Using our own generator keeps
// every dataset byte-reproducible across Go releases (math/rand's stream is
// only stable within a release for the top-level functions) and lets the
// simulators fork independent sub-streams cheaply.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork returns an independent generator derived from the current state and
// the given stream label. Forked streams do not overlap in practice because
// splitmix64's output is a bijection of its counter.
func (r *RNG) Fork(label uint64) *RNG {
	return &RNG{state: r.Uint64() ^ (label * 0x9E3779B97F4A7C15)}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stat: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a draw from N(mu, sigma²) using Box–Muller.
func (r *RNG) Normal(mu, sigma float64) float64 {
	// Avoid log(0).
	u1 := r.Float64()
	//trajlint:allow floatcmp -- exact-zero rejection guards log(0); any nonzero float is fine
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// Exponential returns a draw from Exp(rate). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stat: Exponential with non-positive rate")
	}
	u := r.Float64()
	//trajlint:allow floatcmp -- exact-zero rejection guards log(0); any nonzero float is fine
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
