package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDF(t *testing.T) {
	// Standard normal at 0: 1/sqrt(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if got := NormalPDF(0, 0, 1); math.Abs(got-want) > 1e-15 {
		t.Errorf("NormalPDF(0,0,1) = %v, want %v", got, want)
	}
	// Symmetry.
	if NormalPDF(1.3, 0, 1) != NormalPDF(-1.3, 0, 1) {
		t.Error("PDF not symmetric")
	}
	// Degenerate sigma.
	if got := NormalPDF(1, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("degenerate PDF at mean = %v", got)
	}
	if got := NormalPDF(2, 1, 0); got != 0 {
		t.Errorf("degenerate PDF off mean = %v", got)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{2, 0.9772498680518208},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, 0, 1); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Shift/scale.
	if got := NormalCDF(5, 5, 3); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF at mean = %v", got)
	}
	// Degenerate.
	if NormalCDF(0.9, 1, 0) != 0 || NormalCDF(1, 1, 0) != 1 {
		t.Error("degenerate CDF wrong")
	}
}

func TestNormalIntervalProb(t *testing.T) {
	// The "68-95-99.7" rule, which the paper invokes for c = 1, 2, 3.
	for _, c := range []struct {
		k, want, tol float64
	}{
		{1, 0.6827, 1e-3},
		{2, 0.9545, 1e-3},
		{3, 0.9973, 1e-3},
	} {
		got := NormalIntervalProb(-c.k, c.k, 0, 1)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("P(|Z|<%v) = %v, want ≈%v", c.k, got, c.want)
		}
	}
	if got := NormalIntervalProb(2, 1, 0, 1); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
	if NormalIntervalProb(0.5, 1.5, 1, 0) != 1 || NormalIntervalProb(2, 3, 1, 0) != 0 {
		t.Error("degenerate interval prob wrong")
	}
	// Deep tail: difference-of-erfc path must not cancel to 0 too early.
	if got := NormalIntervalProb(8, 9, 0, 1); got <= 0 {
		t.Errorf("tail interval prob = %v, want > 0", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999} {
		x := NormalQuantile(p, 2, 3)
		if got := NormalCDF(x, 2, 3); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0, 0, 1), -1) || !math.IsInf(NormalQuantile(1, 0, 1), 1) {
		t.Error("quantile at 0/1 should be ∓Inf")
	}
	if NormalQuantile(0.3, 7, 0) != 7 {
		t.Error("degenerate quantile should be mu")
	}
}

func TestBoxProb2D(t *testing.T) {
	// Centered box of half-width δ=σ: product of P(|Z|<1)².
	want := 0.6827 * 0.6827
	if got := BoxProb2D(0, 0, 1, 0, 0, 1); math.Abs(got-want) > 2e-3 {
		t.Errorf("BoxProb2D centered = %v, want ≈%v", got, want)
	}
	// Far away: negligible.
	if got := BoxProb2D(0, 0, 0.01, 1, 1, 0.01); got > 1e-12 {
		t.Errorf("far box prob = %v", got)
	}
	// Negative delta.
	if BoxProb2D(0, 0, 1, 0, 0, -1) != 0 {
		t.Error("negative delta should be 0")
	}
	// Huge delta: everything.
	if got := BoxProb2D(0, 0, 1, 0, 0, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("huge delta = %v", got)
	}
}

// Property: interval probability is in [0,1], monotone in interval width,
// and additive over adjacent intervals.
func TestQuickIntervalProb(t *testing.T) {
	f := func(a, w1, w2, mu float64) bool {
		if math.IsNaN(a) || math.IsNaN(w1) || math.IsNaN(w2) || math.IsNaN(mu) {
			return true
		}
		a = math.Mod(a, 100)
		mu = math.Mod(mu, 100)
		w1, w2 = math.Abs(math.Mod(w1, 50)), math.Abs(math.Mod(w2, 50))
		sigma := 1.0
		p1 := NormalIntervalProb(a, a+w1, mu, sigma)
		p2 := NormalIntervalProb(a+w1, a+w1+w2, mu, sigma)
		p12 := NormalIntervalProb(a, a+w1+w2, mu, sigma)
		if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
			return false
		}
		if p12+1e-12 < p1 { // monotone in width
			return false
		}
		return math.Abs(p12-(p1+p2)) < 1e-9 // additive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(x, y, mu, sigma float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(mu) || math.IsNaN(sigma) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		mu = math.Mod(mu, 1e6)
		sigma = math.Abs(math.Mod(sigma, 1e3)) + 1e-6
		if x > y {
			x, y = y, x
		}
		return NormalCDF(x, mu, sigma) <= NormalCDF(y, mu, sigma)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
