package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look identical")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(2)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Uniform(2, 4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("Uniform(2,4) mean = %v", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.03 {
		t.Errorf("Normal mean = %v, want 5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Normal variance = %v, want 4", variance)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exponential(2) mean = %v, want 0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(7) value %d count %d out of expected band", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(6)
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 28500 || trues > 31500 {
		t.Errorf("Bool(0.3) rate = %v", float64(trues)/100000)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatal("permutation missing values")
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(8)
	a := r.Fork(1)
	b := r.Fork(2)
	// Forked streams should differ from each other.
	diff := false
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("forked streams identical")
	}
}

// Property: Uniform(lo, hi) stays within [lo, hi) for arbitrary bounds.
func TestQuickUniformBounds(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 10; i++ {
			v := r.Uniform(a, b)
			if v < a || v >= b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
