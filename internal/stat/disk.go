package stat

import "math"

// This file computes the "disk" interpretation of the paper's
// Prob(l, σ, p, δ): the probability that a point drawn from the isotropic
// 2-D normal N(l, σ²I) lands within Euclidean distance δ of p. The radial
// distance R = ‖X - p‖ follows a Rice distribution with parameters
// ν = ‖l - p‖ and σ, so
//
//	P(R ≤ δ) = ∫₀^δ (r/σ²)·exp(-(r²+ν²)/(2σ²))·I₀(rν/σ²) dr.
//
// To stay numerically stable for ν ≫ σ we rewrite the integrand with the
// exponentially scaled Bessel function I0e(x) = I₀(x)·e^(-x):
//
//	f(r) = (r/σ²)·exp(-(r-ν)²/(2σ²))·I0e(rν/σ²),
//
// which never overflows, and integrate with composite Simpson.

// I0e returns the exponentially scaled modified Bessel function of the
// first kind of order zero, I₀(x)·e^(-|x|). It is accurate to ~1e-14 using
// the power series for small |x| and the asymptotic expansion for large |x|.
func I0e(x float64) float64 {
	x = math.Abs(x)
	if x < 25 {
		// Power series: I0(x) = Σ (x/2)^(2k) / (k!)².
		term, sum := 1.0, 1.0
		half := x / 2
		for k := 1; k < 80; k++ {
			term *= (half / float64(k)) * (half / float64(k))
			sum += term
			if term < sum*1e-17 {
				break
			}
		}
		return sum * math.Exp(-x)
	}
	// Asymptotic: I0(x) ~ e^x/sqrt(2πx) · Σ a_k/x^k with
	// a_k = ((2k-1)!!)² / (k!·8^k).
	inv := 1 / x
	sum, term := 1.0, 1.0
	for k := 1; k < 12; k++ {
		num := float64(2*k-1) * float64(2*k-1)
		term *= num * inv / (8 * float64(k))
		sum += term
		if math.Abs(term) < 1e-17 {
			break
		}
	}
	return sum / math.Sqrt(2*math.Pi*x)
}

// riceCDF returns P(R ≤ delta) for R ~ Rice(nu, sigma) via composite
// Simpson integration of the scaled integrand. sigma must be > 0.
func riceCDF(delta, nu, sigma float64) float64 {
	if delta <= 0 {
		return 0
	}
	// Restrict the integration range to where the Gaussian factor is
	// non-negligible: |r - nu| <= 9σ. Outside, the integrand is < 1e-17
	// relative.
	lo := math.Max(0, nu-9*sigma)
	hi := math.Min(delta, nu+9*sigma)
	if hi <= lo {
		// The disk lies entirely in a negligible tail. If delta covers the
		// whole bump (nu+9σ <= delta fails above only when delta < lo), the
		// answer is ~0; if delta is far beyond the bump the mass is ~1.
		if delta >= nu+9*sigma {
			return 1
		}
		return 0
	}
	inv2s2 := 1 / (2 * sigma * sigma)
	invs2 := 1 / (sigma * sigma)
	f := func(r float64) float64 {
		d := r - nu
		return r * invs2 * math.Exp(-d*d*inv2s2) * I0e(r*nu*invs2)
	}
	// Composite Simpson with enough panels to resolve a σ-width bump.
	n := 256
	if w := (hi - lo) / sigma; w > 16 {
		n = int(w) * 16
	}
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	sum := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	p := sum * h / 3
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// DiskProb2D is the paper's Prob(l, σ, p, δ) under the "disk"
// interpretation: the probability that a point drawn from N(l, σ²I₂) lands
// within Euclidean distance δ of p. For σ <= 0 it degenerates to the
// indicator of ‖l-p‖ ≤ δ.
func DiskProb2D(lx, ly, sigma, px, py, delta float64) float64 {
	if delta < 0 {
		return 0
	}
	nu := math.Hypot(lx-px, ly-py)
	if sigma <= 0 {
		if nu <= delta {
			return 1
		}
		return 0
	}
	return riceCDF(delta, nu, sigma)
}
