package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/single-element edge cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q0.25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated (Quantile sorts a copy).
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

// Property: Min <= Quantile(q) <= Max and quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(xs, q1), Quantile(xs, q2)
		return Min(xs) <= a && a <= b+1e-12 && b <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestQuickVarianceScaling(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 || math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		v := Variance(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 2 * x
		}
		tol := 1e-6 * (1 + v + shift*shift)
		return math.Abs(Variance(shifted)-v) < tol &&
			math.Abs(Variance(scaled)-4*v) < 4*tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
