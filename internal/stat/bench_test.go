package stat

import "testing"

func BenchmarkNormalCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalCDF(0.7, 0, 1)
	}
}

func BenchmarkNormalIntervalProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalIntervalProb(-0.3, 0.4, 0.1, 0.5)
	}
}

func BenchmarkBoxProb2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BoxProb2D(0.4, 0.6, 0.05, 0.45, 0.55, 0.04)
	}
}

func BenchmarkDiskProb2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DiskProb2D(0.4, 0.6, 0.05, 0.45, 0.55, 0.04)
	}
}

func BenchmarkI0eSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		I0e(8.5)
	}
}

func BenchmarkI0eAsymptotic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		I0e(60)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Normal(0, 1)
	}
}

func BenchmarkSolveLinear4x4(b *testing.B) {
	a := MatrixFromRows([][]float64{
		{4, 1, 0, 0},
		{1, 4, 1, 0},
		{0, 1, 4, 1},
		{0, 0, 1, 4},
	})
	rhs := []float64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLinear(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
