package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/classify"
	"trajpattern/internal/core"
	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

// E9Options parameterizes the pattern-based classification experiment —
// the application the paper's introduction motivates ("constructing a
// classifier based on the discovered patterns"). Bus traces are labeled by
// route; a per-route pattern set is mined from the training days and the
// held-out day is classified by NM support.
type E9Options struct {
	Bus    BusOptions
	K      int // patterns per class (default 15)
	MinLen int // default 2
	MaxLen int // default 5
}

// E9Result carries the classification outcome.
type E9Result struct {
	Accuracy float64
	Majority float64 // baseline: always predict the largest class
	Table    Table
}

// RunE9 trains the pattern classifier on all but the last day of every
// bus and reports held-out accuracy against the majority-class baseline,
// in both feature spaces: location trajectories (routes occupy different
// places — the easy, high-accuracy case) and velocity trajectories (all
// rectilinear routes share the ±x/±y vocabulary — the hard case, still
// clearly above chance).
func RunE9(ctx context.Context, o E9Options) (*E9Result, error) {
	if o.K == 0 {
		o.K = 15
	}
	if o.MinLen == 0 {
		o.MinLen = 2
	}
	if o.MaxLen == 0 {
		o.MaxLen = 5
	}
	data, err := MakeBusData(o.Bus)
	if err != nil {
		return nil, err
	}
	maxDay := 0
	for _, tr := range data.Traces {
		if tr.Day > maxDay {
			maxDay = tr.Day
		}
	}
	split := func(source traj.Dataset) (map[string]traj.Dataset, map[string]traj.Dataset) {
		train := make(map[string]traj.Dataset)
		test := make(map[string]traj.Dataset)
		for i, tr := range data.Traces {
			name := fmt.Sprintf("route-%d", tr.Route)
			if tr.Day == maxDay {
				test[name] = append(test[name], source[i])
			} else {
				train[name] = append(train[name], source[i])
			}
		}
		return train, test
	}
	// Location trajectories are one snapshot longer than velocity ones;
	// both index by trace, so the split applies to either.
	run := func(source traj.Dataset, sc core.Config) (float64, error) {
		train, test := split(source)
		c, err := classify.Train(ctx, train, classify.Config{
			Scorer: sc, K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen,
		})
		if err != nil {
			return 0, err
		}
		acc, _, err := c.Evaluate(test)
		return acc, err
	}

	velAcc, err := run(data.Velocities, core.Config{Grid: data.Grid, Delta: data.Grid.CellWidth()})
	if err != nil {
		return nil, err
	}
	locGrid := grid.NewSquare(16)
	locAcc, err := run(data.Locations, core.Config{Grid: locGrid, Delta: locGrid.CellWidth()})
	if err != nil {
		return nil, err
	}

	// Majority baseline.
	_, test := split(data.Velocities)
	largest, total := 0, 0
	for _, ds := range test {
		total += len(ds)
		if len(ds) > largest {
			largest = len(ds)
		}
	}
	res := &E9Result{
		Accuracy: locAcc,
		Majority: float64(largest) / float64(total),
	}
	res.Table = Table{
		Title:   fmt.Sprintf("E9 (intro use case): route classification from mined patterns, k=%d per class", o.K),
		Columns: []string{"classifier", "accuracy"},
		Rows: [][]string{
			{"location patterns", fmt.Sprintf("%.1f%%", locAcc*100)},
			{"velocity patterns", fmt.Sprintf("%.1f%%", velAcc*100)},
			{"majority baseline", fmt.Sprintf("%.1f%%", res.Majority*100)},
		},
	}
	return res, nil
}
