package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/baseline"
	"trajpattern/internal/core"
)

// E1Options parameterizes the §6.1 pattern-length comparison. The paper
// mines k = 1000 on its 3.2 GHz testbed; the default here is k = 100 with
// a half-scale fleet so the experiment completes in minutes on one core —
// the comparison is between the two measures at equal k, so the shape is
// preserved at any k.
type E1Options struct {
	Bus    BusOptions
	K      int // patterns to mine (paper: 1000; default 100)
	MinLen int // length floor (paper: 3)
	MaxLen int // search cap (default 8)
}

// E1Result carries the raw numbers behind the E1 table.
type E1Result struct {
	AvgLenNM    float64
	AvgLenMatch float64
	NMPatterns  []core.ScoredPattern
	Table       Table
}

// RunE1 reproduces the §6.1 statistic: the average length of the top-k NM
// patterns of length >= 3 versus the top-k match patterns of the same
// floor (paper: 4.2 vs 3.18 at k = 1000).
func RunE1(ctx context.Context, o E1Options) (*E1Result, error) {
	if o.K == 0 {
		o.K = 100
	}
	if o.MinLen == 0 {
		o.MinLen = 3
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8
	}
	if o.Bus.Scale == 0 {
		o.Bus.Scale = 0.5
	}
	if o.Bus.GridN == 0 {
		o.Bus.GridN = 20
	}
	data, err := MakeBusData(o.Bus)
	if err != nil {
		return nil, err
	}

	sNM, err := data.Scorer()
	if err != nil {
		return nil, err
	}
	nmRes, err := core.Mine(ctx, sNM, core.MinerConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K})
	if err != nil {
		return nil, err
	}

	sM, err := data.Scorer()
	if err != nil {
		return nil, err
	}
	mRes, err := baseline.MineMatch(sM, baseline.MatchConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen})
	if err != nil {
		return nil, err
	}

	var nmSum, mSum int
	for _, p := range nmRes.Patterns {
		nmSum += len(p.Pattern)
	}
	for _, p := range mRes.Patterns {
		mSum += len(p.Pattern)
	}
	res := &E1Result{NMPatterns: nmRes.Patterns}
	if n := len(nmRes.Patterns); n > 0 {
		res.AvgLenNM = float64(nmSum) / float64(n)
	}
	if n := len(mRes.Patterns); n > 0 {
		res.AvgLenMatch = float64(mSum) / float64(n)
	}
	res.Table = Table{
		Title:   fmt.Sprintf("E1 (§6.1): average pattern length, top-%d, length ≥ %d", o.K, o.MinLen),
		Columns: []string{"measure", "avg length", "patterns", "paper"},
		Rows: [][]string{
			{"NM (TrajPattern)", fmt.Sprintf("%.2f", res.AvgLenNM), fmt.Sprintf("%d", len(nmRes.Patterns)), "4.20"},
			{"match ([14])", fmt.Sprintf("%.2f", res.AvgLenMatch), fmt.Sprintf("%d", len(mRes.Patterns)), "3.18"},
		},
	}
	return res, nil
}
