package exp

import (
	"context"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.String()
	if !strings.Contains(out, "### demo") || !strings.Contains(out, "| 333 |") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestSeriesTable(t *testing.T) {
	s := Series{
		Title:  "fig",
		XLabel: "k",
		XS:     []float64{1, 2},
		Lines:  []Line{{Name: "algo", YS: []float64{0.5}}},
	}
	tb := s.Table()
	if len(tb.Rows) != 2 || tb.Rows[1][1] != "-" {
		t.Errorf("missing value not dashed: %+v", tb.Rows)
	}
	if tb.Columns[0] != "k" || tb.Columns[1] != "algo" {
		t.Errorf("columns = %v", tb.Columns)
	}
}

func TestCheckScale(t *testing.T) {
	if s, err := checkScale(0); err != nil || s != 1 {
		t.Errorf("checkScale(0) = %v, %v", s, err)
	}
	if _, err := checkScale(-0.5); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := checkScale(1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func tinyBus() BusOptions {
	return BusOptions{Scale: 0.2, GridN: 12, Seed: 42}
}

func tinySweep() SweepOptions {
	return SweepOptions{Scale: 1, Seed: 42, K: 4, S: 12, L: 25, GridN: 8, MaxLen: 4}
}

func TestMakeBusData(t *testing.T) {
	data, err := MakeBusData(tinyBus())
	if err != nil {
		t.Fatal(err)
	}
	// 5 routes × 2 buses × 2 days at scale 0.2.
	if len(data.Traces) != 20 {
		t.Errorf("traces = %d", len(data.Traces))
	}
	if len(data.Velocities) != len(data.Locations) {
		t.Errorf("velocity/location count mismatch")
	}
	if data.Velocities[0].Len() != 100 {
		t.Errorf("velocity length = %d, want 100", data.Velocities[0].Len())
	}
	if _, err := data.Scorer(); err != nil {
		t.Fatal(err)
	}
	// The velocity grid must cover all velocity means.
	for _, tr := range data.Velocities {
		for _, p := range tr {
			if !data.Grid.Bounds().Contains(p.Mean) {
				t.Fatalf("velocity %v outside grid %v", p.Mean, data.Grid.Bounds())
			}
		}
	}
}

func TestRunE1Shape(t *testing.T) {
	res, err := RunE1(context.Background(), E1Options{Bus: tinyBus(), K: 30, MinLen: 3, MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLenNM < 3 || res.AvgLenMatch < 3 {
		t.Errorf("averages below the length floor: %v / %v", res.AvgLenNM, res.AvgLenMatch)
	}
	// The paper's qualitative result: NM patterns are longer on average.
	if res.AvgLenNM < res.AvgLenMatch {
		t.Errorf("NM avg %.2f < match avg %.2f", res.AvgLenNM, res.AvgLenMatch)
	}
	if len(res.Table.Rows) != 2 {
		t.Errorf("table rows = %d", len(res.Table.Rows))
	}
}

func TestRunE2Shape(t *testing.T) {
	res, err := RunE2(context.Background(), E2Options{Bus: tinyBus(), K: 20, MinLen: 3, MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 3 {
		t.Fatalf("models = %d", len(res.Models))
	}
	names := map[string]bool{}
	for _, m := range res.Models {
		names[m.Model] = true
		if m.BaseMis == 0 {
			t.Errorf("%s: base model never mis-predicts (experiment vacuous)", m.Model)
		}
	}
	for _, want := range []string{"LM", "LKF", "RMF"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

func TestRunE3Shape(t *testing.T) {
	ser, err := RunE3(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.XS) == 0 || len(ser.Lines) != 2 {
		t.Fatalf("series shape: %+v", ser)
	}
	for _, l := range ser.Lines {
		if len(l.YS) != len(ser.XS) {
			t.Errorf("line %s has %d points for %d xs", l.Name, len(l.YS), len(ser.XS))
		}
		for _, y := range l.YS {
			if y < 0 {
				t.Errorf("negative time %v", y)
			}
		}
	}
}

func TestRunE7Shape(t *testing.T) {
	ser, err := RunE7(context.Background(), E7Options{Sweep: tinySweep()})
	if err != nil {
		t.Fatal(err)
	}
	ys := ser.Lines[0].YS
	if len(ys) != len(ser.XS) {
		t.Fatalf("series shape: %+v", ser)
	}
	// Qualitative Figure 4(e) shape: larger δ yields no more groups than
	// the smallest δ.
	if ys[len(ys)-1] > ys[0] {
		t.Errorf("group count grew with delta: %v", ys)
	}
	for _, y := range ys {
		if y < 1 {
			t.Errorf("group count %v < 1", y)
		}
	}
}

func TestRunA1Shape(t *testing.T) {
	tb, err := RunA1(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Same top-k with and without pruning.
	for _, row := range tb.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("pruning changed results: %v", row)
		}
	}
}

func TestRunA2A3Shape(t *testing.T) {
	if tb, err := RunA2(context.Background(), tinySweep()); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("A2: %v, %+v", err, tb)
	}
	if tb, err := RunA3(context.Background(), tinySweep()); err != nil || len(tb.Rows) != 2 {
		t.Fatalf("A3: %v, %+v", err, tb)
	}
}

func TestRunE4E5E6Shape(t *testing.T) {
	for name, run := range map[string]func(context.Context, SweepOptions) (*Series, error){
		"E4": RunE4, "E5": RunE5, "E6": RunE6,
	} {
		ser, err := run(context.Background(), tinySweep())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ser.XS) == 0 || len(ser.Lines) != 2 {
			t.Fatalf("%s: series shape %+v", name, ser)
		}
		for _, l := range ser.Lines {
			if len(l.YS) != len(ser.XS) {
				t.Errorf("%s: line %s has %d points for %d xs", name, l.Name, len(l.YS), len(ser.XS))
			}
			for _, y := range l.YS {
				if y < 0 {
					t.Errorf("%s: negative time %v", name, y)
				}
			}
		}
		// X axes must be strictly increasing.
		for i := 1; i < len(ser.XS); i++ {
			if ser.XS[i] <= ser.XS[i-1] {
				t.Errorf("%s: x axis not increasing: %v", name, ser.XS)
			}
		}
	}
}
