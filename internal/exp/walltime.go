package exp

import "time"

// Response time is the quantity several of the paper's figures measure
// (Figure 4's runtime-versus-k, the ablation speedups), so the experiment
// package does read the wall clock — but only here. The measured seconds
// are reported in tables and in bench.json's ns field; the CI regression
// gate compares the deterministic work counters instead, never these
// values. Keeping both reads in this one helper quarantines the
// nondeterminism and keeps the determinism analyzer meaningful for the
// rest of the package.

// stopwatch starts timing one experiment phase and returns a function
// reporting the seconds elapsed since the start.
func stopwatch() func() float64 {
	start := time.Now() //trajlint:allow determinism -- response time is the experiments' measured result, reported but never gated on
	return func() float64 {
		return time.Since(start).Seconds() //trajlint:allow determinism -- response time is the experiments' measured result, reported but never gated on
	}
}
