package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/baseline"
	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/predict"
	"trajpattern/internal/traj"
)

// E2Options parameterizes the Figure 3 prediction experiment.
type E2Options struct {
	Bus       BusOptions
	K         int     // patterns to mine (default 60)
	MinLen    int     // length floor (paper: 4)
	MaxLen    int     // search cap (default 8)
	ConfirmPr float64 // confirmation probability (paper: 0.9)
	EvalU     float64 // mis-prediction tolerance (0 = the reporting U)
}

// E2ModelResult is one row of Figure 3.
type E2ModelResult struct {
	Model          string
	BaseMis        int
	NMReduction    float64
	MatchReduction float64
}

// E2Result carries the Figure 3 numbers.
type E2Result struct {
	Models []E2ModelResult
	Table  Table
}

// RunE2 reproduces Figure 3: mine top-k NM patterns and top-k match
// patterns of length >= 4 on the training velocity trajectories, plug each
// pattern set into the LM, LKF and RMF prediction modules via the
// confirmation rule of §6.1, and report the relative reduction in
// mis-predictions on the held-out traces. The paper reports 20–40%
// reduction with NM patterns and 10–20% with match patterns.
func RunE2(ctx context.Context, o E2Options) (*E2Result, error) {
	if o.K == 0 {
		o.K = 60
	}
	if o.Bus.BaseSpeed == 0 {
		o.Bus.BaseSpeed = 0.03
	}
	if o.Bus.U == 0 {
		o.Bus.U = 0.01
	}
	if o.EvalU == 0 {
		o.EvalU = 0.015
	}
	if o.MinLen == 0 {
		o.MinLen = 4
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8
	}
	if o.ConfirmPr == 0 {
		o.ConfirmPr = 0.9
	}
	// E2 disables the fleet's fixed stops unless the caller configured
	// them: long identical dwells concentrate the whole top-k on trivial
	// stationary patterns (probability ≈ 1 cells), which predict nothing
	// the base models do not already get right.
	if o.Bus.Stops == 0 {
		o.Bus.Stops = -1
	}
	data, err := MakeBusData(o.Bus)
	if err != nil {
		return nil, err
	}

	// Hold out the most recent day of every bus (the paper's 450/50 split
	// holds out whole traces; holding out a day keeps every route in both
	// halves, which a prefix split does not — traces are ordered by
	// route).
	maxDay := 0
	for _, tr := range data.Traces {
		if tr.Day > maxDay {
			maxDay = tr.Day
		}
	}
	var trainVel traj.Dataset
	var testPaths [][]geom.Point
	for i, tr := range data.Traces {
		if tr.Day == maxDay {
			testPaths = append(testPaths, tr.Path)
		} else {
			trainVel = append(trainVel, data.Velocities[i])
		}
	}
	if len(trainVel) == 0 || len(testPaths) == 0 {
		return nil, fmt.Errorf("exp: train/test split degenerate (%d/%d)", len(trainVel), len(testPaths))
	}

	mkScorer := func(d traj.Dataset) (*core.Scorer, error) {
		return core.NewScorer(d, core.Config{Grid: data.Grid, Delta: data.Grid.CellWidth()})
	}

	sNM, err := mkScorer(trainVel)
	if err != nil {
		return nil, err
	}
	nmRes, err := core.Mine(ctx, sNM, core.MinerConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K})
	if err != nil {
		return nil, err
	}
	nmPatterns := make([]core.Pattern, len(nmRes.Patterns))
	for i, sp := range nmRes.Patterns {
		nmPatterns[i] = sp.Pattern
	}

	sM, err := mkScorer(trainVel)
	if err != nil {
		return nil, err
	}
	mRes, err := baseline.MineMatch(sM, baseline.MatchConfig{K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen})
	if err != nil {
		return nil, err
	}
	matchPatterns := make([]core.Pattern, len(mRes.Patterns))
	for i, sm := range mRes.Patterns {
		matchPatterns[i] = sm.Pattern
	}

	sigma := trainVel.MeanSigma()
	if sigma <= 0 {
		return nil, fmt.Errorf("exp: degenerate velocity sigma")
	}
	// Confirmation runs against the device's own observed velocities, so
	// its σ is the true per-step velocity noise — much tighter than the
	// server-side σ of the mining input, whose 3σ radius would cover most
	// of velocity space and confirm everything.
	confSigma := data.TrueVelocitySigma()

	models := []func() predict.Predictor{
		func() predict.Predictor { return predict.NewLinear() },
		func() predict.Predictor { return predict.NewKalman(1e-5, sigma*sigma) },
		func() predict.Predictor { return predict.NewRMF(0, 0) },
	}

	res := &E2Result{}
	res.Table = Table{
		Title:   fmt.Sprintf("E2 (Figure 3): mis-prediction reduction, top-%d patterns of length ≥ %d", o.K, o.MinLen),
		Columns: []string{"model", "base mis-pred", "NM reduction", "match reduction", "paper NM", "paper match"},
	}
	paperNM := []string{"≈0.30", "≈0.40", "≈0.20"}
	paperM := []string{"≈0.15", "≈0.20", "≈0.10"}
	evalU := o.EvalU
	for mi, mk := range models {
		base := mk()
		baseEv, err := predict.Evaluate(base, testPaths, evalU)
		if err != nil {
			return nil, err
		}
		evalWith := func(pats []core.Pattern) (predict.Evaluation, error) {
			// δ = 3σ: the paper's 90% joint confirmation probability is
			// only reachable when the indifference radius covers the
			// velocity noise (a one-cell δ almost never confirms).
			pp := &predict.PatternPredictor{
				Base:        mk(),
				Patterns:    pats,
				Grid:        data.Grid,
				Delta:       3 * confSigma,
				Sigma:       confSigma,
				ConfirmProb: o.ConfirmPr,
			}
			if err := pp.Validate(); err != nil {
				return predict.Evaluation{}, err
			}
			return predict.Evaluate(pp, testPaths, evalU)
		}
		nmEv, err := evalWith(nmPatterns)
		if err != nil {
			return nil, err
		}
		mEv, err := evalWith(matchPatterns)
		if err != nil {
			return nil, err
		}
		row := E2ModelResult{
			Model:          base.Name(),
			BaseMis:        baseEv.MisPredictions,
			NMReduction:    predict.Reduction(baseEv, nmEv),
			MatchReduction: predict.Reduction(baseEv, mEv),
		}
		res.Models = append(res.Models, row)
		res.Table.Rows = append(res.Table.Rows, []string{
			row.Model,
			fmt.Sprintf("%d", row.BaseMis),
			fmt.Sprintf("%.1f%%", row.NMReduction*100),
			fmt.Sprintf("%.1f%%", row.MatchReduction*100),
			paperNM[mi], paperM[mi],
		})
	}
	return res, nil
}
