package exp

import (
	"context"
	"testing"
)

func TestRunE9Shape(t *testing.T) {
	res, err := RunE9(context.Background(), E9Options{Bus: tinyBus(), K: 6, MinLen: 2, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < res.Majority {
		t.Errorf("pattern classifier (%.2f) worse than majority baseline (%.2f)",
			res.Accuracy, res.Majority)
	}
	if len(res.Table.Rows) < 2 {
		t.Errorf("table rows = %d", len(res.Table.Rows))
	}
}
