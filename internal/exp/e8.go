package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/baseline"
	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/grid"
)

// E8Options parameterizes the posture-data variant of the §6.1 comparison.
// The paper reports that its second real data set (human postures) shows
// "similar results" to the bus data but omits the numbers; E8 makes that
// claim checkable on the simulated posture data.
type E8Options struct {
	Subjects int // default 50
	Length   int // snapshots per subject (default 120)
	K        int // patterns to mine (default 100)
	MinLen   int // length floor (default 3)
	MaxLen   int // search cap (default 10)
	GridN    int // grid side (default 16)
	Seed     uint64
}

// E8Result carries the posture-data pattern-length comparison.
type E8Result struct {
	AvgLenNM    float64
	AvgLenMatch float64
	Table       Table
}

// RunE8 mines the top-k NM and match patterns (length >= MinLen) on the
// simulated human-posture dataset and compares average pattern lengths —
// the posture-data analogue of E1.
func RunE8(ctx context.Context, o E8Options) (*E8Result, error) {
	if o.Subjects == 0 {
		o.Subjects = 50
	}
	if o.Length == 0 {
		o.Length = 120
	}
	if o.K == 0 {
		o.K = 100
	}
	if o.MinLen == 0 {
		o.MinLen = 3
	}
	if o.MaxLen == 0 {
		o.MaxLen = 10
	}
	if o.GridN == 0 {
		o.GridN = 16
	}
	ds, err := datagen.PostureDataset(datagen.PostureConfig{
		NumSubjects: o.Subjects,
		Length:      o.Length,
		Seed:        o.Seed,
	}, 0.02, 2)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)
	mk := func() (*core.Scorer, error) {
		return core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
	}

	sNM, err := mk()
	if err != nil {
		return nil, err
	}
	nmRes, err := core.Mine(ctx, sNM, core.MinerConfig{
		K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K,
	})
	if err != nil {
		return nil, err
	}
	sM, err := mk()
	if err != nil {
		return nil, err
	}
	mRes, err := baseline.MineMatch(sM, baseline.MatchConfig{
		K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen,
	})
	if err != nil {
		return nil, err
	}

	var nmSum, mSum int
	for _, p := range nmRes.Patterns {
		nmSum += len(p.Pattern)
	}
	for _, p := range mRes.Patterns {
		mSum += len(p.Pattern)
	}
	res := &E8Result{}
	if n := len(nmRes.Patterns); n > 0 {
		res.AvgLenNM = float64(nmSum) / float64(n)
	}
	if n := len(mRes.Patterns); n > 0 {
		res.AvgLenMatch = float64(mSum) / float64(n)
	}
	res.Table = Table{
		Title:   fmt.Sprintf("E8 (§6.1, posture data): average pattern length, top-%d, length ≥ %d", o.K, o.MinLen),
		Columns: []string{"measure", "avg length", "patterns"},
		Rows: [][]string{
			{"NM (TrajPattern)", fmt.Sprintf("%.2f", res.AvgLenNM), fmt.Sprintf("%d", len(nmRes.Patterns))},
			{"match ([14])", fmt.Sprintf("%.2f", res.AvgLenMatch), fmt.Sprintf("%d", len(mRes.Patterns))},
		},
	}
	return res, nil
}
