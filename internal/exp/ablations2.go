package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
)

// RunA4 is the MaxLowQ sensitivity ablation: the documented deviation from
// the paper caps the low 1-extension patterns retained in Q. The table
// sweeps the cap and reports runtime, peak |Q| and answer quality (the sum
// of the top-k NM values, higher = better), showing how small a cap
// preserves the result.
func RunA4(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)

	type variant struct {
		name string
		cap  int
	}
	variants := []variant{
		{"K", o.K},
		{"2K", 2 * o.K},
		{"4K", 4 * o.K},
		{"unlimited (paper)", 0},
	}
	table := &Table{
		Title:   "A4: MaxLowQ cap sensitivity",
		Columns: []string{"cap", "time (s)", "max |Q|", "candidates", "Σ top-k NM"},
	}
	for _, v := range variants {
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return nil, err
		}
		elapsed := stopwatch()
		res, err := core.Mine(ctx, s, core.MinerConfig{K: o.K, MaxLen: o.MaxLen, MaxLowQ: v.cap})
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, sp := range res.Patterns {
			sum += sp.NM
		}
		table.Rows = append(table.Rows, []string{
			v.name,
			fmt.Sprintf("%.3f", elapsed()),
			fmt.Sprintf("%d", res.Stats.MaxQ),
			fmt.Sprintf("%d", res.Stats.Candidates),
			fmt.Sprintf("%.2f", sum),
		})
	}
	return table, nil
}

// RunA5 measures the Section 5 wildcard refinement: how many of the top-k
// patterns improve when up to d wild cards may be inserted, and by how
// much on average.
func RunA5(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)

	table := &Table{
		Title:   "A5: §5 wildcard refinement of the top-k",
		Columns: []string{"budget d", "patterns improved", "mean NM gain"},
	}
	for _, d := range []int{1, 2, 3} {
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return nil, err
		}
		wild, plain, err := core.MineWithWildcards(ctx, s, core.MinerConfig{
			K: o.K, MinLen: 2, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K,
		}, d)
		if err != nil {
			return nil, err
		}
		// Compare each refined pattern against its plain origin (same
		// index before re-ranking is lost, so compare multisets: count
		// refined entries that contain at least one wildcard, and the
		// total NM gain of the refined set over the plain set).
		improved := 0
		for _, w := range wild {
			if w.Pattern.SpecifiedLen() != len(w.Pattern) {
				improved++
			}
		}
		var gain float64
		for i := range wild {
			gain += wild[i].NM - plain.Patterns[i].NM
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d / %d", improved, len(wild)),
			fmt.Sprintf("%.3f", gain/float64(len(wild))),
		})
	}
	return table, nil
}
