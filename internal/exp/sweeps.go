package exp

import (
	"context"
	"trajpattern/internal/baseline"
	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// SweepOptions parameterizes the Figure 4 scalability experiments on the
// ZebraNet-style synthetic data.
type SweepOptions struct {
	Scale float64 // shrinks the base workload (default 1)
	Seed  uint64

	// Metrics, when non-nil, accumulates miner/scorer instrumentation
	// across every TrajPattern run of the sweep (the PB baseline is not
	// instrumented). The bench harness uses the deterministic counters as
	// its regression-gate quantities.
	Metrics *obs.Registry

	// Tracer, when non-nil, records structured spans and events across the
	// sweep's TrajPattern runs (same scope as Metrics).
	Tracer *trace.Tracer

	// Progress, when non-nil, receives each TrajPattern run's per-iteration
	// state (a ProgressPrinter under -progress).
	Progress func(core.Progress)

	// Base workload (each sweep varies one dimension around these).
	K      int // default 10
	S      int // trajectories, default 80
	L      int // average trajectory length, default 60
	GridN  int // grid side; G = GridN², default 12
	MaxLen int // pattern length cap for both miners, default 6

	U, C float64 // uncertainty parameters (default 0.02, 2)
}

func (o SweepOptions) withDefaults() (SweepOptions, error) {
	scale, err := checkScale(o.Scale)
	if err != nil {
		return o, err
	}
	o.Scale = scale
	if o.K == 0 {
		o.K = 10
	}
	if o.S == 0 {
		o.S = scaleInt(80, scale, 10)
	}
	if o.L == 0 {
		o.L = scaleInt(60, scale, 10)
	}
	if o.GridN == 0 {
		o.GridN = 12
	}
	if o.MaxLen == 0 {
		o.MaxLen = 6
	}
	if o.U == 0 {
		o.U = 0.02
	}
	if o.C == 0 {
		o.C = 2
	}
	return o, nil
}

// dataset builds the ZebraNet-style dataset for the given S and L. The
// herd count is fixed so sweeping S scales only the data volume, not the
// structure of the workload (a point the paper's own S sweep depends on).
func (o SweepOptions) dataset(s, l int) (traj.Dataset, error) {
	return datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: s,
		AvgLen:    l,
		NumGroups: 5,
		Seed:      o.Seed,
	}, o.U, o.C)
}

// timeMiners runs TrajPattern and PB on the same dataset/grid and returns
// the wall-clock seconds of each. Fresh scorers are used per run so cached
// probabilities do not leak across algorithms.
func timeMiners(ctx context.Context, ds traj.Dataset, g *grid.Grid, k, maxLen int, o SweepOptions) (tpSec, pbSec float64, err error) {
	mk := func(reg *obs.Registry, tr *trace.Tracer) (*core.Scorer, error) {
		return core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth(), Metrics: reg, Tracer: tr})
	}
	sTP, err := mk(o.Metrics, o.Tracer)
	if err != nil {
		return 0, 0, err
	}
	elapsed := stopwatch()
	if _, err := core.Mine(ctx, sTP, core.MinerConfig{
		K: k, MaxLen: maxLen, MaxLowQ: 4 * k,
		Metrics: o.Metrics, Tracer: o.Tracer, OnProgress: o.Progress,
	}); err != nil {
		return 0, 0, err
	}
	tpSec = elapsed()

	sPB, err := mk(nil, nil)
	if err != nil {
		return 0, 0, err
	}
	elapsed = stopwatch()
	if _, err := baseline.MinePB(sPB, baseline.PBConfig{K: k, MaxLen: maxLen}); err != nil {
		return 0, 0, err
	}
	pbSec = elapsed()
	return tpSec, pbSec, nil
}

// runSweep executes one Figure 4 sweep: xs are the x-axis values, setup
// returns the dataset/grid/k for each x.
func runSweep(ctx context.Context, title, xLabel string, xs []float64, o SweepOptions,
	setup func(x float64) (traj.Dataset, *grid.Grid, int, int, error)) (*Series, error) {
	tp := Line{Name: "TrajPattern (s)"}
	pb := Line{Name: "PB (s)"}
	for _, x := range xs {
		ds, g, k, maxLen, err := setup(x)
		if err != nil {
			return nil, err
		}
		tpSec, pbSec, err := timeMiners(ctx, ds, g, k, maxLen, o)
		if err != nil {
			return nil, err
		}
		tp.YS = append(tp.YS, tpSec)
		pb.YS = append(pb.YS, pbSec)
	}
	return &Series{Title: title, XLabel: xLabel, XS: xs, Lines: []Line{tp, pb}}, nil
}

// RunE3 reproduces Figure 4(a): response time versus the number of
// patterns wanted, k. TrajPattern grows roughly quadratically in k while
// PB's extensible-prefix set grows much faster.
func RunE3(ctx context.Context, o SweepOptions) (*Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)
	ks := []float64{2, 5, 10, 20, 40}
	return runSweep(ctx, "E3 (Figure 4a): response time vs k", "k", ks, o,
		func(x float64) (traj.Dataset, *grid.Grid, int, int, error) {
			return ds, g, int(x), o.MaxLen, nil
		})
}

// RunE4 reproduces Figure 4(b): response time versus the number of
// trajectories S. TrajPattern is linear in S; PB is super-linear.
func RunE4(ctx context.Context, o SweepOptions) (*Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)
	// The largest point is bounded by PB's super-linear growth: S = 80
	// already costs PB two orders of magnitude more than TrajPattern on
	// one core, which is the whole content of Figure 4(b).
	ss := []float64{
		float64(scaleInt(20, o.Scale, 5)),
		float64(scaleInt(40, o.Scale, 10)),
		float64(scaleInt(60, o.Scale, 12)),
		float64(scaleInt(80, o.Scale, 15)),
	}
	// One dataset at the largest S, swept by prefix: nested inputs isolate
	// the volume effect from realization noise (zebras join herds
	// round-robin, so every prefix keeps the full herd structure).
	full, err := o.dataset(int(ss[len(ss)-1]), o.L)
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, "E4 (Figure 4b): response time vs number of trajectories S", "S", ss, o,
		func(x float64) (traj.Dataset, *grid.Grid, int, int, error) {
			return full[:int(x)], g, o.K, o.MaxLen, nil
		})
}

// RunE5 reproduces Figure 4(c): response time versus the average
// trajectory length L. Both miners scan the data linearly in L.
func RunE5(ctx context.Context, o SweepOptions) (*Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)
	ls := []float64{
		float64(scaleInt(25, o.Scale, 5)),
		float64(scaleInt(50, o.Scale, 10)),
		float64(scaleInt(75, o.Scale, 12)),
		float64(scaleInt(100, o.Scale, 15)),
	}
	return runSweep(ctx, "E5 (Figure 4c): response time vs average trajectory length L", "L", ls, o,
		func(x float64) (traj.Dataset, *grid.Grid, int, int, error) {
			ds, err := o.dataset(o.S, int(x))
			return ds, g, o.K, o.MaxLen, err
		})
}

// RunE6 reproduces Figure 4(d): response time versus the number of grids
// G. TrajPattern is linear in G; PB grows exponentially as every grid cell
// becomes a candidate at each unspecified position.
func RunE6(ctx context.Context, o SweepOptions) (*Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	// The x axis is G = n², so the sweep is driven by the grid side n and
	// labeled with the resulting cell counts.
	ns := []float64{6, 9, 12, 18}
	tp := Line{Name: "TrajPattern (s)"}
	pb := Line{Name: "PB (s)"}
	var xs []float64
	for _, n := range ns {
		g := grid.NewSquare(int(n))
		xs = append(xs, float64(g.NumCells()))
		tpSec, pbSec, err := timeMiners(ctx, ds, g, o.K, o.MaxLen, o)
		if err != nil {
			return nil, err
		}
		tp.YS = append(tp.YS, tpSec)
		pb.YS = append(pb.YS, pbSec)
	}
	return &Series{
		Title:  "E6 (Figure 4d): response time vs number of grids G",
		XLabel: "G",
		XS:     xs,
		Lines:  []Line{tp, pb},
	}, nil
}
