package exp

import (
	"context"
	"fmt"
	"math"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
)

// RunA6 validates the §4.4 complexity analysis empirically: the paper
// derives O(k²G) candidate evaluations per iteration. The table sweeps k
// (fixed G) and G (fixed k), reports the total candidate evaluations the
// miner performed, and fits the log-log slope between consecutive points —
// the empirical growth exponent. Measured: the k-exponent sits around 1.5–2
// (both factors of the candidate product scale with k, damped by dedup
// across iterations), while the G-exponent is well below the paper's 1 —
// because the miner seeds from observed cells only, the effective alphabet
// grows with the data's spatial support, not with the raw cell count; the
// paper's G-linear term assumes every grid cell is a seed.
func RunA6(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}

	table := &Table{
		Title:   "A6: empirical growth of candidate evaluations (paper: O(k²G) per iteration)",
		Columns: []string{"sweep", "value", "candidates", "log-log slope vs previous"},
	}

	run := func(k, gridN int) (int, error) {
		g := grid.NewSquare(gridN)
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return 0, err
		}
		res, err := core.Mine(ctx, s, core.MinerConfig{K: k, MaxLen: o.MaxLen, MaxLowQ: 4 * k})
		if err != nil {
			return 0, err
		}
		return res.Stats.Candidates, nil
	}

	addSweep := func(name string, xs []int, f func(x int) (int, error)) error {
		prevX, prevC := 0, 0
		for _, x := range xs {
			c, err := f(x)
			if err != nil {
				return err
			}
			slope := "-"
			if prevX > 0 && prevC > 0 && c > 0 {
				slope = fmt.Sprintf("%.2f",
					math.Log(float64(c)/float64(prevC))/math.Log(float64(x)/float64(prevX)))
			}
			table.Rows = append(table.Rows, []string{
				name, fmt.Sprintf("%d", x), fmt.Sprintf("%d", c), slope,
			})
			prevX, prevC = x, c
		}
		return nil
	}

	if err := addSweep("k (G fixed)", []int{5, 10, 20, 40}, func(k int) (int, error) {
		return run(k, o.GridN)
	}); err != nil {
		return nil, err
	}
	// The G sweep's x axis is the cell count G = n², so the fitted slope
	// is the exponent with respect to G itself.
	if err := addSweep("G (k fixed)", []int{36, 144, 576}, func(G int) (int, error) {
		n := int(math.Round(math.Sqrt(float64(G))))
		return run(o.K, n)
	}); err != nil {
		return nil, err
	}
	return table, nil
}
