package exp

import (
	"fmt"
	"math"

	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
	"trajpattern/internal/report"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// BusData is the end-to-end §6.1 pipeline product: true bus paths, the
// imprecise location trajectories the server reconstructs from the
// reporting protocol, the derived velocity trajectories, and the velocity
// grid used for mining.
type BusData struct {
	Traces     []datagen.BusTrace
	TruePaths  [][]geom.Point
	Locations  traj.Dataset      // imprecise location trajectories (server view)
	Velocities traj.Dataset      // velocity trajectories, the mining input
	Grid       *grid.Grid        // velocity-space grid
	U, C       float64           // reporting-scheme parameters
	BusCfg     datagen.BusConfig // generating fleet configuration
}

// TrueVelocitySigma estimates the standard deviation of a device-observed
// per-step velocity around the route's nominal velocity: speed jitter plus
// the GPS noise of two consecutive fixes. The pattern-confirmation check
// of the Figure 3 experiment uses this — not the (much larger) server-side
// σ — because the device confirms against its own observed velocities.
func (b *BusData) TrueVelocitySigma() float64 {
	return b.BusCfg.BaseSpeed*b.BusCfg.SpeedNoise + math.Sqrt2*b.BusCfg.GPSNoise
}

// BusOptions parameterizes the bus pipeline.
type BusOptions struct {
	Scale      float64 // dataset scale (1 = the paper's 500 traces)
	GridN      int     // velocity grid is GridN×GridN (default 24)
	U          float64 // tolerable uncertainty distance (default 0.01)
	C          float64 // confidence constant (default 2)
	LossProb   float64 // report loss probability (default 0.05)
	BaseSpeed  float64 // fleet speed override (0 = generator default)
	SpeedNoise float64 // relative speed jitter override (0 = default)
	GPSNoise   float64 // GPS jitter override (0 = default)
	Stops      int     // fixed stops per route (0 = default, negative disables)
	Seed       uint64
}

func (o BusOptions) withDefaults() (BusOptions, error) {
	scale, err := checkScale(o.Scale)
	if err != nil {
		return o, err
	}
	o.Scale = scale
	if o.GridN == 0 {
		o.GridN = 24
	}
	if o.U == 0 {
		o.U = 0.01
	}
	if o.C == 0 {
		o.C = 2
	}
	if o.LossProb == 0 {
		o.LossProb = 0.05
	}
	return o, nil
}

// MakeBusData runs the full §6.1 data pipeline: simulate buses, run the
// reporting protocol, synchronize onto 100 snapshots, convert to velocity
// trajectories and fit the mining grid to velocity space.
func MakeBusData(o BusOptions) (*BusData, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	busCfg := datagen.BusConfig{
		Routes:        5,
		BusesPerRoute: scaleInt(10, o.Scale, 2),
		Days:          scaleInt(10, o.Scale, 2),
		Minutes:       101,
		BaseSpeed:     o.BaseSpeed,
		SpeedNoise:    o.SpeedNoise,
		GPSNoise:      o.GPSNoise,
		Stops:         o.Stops,
		Seed:          o.Seed,
	}.WithDefaults()
	traces, err := datagen.Buses(busCfg)
	if err != nil {
		return nil, err
	}
	paths := make([][]geom.Point, len(traces))
	for i, tr := range traces {
		paths[i] = tr.Path
	}
	times := make([]float64, busCfg.Minutes)
	for i := range times {
		times[i] = float64(i)
	}
	locations, _, err := report.BuildDataset(times, paths,
		report.Config{U: o.U, C: o.C, LossProb: o.LossProb},
		0, 1, busCfg.Minutes, stat.NewRNG(o.Seed^0xB05))
	if err != nil {
		return nil, err
	}
	velocities := locations.ToVelocity()
	if len(velocities) == 0 {
		return nil, fmt.Errorf("exp: empty velocity dataset")
	}
	// Velocity grid: square bounds covering all velocity means with a
	// small margin so boundary cells are not clipped.
	b := velocities.Bounds().Expand(3 * velocities.MeanSigma())
	side := b.Width()
	if b.Height() > side {
		side = b.Height()
	}
	c := b.Center()
	square := geom.NewRect(
		geom.Pt(c.X-side/2, c.Y-side/2),
		geom.Pt(c.X+side/2, c.Y+side/2),
	)
	return &BusData{
		Traces:     traces,
		TruePaths:  paths,
		Locations:  locations,
		Velocities: velocities,
		Grid:       grid.New(square, o.GridN, o.GridN),
		U:          o.U,
		C:          o.C,
		BusCfg:     busCfg,
	}, nil
}

// Scorer builds a core.Scorer over the velocity dataset with δ equal to
// the velocity grid cell size, the paper's default relationship.
func (b *BusData) Scorer() (*core.Scorer, error) {
	return core.NewScorer(b.Velocities, core.Config{
		Grid:  b.Grid,
		Delta: b.Grid.CellWidth(),
	})
}
