package exp

import "testing"

func TestStopwatch(t *testing.T) {
	elapsed := stopwatch()
	a := elapsed()
	b := elapsed()
	if a < 0 || b < a {
		t.Errorf("stopwatch not monotone: first %v, second %v", a, b)
	}
}
