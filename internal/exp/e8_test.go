package exp

import (
	"context"
	"testing"
)

func TestRunE8Shape(t *testing.T) {
	res, err := RunE8(context.Background(), E8Options{Subjects: 12, Length: 40, K: 20, MinLen: 3, MaxLen: 6, GridN: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLenNM < 3 || res.AvgLenMatch < 3 {
		t.Errorf("averages below floor: %v / %v", res.AvgLenNM, res.AvgLenMatch)
	}
	// Unlike the bus data, the posture workload is near-periodic with
	// homogeneous per-position probabilities, where NM's top-k pins at the
	// length floor (a longer pattern only outranks its own sub-patterns
	// when its endpoints are stronger than its middle). E8 therefore only
	// reports the numbers; no ordering is asserted. See EXPERIMENTS.md.
	if len(res.Table.Rows) != 2 {
		t.Errorf("table rows = %d", len(res.Table.Rows))
	}
}

func TestRunA4A5Shape(t *testing.T) {
	if tb, err := RunA4(context.Background(), tinySweep()); err != nil || len(tb.Rows) != 4 {
		t.Fatalf("A4: %v %+v", err, tb)
	}
	if tb, err := RunA5(context.Background(), tinySweep()); err != nil || len(tb.Rows) != 3 {
		t.Fatalf("A5: %v %+v", err, tb)
	}
}

func TestRunA6Shape(t *testing.T) {
	tb, err := RunA6(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][3] != "-" {
		t.Error("first sweep point should have no slope")
	}
}
