package exp

import (
	"context"
	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/grid"
)

// E7Options parameterizes the Figure 4(e) sensitivity experiment.
type E7Options struct {
	Sweep SweepOptions
	// Deltas are the indifferent thresholds to test, as multiples of the
	// grid cell size. Nil means {0.5, 1, 1.5, 2, 3}.
	Deltas []float64
}

// RunE7 reproduces Figure 4(e): the number of discovered pattern groups as
// the indifferent threshold δ grows. A larger δ makes more grids
// indifferent from the expected location, so more of the (fixed) k mined
// patterns are similar to each other and the group count drops.
func RunE7(ctx context.Context, o E7Options) (*Series, error) {
	// E7 needs γ = 3σ̄ to span at least one grid cell — otherwise no two
	// patterns are ever similar and the group count is flat at k — so its
	// defaults use a larger uncertainty and a finer grid than the timing
	// sweeps.
	if o.Sweep.K == 0 {
		o.Sweep.K = 20
	}
	if o.Sweep.S == 0 {
		o.Sweep.S = 40
	}
	if o.Sweep.GridN == 0 {
		o.Sweep.GridN = 16
	}
	if o.Sweep.U == 0 {
		o.Sweep.U = 0.06
	}
	sw, err := o.Sweep.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Deltas == nil {
		o.Deltas = []float64{0.25, 0.5, 1, 2, 4}
	}
	// E7 builds its own dataset (moderate herds, short trajectories): the
	// group-count signal needs more spatial hotspots than k/2 and enough
	// per-hotspot pattern variants for δ to merge — the timing sweeps'
	// defaults concentrate everything on a couple of herds and flatten
	// the curve.
	ds, err := datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: 40,
		AvgLen:    30,
		NumGroups: 4,
		Seed:      sw.Seed,
	}, sw.U, sw.C)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(sw.GridN)
	gamma := core.DefaultGamma(ds.MeanSigma())

	line := Line{Name: "pattern groups"}
	var xs []float64
	for _, mult := range o.Deltas {
		delta := mult * g.CellWidth()
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: delta, Metrics: sw.Metrics, Tracer: sw.Tracer})
		if err != nil {
			return nil, err
		}
		res, err := core.Mine(ctx, s, core.MinerConfig{
			K: sw.K, MaxLen: sw.MaxLen, MaxLowQ: 4 * sw.K,
			Metrics: sw.Metrics, Tracer: sw.Tracer, OnProgress: sw.Progress,
		})
		if err != nil {
			return nil, err
		}
		patterns := make([]core.Pattern, len(res.Patterns))
		for i, sp := range res.Patterns {
			patterns[i] = sp.Pattern
		}
		groups, err := core.DiscoverGroupsTraced(patterns, g, gamma, sw.Tracer)
		if err != nil {
			return nil, err
		}
		xs = append(xs, delta)
		line.YS = append(line.YS, float64(len(groups)))
	}
	return &Series{
		Title:  "E7 (Figure 4e): pattern groups vs indifferent threshold δ",
		XLabel: "δ",
		XS:     xs,
		Lines:  []Line{line},
	}, nil
}
