// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) plus the ablations listed
// in DESIGN.md, printing the same rows/series the paper reports.
//
// Experiment index:
//
//	E1 (§6.1 text)    — average length of top-k NM vs match patterns
//	E2 (Figure 3)     — mis-prediction reduction for LM/LKF/RMF
//	E3 (Figure 4(a))  — runtime vs k, TrajPattern vs PB
//	E4 (Figure 4(b))  — runtime vs number of trajectories S
//	E5 (Figure 4(c))  — runtime vs average trajectory length L
//	E6 (Figure 4(d))  — runtime vs number of grids G
//	E7 (Figure 4(e))  — number of pattern groups vs δ
//	A1                — 1-extension pruning ablation
//	A2                — box vs disk probability ablation
//
// Every experiment accepts a Scale in (0, 1] that shrinks the workload
// proportionally, so the full suite runs in CI while the default scale
// reproduces paper-comparable sizes.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned GitHub-flavored markdown.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a figure: one x-axis, one or more named lines.
type Series struct {
	Title  string
	XLabel string
	XS     []float64
	Lines  []Line
}

// Line is one curve of a Series.
type Line struct {
	Name string
	YS   []float64
}

// Table renders the series as a table with one row per x value.
func (s Series) Table() Table {
	cols := []string{s.XLabel}
	for _, l := range s.Lines {
		cols = append(cols, l.Name)
	}
	t := Table{Title: s.Title, Columns: cols}
	for i, x := range s.XS {
		row := []string{trimFloat(x)}
		for _, l := range s.Lines {
			if i < len(l.YS) {
				row = append(row, trimFloat(l.YS[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// String renders the series via its table form.
func (s Series) String() string { return s.Table().String() }

func trimFloat(v float64) string {
	out := fmt.Sprintf("%.4g", v)
	return out
}

// scaleInt shrinks n by scale, keeping at least min.
func scaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

// checkScale validates a Scale field.
func checkScale(scale float64) (float64, error) {
	if scale == 0 {
		return 1, nil
	}
	if scale < 0 || scale > 1 {
		return 0, fmt.Errorf("exp: Scale must be in (0,1], got %v", scale)
	}
	return scale, nil
}
