package exp

import (
	"context"
	"fmt"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
)

// RunA1 is the 1-extension pruning ablation: the same mining problem with
// and without the Prune step of §4.1. Results are identical (the lemma
// guarantees no top-k pattern is lost); the peak size of Q and the
// candidate count differ.
func RunA1(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)

	run := func(disable bool) (core.MinerStats, float64, []core.ScoredPattern, error) {
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return core.MinerStats{}, 0, nil, err
		}
		elapsed := stopwatch()
		res, err := core.Mine(ctx, s, core.MinerConfig{K: o.K, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K, DisablePrune: disable})
		if err != nil {
			return core.MinerStats{}, 0, nil, err
		}
		return res.Stats, elapsed(), res.Patterns, nil
	}
	withStats, withSec, withPats, err := run(false)
	if err != nil {
		return nil, err
	}
	noStats, noSec, noPats, err := run(true)
	if err != nil {
		return nil, err
	}
	identical := len(withPats) == len(noPats)
	for i := 0; identical && i < len(withPats); i++ {
		identical = withPats[i].Pattern.Equal(noPats[i].Pattern)
	}
	row := func(name string, st core.MinerStats, sec float64) []string {
		return []string{
			name,
			fmt.Sprintf("%.3f", sec),
			fmt.Sprintf("%d", st.MaxQ),
			fmt.Sprintf("%d", st.Candidates),
			fmt.Sprintf("%d", st.Pruned),
			fmt.Sprintf("%v", identical),
		}
	}
	return &Table{
		Title:   "A1: 1-extension pruning ablation",
		Columns: []string{"variant", "time (s)", "max |Q|", "candidates", "pruned", "same top-k"},
		Rows: [][]string{
			row("with pruning", withStats, withSec),
			row("without pruning", noStats, noSec),
		},
	}, nil
}

// RunA2 is the probability-mode ablation: NM evaluation cost and values
// under the box (default) versus disk interpretation of Prob(l,σ,p,δ).
func RunA2(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)

	run := func(mode core.ProbMode) (float64, float64, error) {
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth(), Mode: mode})
		if err != nil {
			return 0, 0, err
		}
		elapsed := stopwatch()
		res, err := core.Mine(ctx, s, core.MinerConfig{K: o.K, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K})
		if err != nil {
			return 0, 0, err
		}
		var best float64
		if len(res.Patterns) > 0 {
			best = res.Patterns[0].NM
		}
		return elapsed(), best, nil
	}
	boxSec, boxBest, err := run(core.ProbBox)
	if err != nil {
		return nil, err
	}
	diskSec, diskBest, err := run(core.ProbDisk)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "A2: Prob(l,σ,p,δ) box vs disk ablation",
		Columns: []string{"mode", "time (s)", "best NM"},
		Rows: [][]string{
			{"box", fmt.Sprintf("%.3f", boxSec), fmt.Sprintf("%.4f", boxBest)},
			{"disk", fmt.Sprintf("%.3f", diskSec), fmt.Sprintf("%.4f", diskBest)},
		},
	}, nil
}

// RunA3 is the log-prob cache ablation: identical results, different cost.
func RunA3(ctx context.Context, o SweepOptions) (*Table, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ds, err := o.dataset(o.S, o.L)
	if err != nil {
		return nil, err
	}
	g := grid.NewSquare(o.GridN)

	run := func(disable bool) (float64, error) {
		s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth(), DisableCache: disable})
		if err != nil {
			return 0, err
		}
		elapsed := stopwatch()
		if _, err := core.Mine(ctx, s, core.MinerConfig{K: o.K, MaxLen: o.MaxLen, MaxLowQ: 4 * o.K}); err != nil {
			return 0, err
		}
		return elapsed(), nil
	}
	cachedSec, err := run(false)
	if err != nil {
		return nil, err
	}
	uncachedSec, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:   "A3: per-cell log-prob cache ablation",
		Columns: []string{"variant", "time (s)"},
		Rows: [][]string{
			{"cached", fmt.Sprintf("%.3f", cachedSec)},
			{"uncached", fmt.Sprintf("%.3f", uncachedSec)},
		},
	}, nil
}
