// Package classify builds trajectory classifiers from mined patterns —
// the application the paper's introduction promises ("constructing a
// classifier based on the discovered patterns"). Training mines a top-k
// pattern set per class with the TrajPattern algorithm; classification
// scores a trajectory against every class's pattern set with the NM
// measure and picks the best-supported class.
package classify

import (
	"context"
	"fmt"
	"sort"

	"trajpattern/internal/core"
	"trajpattern/internal/traj"
)

// Config parameterizes training.
type Config struct {
	// Scorer is the scoring configuration (grid, δ, probability mode)
	// shared by all classes. Required fields as in core.NewScorer.
	Scorer core.Config
	// K is the number of patterns mined per class. Default 20.
	K int
	// MinLen/MaxLen bound mined pattern lengths. Defaults 2 and 6:
	// singular patterns say little about motion, so classification skips
	// them by default.
	MinLen, MaxLen int
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 20
	}
	if c.MinLen == 0 {
		c.MinLen = 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = 6
	}
	return c
}

// Classifier holds per-class pattern sets.
type Classifier struct {
	cfg     Config
	classes []string
	model   map[string][]core.ScoredPattern
}

// Train mines a pattern set for every class dataset. Class names are
// sorted so results are deterministic. Every class needs a non-empty
// dataset.
func Train(ctx context.Context, classes map[string]traj.Dataset, cfg Config) (*Classifier, error) {
	if len(classes) < 2 {
		return nil, fmt.Errorf("classify: need at least two classes, got %d", len(classes))
	}
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)

	model := make(map[string][]core.ScoredPattern, len(classes))
	for _, name := range names {
		ds := classes[name]
		if len(ds) == 0 {
			return nil, fmt.Errorf("classify: class %q has no trajectories", name)
		}
		s, err := core.NewScorer(ds, cfg.Scorer)
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", name, err)
		}
		res, err := core.Mine(ctx, s, core.MinerConfig{
			K:       cfg.K,
			MinLen:  cfg.MinLen,
			MaxLen:  cfg.MaxLen,
			MaxLowQ: 4 * cfg.K,
		})
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", name, err)
		}
		if len(res.Patterns) == 0 {
			return nil, fmt.Errorf("classify: class %q yielded no patterns", name)
		}
		model[name] = res.Patterns
	}
	return &Classifier{cfg: cfg, classes: names, model: model}, nil
}

// Classes returns the class names in deterministic order.
func (c *Classifier) Classes() []string { return append([]string(nil), c.classes...) }

// Patterns returns the mined pattern set of a class (nil if unknown).
func (c *Classifier) Patterns(class string) []core.ScoredPattern { return c.model[class] }

// Score computes the per-class support of one trajectory: the mean NM of
// the class's patterns against the trajectory (closer to zero = better
// match). It returns the scores keyed by class.
func (c *Classifier) Score(tr traj.Trajectory) (map[string]float64, error) {
	if len(tr) == 0 {
		return nil, fmt.Errorf("classify: empty trajectory")
	}
	s, err := core.NewScorer(traj.Dataset{tr}, c.cfg.Scorer)
	if err != nil {
		return nil, err
	}
	scores := make(map[string]float64, len(c.classes))
	for _, name := range c.classes {
		var sum float64
		for _, sp := range c.model[name] {
			sum += s.NMTrajectory(sp.Pattern, 0)
		}
		scores[name] = sum / float64(len(c.model[name]))
	}
	return scores, nil
}

// Classify returns the class whose pattern set best matches the
// trajectory, along with the per-class scores. Ties break toward the
// lexicographically first class.
func (c *Classifier) Classify(tr traj.Trajectory) (string, map[string]float64, error) {
	scores, err := c.Score(tr)
	if err != nil {
		return "", nil, err
	}
	best := c.classes[0]
	for _, name := range c.classes[1:] {
		if scores[name] > scores[best] {
			best = name
		}
	}
	return best, scores, nil
}

// Evaluate classifies every trajectory of every labeled test dataset and
// returns the overall accuracy plus the per-class confusion counts
// (confusion[truth][predicted]).
func (c *Classifier) Evaluate(test map[string]traj.Dataset) (float64, map[string]map[string]int, error) {
	confusion := make(map[string]map[string]int)
	total, correct := 0, 0
	names := make([]string, 0, len(test))
	for name := range test {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, truth := range names {
		confusion[truth] = make(map[string]int)
		for _, tr := range test[truth] {
			pred, _, err := c.Classify(tr)
			if err != nil {
				return 0, nil, fmt.Errorf("classify: class %q: %w", truth, err)
			}
			confusion[truth][pred]++
			total++
			if pred == truth {
				correct++
			}
		}
	}
	if total == 0 {
		return 0, nil, fmt.Errorf("classify: empty test set")
	}
	return float64(correct) / float64(total), confusion, nil
}
