package classify

import (
	"context"
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// classData builds trajectories walking the given cell loop with noise.
func classData(seed uint64, g *grid.Grid, loop []int, n, reps int) traj.Dataset {
	rng := stat.NewRNG(seed)
	ds := make(traj.Dataset, n)
	for i := range ds {
		var tr traj.Trajectory
		for r := 0; r < reps; r++ {
			for _, cell := range loop {
				c := g.CenterAt(cell)
				tr = append(tr, traj.P(c.X+rng.Normal(0, 0.01), c.Y+rng.Normal(0, 0.01), 0.03))
			}
		}
		ds[i] = tr
	}
	return ds
}

func twoClassFixture(t *testing.T) (*grid.Grid, map[string]traj.Dataset, map[string]traj.Dataset) {
	t.Helper()
	g := grid.NewSquare(5)
	// Class A walks the bottom row, class B the left column.
	train := map[string]traj.Dataset{
		"rowers":   classData(1, g, []int{0, 1, 2, 3}, 6, 3),
		"climbers": classData(2, g, []int{0, 5, 10, 15}, 6, 3),
	}
	test := map[string]traj.Dataset{
		"rowers":   classData(3, g, []int{0, 1, 2, 3}, 4, 3),
		"climbers": classData(4, g, []int{0, 5, 10, 15}, 4, 3),
	}
	return g, train, test
}

func cfg(g *grid.Grid) Config {
	return Config{
		Scorer: core.Config{Grid: g, Delta: g.CellWidth()},
		K:      6, MinLen: 2, MaxLen: 4,
	}
}

func TestTrainValidation(t *testing.T) {
	g, train, _ := twoClassFixture(t)
	if _, err := Train(context.Background(), map[string]traj.Dataset{"only": train["rowers"]}, cfg(g)); err == nil {
		t.Error("single class accepted")
	}
	bad := map[string]traj.Dataset{"a": train["rowers"], "b": nil}
	if _, err := Train(context.Background(), bad, cfg(g)); err == nil {
		t.Error("empty class accepted")
	}
}

func TestClassifySeparatesClasses(t *testing.T) {
	g, train, test := twoClassFixture(t)
	c, err := Train(context.Background(), train, cfg(g))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classes(); len(got) != 2 || got[0] != "climbers" {
		t.Errorf("Classes = %v", got)
	}
	acc, confusion, err := c.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("accuracy = %.2f, confusion %v", acc, confusion)
	}
	// Confusion diagonal dominates.
	for truth, row := range confusion {
		if row[truth] == 0 {
			t.Errorf("class %s never correctly classified: %v", truth, row)
		}
	}
}

func TestClassifyScores(t *testing.T) {
	g, train, test := twoClassFixture(t)
	c, err := Train(context.Background(), train, cfg(g))
	if err != nil {
		t.Fatal(err)
	}
	tr := test["rowers"][0]
	pred, scores, err := c.Classify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pred != "rowers" {
		t.Errorf("pred = %s (scores %v)", pred, scores)
	}
	if scores["rowers"] <= scores["climbers"] {
		t.Errorf("score ordering wrong: %v", scores)
	}
	if _, _, err := c.Classify(nil); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestPatternsAccessor(t *testing.T) {
	g, train, _ := twoClassFixture(t)
	c, err := Train(context.Background(), train, cfg(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns("rowers")) == 0 {
		t.Error("no patterns for known class")
	}
	if c.Patterns("unknown") != nil {
		t.Error("patterns for unknown class")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	g, train, _ := twoClassFixture(t)
	c, err := Train(context.Background(), train, cfg(g))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Evaluate(map[string]traj.Dataset{}); err == nil {
		t.Error("empty test set accepted")
	}
}
