// Package retry is the repo's one implementation of capped exponential
// backoff with deterministic jitter. It was extracted from serve.Client
// (which retries 429/503/transport failures against trajserve) so the
// shard supervisor can relaunch crashed worker processes on exactly the
// same schedule, and so tests of either caller exercise one shared,
// well-tested policy instead of two drifting copies.
//
// The schedule is Base·2^(attempt-1) capped at Max, scaled by a jitter
// factor drawn uniformly from [0.5, 1.5) out of an owned stat.RNG —
// deterministic under a fixed seed, which is what the chaos suites pin.
// Wait additionally honours an external floor (an HTTP Retry-After hint,
// say) when it exceeds the computed backoff.
package retry

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"trajpattern/internal/stat"
)

// Defaults for Policy fields left zero. They are serve.Client's historic
// values; the extraction kept them bit-for-bit.
const (
	DefaultMaxAttempts = 4
	DefaultBase        = 50 * time.Millisecond
	DefaultMax         = 2 * time.Second
)

// Policy shapes one retry schedule. The zero value is usable and retries
// with the package defaults, full backoff, and no jitter.
type Policy struct {
	// MaxAttempts bounds total tries (first + retries). Zero or negative
	// means DefaultMaxAttempts.
	MaxAttempts int
	// Base and Max shape the exponential backoff (Base·2^(attempt-1),
	// capped at Max). Zero or negative means the defaults.
	Base time.Duration
	Max  time.Duration
	// RNG supplies the jitter draw (uniform in [0.5, 1.5) of the
	// backoff). Nil means full backoff with no jitter — deterministic,
	// which tests want anyway.
	RNG *stat.RNG
	// Sleep waits between attempts, returning early with ctx's error if
	// it ends first. Nil means a timer-based wait. Tests inject a fake
	// to run the retry schedule without real time.
	Sleep func(ctx context.Context, d time.Duration) error

	mu sync.Mutex // guards RNG draws
}

// Attempts returns the effective attempt budget.
func (p *Policy) Attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// Delay returns the jittered backoff before the given retry attempt
// (1-based: Delay(1) precedes the first retry). The un-jittered value is
// Base·2^(attempt-1) capped at Max; shift overflow also caps.
func (p *Policy) Delay(attempt int) time.Duration {
	base, maxB := DefaultBase, DefaultMax
	if p != nil {
		if p.Base > 0 {
			base = p.Base
		}
		if p.Max > 0 {
			maxB = p.Max
		}
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base << (attempt - 1)
	if d > maxB || d <= 0 {
		d = maxB
	}
	return p.jitter(d)
}

// jitter scales d by a uniform factor in [0.5, 1.5) drawn from the
// deterministic RNG; without an RNG, d is returned unchanged. Draws are
// serialized so concurrent retry loops sharing a Policy stay race-free.
func (p *Policy) jitter(d time.Duration) time.Duration {
	if p == nil {
		return d
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.RNG == nil {
		return d
	}
	return time.Duration(float64(d) * p.RNG.Uniform(0.5, 1.5))
}

// Wait sleeps the backoff before retry attempt (1-based), raised to
// floor when the caller holds an external hint (a server's Retry-After,
// say) longer than the computed delay. It returns early with an error
// when ctx ends first.
func (p *Policy) Wait(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.Delay(attempt)
	if floor > d {
		d = floor
	}
	if p != nil && p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("retry: backoff wait: %w", context.Cause(ctx))
	}
}

// ParseRetryAfter reads an HTTP Retry-After header value in either RFC
// 9110 form: delay-seconds ("120") or HTTP-date ("Fri, 31 Dec 1999
// 23:59:59 GMT", plus the obsolete RFC 850 and asctime formats that
// http.ParseTime accepts). now anchors the date form — the hint is the
// remaining delay, clamped at zero for dates already past. Absent or
// unparsable values mean no hint.
func ParseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := t.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}
