package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"trajpattern/internal/stat"
)

func TestAttempts(t *testing.T) {
	if got := (*Policy)(nil).Attempts(); got != DefaultMaxAttempts {
		t.Errorf("nil policy Attempts = %d, want %d", got, DefaultMaxAttempts)
	}
	if got := (&Policy{}).Attempts(); got != DefaultMaxAttempts {
		t.Errorf("zero policy Attempts = %d, want %d", got, DefaultMaxAttempts)
	}
	if got := (&Policy{MaxAttempts: 7}).Attempts(); got != 7 {
		t.Errorf("Attempts = %d, want 7", got)
	}
}

func TestDelaySchedule(t *testing.T) {
	p := &Policy{Base: 50 * time.Millisecond, Max: 400 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1
		100 * time.Millisecond, // attempt 2
		200 * time.Millisecond, // attempt 3
		400 * time.Millisecond, // attempt 4
		400 * time.Millisecond, // attempt 5: capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Shift overflow caps too.
	if got := p.Delay(80); got != 400*time.Millisecond {
		t.Errorf("Delay(80) = %v, want cap", got)
	}
	// Zero policy falls back to package defaults.
	if got := (&Policy{}).Delay(1); got != DefaultBase {
		t.Errorf("zero policy Delay(1) = %v, want %v", got, DefaultBase)
	}
	if got := (*Policy)(nil).Delay(3); got != 4*DefaultBase {
		t.Errorf("nil policy Delay(3) = %v, want %v", got, 4*DefaultBase)
	}
}

func TestDelayJitterIsDeterministicAndBounded(t *testing.T) {
	base := time.Second
	a := &Policy{Base: base, Max: time.Minute, RNG: stat.NewRNG(42)}
	b := &Policy{Base: base, Max: time.Minute, RNG: stat.NewRNG(42)}
	for i := 1; i <= 16; i++ {
		da, db := a.Delay(1), b.Delay(1)
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < base/2 || da >= base+base/2 {
			t.Fatalf("draw %d: jittered delay %v outside [0.5s, 1.5s)", i, da)
		}
	}
}

func TestWaitHonoursFloorAndSleep(t *testing.T) {
	var slept []time.Duration
	p := &Policy{
		Base: 50 * time.Millisecond,
		Max:  2 * time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	// Floor below the backoff: backoff wins.
	if err := p.Wait(context.Background(), 2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Floor above the backoff: floor wins.
	if err := p.Wait(context.Background(), 1, time.Second); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != time.Second {
		t.Errorf("slept = %v, want [100ms 1s]", slept)
	}
}

func TestWaitReturnsSleepError(t *testing.T) {
	boom := errors.New("boom")
	p := &Policy{Sleep: func(context.Context, time.Duration) error { return boom }}
	if err := p.Wait(context.Background(), 1, 0); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want boom", err)
	}
}

func TestWaitCancelled(t *testing.T) {
	p := &Policy{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Wait(ctx, 1, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tests := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delay seconds", "120", 120 * time.Second},
		{"delay zero", "0", 0},
		{"delay negative", "-5", 0},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"rfc850 future", now.Add(30 * time.Second).Format(time.RFC850), 30 * time.Second},
		{"asctime future", now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second},
		{"garbage", "soon", 0},
		{"float seconds rejected", "1.5", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := ParseRetryAfter(tc.v, now); got != tc.want {
				t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}
