package predict

import (
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

func benchPath(n int) []geom.Point {
	rng := stat.NewRNG(7)
	path := make([]geom.Point, n)
	pos := geom.Pt(0.5, 0.5)
	for i := range path {
		pos = pos.Add(geom.Pt(rng.Normal(0.01, 0.005), rng.Normal(0, 0.005)))
		path[i] = pos
	}
	return path
}

func benchDrive(b *testing.B, p Predictor) {
	b.Helper()
	path := benchPath(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for j, pt := range path {
			if j >= 2 {
				p.Predict()
			}
			p.Observe(pt)
		}
	}
}

func BenchmarkLinear(b *testing.B)   { benchDrive(b, NewLinear()) }
func BenchmarkKalman(b *testing.B)   { benchDrive(b, NewKalman(1e-4, 1e-4)) }
func BenchmarkRMF(b *testing.B)      { benchDrive(b, NewRMF(0, 0)) }
func BenchmarkAdaptive(b *testing.B) { benchDrive(b, NewAdaptive(0.8)) }

func BenchmarkPatternPredictor(b *testing.B) {
	g := velocityGrid(10)
	rng := stat.NewRNG(9)
	patterns := make([]core.Pattern, 40)
	for i := range patterns {
		p := make(core.Pattern, 4)
		for j := range p {
			p[j] = rng.Intn(100)
		}
		patterns[i] = p
	}
	benchDrive(b, &PatternPredictor{
		Base:     NewLinear(),
		Patterns: patterns,
		Grid:     g,
		Delta:    0.05,
		Sigma:    0.02,
	})
}
