package predict

import (
	"testing"

	"trajpattern/internal/geom"
)

func TestAdaptiveDefaults(t *testing.T) {
	a := NewAdaptive(0)
	if a.decay != DefaultAdaptiveDecay {
		t.Errorf("decay = %v", a.decay)
	}
	if len(a.models) != 3 {
		t.Errorf("default models = %d", len(a.models))
	}
	if a.Name() != "Adaptive" {
		t.Errorf("Name = %q", a.Name())
	}
	a2 := NewAdaptive(2) // out of range
	if a2.decay != DefaultAdaptiveDecay {
		t.Errorf("out-of-range decay not defaulted: %v", a2.decay)
	}
}

func TestAdaptiveTracksLinearMotion(t *testing.T) {
	a := NewAdaptive(0.8)
	path := linearPath(30, geom.Pt(0.1, 0.05))
	ev, err := Evaluate(a, [][]geom.Point{path}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MisPredictions != 0 {
		t.Errorf("adaptive mis-predicted linear motion %d times", ev.MisPredictions)
	}
}

func TestAdaptiveSwitchesToRMFOnCurves(t *testing.T) {
	// Long circular motion: the adaptive selector must converge on RMF,
	// the only member that models curvature.
	a := NewAdaptive(0.8)
	path := circlePath(80, 1, 0.25)
	for i, pt := range path {
		if i >= 2 {
			a.Predict()
		}
		a.Observe(pt)
	}
	if got := a.BestModel(); got != "RMF" {
		t.Errorf("BestModel after circles = %q, want RMF", got)
	}
}

func TestAdaptiveNeverMuchWorseThanBestMember(t *testing.T) {
	// On a mixed path (line then circle), adaptive total error should be
	// within a modest factor of the best single model.
	var path []geom.Point
	path = append(path, linearPath(40, geom.Pt(0.05, 0))...)
	start := path[len(path)-1]
	for i, p := range circlePath(40, 0.5, 0.3) {
		_ = i
		path = append(path, start.Add(p).Sub(geom.Pt(0.5, 0)))
	}
	evalErr := func(p Predictor) float64 {
		ev, err := Evaluate(p, [][]geom.Point{path}, 1e9) // count errors, not mispreds
		if err != nil {
			panic(err)
		}
		return ev.MeanError
	}
	adaptive := evalErr(NewAdaptive(0.8))
	best := evalErr(NewLinear())
	if e := evalErr(NewKalman(1e-4, 1e-4)); e < best {
		best = e
	}
	if e := evalErr(NewRMF(0, 0)); e < best {
		best = e
	}
	if adaptive > 3*best {
		t.Errorf("adaptive mean error %v vs best member %v", adaptive, best)
	}
}

func TestAdaptiveReset(t *testing.T) {
	a := NewAdaptive(0.8)
	for _, pt := range linearPath(10, geom.Pt(1, 0)) {
		a.Predict()
		a.Observe(pt)
	}
	a.Reset()
	for i := range a.errs {
		if a.errs[i] != 0 {
			t.Error("errors not cleared on Reset")
		}
	}
	if a.hasPred {
		t.Error("pending flag not cleared")
	}
}

func TestAdaptiveCustomModels(t *testing.T) {
	a := NewAdaptive(0.5, NewLinear(), NewRMF(2, 6))
	if len(a.models) != 2 {
		t.Fatalf("models = %d", len(a.models))
	}
	path := linearPath(15, geom.Pt(0.02, 0.02))
	ev, err := Evaluate(a, [][]geom.Point{path}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MisPredictions != 0 {
		t.Errorf("mis-predictions = %d", ev.MisPredictions)
	}
}
