package predict

import (
	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

// RMF is the recursive motion function of Tao et al. [11]: the location at
// time t is modeled as a linear recurrence over the f previous locations,
// x_t = Σᵢ cᵢ·x_{t−i}, with the coefficients re-fitted by least squares
// over a sliding window of recent observations. Unlike LM it can capture
// curved and oscillating motion without assuming a motion type.
type RMF struct {
	order  int // recurrence depth f
	window int // observations used for the fit
	hist   []geom.Point
}

// Defaults for NewRMF; order 3 matches the retrospect factor the RMF paper
// recommends for unknown motion.
const (
	DefaultRMFOrder  = 3
	DefaultRMFWindow = 10
)

// NewRMF returns an RMF predictor with recurrence order f and fitting
// window w observations. Non-positive arguments select the defaults; w is
// raised to at least f+1 so the fit is never underdetermined.
func NewRMF(f, w int) *RMF {
	if f <= 0 {
		f = DefaultRMFOrder
	}
	if w <= 0 {
		w = DefaultRMFWindow
	}
	if w < f+1 {
		w = f + 1
	}
	return &RMF{order: f, window: w}
}

// Name implements Predictor.
func (r *RMF) Name() string { return "RMF" }

// Reset implements Predictor.
func (r *RMF) Reset() { r.hist = r.hist[:0] }

// Observe implements Predictor.
func (r *RMF) Observe(p geom.Point) {
	r.hist = append(r.hist, p)
	if keep := r.window + r.order; len(r.hist) > keep {
		r.hist = r.hist[len(r.hist)-keep:]
	}
}

// Predict implements Predictor. With insufficient history it degrades to
// the linear model; if the fit is singular it also falls back.
func (r *RMF) Predict() geom.Point {
	n := len(r.hist)
	if n == 0 {
		return geom.Point{}
	}
	if n < r.order+2 {
		return linearFallback(r.hist)
	}
	// Fit x_t = Σ cᵢ x_{t−i} over the available window, stacking the x
	// and y equations so one coefficient vector describes the motion.
	f := r.order
	rows := 0
	for t := f; t < n; t++ {
		rows += 2
	}
	a := stat.NewMatrix(rows, f)
	b := make([]float64, rows)
	ri := 0
	for t := f; t < n; t++ {
		for i := 1; i <= f; i++ {
			a.Set(ri, i-1, r.hist[t-i].X)
			a.Set(ri+1, i-1, r.hist[t-i].Y)
		}
		b[ri] = r.hist[t].X
		b[ri+1] = r.hist[t].Y
		ri += 2
	}
	c, err := stat.LeastSquares(a, b, 1e-9)
	if err != nil {
		return linearFallback(r.hist)
	}
	var out geom.Point
	for i := 1; i <= f; i++ {
		out = out.Add(r.hist[n-i].Scale(c[i-1]))
	}
	if !out.IsFinite() {
		return linearFallback(r.hist)
	}
	return out
}

// linearFallback predicts with the LM rule from a raw history.
func linearFallback(hist []geom.Point) geom.Point {
	n := len(hist)
	if n == 0 {
		return geom.Point{}
	}
	if n == 1 {
		return hist[0]
	}
	return hist[n-1].Add(hist[n-1].Sub(hist[n-2]))
}
