package predict

import (
	"math"
	"testing"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

func linearPath(n int, v geom.Point) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = v.Scale(float64(i))
	}
	return out
}

func circlePath(n int, r, step float64) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		th := float64(i) * step
		out[i] = geom.Pt(r*math.Cos(th), r*math.Sin(th))
	}
	return out
}

func TestLinearExactOnLinearMotion(t *testing.T) {
	p := NewLinear()
	path := linearPath(10, geom.Pt(0.1, -0.2))
	for i, pt := range path {
		if i >= 2 {
			if pred := p.Predict(); pred.Dist(pt) > 1e-12 {
				t.Fatalf("step %d: LM error %v on linear motion", i, pred.Dist(pt))
			}
		}
		p.Observe(pt)
	}
}

func TestLinearWarmup(t *testing.T) {
	p := NewLinear()
	p.Observe(geom.Pt(1, 1))
	if got := p.Predict(); got != geom.Pt(1, 1) {
		t.Errorf("single-observation prediction = %v, want held position", got)
	}
	p.Reset()
	if got := p.Predict(); got != (geom.Point{}) {
		t.Errorf("post-reset prediction = %v", got)
	}
}

func TestKalmanConvergesOnLinearMotion(t *testing.T) {
	k := NewKalman(1e-4, 1e-4)
	path := linearPath(50, geom.Pt(0.05, 0.02))
	var lastErr float64
	for i, pt := range path {
		if i >= 10 {
			lastErr = k.Predict().Dist(pt)
		}
		k.Observe(pt)
	}
	if lastErr > 1e-3 {
		t.Errorf("LKF error after convergence = %v", lastErr)
	}
}

func TestKalmanHandlesNoise(t *testing.T) {
	// Noisy linear motion: the filter should track with error comparable
	// to the noise level, beating raw LM on average.
	rng := stat.NewRNG(1)
	truth := linearPath(200, geom.Pt(0.03, 0.01))
	noisy := make([]geom.Point, len(truth))
	for i, pt := range truth {
		noisy[i] = pt.Add(geom.Pt(rng.Normal(0, 0.01), rng.Normal(0, 0.01)))
	}
	k := NewKalman(1e-5, 1e-4)
	lm := NewLinear()
	var kErr, lmErr float64
	for i, pt := range noisy {
		if i >= 10 {
			kErr += k.Predict().Dist(pt)
			lmErr += lm.Predict().Dist(pt)
		}
		k.Observe(pt)
		lm.Observe(pt)
	}
	if kErr >= lmErr {
		t.Errorf("LKF total error %v should beat LM %v on noisy linear motion", kErr, lmErr)
	}
}

func TestRMFOnCircularMotion(t *testing.T) {
	// A second-order linear recurrence reproduces sinusoids exactly, so
	// RMF must beat LM on circular motion once fitted.
	path := circlePath(60, 1, 0.2)
	rmf := NewRMF(3, 10)
	lm := NewLinear()
	var rmfErr, lmErr float64
	for i, pt := range path {
		if i >= 15 {
			rmfErr += rmf.Predict().Dist(pt)
			lmErr += lm.Predict().Dist(pt)
		}
		rmf.Observe(pt)
		lm.Observe(pt)
	}
	if rmfErr >= lmErr {
		t.Errorf("RMF error %v should beat LM %v on circular motion", rmfErr, lmErr)
	}
	if rmfErr > 1e-6 {
		t.Errorf("RMF should be near-exact on a sinusoid, got %v", rmfErr)
	}
}

func TestRMFFallbacks(t *testing.T) {
	r := NewRMF(0, 0) // defaults
	if r.order != DefaultRMFOrder || r.window != DefaultRMFWindow {
		t.Errorf("defaults not applied: %+v", r)
	}
	if got := r.Predict(); got != (geom.Point{}) {
		t.Errorf("empty-history prediction = %v", got)
	}
	r.Observe(geom.Pt(1, 2))
	if got := r.Predict(); got != geom.Pt(1, 2) {
		t.Errorf("single-observation prediction = %v", got)
	}
	r.Observe(geom.Pt(2, 3))
	if got := r.Predict(); got != geom.Pt(3, 4) {
		t.Errorf("two-observation (linear fallback) prediction = %v", got)
	}
	// Window raised to order+1.
	r2 := NewRMF(5, 2)
	if r2.window < 6 {
		t.Errorf("window not raised: %d", r2.window)
	}
}

func TestRMFDegenerateHistory(t *testing.T) {
	// Constant position makes the design matrix rank deficient; the ridge
	// term or the fallback must keep the prediction finite.
	r := NewRMF(3, 8)
	for i := 0; i < 15; i++ {
		r.Observe(geom.Pt(1, 1))
	}
	got := r.Predict()
	if !got.IsFinite() {
		t.Fatalf("non-finite prediction %v", got)
	}
	if got.Dist(geom.Pt(1, 1)) > 1e-6 {
		t.Errorf("stationary prediction = %v, want (1,1)", got)
	}
}

func TestEvaluate(t *testing.T) {
	paths := [][]geom.Point{linearPath(20, geom.Pt(0.1, 0))}
	ev, err := Evaluate(NewLinear(), paths, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Steps != 18 {
		t.Errorf("Steps = %d, want 18", ev.Steps)
	}
	if ev.MisPredictions != 0 {
		t.Errorf("LM mis-predicted perfect linear motion %d times", ev.MisPredictions)
	}
	if ev.MeanError > 1e-12 {
		t.Errorf("MeanError = %v", ev.MeanError)
	}
	if _, err := Evaluate(NewLinear(), paths, 0); err == nil {
		t.Error("u=0 accepted")
	}
}

func TestEvaluateCountsMisPredictions(t *testing.T) {
	// A path with an abrupt turn: LM mis-predicts at the turn.
	path := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0),
		geom.Pt(3, 1), geom.Pt(3, 2), // 90° turn
	}
	ev, err := Evaluate(NewLinear(), [][]geom.Point{path}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MisPredictions == 0 {
		t.Error("turn not detected as mis-prediction")
	}
	if ev.Rate != float64(ev.MisPredictions)/float64(ev.Steps) {
		t.Error("Rate inconsistent")
	}
}

func TestReduction(t *testing.T) {
	base := Evaluation{MisPredictions: 10}
	enh := Evaluation{MisPredictions: 7}
	if got := Reduction(base, enh); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Reduction = %v", got)
	}
	if got := Reduction(Evaluation{}, enh); got != 0 {
		t.Errorf("zero-base Reduction = %v", got)
	}
}

func TestPredictorsResetBetweenPaths(t *testing.T) {
	// Two very different paths: evaluation must reset state, so the
	// second path's early predictions must not leak the first path's
	// velocity.
	p1 := linearPath(10, geom.Pt(1, 0))
	p2 := linearPath(10, geom.Pt(0, 1))
	ev, err := Evaluate(NewLinear(), [][]geom.Point{p1, p2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MisPredictions != 0 {
		t.Errorf("reset leak: %d mis-predictions", ev.MisPredictions)
	}
}
