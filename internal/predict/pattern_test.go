package predict

import (
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
)

// velocityGrid returns a grid over velocity space [-1,1]² with n×n cells.
func velocityGrid(n int) *grid.Grid {
	return grid.New(geom.NewRect(geom.Pt(-1, -1), geom.Pt(1, 1)), n, n)
}

func TestPatternPredictorValidate(t *testing.T) {
	g := velocityGrid(8)
	good := PatternPredictor{Base: NewLinear(), Grid: g, Delta: 0.1, Sigma: 0.05}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []PatternPredictor{
		{Grid: g, Delta: 0.1, Sigma: 0.05},
		{Base: NewLinear(), Delta: 0.1, Sigma: 0.05},
		{Base: NewLinear(), Grid: g, Sigma: 0.05},
		{Base: NewLinear(), Grid: g, Delta: 0.1},
		{Base: NewLinear(), Grid: g, Delta: 0.1, Sigma: 0.05, ConfirmProb: 1.5},
	}
	for i, pp := range bad {
		if err := pp.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPatternPredictorUsesPattern(t *testing.T) {
	// The object repeatedly moves right, right, then up. LM always
	// extrapolates the last velocity, so it mis-predicts every turn. A
	// velocity pattern (right, right, up) predicts the turn.
	g := velocityGrid(10) // cell size 0.2, centers at ±0.1, ±0.3, ...
	right := g.IndexOf(geom.Pt(0.3, 0.1))
	up := g.IndexOf(geom.Pt(0.1, 0.3))
	if right == up {
		t.Fatal("test setup broken: velocities share a cell")
	}
	pat := core.Pattern{right, right, up}

	var path []geom.Point
	pos := geom.Pt(0, 0)
	rightV := g.CenterAt(right)
	upV := g.CenterAt(up)
	for r := 0; r < 6; r++ {
		for _, v := range []geom.Point{rightV, rightV, upV} {
			pos = pos.Add(v)
			path = append(path, pos)
		}
	}

	u := 0.1
	base, err := Evaluate(NewLinear(), [][]geom.Point{path}, u)
	if err != nil {
		t.Fatal(err)
	}
	pp := &PatternPredictor{
		Base:     NewLinear(),
		Patterns: []core.Pattern{pat},
		Grid:     g,
		Delta:    0.1,
		Sigma:    0.02,
	}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	enh, err := Evaluate(pp, [][]geom.Point{path}, u)
	if err != nil {
		t.Fatal(err)
	}
	if base.MisPredictions == 0 {
		t.Fatal("test setup broken: LM never mis-predicts")
	}
	if enh.MisPredictions >= base.MisPredictions {
		t.Errorf("pattern predictor did not help: base %d, enhanced %d",
			base.MisPredictions, enh.MisPredictions)
	}
	if red := Reduction(base, enh); red <= 0 {
		t.Errorf("Reduction = %v", red)
	}
}

func TestPatternPredictorFallsBackWithoutConfirmation(t *testing.T) {
	// Motion that never matches the pattern: predictions must equal the
	// base model's exactly.
	g := velocityGrid(8)
	pat := core.Pattern{g.IndexOf(geom.Pt(0.9, 0.9)), g.IndexOf(geom.Pt(0.9, 0.9))}
	path := linearPath(15, geom.Pt(0.01, 0.02))

	pp := &PatternPredictor{
		Base:     NewLinear(),
		Patterns: []core.Pattern{pat},
		Grid:     g,
		Delta:    0.05,
		Sigma:    0.01,
	}
	lm := NewLinear()
	for i, pt := range path {
		if i >= 2 {
			if a, b := pp.Predict(), lm.Predict(); a.Dist(b) > 1e-12 {
				t.Fatalf("step %d: fallback diverged: %v vs %v", i, a, b)
			}
		}
		pp.Observe(pt)
		lm.Observe(pt)
	}
}

func TestPatternPredictorReset(t *testing.T) {
	g := velocityGrid(8)
	pp := &PatternPredictor{
		Base:  NewLinear(),
		Grid:  g,
		Delta: 0.1,
		Sigma: 0.05,
	}
	pp.Observe(geom.Pt(1, 1))
	pp.Observe(geom.Pt(2, 2))
	pp.Reset()
	if len(pp.hist) != 0 {
		t.Error("history not cleared")
	}
	if got := pp.Predict(); got != (geom.Point{}) {
		t.Errorf("post-reset prediction = %v", got)
	}
}

func TestPatternPredictorLocationMode(t *testing.T) {
	// Object walks a fixed L-shaped route repeatedly. Location patterns
	// anchor to the corner cell, so the turn is predicted exactly where
	// velocity extrapolation (LM) fails.
	g := grid.New(geom.UnitSquare(), 10, 10)
	cellPath := []int{
		g.IndexOf(geom.Pt(0.15, 0.15)),
		g.IndexOf(geom.Pt(0.25, 0.15)),
		g.IndexOf(geom.Pt(0.35, 0.15)),
		g.IndexOf(geom.Pt(0.45, 0.15)), // corner
		g.IndexOf(geom.Pt(0.45, 0.25)),
		g.IndexOf(geom.Pt(0.45, 0.35)),
	}
	pattern := core.Pattern(cellPath)
	var path []geom.Point
	for r := 0; r < 4; r++ {
		for _, c := range cellPath {
			path = append(path, g.CenterAt(c))
		}
	}
	u := 0.05
	base, err := Evaluate(NewLinear(), [][]geom.Point{path}, u)
	if err != nil {
		t.Fatal(err)
	}
	if base.MisPredictions == 0 {
		t.Fatal("setup broken: LM never mis-predicts the loop")
	}
	pp := &PatternPredictor{
		Base:     NewLinear(),
		Patterns: []core.Pattern{pattern},
		Mode:     LocationPatterns,
		Grid:     g,
		Delta:    g.CellWidth() * 0.6,
		Sigma:    0.01,
	}
	enh, err := Evaluate(pp, [][]geom.Point{path}, u)
	if err != nil {
		t.Fatal(err)
	}
	if enh.MisPredictions >= base.MisPredictions {
		t.Errorf("location patterns did not help: base %d, enhanced %d",
			base.MisPredictions, enh.MisPredictions)
	}
}

func TestPatternPredictorGeometricMeanConfirm(t *testing.T) {
	// A long match whose per-position probability is ~0.95 must confirm
	// at threshold 0.9 even though the joint probability is below 0.9 —
	// the length-normalized semantics.
	g := velocityGrid(10)
	v := g.CenterAt(g.IndexOf(geom.Pt(0.3, 0.1)))
	pat := make(core.Pattern, 6)
	for i := range pat {
		pat[i] = g.IndexOf(v)
	}
	// Velocity noise tuned so per-position prob ≈ 0.95: box δ=0.1,
	// σ=0.045 → P(|N|<0.1)² ≈ 0.95.
	pp := &PatternPredictor{
		Base:        NewLinear(),
		Patterns:    []core.Pattern{pat},
		Grid:        g,
		Delta:       0.1,
		Sigma:       0.045,
		ConfirmProb: 0.9,
	}
	pos := geom.Pt(0, 0)
	for i := 0; i < 6; i++ {
		pos = pos.Add(v)
		pp.Observe(pos)
	}
	if _, ok := pp.patternMove(); !ok {
		t.Error("length-normalized confirmation failed on a long good match")
	}
}

func TestPatternPredictorName(t *testing.T) {
	pp := &PatternPredictor{Base: NewRMF(0, 0)}
	if pp.Name() != "RMF+patterns" {
		t.Errorf("Name = %q", pp.Name())
	}
}
