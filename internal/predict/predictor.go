// Package predict implements the three location prediction modules the
// paper's Figure 3 experiment compares — the linear model (LM) of Wolfson
// et al. [12], a linear Kalman filter (LKF) per Jain et al. [2], and a
// recursive motion function (RMF) per Tao et al. [11] — together with the
// mis-prediction evaluation harness and the pattern-enhanced predictor
// that overlays mined trajectory patterns on any base model.
//
// A mis-prediction occurs when the one-step-ahead predicted location is
// more than the tolerable uncertainty distance U away from the actual
// location, forcing the mobile object to transmit a report (§6.1).
package predict

import "trajpattern/internal/geom"

// Predictor is a one-step-ahead location predictor. Implementations are
// fed the actual location after every step via Observe and asked for the
// next location via Predict. They must be deterministic.
type Predictor interface {
	// Name identifies the model in experiment output.
	Name() string
	// Observe records the actual location of the current step.
	Observe(p geom.Point)
	// Predict returns the predicted location for the next step. Called
	// after at least one Observe.
	Predict() geom.Point
	// Reset clears all state for a new trajectory.
	Reset()
}

// Linear is the linear model LM of [12]: predict_loc = last_loc + v where
// v is the displacement between the last two observations (Equation 1 with
// t = one snapshot interval).
type Linear struct {
	last, prev geom.Point
	n          int
}

// NewLinear returns an LM predictor.
func NewLinear() *Linear { return &Linear{} }

// Name implements Predictor.
func (l *Linear) Name() string { return "LM" }

// Observe implements Predictor.
func (l *Linear) Observe(p geom.Point) {
	l.prev = l.last
	l.last = p
	l.n++
}

// Predict implements Predictor. With fewer than two observations the last
// position is held.
func (l *Linear) Predict() geom.Point {
	if l.n < 2 {
		return l.last
	}
	return l.last.Add(l.last.Sub(l.prev))
}

// Reset implements Predictor.
func (l *Linear) Reset() { *l = Linear{} }
