package predict

import (
	"fmt"

	"trajpattern/internal/geom"
)

// Evaluation summarizes a predictor's one-step-ahead performance on a set
// of paths.
type Evaluation struct {
	Steps          int     // prediction opportunities evaluated
	MisPredictions int     // steps with error > U
	Rate           float64 // MisPredictions / Steps
	MeanError      float64 // mean Euclidean prediction error
}

// Evaluate runs the predictor over each path and counts mis-predictions:
// at every step (after a warmup of two observations so every model has a
// velocity estimate) the model predicts the next location before seeing
// it; an error larger than u is a mis-prediction — the event that forces a
// report in the protocol of §3.1. The predictor is Reset between paths.
func Evaluate(p Predictor, paths [][]geom.Point, u float64) (Evaluation, error) {
	if u <= 0 {
		return Evaluation{}, fmt.Errorf("predict: u must be > 0, got %v", u)
	}
	const warmup = 2
	var ev Evaluation
	var errSum float64
	for _, path := range paths {
		p.Reset()
		for i, pt := range path {
			if i >= warmup {
				pred := p.Predict()
				e := pred.Dist(pt)
				errSum += e
				ev.Steps++
				if e > u {
					ev.MisPredictions++
				}
			}
			p.Observe(pt)
		}
	}
	if ev.Steps > 0 {
		ev.Rate = float64(ev.MisPredictions) / float64(ev.Steps)
		ev.MeanError = errSum / float64(ev.Steps)
	}
	return ev, nil
}

// Reduction returns the relative reduction in mis-predictions that
// enhanced achieves over base, the quantity plotted in Figure 3. A
// positive value means enhanced mis-predicts less.
func Reduction(base, enhanced Evaluation) float64 {
	if base.MisPredictions == 0 {
		return 0
	}
	return float64(base.MisPredictions-enhanced.MisPredictions) / float64(base.MisPredictions)
}
