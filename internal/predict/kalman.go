package predict

import (
	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

// Kalman is the linear Kalman filter LKF of [2]: a constant-velocity
// state-space model with state (x, y, vx, vy), white-acceleration process
// noise and isotropic measurement noise, stepped at the snapshot interval.
type Kalman struct {
	q, r float64 // process / measurement noise intensities

	x    []float64    // state estimate, len 4
	p    *stat.Matrix // state covariance, 4×4
	n    int
	f, h *stat.Matrix // constant transition / measurement matrices
	qm   *stat.Matrix // constant process-noise covariance
}

// NewKalman returns an LKF with process noise intensity q and measurement
// noise variance r. Both must be positive; typical values for unit-square
// data are q around 1e-3 and r around the square of the location sigma.
func NewKalman(q, r float64) *Kalman {
	k := &Kalman{q: q, r: r}
	k.f = stat.MatrixFromRows([][]float64{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	})
	k.h = stat.MatrixFromRows([][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	})
	// Piecewise-constant white acceleration with dt = 1.
	k.qm = stat.MatrixFromRows([][]float64{
		{q / 4, 0, q / 2, 0},
		{0, q / 4, 0, q / 2},
		{q / 2, 0, q, 0},
		{0, q / 2, 0, q},
	})
	k.Reset()
	return k
}

// Name implements Predictor.
func (k *Kalman) Name() string { return "LKF" }

// Reset implements Predictor.
func (k *Kalman) Reset() {
	k.x = make([]float64, 4)
	k.p = stat.Identity(4).Scale(1e3) // diffuse prior
	k.n = 0
}

// Observe implements Predictor: one predict-update cycle with the actual
// location as measurement.
func (k *Kalman) Observe(pt geom.Point) {
	if k.n == 0 {
		// Initialize position directly; velocity stays zero with large
		// covariance.
		k.x[0], k.x[1] = pt.X, pt.Y
		k.n++
		return
	}
	// Predict.
	k.x = k.f.MulVec(k.x)
	k.p = k.f.Mul(k.p).Mul(k.f.T()).Add(k.qm)

	// Update.
	innov := []float64{pt.X - k.x[0], pt.Y - k.x[1]}
	sMat := k.h.Mul(k.p).Mul(k.h.T())
	sMat.Data[0] += k.r
	sMat.Data[3] += k.r
	sInv, err := stat.Inverse(sMat)
	if err != nil {
		// Numerically degenerate innovation covariance: skip the update,
		// keeping the predicted state. Cannot happen with r > 0.
		k.n++
		return
	}
	gain := k.p.Mul(k.h.T()).Mul(sInv) // 4×2
	for i := 0; i < 4; i++ {
		k.x[i] += gain.At(i, 0)*innov[0] + gain.At(i, 1)*innov[1]
	}
	ident := stat.Identity(4)
	k.p = ident.Sub(gain.Mul(k.h)).Mul(k.p)
	k.n++
}

// Predict implements Predictor: the position component of F·x.
func (k *Kalman) Predict() geom.Point {
	if k.n == 0 {
		return geom.Point{}
	}
	nx := k.f.MulVec(k.x)
	return geom.Pt(nx[0], nx[1])
}
