package predict

import "trajpattern/internal/geom"

// Adaptive selects among several base predictors online, using each
// model's recent one-step prediction error. The paper's introduction
// motivates exactly this weakness of fixed models: "most of the previous
// proposed location prediction models assume one type of movement ...
// however, a mobile object may change the type of movement at any time."
// Adaptive tracks an exponentially decayed error per model and predicts
// with the current best, so a switch from linear driving to curved motion
// shifts weight from LM to RMF within a few observations.
type Adaptive struct {
	models []Predictor
	decay  float64

	errs    []float64    // decayed error per model
	pending []geom.Point // each model's last prediction, to score on the next Observe
	hasPred bool
}

// DefaultAdaptiveDecay is the per-step decay of historical errors.
const DefaultAdaptiveDecay = 0.8

// NewAdaptive returns an adaptive selector over the given models. With no
// arguments it wraps the paper's three models (LM, LKF with mild noise
// settings, RMF). decay in (0,1) weights recent errors; out-of-range
// values select DefaultAdaptiveDecay.
func NewAdaptive(decay float64, models ...Predictor) *Adaptive {
	if decay <= 0 || decay >= 1 {
		decay = DefaultAdaptiveDecay
	}
	if len(models) == 0 {
		models = []Predictor{NewLinear(), NewKalman(1e-4, 1e-4), NewRMF(0, 0)}
	}
	return &Adaptive{
		models:  models,
		decay:   decay,
		errs:    make([]float64, len(models)),
		pending: make([]geom.Point, len(models)),
	}
}

// Name implements Predictor.
func (a *Adaptive) Name() string { return "Adaptive" }

// Reset implements Predictor.
func (a *Adaptive) Reset() {
	for i, m := range a.models {
		m.Reset()
		a.errs[i] = 0
		a.pending[i] = geom.Point{}
	}
	a.hasPred = false
}

// Observe implements Predictor: score each model's pending prediction
// against the actual location, then feed the observation to every model.
func (a *Adaptive) Observe(p geom.Point) {
	if a.hasPred {
		for i := range a.models {
			a.errs[i] = a.errs[i]*a.decay + a.pending[i].Dist(p)
		}
	}
	for _, m := range a.models {
		m.Observe(p)
	}
	a.hasPred = false
}

// Predict implements Predictor: every model predicts (so all stay
// scoreable), and the one with the lowest decayed error wins. Ties go to
// the earliest model in the list, making LM the warmup default.
func (a *Adaptive) Predict() geom.Point {
	best := 0
	for i, m := range a.models {
		a.pending[i] = m.Predict()
		if a.errs[i] < a.errs[best] {
			best = i
		}
	}
	a.hasPred = true
	return a.pending[best]
}

// BestModel returns the name of the model currently trusted most.
func (a *Adaptive) BestModel() string {
	best := 0
	for i := range a.models {
		if a.errs[i] < a.errs[best] {
			best = i
		}
	}
	return a.models[best].Name()
}
