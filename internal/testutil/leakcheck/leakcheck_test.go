package leakcheck

import (
	"strings"
	"testing"
	"time"
)

const sampleDump = `goroutine 1 [running]:
main.main()
	/tmp/x/main.go:10 +0x1a

goroutine 18 [chan receive, 3 minutes]:
main.worker(0xc000010000)
	/tmp/x/main.go:22 +0x45
created by main.main
	/tmp/x/main.go:15 +0x90

goroutine 19 [IO wait]:
internal/poll.runtime_pollWait(0x7f0, 0x72)
	/usr/local/go/src/runtime/netpoll.go:345 +0x85
`

func TestParse(t *testing.T) {
	gs := parse(sampleDump)
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3", len(gs))
	}
	if gs[0].ID != 1 || gs[0].State != "running" {
		t.Errorf("first record = %d %q, want 1 running", gs[0].ID, gs[0].State)
	}
	if gs[1].ID != 18 || gs[1].State != "chan receive" {
		t.Errorf("second record = %d %q, want 18 chan receive", gs[1].ID, gs[1].State)
	}
	if !strings.Contains(gs[1].Stack, "created by main.main") {
		t.Errorf("stack text lost the creator frame: %q", gs[1].Stack)
	}
	if gs[2].State != "IO wait" {
		t.Errorf("third state = %q, want IO wait", gs[2].State)
	}
}

func TestTakeSeesSelf(t *testing.T) {
	s := Take()
	if len(s.before) == 0 {
		t.Fatal("snapshot saw no goroutines at all")
	}
}

func TestWaitConvergesAfterJoin(t *testing.T) {
	s := Take()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()
	if leaked := s.Leaked(); len(leaked) == 0 {
		t.Fatal("Leaked missed a live extra goroutine")
	}
	close(block)
	<-done
	if leaked := s.Wait(5 * time.Second); len(leaked) != 0 {
		t.Fatalf("Wait reported %d leaks after join: %v", len(leaked), leaked)
	}
}

func TestWaitReportsStuckGoroutine(t *testing.T) {
	s := Take()
	block := make(chan struct{})
	go func() {
		<-block // held open past the poll window, then released
	}()
	leaked := s.Wait(200 * time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("Wait reported %d leaks, want 1", len(leaked))
	}
	if !strings.Contains(leaked[0].Stack, "leakcheck.TestWaitReportsStuckGoroutine") {
		t.Errorf("leak stack does not name the spawner:\n%s", leaked[0].Stack)
	}
	close(block)
}

func TestIgnoreSuppresses(t *testing.T) {
	s := Take(Ignore("leakcheck.TestIgnoreSuppresses"))
	block := make(chan struct{})
	go func() {
		<-block
	}()
	if leaked := s.Wait(200 * time.Millisecond); len(leaked) != 0 {
		t.Fatalf("Ignore pattern did not suppress: %v", leaked)
	}
	close(block)
}

func TestCheckPassesOnCleanTest(t *testing.T) {
	defer Check(t)()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
