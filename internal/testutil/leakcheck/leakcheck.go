// Package leakcheck is the dynamic counterpart of trajlint's goleak
// analyzer: where the static pass proves every `go func` literal has a
// join witness on all paths, this harness verifies at test time that the
// goroutines actually converged — a snapshot of goroutine stacks taken at
// test start must be re-reached (minus an allowlist) by test end.
//
// Usage, in any test that exercises the concurrent runtime:
//
//	func TestDrain(t *testing.T) {
//		defer leakcheck.Check(t)()
//		... start servers, pools, signal handlers ...
//	}
//
// Check snapshots the live goroutines and returns the verification
// function; deferring it asserts convergence after the test body (and its
// own defers that run later must be avoided — put Check first so its
// verification runs last). Convergence polls with a deadline because
// teardown is asynchronous: net/http connection goroutines, timer
// goroutines and signal watchers take a few scheduler rounds to unwind
// after Close returns.
//
// The allowlist is matched against each goroutine's stack text. Built-in
// entries cover the runtime's own service goroutines and the testing
// framework; tests add entries with Ignore for intentionally long-lived
// infrastructure (an httptest server shared by subtests, say).
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// defaultIgnores matches goroutines that are not leaks: the runtime's and
// stdlib's service goroutines, and the test framework itself.
var defaultIgnores = []string{
	"testing.(*T).Run",      // the test runner's own goroutines
	"testing.(*M).",         // test main
	"testing.runFuzzing",    // fuzz workers
	"testing.tRunner",       //
	"runtime.goexit",        // exiting goroutines caught mid-teardown
	"runtime/trace",         //
	"os/signal.signal_recv", // the process-wide signal watcher
	"os/signal.loop",        //
	"runtime.gc",            //
	"runtime.bgsweep",       //
	"runtime.bgscavenge",    //
	"runtime.forcegchelper", //
	"runtime.ReadTrace",     //
}

// Goroutine is one parsed goroutine record from a runtime.Stack dump.
type Goroutine struct {
	// ID is the runtime's goroutine id from the dump header.
	ID int
	// State is the scheduler state from the header ("running", "chan
	// receive", "IO wait", ...).
	State string
	// Stack is the full stack text, including the header line.
	Stack string
}

// Snapshot is the set of goroutines live at Take time, plus the filter
// configuration for later comparison.
type Snapshot struct {
	before  map[int]bool
	ignores []string
}

// Option configures Take/Check.
type Option func(*options)

type options struct {
	ignores []string
	timeout time.Duration
}

// Ignore adds a substring pattern: goroutines whose stack contains it are
// never reported as leaks.
func Ignore(substr string) Option {
	return func(o *options) { o.ignores = append(o.ignores, substr) }
}

// Timeout bounds how long the convergence poll waits (default 10s).
func Timeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// Take snapshots the currently live goroutines.
func Take(opts ...Option) Snapshot {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	s := Snapshot{before: map[int]bool{}, ignores: append(append([]string(nil), defaultIgnores...), o.ignores...)}
	for _, g := range dump() {
		s.before[g.ID] = true
	}
	return s
}

// Leaked returns the goroutines live now that were not in the snapshot
// and match no ignore pattern. A single instantaneous call is racy by
// design — use Wait for the converged verdict.
func (s Snapshot) Leaked() []Goroutine {
	var out []Goroutine
	for _, g := range dump() {
		if s.before[g.ID] {
			continue
		}
		if s.ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Wait polls until no leaked goroutines remain or the timeout expires,
// returning the final leak set (empty on convergence). It nudges the
// garbage collector between polls: finalizer-driven teardown (file
// handles, pollers) otherwise holds goroutines alive arbitrarily long.
func (s Snapshot) Wait(timeout time.Duration) []Goroutine {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		leaked := s.Leaked()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Check snapshots now and returns the verification function; defer it at
// the top of a test. On non-convergence it fails the test with every
// leaked stack, which is exactly the evidence a goleak diagnostic asks
// for dynamically.
func Check(t testing.TB, opts ...Option) func() {
	t.Helper()
	o := options{timeout: 10 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	s := Take(opts...)
	return func() {
		t.Helper()
		leaked := s.Wait(o.timeout)
		if len(leaked) == 0 {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "leakcheck: %d goroutine(s) leaked after %v:\n", len(leaked), o.timeout)
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n%s\n", g.Stack)
		}
		t.Error(b.String())
	}
}

func (s Snapshot) ignored(g Goroutine) bool {
	for _, pat := range s.ignores {
		if strings.Contains(g.Stack, pat) {
			return true
		}
	}
	return false
}

// dump captures and parses the full goroutine stack dump.
func dump() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return parse(string(buf))
}

// parse splits a runtime.Stack(all=true) dump into records. Headers look
// like "goroutine 123 [chan receive, 2 minutes]:".
func parse(s string) []Goroutine {
	var out []Goroutine
	for _, block := range strings.Split(s, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		header, _, _ := strings.Cut(block, "\n")
		rest := strings.TrimPrefix(header, "goroutine ")
		if rest == header {
			continue
		}
		idStr, stateStr, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		state := strings.TrimSuffix(strings.TrimPrefix(stateStr, "["), "]:")
		if i := strings.IndexByte(state, ','); i >= 0 {
			state = state[:i]
		}
		out = append(out, Goroutine{ID: id, State: state, Stack: block})
	}
	return out
}
