package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"trajpattern/internal/cli"
	"trajpattern/internal/core"
	"trajpattern/internal/obs"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// DefaultGrace is how long the drain waits for in-flight requests before
// cancelling them.
const DefaultGrace = 10 * time.Second

// Options configures one Run of the trajserve process.
type Options struct {
	// Addr is the listen address ("127.0.0.1:8080"; ":0" picks a port).
	Addr string
	// DataPath is the trajectory file to serve (required unless Dataset
	// is set directly).
	DataPath string
	// Dataset, when non-nil, is used instead of reading DataPath (tests).
	Dataset traj.Dataset
	// PatternsPath, when non-empty, preloads mined patterns so
	// /v1/predict works before the first /v1/mine.
	PatternsPath string

	// Server carries the service tuning (grid, admission, deadlines).
	// Dataset/DataPath/Metrics/Tracer/Log fields inside it are
	// overwritten here.
	Server Config

	// Grace bounds stage two of the drain: after the listener closes,
	// in-flight requests get this long to finish before their contexts
	// are cancelled and connections closed. Zero means DefaultGrace.
	Grace time.Duration

	// DebugAddr, when non-empty, serves pprof//metrics//trace/status.
	DebugAddr string
	// TracePath, when non-empty, enables request tracing and writes the
	// journal there at exit.
	TracePath string
	// MetricsOut, when non-empty, writes the provenance-stamped metrics
	// report there at exit.
	MetricsOut string

	// Log receives operator notices. Nil means discard.
	Log io.Writer
	// Logger, when non-nil, replaces the plain Log status lines with
	// structured records and turns on structured request logging (the
	// -log-format=text/json modes; nil is -log-format=plain).
	Logger *slogx.Logger
}

// Run builds the server, listens, and serves until ctx is cancelled,
// then performs the two-stage drain:
//
//  1. Stop admitting: the admission controller flips to draining (readyz
//     → 503, queued waiters shed) and the listener closes, so no new
//     request enters.
//  2. Finish or interrupt: in-flight requests get Grace to complete —
//     mining requests self-interrupt via MaxWallTime and return degraded
//     partials — after which their contexts are cancelled and remaining
//     connections closed.
//
// Observability state (trace journal, metrics report) is flushed after
// the drain, so a SIGTERM'd process still leaves its run records behind.
// A drained exit returns nil; ready (optional) receives the bound
// address once the listener accepts work.
func Run(ctx context.Context, o Options, ready func(addr string)) error {
	logw := o.Log
	if logw == nil {
		logw = io.Discard
	}
	// notice routes one lifecycle event: a structured record when a
	// Logger is configured, else the legacy plain status line.
	notice := func(plain string, msg string, attrs ...slog.Attr) {
		if o.Logger != nil {
			o.Logger.Info(msg, attrs...)
			return
		}
		fmt.Fprintln(logw, plain)
	}

	ds := o.Dataset
	if ds == nil {
		if o.DataPath == "" {
			return errors.New("serve: no dataset: set DataPath or Dataset")
		}
		var err error
		ds, err = traj.ReadFile(o.DataPath)
		if err != nil {
			return err
		}
	}

	cfg := o.Server
	cfg.Dataset = ds
	cfg.DataPath = o.DataPath
	cfg.Log = logw
	cfg.Logger = o.Logger
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	if o.TracePath != "" && cfg.Tracer == nil {
		cfg.Tracer = trace.New()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		return err
	}

	if o.PatternsPath != "" {
		pats, err := core.LoadPatterns(o.PatternsPath, nil)
		if err != nil {
			return fmt.Errorf("serve: preload patterns: %w", err)
		}
		srv.SetPatterns(pats)
		notice(fmt.Sprintf("trajserve: preloaded %d patterns from %s", len(pats), o.PatternsPath),
			"patterns preloaded", slog.Int("patterns", len(pats)), slog.String("path", o.PatternsPath))
	}

	if o.DebugAddr != "" {
		holder := &cli.MetricsHolder{}
		holder.Set(cfg.Metrics)
		url, stopDebug, err := cli.StartDebugServer(o.DebugAddr, holder, cfg.Tracer)
		if err != nil {
			return err
		}
		defer stopDebug() //nolint:errcheck // best-effort teardown
		notice(fmt.Sprintf("trajserve: debug server at %s", url),
			"debug server up", slog.String("url", url))
	}

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}

	// Request contexts descend from reqCtx, NOT from the signal ctx: the
	// first SIGTERM must stop the listener while letting in-flight work
	// finish, so cancellation of in-flight requests is a separate, later
	// decision (stage two of the drain).
	reqCtx, cancelReqs := context.WithCancelCause(context.Background())
	defer cancelReqs(nil)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return reqCtx },
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	notice(fmt.Sprintf("trajserve: listening on %s (%d trajectories, grid %dx%d)",
		ln.Addr(), len(ds), srv.grid.NX(), srv.grid.NY()),
		"listening", slog.String("addr", ln.Addr().String()),
		slog.Int("trajectories", len(ds)),
		slog.Int("grid_nx", srv.grid.NX()), slog.Int("grid_ny", srv.grid.NY()))

	// Streaming ingest starts after the listener is up but before the
	// ready callback: a restarted process accepts connections right away
	// (probes see 503 "replaying", not connection-refused) and flips
	// /readyz only once the WAL is replayed and the windows rebuilt.
	if cfg.IngestWALDir != "" {
		if err := srv.StartIngest(); err != nil {
			ln.Close() //nolint:errcheck // listener teardown on startup failure
			<-serveErr
			return err
		}
		st := srv.ingestPipe.Stats()
		notice(fmt.Sprintf("trajserve: ingest ready (replayed %d records, %d objects, wal %s)",
			st.Replayed, st.Objects, cfg.IngestWALDir),
			"ingest ready", slog.Int("replayed", st.Replayed),
			slog.Int("objects", st.Objects), slog.String("wal", cfg.IngestWALDir))
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		// The listener died on its own — a bind/accept fault, not a drain.
		if serr := srv.StopIngest(); serr != nil {
			notice(fmt.Sprintf("trajserve: ingest close: %v", serr), "ingest close failed", slogx.Err(serr))
		}
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}

	// Stage one: stop admitting. Queued waiters fail with 503 now and
	// readyz flips, then the listener closes.
	notice("trajserve: draining — refusing new work, finishing in-flight requests",
		"draining", slog.String("stage", "stop-admitting"))
	srv.Admission().StartDrain()

	grace := o.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), grace)
	defer cancelGrace()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		// Stage two, forced: grace expired with requests still running.
		// Cancel their contexts — the miner returns degraded partials at
		// the next iteration boundary — and close what remains.
		notice(fmt.Sprintf("trajserve: grace %v expired — interrupting in-flight requests", grace),
			"drain grace expired", slog.Duration("grace", grace))
		cancelReqs(fmt.Errorf("serve: drain grace %v expired", grace))
		if cerr := httpSrv.Close(); cerr != nil {
			notice(fmt.Sprintf("trajserve: close: %v", cerr), "close failed", slogx.Err(cerr))
		}
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now

	// Ingest stops after the HTTP drain: every in-flight /v1/ingest has
	// its acknowledgement by now, the final group commit lands, and the
	// re-mining loop exits before the process does.
	if err := srv.StopIngest(); err != nil {
		notice(fmt.Sprintf("trajserve: ingest close: %v", err), "ingest close failed", slogx.Err(err))
	}

	// Flush observability state so an interrupted run still leaves its
	// records behind (mirrors the CLIs' behaviour on SIGINT).
	if o.TracePath != "" && cfg.Tracer != nil {
		if err := cli.SaveTrace(o.TracePath, cfg.Tracer); err != nil {
			notice(fmt.Sprintf("trajserve: save trace: %v", err), "save trace failed", slogx.Err(err))
		}
	}
	if o.MetricsOut != "" {
		if err := cli.WriteMetricsReport(o.MetricsOut, cfg.Metrics.Snapshot()); err != nil {
			notice(fmt.Sprintf("trajserve: write metrics: %v", err), "write metrics failed", slogx.Err(err))
		}
	}
	notice("trajserve: drained", "drained")
	return nil
}
