package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"trajpattern/internal/cli"
	"trajpattern/internal/testutil/leakcheck"
)

// TestRunSigtermDrain is the trajserve shutdown contract end to end: a
// request is held in flight (its body deliberately incomplete), SIGTERM
// arrives, the listener refuses new connections while the in-flight
// request is allowed to finish and receives its full 200, Run returns
// nil (exit 0), and no goroutines are left behind.
func TestRunSigtermDrain(t *testing.T) {
	leak := leakcheck.Take()

	ctx, stop := cli.SignalContext(context.Background(), io.Discard, "trajserve-test")
	defer stop()

	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, Options{
			Addr:    "127.0.0.1:0",
			Dataset: testDataset(),
			Server:  Config{GridN: 6},
			Grace:   10 * time.Second,
			Log:     io.Discard,
		}, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("Run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Liveness before the storm.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Hold a request in flight deterministically: send the headers and
	// half the JSON body, then stall. The handler is admitted and blocks
	// reading the rest — in-flight by construction, no timing games.
	body := `{"patterns":[[1,2]]}`
	half := len(body) / 2
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body[:half])

	// SIGTERM: stage one of the drain must close the listener while the
	// held request stays alive.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	refused := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		// Accepted: either the listener has not closed yet, or the OS
		// queued the connection before close. Probe with a request.
		c.Close()
		time.Sleep(20 * time.Millisecond)
	}
	if !refused {
		t.Fatal("listener still accepting connections after SIGTERM")
	}
	select {
	case err := <-runErr:
		t.Fatalf("Run returned %v with a request still in flight", err)
	default:
	}

	// Complete the held request: it must finish with a full, valid 200.
	if _, err := io.WriteString(conn, body[half:]); err != nil {
		t.Fatalf("finishing in-flight body: %v", err)
	}
	br := bufio.NewReader(conn)
	httpResp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("in-flight response: %v", err)
	}
	payload, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatalf("in-flight body: %v", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200: %s", httpResp.StatusCode, payload)
	}
	if !strings.Contains(string(payload), `"scores"`) {
		t.Fatalf("in-flight response torn or wrong: %s", payload)
	}
	conn.Close()

	// With the last request done, Run must come home clean: exit 0.
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run = %v, want nil after graceful drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after the drain finished")
	}

	stop()
	http.DefaultClient.CloseIdleConnections()
	if leaked := leak.Wait(10 * time.Second); len(leaked) > 0 {
		for _, g := range leaked {
			t.Errorf("goroutine leaked after drain:\n%s", g.Stack)
		}
	}
}

// TestRunGraceExpiryInterrupts proves stage two: when in-flight work
// outlives the grace, its context is cancelled and Run still returns
// cleanly instead of hanging forever on a wedged request.
func TestRunGraceExpiryInterrupts(t *testing.T) {
	defer leakcheck.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, Options{
			Addr:    "127.0.0.1:0",
			Dataset: testDataset(),
			Server:  Config{GridN: 6},
			Grace:   200 * time.Millisecond,
			Log:     io.Discard,
		}, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("Run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Wedge a request: headers sent, body never completed, client never
	// going to finish it.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{")

	time.Sleep(50 * time.Millisecond) // let the handler be admitted
	cancel()                          // the "SIGTERM"

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run = %v, want nil after forced drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run hung on a wedged request despite grace expiry")
	}
}

// TestRunRejectsBadOptions covers the startup failure paths: they must
// fail fast with errors, not serve broken state.
func TestRunRejectsBadOptions(t *testing.T) {
	if err := Run(context.Background(), Options{Addr: "127.0.0.1:0"}, nil); err == nil {
		t.Error("no dataset accepted")
	}
	if err := Run(context.Background(), Options{
		Addr:     "127.0.0.1:0",
		DataPath: "/nonexistent/nope.jsonl",
	}, nil); err == nil {
		t.Error("missing data file accepted")
	}
	if err := Run(context.Background(), Options{
		Addr:         "127.0.0.1:0",
		Dataset:      testDataset(),
		PatternsPath: "/nonexistent/pats.json",
	}, nil); err == nil {
		t.Error("missing patterns file accepted")
	}
	if err := Run(context.Background(), Options{
		Addr:    "not-an-address:-1",
		Dataset: testDataset(),
	}, nil); err == nil {
		t.Error("bad listen address accepted")
	}
}
