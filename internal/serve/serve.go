// Package serve implements trajserve, the long-running HTTP service that
// exposes the TrajPattern miner, scorer and predictor as JSON endpoints.
// The paper's algorithms run batch; this package makes them survivable as
// a service: every route sits behind the guard package's admission
// controller (weighted semaphore + bounded wait queue, typed 429/503
// shedding), carries a per-route deadline that propagates into the
// miner's context plumbing, recovers handler panics into typed 500s, and
// participates in a two-stage SIGTERM drain.
//
// Routes:
//
//	POST /v1/score    score submitted patterns by normalized match
//	POST /v1/mine     bounded top-k mining; partial answers are 200+degraded
//	POST /v1/predict  pattern-assisted next-position prediction
//	POST /v1/ingest   durable streaming ingest (WAL-backed; see ingest.go)
//	GET  /v1/ingest/status  pipeline and re-mining generation state
//	GET  /healthz     process liveness
//	GET  /readyz      admission state (503 while draining or replaying)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trajpattern/internal/cli"
	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/grid"
	"trajpattern/internal/ingest"
	"trajpattern/internal/obs"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/serve/guard"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// Defaults for Config fields left zero.
const (
	DefaultCapacity    = 8
	DefaultMaxQueue    = 16
	DefaultRetryAfter  = 500 * time.Millisecond
	DefaultDeadline    = 30 * time.Second
	DefaultMineWeight  = 4
	DefaultMaxBodySize = 8 << 20 // 8 MiB of JSON is far beyond any sane request
)

// Config configures a Server.
type Config struct {
	// Dataset is the trajectory corpus the service scores and mines
	// against. Required, non-empty.
	Dataset traj.Dataset
	// GridN is the grid side (G = GridN²). Zero means 12.
	GridN int
	// DeltaMul sets δ as a multiple of the grid cell size (the paper's
	// choice is 1). Zero means 1.
	DeltaMul float64

	// Capacity is the admission controller's total in-flight weight
	// (score and predict cost 1, mine costs MineWeight). Zero means
	// DefaultCapacity; negative means unlimited.
	Capacity int64
	// MaxQueue bounds the admission wait queue. Zero means
	// DefaultMaxQueue; negative means unbounded.
	MaxQueue int
	// RetryAfter is the backoff hint attached to 429/503 responses.
	// Zero means DefaultRetryAfter.
	RetryAfter time.Duration
	// MineWeight is the admission weight of one /v1/mine request.
	// Zero means DefaultMineWeight.
	MineWeight int64
	// MineShards partitions the dataset across this many shards for
	// /v1/mine, merging the per-shard answers into the same top-k the
	// single-partition miner returns. 0 or 1 keeps the single-partition
	// miner; negative means one shard per CPU. A sharded mine occupies
	// more of the machine, so its admission weight is MineWeight times
	// the effective shard count, clamped to Capacity.
	MineShards int
	// MineProcs, when positive, executes each sharded /v1/mine request's
	// shards as supervised worker processes (this many at a time) with
	// retry, stall detection and checkpoint recovery instead of in-process
	// goroutines. Needs MineShards to activate the shard engine and
	// DataPath so workers can rebuild the dataset; the request keeps the
	// same admission weight either way.
	MineProcs int
	// DataPath is the trajectory file Dataset was read from, handed to
	// shard worker processes. Required when MineProcs > 0.
	DataPath string

	// ScoreDeadline, MineDeadline and PredictDeadline bound each route's
	// wall time, queue wait included. Zero means DefaultDeadline;
	// negative disables the route's deadline.
	ScoreDeadline   time.Duration
	MineDeadline    time.Duration
	PredictDeadline time.Duration

	// MaxMineWallTime caps the miner's in-request wall-clock budget.
	// A request asking for more (or for nothing) gets this value, so a
	// mine request can never hold its admission weight longer than
	// MaxMineWallTime plus one iteration. Zero means 80% of the
	// effective MineDeadline (leaving headroom to encode the answer).
	MaxMineWallTime time.Duration

	// MaxBodyBytes bounds request bodies. Zero means DefaultMaxBodySize.
	MaxBodyBytes int64

	// IngestWALDir, when non-empty, enables durable streaming ingest:
	// POST /v1/ingest appends reports to a segmented write-ahead log in
	// this directory, feeds per-object sliding windows, and triggers
	// incremental re-mining. On restart the WAL is replayed — and the
	// windows rebuilt byte-identically — before /readyz reports ready.
	IngestWALDir string
	// IngestWindow caps each object's sliding window in records. Zero
	// means ingest.DefaultMaxRecords.
	IngestWindow int
	// IngestMaxAge evicts window records older than this many time units
	// behind the object's newest report. Zero means no age bound.
	IngestMaxAge float64
	// IngestFsyncEvery caps how many reports one WAL group commit
	// covers. Zero means ingest.DefaultFsyncEvery.
	IngestFsyncEvery int
	// IngestQueueDepth bounds the ingest accept queue; a full queue
	// sheds with 429. Zero means ingest.DefaultQueueDepth.
	IngestQueueDepth int
	// IngestDeadline bounds one /v1/ingest request. Zero means
	// DefaultDeadline; negative disables.
	IngestDeadline time.Duration
	// IngestMineK is the top-k size the re-mining loop asks for. Zero
	// means DefaultIngestMineK.
	IngestMineK int
	// IngestSyncInterval, IngestSyncCount, IngestSyncU and IngestSyncC
	// define the snapshot schedule the re-mining loop superimposes on
	// the windowed reports (traj.SyncConfig). Zeros mean 1, 16, 1, 2.
	IngestSyncInterval float64
	IngestSyncCount    int
	IngestSyncU        float64
	IngestSyncC        float64

	// Metrics, when non-nil, receives service instrumentation
	// ("serve.*" names) alongside the scorer's and miner's own counters.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per request. Per-request
	// spans buffer in memory for the process lifetime, so this is a
	// debugging mode, not an always-on default.
	Tracer *trace.Tracer
	// Log receives operator-facing notices (panic reports). Nil means
	// discard.
	Log io.Writer
	// Logger, when non-nil, receives structured request-completion and
	// panic records (route, status, request_id, duration). Nil disables
	// structured request logging (the -log-format=plain default).
	Logger *slogx.Logger
}

func (c Config) withDefaults() Config {
	if c.GridN == 0 {
		c.GridN = 12
	}
	// Exact sentinel test, not a numeric comparison: zero means "unset"
	// for this config field.
	if c.DeltaMul == 0 {
		c.DeltaMul = 1
	}
	if c.Capacity == 0 {
		c.Capacity = DefaultCapacity
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MineWeight <= 0 {
		c.MineWeight = DefaultMineWeight
	}
	if c.ScoreDeadline == 0 {
		c.ScoreDeadline = DefaultDeadline
	}
	if c.MineDeadline == 0 {
		c.MineDeadline = DefaultDeadline
	}
	if c.PredictDeadline == 0 {
		c.PredictDeadline = DefaultDeadline
	}
	if c.MaxMineWallTime == 0 && c.MineDeadline > 0 {
		c.MaxMineWallTime = c.MineDeadline * 8 / 10
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodySize
	}
	if c.IngestDeadline == 0 {
		c.IngestDeadline = DefaultDeadline
	}
	if c.IngestMineK <= 0 {
		c.IngestMineK = DefaultIngestMineK
	}
	if c.IngestSyncInterval <= 0 {
		c.IngestSyncInterval = 1
	}
	if c.IngestSyncCount <= 0 {
		c.IngestSyncCount = 16
	}
	if c.IngestSyncU <= 0 {
		c.IngestSyncU = 1
	}
	if c.IngestSyncC <= 0 {
		c.IngestSyncC = 2
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// DefaultIngestMineK is the top-k the re-mining loop maintains when
// IngestMineK is left zero.
const DefaultIngestMineK = 8

// Server is the trajserve request handler: the scorer and grid are built
// once at construction, every route is wrapped in the guard middleware
// stack, and mined patterns are retained for /v1/predict.
type Server struct {
	cfg       Config
	scorer    *core.Scorer
	engine    *shard.Engine // non-nil when MineShards routes /v1/mine through the sharded miner
	grid      *grid.Grid
	delta     float64
	sigma     float64
	admission *guard.Admission
	mux       *http.ServeMux

	mu       sync.RWMutex
	patterns []core.ScoredPattern // latest mined or preloaded patterns

	// Streaming-ingest state (nil/zero unless IngestWALDir is set; see
	// ingest.go). The pipeline exists only between StartIngest and
	// StopIngest; ingestReady gates both /v1/ingest and /readyz.
	ingestPipe  *ingest.Pipeline
	ingestReady atomic.Bool
	remineC     chan struct{}
	remineStop  context.CancelFunc
	remineDone  chan struct{}
	remineBusy  atomic.Bool
	genMu       sync.Mutex
	gen         ingestGeneration

	metrics serveMetrics
	logMu   sync.Mutex
	reqSeq  atomic.Int64 // deterministic per-process X-Request-ID sequence
}

type serveMetrics struct {
	requests map[string]*obs.Counter   // per route
	latency  map[string]*obs.Histogram // per route; shed (429) requests are never observed
	statuses map[int]*obs.Counter      // per status class (2, 4, 5)
	shed     *obs.Counter
	drained  *obs.Counter
	panics   *obs.Counter
	inflight *obs.Gauge
	queued   *obs.Gauge
	timer    *obs.Timer
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	if r == nil {
		return serveMetrics{}
	}
	m := serveMetrics{
		requests: map[string]*obs.Counter{},
		latency:  map[string]*obs.Histogram{},
		statuses: map[int]*obs.Counter{},
		shed:     r.Counter("serve.shed"),
		drained:  r.Counter("serve.drained"),
		panics:   r.Counter("serve.panics"),
		inflight: r.Gauge("serve.inflight_weight"),
		queued:   r.Gauge("serve.queued"),
		timer:    r.Timer("serve.request"),
	}
	for _, route := range []string{routeScore, routeMine, routePredict, routeIngest} {
		m.requests[route] = r.Counter("serve.requests" + route)
		m.latency[route] = r.Histogram("serve.latency" + route)
	}
	for _, class := range []int{2, 4, 5} {
		m.statuses[class] = r.Counter(fmt.Sprintf("serve.status.%dxx", class))
	}
	return m
}

const (
	routeScore   = "/v1/score"
	routeMine    = "/v1/mine"
	routePredict = "/v1/predict"
	routeIngest  = "/v1/ingest"
)

// NewServer builds the scorer over cfg.Dataset and assembles the routed,
// guarded handler. Configuration faults surface here as errors (the
// scorer's own validation returns *core.ConfigError), never later at
// request time.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Dataset) == 0 {
		return nil, errors.New("serve: empty dataset")
	}
	if cfg.GridN < 1 {
		return nil, fmt.Errorf("serve: GridN must be >= 1, got %d", cfg.GridN)
	}
	if math.IsNaN(cfg.DeltaMul) || cfg.DeltaMul <= 0 {
		return nil, fmt.Errorf("serve: DeltaMul must be positive and not NaN, got %v", cfg.DeltaMul)
	}
	if cfg.MineProcs > 0 && cfg.DataPath == "" {
		return nil, errors.New("serve: MineProcs needs DataPath so shard workers can rebuild the dataset")
	}
	g := cli.FitGrid(cfg.Dataset, cfg.GridN)
	delta := cfg.DeltaMul * g.CellWidth()
	scorer, err := core.NewScorer(cfg.Dataset, core.Config{
		Grid:    g,
		Delta:   delta,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: build scorer: %w", err)
	}
	sigma := cfg.Dataset.MeanSigma()
	if sigma <= 0 {
		sigma = delta // exact zero sigma would break the predictor's confirmation probability
	}
	// A sharded /v1/mine runs one search per shard concurrently, so it
	// claims proportionally more admission weight — clamped to Capacity so
	// a generous shard count can still be admitted at all.
	var engine *shard.Engine
	mineWeight := cfg.MineWeight
	if cfg.MineShards < 0 || cfg.MineShards > 1 {
		want := cfg.MineShards
		if want < 0 {
			want = 0 // NewEngine maps 0 to one shard per CPU
		}
		eng, err := shard.NewEngine(scorer, want)
		if err != nil {
			return nil, fmt.Errorf("serve: build shard engine: %w", err)
		}
		if eng.Shards() > 1 {
			engine = eng
			mineWeight *= int64(eng.Shards())
			if cfg.Capacity > 0 && mineWeight > cfg.Capacity {
				mineWeight = cfg.Capacity
			}
		}
	}
	s := &Server{
		cfg:       cfg,
		scorer:    scorer,
		engine:    engine,
		grid:      g,
		delta:     delta,
		sigma:     sigma,
		admission: guard.NewAdmission(cfg.Capacity, cfg.MaxQueue, cfg.RetryAfter),
		mux:       http.NewServeMux(),
		metrics:   newServeMetrics(cfg.Metrics),
	}
	// Queue telemetry lives on the admission controller itself: the depth
	// gauges move the instant the queue does, not once per completed
	// request, so the high-water mark is exact. Nil-registry handles are
	// nil, which the controller tolerates per the obs contract.
	s.admission.Instrument(guard.AdmissionMetrics{
		Depth:    cfg.Metrics.Gauge("serve.queue.depth"),
		DepthMax: cfg.Metrics.Gauge("serve.queue.depth.max"),
		Wait:     cfg.Metrics.Histogram("serve.queue.wait"),
	})
	s.mux.Handle("POST "+routeScore, s.guarded(routeScore, cfg.ScoreDeadline, 1, s.handleScore))
	s.mux.Handle("POST "+routeMine, s.guarded(routeMine, cfg.MineDeadline, mineWeight, s.handleMine))
	s.mux.Handle("POST "+routePredict, s.guarded(routePredict, cfg.PredictDeadline, 1, s.handlePredict))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.ingestEnabled() {
		s.remineC = make(chan struct{}, 1)
		s.remineDone = make(chan struct{})
		s.mux.Handle("POST "+routeIngest, s.guarded(routeIngest, cfg.IngestDeadline, 1, s.handleIngest))
		s.mux.HandleFunc("GET /v1/ingest/status", s.handleIngestStatus)
	}
	return s, nil
}

// Handler returns the fully assembled HTTP handler (nil on nil).
func (s *Server) Handler() http.Handler {
	if s == nil {
		return nil
	}
	return s.mux
}

// Admission exposes the server's admission controller so the drain
// orchestration (and tests) can flip it. A nil server returns a nil
// controller, which admits everything.
func (s *Server) Admission() *guard.Admission {
	if s == nil {
		return nil
	}
	return s.admission
}

// SetPatterns installs patterns for /v1/predict, replacing any previous
// set. Run uses it to preload a persisted pattern file at startup; a
// successful /v1/mine installs its answer the same way.
func (s *Server) SetPatterns(pats []core.ScoredPattern) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.patterns = pats
	s.mu.Unlock()
}

// Patterns returns the currently installed pattern set (nil on nil).
func (s *Server) Patterns() []core.ScoredPattern {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.patterns
}

func (s *Server) logf(format string, args ...any) {
	s.logMu.Lock()
	fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	s.logMu.Unlock()
}

// maxRequestIDLen caps accepted inbound X-Request-ID values; longer IDs
// are replaced with a generated one rather than echoed back at length.
const maxRequestIDLen = 128

// requestID returns the correlation ID for r: the client's X-Request-ID
// when present and sane, else the server's own deterministic sequence
// ("req-00000001", ...), so tests and single-process logs correlate
// without any randomness.
func (s *Server) requestID(r *http.Request) string {
	if s == nil {
		return ""
	}
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	return fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
}

// guarded assembles one route's middleware stack, outermost first:
// instrumentation (request-ID correlation, status/latency metrics,
// optional request span, structured request log), panic recovery,
// deadline, admission, then the handler. Admission sits inside the
// deadline so queue wait counts against the route budget and a client
// disconnect abandons the queue slot.
func (s *Server) guarded(route string, deadline time.Duration, weight int64, h http.HandlerFunc) http.Handler {
	admitted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.admission.Acquire(r.Context(), weight)
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
		s.metrics.inflight.Set(s.admission.InFlight())
		h(w, r)
	})
	stack := guard.WithDeadline(route, deadline, admitted)
	inner := stack
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := s.requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(trace.WithRequestID(r.Context(), reqID))
		recovered := guard.Recover(route, func(pe *guard.PanicError) {
			s.metrics.panics.Inc()
			s.cfg.Logger.Error("panic recovered",
				slogx.Route(route), slogx.RequestID(reqID), slogx.Err(pe))
			s.logf("serve: %v\n%s", pe, pe.Stack)
		}, inner)
		if c := s.metrics.requests[route]; c != nil {
			c.Inc()
		}
		start := time.Now()
		var span *trace.Span
		if s.cfg.Tracer != nil {
			span = s.cfg.Tracer.Local().Span("serve.request",
				trace.Attrs{"route": route, "request_id": reqID})
		}
		sw := guard.NewStatusRecorder(w)
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		recovered.ServeHTTP(sw, r)
		status := sw.Status()
		if status == 0 {
			// Handler wrote nothing (e.g. deadline fired before any
			// output): close the exchange as a 503 so the client never
			// sees an empty 200.
			s.writeError(sw, http.StatusServiceUnavailable, "timeout",
				"request abandoned before a response was produced")
			status = http.StatusServiceUnavailable
		}
		elapsed := time.Since(start)
		if c := s.metrics.statuses[status/100]; c != nil {
			c.Inc()
		}
		s.metrics.timer.Observe(elapsed)
		// Shed requests never reach the handler; folding their
		// constant-time rejections into the route latency distribution
		// would drag the percentiles toward zero exactly when the server
		// is overloaded.
		if status != http.StatusTooManyRequests {
			if lat := s.metrics.latency[route]; lat != nil {
				lat.ObserveDuration(elapsed)
			}
		}
		s.metrics.queued.Set(int64(s.admission.Queued()))
		span.Attr("status", status).End()
		s.cfg.Logger.Info("request",
			slogx.Route(route), slogx.RequestID(reqID),
			slogx.Status(status), slogx.Duration(elapsed))
	})
}

// errorBody is the JSON error envelope shared by every non-200 response.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeAdmissionError maps the guard's typed errors onto the wire:
// *ShedError → 429 + Retry-After, *DrainError → 503 + Retry-After,
// context expiry while queued → 503.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	retryAfterHeader(w, s.cfg.RetryAfter)
	var shed *guard.ShedError
	var drain *guard.DrainError
	switch {
	case errors.As(err, &shed):
		s.metrics.shed.Inc()
		s.writeError(w, http.StatusTooManyRequests, "overloaded", shed.Error())
	case errors.As(err, &drain):
		s.metrics.drained.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining", drain.Error())
	default:
		s.writeError(w, http.StatusServiceUnavailable, "admission_timeout",
			fmt.Sprintf("gave up waiting for admission: %v", err))
	}
}

func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second) // ceil: "Retry-After: 0" means hammer away
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// readJSON decodes the request body into v, rejecting unknown fields and
// trailing garbage so a torn or concatenated payload can never half-parse
// into a request.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
