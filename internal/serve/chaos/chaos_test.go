package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/stat"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"padding":"0123456789012345678901234567890123456789"}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestNilTransportPassesThrough(t *testing.T) {
	srv := okServer(t)
	var tr *Transport
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if tr.Injected() != 0 {
		t.Error("nil transport counted injections")
	}
}

func TestDisconnectInjection(t *testing.T) {
	srv := okServer(t)
	tr := &Transport{PDisconnect: 1, RNG: stat.NewRNG(1)}
	client := &http.Client{Transport: tr}
	_, err := client.Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjectedDisconnect) {
		t.Fatalf("err = %v, want injected disconnect", err)
	}
	if tr.Injected() != 1 {
		t.Errorf("Injected = %d, want 1", tr.Injected())
	}
}

func TestStallHonoursCancellation(t *testing.T) {
	srv := okServer(t)
	tr := &Transport{PStall: 1, Stall: time.Minute, RNG: stat.NewRNG(2)}
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("stalled request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — stall not honouring ctx", elapsed)
	}
}

func TestTornBodyBreaksJSONDecode(t *testing.T) {
	srv := okServer(t)
	tr := &Transport{PTornBody: 1, TornBytes: 5, RNG: stat.NewRNG(3)}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	derr := json.NewDecoder(resp.Body).Decode(&v)
	if derr == nil {
		t.Fatal("torn body decoded cleanly")
	}
	if !errors.Is(derr, ErrInjectedDisconnect) {
		t.Logf("decode error (acceptable as long as it fails): %v", derr)
	}
}

func TestTornBodyDoubleCloseSafe(t *testing.T) {
	b := &tornBody{inner: io.NopCloser(strings.NewReader("xyz")), remaining: 1}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSequence(t *testing.T) {
	// Same seed, same fault decisions: the soak test depends on replayable
	// chaos.
	run := func() []int64 {
		srv := okServer(t)
		tr := &Transport{PDisconnect: 0.5, RNG: stat.NewRNG(42)}
		client := &http.Client{Transport: tr}
		var counts []int64
		for i := 0; i < 20; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			counts = append(counts, tr.Injected())
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at request %d: %v vs %v", i, a, b)
		}
	}
	if a[len(a)-1] == 0 || a[len(a)-1] == 20 {
		t.Errorf("p=0.5 over 20 requests injected %d faults — draw looks broken", a[len(a)-1])
	}
}

func TestSlowHandlerRespectsCancel(t *testing.T) {
	h := SlowHandler(time.Minute, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("inner handler ran despite cancellation")
	}))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slow handler did not return after cancellation")
	}
}

func TestSlowHandlerEventuallyServes(t *testing.T) {
	served := false
	h := SlowHandler(time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served = true
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if !served {
		t.Fatal("slow handler never served")
	}
}

func TestHangingHandlerUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		HangingHandler().ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hanging handler did not unblock")
	}
}

func TestTornJSONHandler(t *testing.T) {
	doc := []byte(`{"patterns":[{"cells":[1,2],"nm":0.5}]}`)
	rec := httptest.NewRecorder()
	TornJSONHandler(doc, 10).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Body.String(); got != string(doc[:10]) {
		t.Fatalf("body = %q, want first 10 bytes", got)
	}
	var v any
	if json.Unmarshal(rec.Body.Bytes(), &v) == nil {
		t.Fatal("torn JSON decoded cleanly")
	}

	// n past the end sends the whole document.
	rec = httptest.NewRecorder()
	TornJSONHandler(doc, 10_000).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Body.String() != string(doc) {
		t.Fatal("oversized n truncated the document")
	}
}
