// Package chaos provides fault-injecting HTTP plumbing for testing the
// trajserve robustness guarantees, the network-side sibling of
// internal/faultio: a RoundTripper that drops, stalls, or tears responses
// with configured probabilities, and handler fixtures that are slow, hang
// until cancelled, or emit torn JSON. Faults draw from a deterministic
// stat.RNG, so a failing soak run replays byte-for-byte from its seed.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"trajpattern/internal/stat"
)

// ErrInjectedDisconnect is the error surfaced by a Transport-injected
// connection drop, standing in for a peer reset or mid-flight network cut.
var ErrInjectedDisconnect = errors.New("chaos: injected disconnect")

// Transport is an http.RoundTripper that injects faults in front of an
// inner transport. Each request independently draws from the RNG:
// disconnect before any bytes move, stall before forwarding, or tear the
// response body after a byte prefix. Probabilities are checked in that
// order; a request suffers at most one fault.
//
// The zero value (and a nil *Transport) injects nothing and uses
// http.DefaultTransport.
type Transport struct {
	// Inner handles the request when no disconnect fires. Defaults to
	// http.DefaultTransport.
	Inner http.RoundTripper

	// PDisconnect is the probability of failing the request with
	// ErrInjectedDisconnect without forwarding it.
	PDisconnect float64

	// PStall is the probability of sleeping Stall (honouring request
	// cancellation) before forwarding — modelling a congested path rather
	// than a dead one.
	PStall float64
	Stall  time.Duration

	// PTornBody is the probability of truncating the response body after
	// TornBytes bytes, closing the inner body, and reporting
	// ErrInjectedDisconnect from the reader — a mid-body connection loss
	// that a JSON decoder must reject rather than half-parse.
	PTornBody float64
	TornBytes int

	// RNG drives all fault draws. Required when any probability is
	// positive; guarded by an internal mutex so one Transport serves
	// concurrent requests.
	RNG *stat.RNG

	mu       sync.Mutex
	injected int64
}

// Injected returns how many faults this transport has fired (0 on nil).
func (t *Transport) Injected() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// draw samples one uniform float under the mutex, so concurrent requests
// never race the RNG state.
func (t *Transport) draw() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.RNG == nil {
		return 1 // never below any probability: no faults
	}
	return t.RNG.Float64()
}

func (t *Transport) count() {
	t.mu.Lock()
	t.injected++
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t == nil {
		return http.DefaultTransport.RoundTrip(req)
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if t.PDisconnect > 0 && t.draw() < t.PDisconnect {
		t.count()
		return nil, fmt.Errorf("chaos: %s %s: %w", req.Method, req.URL.Path, ErrInjectedDisconnect)
	}
	if t.PStall > 0 && t.Stall > 0 && t.draw() < t.PStall {
		t.count()
		timer := time.NewTimer(t.Stall)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("chaos: stalled %s %s: %w",
				req.Method, req.URL.Path, context.Cause(req.Context()))
		}
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.PTornBody > 0 && t.draw() < t.PTornBody {
		t.count()
		resp.Body = &tornBody{inner: resp.Body, remaining: t.TornBytes}
		resp.ContentLength = -1
	}
	return resp, nil
}

// tornBody passes through at most remaining bytes, then reports an
// injected disconnect instead of io.EOF so the client sees a mid-body
// connection loss, not a clean end of message.
type tornBody struct {
	inner     io.ReadCloser
	remaining int
	closed    bool
}

// Read implements io.Reader.
func (b *tornBody) Read(p []byte) (int, error) {
	if b == nil {
		return 0, io.EOF
	}
	if b.remaining <= 0 {
		return 0, fmt.Errorf("chaos: response torn: %w", ErrInjectedDisconnect)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if errors.Is(err, io.EOF) && b.remaining <= 0 {
		// The truncation point landed past the real body; still report the
		// tear so the injection is observable.
		err = fmt.Errorf("chaos: response torn: %w", ErrInjectedDisconnect)
	}
	return n, err
}

// Close implements io.Closer.
func (b *tornBody) Close() error {
	if b == nil {
		return nil
	}
	if b.closed {
		return nil
	}
	b.closed = true
	return b.inner.Close()
}

// SlowHandler wraps h to sleep d before serving, honouring request
// cancellation — the fixture for handlers that are alive but too slow for
// the caller's deadline.
func SlowHandler(d time.Duration, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		h.ServeHTTP(w, r)
	})
}

// HangingHandler blocks until the request context ends and writes nothing:
// the fixture for a wedged backend. Deadline and disconnect handling must
// make progress without any cooperation from it.
func HangingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
}

// TornJSONHandler writes a 200 whose body is the first n bytes of a valid
// JSON document and then returns, producing exactly the torn-payload shape
// a robust client must reject. n larger than the document sends it whole.
func TornJSONHandler(doc []byte, n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n > len(doc) {
			n = len(doc)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = io.Copy(w, bytes.NewReader(doc[:n]))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	})
}
