package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/obs"
	"trajpattern/internal/testutil/leakcheck"
)

// newIngestServer builds an ingest-enabled test server with its pipeline
// started and stopped around the test.
func newIngestServer(t *testing.T, walDir string, mut func(*Config)) (*Server, string) {
	t.Helper()
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.IngestWALDir = walDir
		cfg.IngestSyncCount = 8
		if mut != nil {
			mut(cfg)
		}
	})
	if err := s.StartIngest(); err != nil {
		t.Fatalf("start ingest: %v", err)
	}
	t.Cleanup(func() {
		if err := s.StopIngest(); err != nil {
			t.Errorf("stop ingest: %v", err)
		}
	})
	return s, ts.URL
}

func ingestReport(t *testing.T, url, obj string, tm, x, y float64) *http.Response {
	t.Helper()
	return postJSON(t, url+"/v1/ingest", IngestRequest{Obj: obj, Time: tm, X: x, Y: y})
}

func TestIngestEndpointDurableAck(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	_, url := newIngestServer(t, t.TempDir(), nil)
	for i := 1; i <= 3; i++ {
		resp := ingestReport(t, url, "zebra-1", float64(i), float64(i)*0.1, 0.5)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d status = %d", i, resp.StatusCode)
		}
		if body := decode[IngestResponse](t, resp); !body.Durable {
			t.Fatalf("ingest %d not acknowledged durable", i)
		}
	}
	resp, err := http.Get(url + "/v1/ingest/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := decode[ingestStatusBody](t, resp)
	if !st.Enabled || !st.Ready || st.Stats == nil || st.Stats.LastSeq != 3 || st.Stats.Records != 3 {
		t.Fatalf("status = %+v", st)
	}
}

func TestIngestEndpointTypedRejections(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	_, url := newIngestServer(t, t.TempDir(), nil)
	cases := []struct {
		name   string
		req    IngestRequest
		status int
		code   string
	}{
		{"empty obj", IngestRequest{Obj: "", Time: 1}, http.StatusBadRequest, "invalid_report"},
		{"ok", IngestRequest{Obj: "z", Time: 5, X: 1, Y: 1}, http.StatusOK, ""},
		{"stale time", IngestRequest{Obj: "z", Time: 5, X: 1, Y: 1}, http.StatusBadRequest, "out_of_order"},
		{"other object unaffected", IngestRequest{Obj: "y", Time: 1}, http.StatusOK, ""},
	}
	for _, tc := range cases {
		resp := postJSON(t, url+"/v1/ingest", tc.req)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if tc.code != "" {
			body := decode[errorBody](t, resp)
			if body.Error.Code != tc.code {
				t.Fatalf("%s: code = %q, want %q", tc.name, body.Error.Code, tc.code)
			}
		}
	}
	// A body with unknown fields is rejected before it can half-parse.
	resp, err := http.Post(url+"/v1/ingest", "application/json",
		strings.NewReader(`{"obj":"z","time":6,"x":1,"y":1,"bogus":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field body status = %d, want 400", resp.StatusCode)
	}
}

func TestIngestReplayAcrossRestart(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	dir := t.TempDir()
	var before []string
	{
		s, url := newIngestServer(t, dir, nil)
		for obj := 0; obj < 3; obj++ {
			for i := 0; i < 5; i++ {
				resp := ingestReport(t, url, fmt.Sprintf("obj-%d", obj), float64(i), float64(i), float64(obj))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("ingest status = %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}
		for _, ow := range s.ingestPipe.WindowSnapshot() {
			before = append(before, fmt.Sprintf("%+v", ow))
		}
		if err := s.StopIngest(); err != nil {
			t.Fatalf("stop: %v", err)
		}
	}
	// A second server over the same WAL dir replays to identical windows.
	s2, url2 := newIngestServer(t, dir, nil)
	var after []string
	for _, ow := range s2.ingestPipe.WindowSnapshot() {
		after = append(after, fmt.Sprintf("%+v", ow))
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("replayed windows differ:\nbefore %v\nafter  %v", before, after)
	}
	if st := s2.ingestPipe.Stats(); st.Replayed != 15 {
		t.Fatalf("Replayed = %d, want 15", st.Replayed)
	}
	// Ingest continues where the log left off.
	resp := ingestReport(t, url2, "obj-0", 100, 1, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replay ingest status = %d", resp.StatusCode)
	}
}

func TestReadyzGatesOnIngestReplay(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.IngestWALDir = t.TempDir()
	})
	// Before StartIngest the server is listening but not ready: probes
	// see 503 "replaying", never connection-refused.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before replay = %d, want 503", resp.StatusCode)
	}
	body := decode[map[string]any](t, resp)
	resp.Body.Close()
	if body["reason"] != "replaying" {
		t.Fatalf("reason = %v, want replaying", body["reason"])
	}
	// Ingest itself also refuses while replaying.
	ir := ingestReport(t, ts.URL, "z", 1, 0, 0)
	if ir.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest before replay = %d, want 503", ir.StatusCode)
	}
	if err := s.StartIngest(); err != nil {
		t.Fatal(err)
	}
	defer s.StopIngest() //nolint:errcheck // test teardown
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after replay = %d, want 200", resp2.StatusCode)
	}
}

func TestMineServesLatestGeneration(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	reg := obs.New()
	s, url := newIngestServer(t, t.TempDir(), func(cfg *Config) {
		cfg.Metrics = reg
		cfg.IngestMineK = 4
	})
	// Feed two objects enough history for a generation to mine.
	for i := 0; i < 12; i++ {
		for obj := 0; obj < 2; obj++ {
			resp := ingestReport(t, url, fmt.Sprintf("obj-%d", obj),
				float64(i), 0.1*float64(i), 0.1*float64(i))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest status = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	// The re-mine loop runs asynchronously; wait for generation >= 1.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if gen := s.generation(); gen.Generation >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no re-mine generation completed within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp := postJSON(t, url+"/v1/mine", MineRequest{K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine status = %d", resp.StatusCode)
	}
	mr := decode[MineResponse](t, resp)
	if mr.Generation < 1 {
		t.Fatalf("mine served generation %d, want >= 1 (from the re-mine loop)", mr.Generation)
	}
	// Predict serves the generation's patterns without an explicit mine.
	pr := postJSON(t, url+"/v1/predict", PredictRequest{History: []PointJSON{{0.1, 0.1}, {0.2, 0.2}}})
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d (generation patterns not installed?)", pr.StatusCode)
	}
	if reg.Snapshot().Counters["serve.ingest.generations"] == 0 {
		t.Fatal("generation counter never incremented")
	}
}
