package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"

	"trajpattern/internal/cli"
	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/ingest"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/report"
	"trajpattern/internal/traj"
)

// IngestRequest is one location report submitted to POST /v1/ingest. A
// 200 response is a durability receipt: the report is in the WAL, fsynced,
// and will survive a crash of the process that acknowledged it.
type IngestRequest struct {
	Obj  string  `json:"obj"`
	Time float64 `json:"time"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// IngestResponse acknowledges a durable report.
type IngestResponse struct {
	Durable bool `json:"durable"`
}

// ingestGeneration is one complete re-mining pass over the ingest
// windows. The serving state only ever moves from generation g to g+1
// whole — /v1/mine and /v1/predict never see a half-updated answer.
type ingestGeneration struct {
	Generation      int
	Patterns        []core.ScoredPattern
	Degraded        bool
	InterruptReason string
	Iterations      int
	Candidates      int
	Objects         int
	Records         int
}

// StartIngest opens the ingest pipeline — replaying the WAL and
// rebuilding the sliding windows before anything else can observe the
// server as ready — and starts the incremental re-mining loop. Call
// after NewServer on a server configured with IngestWALDir; Run does
// this between binding the listener and announcing readiness, so a
// restarted process accepts connections immediately but answers
// /readyz 503 "replaying" until its history is rebuilt.
func (s *Server) StartIngest() error {
	if s == nil {
		return errors.New("serve: StartIngest on a nil server")
	}
	if s.cfg.IngestWALDir == "" {
		return errors.New("serve: StartIngest without IngestWALDir")
	}
	if s.ingestPipe != nil {
		return errors.New("serve: ingest already started")
	}
	pipe, err := ingest.Open(ingest.Config{
		WAL: ingest.WALConfig{
			Dir:     s.cfg.IngestWALDir,
			Metrics: s.cfg.Metrics,
			Log:     serverLog{s},
		},
		Limits: ingest.WindowLimits{
			MaxRecords: s.cfg.IngestWindow,
			MaxAge:     s.cfg.IngestMaxAge,
		},
		QueueDepth: s.cfg.IngestQueueDepth,
		FsyncEvery: s.cfg.IngestFsyncEvery,
		Metrics:    s.cfg.Metrics,
		OnApply: func(int) {
			// Nudge, never block: the loop coalesces bursts into one
			// re-mine, and a full nudge channel means one is already due.
			select {
			case s.remineC <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		return fmt.Errorf("serve: open ingest pipeline: %w", err)
	}
	s.ingestPipe = pipe
	st := pipe.Stats()
	if st.TornSkipped > 0 {
		s.logf("serve: ingest WAL replay skipped %d torn tail record(s)", st.TornSkipped)
		s.cfg.Logger.Warn("ingest replay skipped torn tail",
			slogx.Route(routeIngest))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.remineStop = cancel
	// The incremental re-mining loop: each nudge from the commit
	// goroutine (coalesced) triggers one bounded mine over the current
	// windows. The service keeps answering from the previous generation
	// the whole time — mine continuously, serve best-so-far.
	go func() {
		defer close(s.remineDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.remineC:
			}
			s.remineBusy.Store(true)
			if err := s.remineOnce(ctx); err != nil && ctx.Err() == nil {
				s.logf("serve: re-mine failed: %v", err)
				s.cfg.Logger.Error("re-mine failed", slogx.Err(err))
			}
			s.remineBusy.Store(false)
		}
	}()
	// Replayed history mines before the server reports ready-to-serve
	// generations; an empty WAL leaves the nudge for the first ingest.
	if st.Records > 0 {
		select {
		case s.remineC <- struct{}{}:
		default:
		}
	}
	s.ingestReady.Store(true)
	return nil
}

// StopIngest stops the re-mining loop and closes the pipeline (final
// group commit included). Reports still queued are refused with typed
// errors; in-flight handlers get their acknowledgements first.
func (s *Server) StopIngest() error {
	if s == nil {
		return nil
	}
	if s.ingestPipe == nil {
		return nil
	}
	s.ingestReady.Store(false)
	s.remineStop()
	<-s.remineDone
	return s.ingestPipe.Close()
}

// ingestEnabled reports whether this server was configured for ingest.
func (s *Server) ingestEnabled() bool { return s.cfg.IngestWALDir != "" }

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.ingestReady.Load() || s.ingestPipe == nil {
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusServiceUnavailable, "replaying",
			"ingest is replaying its WAL; retry shortly")
		return
	}
	var req IngestRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	err := s.ingestPipe.Ingest(r.Context(), req.Obj, req.Time, req.X, req.Y)
	if err != nil {
		s.writeIngestError(w, r, err)
		return
	}
	writeJSON(w, IngestResponse{Durable: true})
}

// writeIngestError maps the pipeline's typed refusals onto the wire:
// validation and ordering faults are the client's (400), overload is a
// retryable 429 with backoff, an unavailable pipeline (failed WAL,
// shutdown) is 503, and the caller's own expiry is 503 with the
// documented ambiguity — the report may still commit.
func (s *Server) writeIngestError(w http.ResponseWriter, r *http.Request, err error) {
	var ve *report.ValidationError
	var oe *report.OrderError
	var ove *ingest.OverloadError
	var ue *ingest.UnavailableError
	switch {
	case errors.As(err, &ve):
		s.writeError(w, http.StatusBadRequest, "invalid_report", ve.Error())
	case errors.As(err, &oe):
		s.writeError(w, http.StatusBadRequest, "out_of_order", oe.Error())
	case errors.As(err, &ove):
		s.metrics.shed.Inc()
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusTooManyRequests, "ingest_overloaded", ove.Error())
	case errors.As(err, &ue):
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusServiceUnavailable, "ingest_unavailable", ue.Error())
	case r.Context().Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusServiceUnavailable, "timeout",
			"deadline before durability was confirmed; the report may or may not have committed")
	default:
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// ingestStatusBody is the GET /v1/ingest/status answer.
type ingestStatusBody struct {
	Enabled    bool                  `json:"enabled"`
	Ready      bool                  `json:"ready"`
	Stats      *ingest.Stats         `json:"stats,omitempty"`
	Generation int                   `json:"generation"`
	Degraded   bool                  `json:"degraded"`
	Mining     bool                  `json:"mining"`
	Windows    []ingest.ObjectWindow `json:"windows,omitempty"`
}

// handleIngestStatus reports the pipeline and generation state.
// Unguarded like /metrics: it must answer during overload. ?verbose=1
// includes the full window contents — the chaos suite compares them
// byte-for-byte across a crash, and operators diff them across replicas.
func (s *Server) handleIngestStatus(w http.ResponseWriter, r *http.Request) {
	body := ingestStatusBody{Enabled: s.ingestEnabled(), Ready: s.ingestReady.Load()}
	if s.ingestPipe != nil && body.Ready {
		st := s.ingestPipe.Stats()
		body.Stats = &st
		if r.URL.Query().Get("verbose") == "1" {
			body.Windows = s.ingestPipe.WindowSnapshot()
		}
	}
	gen := s.generation()
	body.Generation = gen.Generation
	body.Degraded = gen.Degraded
	body.Mining = s.remineBusy.Load()
	writeJSON(w, body)
}

// generation returns the latest complete re-mining generation (zero
// value before the first completes).
func (s *Server) generation() ingestGeneration {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	return s.gen
}

// remineOnce mines the current windows into the next generation.
func (s *Server) remineOnce(ctx context.Context) error {
	snap := s.ingestPipe.WindowSnapshot()
	ds := s.windowsToDataset(snap)
	if len(ds) == 0 {
		return nil
	}
	g := cli.FitGrid(ds, s.cfg.GridN)
	delta := s.cfg.DeltaMul * g.CellWidth()
	scorer, err := core.NewScorer(ds, core.Config{
		Grid:    g,
		Delta:   delta,
		Metrics: s.cfg.Metrics,
		Tracer:  s.cfg.Tracer,
	})
	if err != nil {
		return fmt.Errorf("build scorer over ingest windows: %w", err)
	}
	mcfg := core.MinerConfig{
		K:               s.cfg.IngestMineK,
		MaxWallTime:     s.cfg.MaxMineWallTime,
		CheckpointPath:  filepath.Join(s.cfg.IngestWALDir, "remine.ckpt"),
		CheckpointEvery: 4,
		Metrics:         s.cfg.Metrics,
		Tracer:          s.cfg.Tracer,
	}
	// Resume the checkpoint only when it fingerprints to THIS mining
	// problem — i.e. the process crashed mid-mine and replay rebuilt the
	// identical windows. A stale fingerprint (the windows moved on) is
	// the normal case between generations: delete and mine fresh.
	if ck, err := core.LoadCheckpoint(mcfg.CheckpointPath); err == nil {
		if fp, ferr := mcfg.Fingerprint(scorer); ferr == nil && fp == ck.Fingerprint {
			mcfg.Resume = ck
		} else {
			os.Remove(mcfg.CheckpointPath) //nolint:errcheck // stale checkpoint; best-effort cleanup
		}
	}
	res, err := core.Mine(ctx, scorer, mcfg)
	if err != nil {
		var fpErr *core.FingerprintMismatchError
		if errors.As(err, &fpErr) {
			os.Remove(mcfg.CheckpointPath) //nolint:errcheck // mismatched checkpoint; best-effort cleanup
			mcfg.Resume = nil
			res, err = core.Mine(ctx, scorer, mcfg)
		}
		if err != nil {
			return err
		}
	}
	// The mine is done; the checkpoint served its purpose. Removing it
	// keeps the next generation from paying a load-and-reject cycle.
	os.Remove(mcfg.CheckpointPath) //nolint:errcheck // best-effort cleanup
	objects, records := len(snap), 0
	for _, ow := range snap {
		records += len(ow.Records)
	}
	s.genMu.Lock()
	s.gen = ingestGeneration{
		Generation:      s.gen.Generation + 1,
		Patterns:        res.Patterns,
		Degraded:        res.Interrupted,
		InterruptReason: res.InterruptReason,
		Iterations:      res.Stats.Iterations,
		Candidates:      res.Stats.Candidates,
		Objects:         objects,
		Records:         records,
	}
	gen := s.gen.Generation
	s.genMu.Unlock()
	if len(res.Patterns) > 0 {
		s.SetPatterns(res.Patterns)
	}
	if c := s.cfg.Metrics.Counter("serve.ingest.generations"); c != nil {
		c.Inc()
	}
	s.cfg.Logger.Info("re-mine complete",
		slogx.Route(routeIngest), slog.Int("generation", gen),
		slog.Int("objects", objects), slog.Int("records", records))
	return nil
}

// windowsToDataset synchronizes each object's windowed reports onto one
// global snapshot schedule (§3.2's superimposition), anchored so the
// last snapshot lands on the newest report in any window. Objects whose
// windows are empty contribute nothing; iteration order is the
// snapshot's sorted order, so the dataset — and therefore the mined
// generation — is a deterministic function of the window state.
func (s *Server) windowsToDataset(snap []ingest.ObjectWindow) traj.Dataset {
	end, any := 0.0, false
	for _, ow := range snap {
		if n := len(ow.Records); n > 0 {
			if t := ow.Records[n-1].Time; !any || t > end {
				end, any = t, true
			}
		}
	}
	if !any {
		return nil
	}
	syncCfg := traj.SyncConfig{
		Start:    end - s.cfg.IngestSyncInterval*float64(s.cfg.IngestSyncCount-1),
		Interval: s.cfg.IngestSyncInterval,
		Count:    s.cfg.IngestSyncCount,
		U:        s.cfg.IngestSyncU,
		C:        s.cfg.IngestSyncC,
	}
	ds := make(traj.Dataset, 0, len(snap))
	for _, ow := range snap {
		if len(ow.Records) == 0 {
			continue
		}
		reports := make([]traj.Report, len(ow.Records))
		for i, rec := range ow.Records {
			reports[i] = traj.Report{Time: rec.Time, Loc: geom.Pt(rec.X, rec.Y)}
		}
		tr, err := traj.Synchronize(reports, syncCfg)
		if err != nil {
			// Config was validated at NewServer; a per-object failure
			// here means an empty report list, which the guard above
			// excludes. Skip defensively rather than poison the batch.
			continue
		}
		ds = append(ds, tr)
	}
	return ds
}
