package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/geom"
	"trajpattern/internal/obs"
	"trajpattern/internal/predict"
)

// ScoreRequest asks for the normalized match of each submitted pattern.
type ScoreRequest struct {
	Patterns [][]int `json:"patterns"`
}

// ScoredPatternJSON is one pattern with its NM score.
type ScoredPatternJSON struct {
	Cells []int   `json:"cells"`
	NM    float64 `json:"nm"`
}

// ScoreResponse answers a ScoreRequest, scores in request order.
type ScoreResponse struct {
	Scores []ScoredPatternJSON `json:"scores"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(req.Patterns) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "no patterns submitted")
		return
	}
	pats := make([]core.Pattern, len(req.Patterns))
	for i, cells := range req.Patterns {
		if len(cells) == 0 {
			s.writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("pattern %d is empty", i))
			return
		}
		for _, c := range cells {
			if c < 0 || c >= s.grid.NumCells() {
				s.writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("pattern %d: cell %d outside grid of %d cells", i, c, s.grid.NumCells()))
				return
			}
		}
		pats[i] = core.Pattern(cells)
	}
	scores, err := s.scorer.ScoreAll(r.Context(), pats)
	if err != nil {
		s.writeScoreError(w, r, err)
		return
	}
	resp := ScoreResponse{Scores: make([]ScoredPatternJSON, len(pats))}
	for i, p := range pats {
		resp.Scores[i] = ScoredPatternJSON{Cells: p, NM: scores[i]}
	}
	writeJSON(w, resp)
}

// writeScoreError distinguishes the three ways ScoreAll fails: the
// caller's deadline or disconnect (503, retryable), a scoring panic
// captured as *core.ScorePanicError (500, a bug report), and anything
// else (500).
func (s *Server) writeScoreError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *core.ScorePanicError
	switch {
	case r.Context().Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusServiceUnavailable, "timeout", err.Error())
	case errors.As(err, &pe):
		s.metrics.panics.Inc()
		s.logf("serve: scoring panic: %v", pe)
		s.writeError(w, http.StatusInternalServerError, "score_panic", pe.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// MineRequest asks for a bounded top-k mining run over the server's
// dataset.
type MineRequest struct {
	K      int `json:"k"`
	MinLen int `json:"min_len,omitempty"`
	MaxLen int `json:"max_len,omitempty"`
	// MaxWallMS bounds the run's wall time in milliseconds; the server
	// clamps it to its own MaxMineWallTime. Zero means the server cap.
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
}

// MineResponse carries the mined top-k. Degraded marks a partial answer:
// the wall-time budget (or the caller's deadline) fired before the
// algorithm's own termination test, so Patterns is the best-so-far top-k
// rather than the converged answer — served as 200, not an error.
// Shards is the number of dataset partitions the run was mined over;
// values above 1 mean the server's sharded engine handled the request
// (Iterations and Candidates then aggregate over all shards).
type MineResponse struct {
	Patterns        []ScoredPatternJSON `json:"patterns"`
	Degraded        bool                `json:"degraded"`
	InterruptReason string              `json:"interrupt_reason,omitempty"`
	Iterations      int                 `json:"iterations"`
	Candidates      int                 `json:"candidates"`
	Shards          int                 `json:"shards,omitempty"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	wall := s.cfg.MaxMineWallTime
	if req.MaxWallMS > 0 {
		if asked := time.Duration(req.MaxWallMS) * time.Millisecond; wall <= 0 || asked < wall {
			wall = asked
		}
	}
	mcfg := core.MinerConfig{
		K:           req.K,
		MinLen:      req.MinLen,
		MaxLen:      req.MaxLen,
		MaxWallTime: wall,
		Metrics:     s.cfg.Metrics,
		Tracer:      s.cfg.Tracer,
	}
	var resp MineResponse
	var patterns []core.ScoredPattern
	if s.engine != nil {
		res, err := s.engine.Mine(r.Context(), mcfg, nil)
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		patterns = res.Patterns
		resp = MineResponse{
			Degraded:        res.Interrupted,
			InterruptReason: res.InterruptReason,
			Iterations:      res.Total.Iterations,
			Candidates:      res.Total.Candidates,
			Shards:          res.Shards,
		}
	} else {
		res, err := core.Mine(r.Context(), s.scorer, mcfg)
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		patterns = res.Patterns
		resp = MineResponse{
			Degraded:        res.Interrupted,
			InterruptReason: res.InterruptReason,
			Iterations:      res.Stats.Iterations,
			Candidates:      res.Stats.Candidates,
		}
	}
	resp.Patterns = make([]ScoredPatternJSON, len(patterns))
	for i, sp := range patterns {
		resp.Patterns[i] = ScoredPatternJSON{Cells: sp.Pattern, NM: sp.NM}
	}
	if len(patterns) > 0 {
		s.SetPatterns(patterns)
	}
	writeJSON(w, resp)
}

// writeMineError maps a mining failure onto the wire: a *core.ConfigError
// is the caller's fault (400); everything else follows the score-error
// taxonomy (503 on deadline/disconnect, 500 on panic or other faults).
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	var cfgErr *core.ConfigError
	if errors.As(err, &cfgErr) {
		s.writeError(w, http.StatusBadRequest, "bad_config", cfgErr.Error())
		return
	}
	s.writeScoreError(w, r, err)
}

// PointJSON is one observed or predicted position.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PredictRequest submits an observed position history, oldest first.
type PredictRequest struct {
	History []PointJSON `json:"history"`
}

// PredictResponse is the predicted next position.
type PredictResponse struct {
	Next PointJSON `json:"next"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(req.History) < 2 {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			"need at least 2 history points to predict")
		return
	}
	scored := s.Patterns()
	if len(scored) == 0 {
		// 409: the request is well-formed but the server has no patterns
		// yet — mine first (or start with -patterns), then retry.
		s.writeError(w, http.StatusConflict, "no_patterns",
			"no mined patterns installed; POST /v1/mine first")
		return
	}
	pats := make([]core.Pattern, len(scored))
	for i, sp := range scored {
		pats[i] = sp.Pattern
	}
	pp := &predict.PatternPredictor{
		Base:     predict.NewLinear(),
		Patterns: pats,
		Mode:     predict.LocationPatterns,
		Grid:     s.grid,
		Delta:    s.delta,
		Sigma:    s.sigma,
	}
	if err := pp.Validate(); err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	for _, p := range req.History {
		pp.Observe(geom.Pt(p.X, p.Y))
	}
	next := pp.Predict()
	writeJSON(w, PredictResponse{Next: PointJSON{X: next.X, Y: next.Y}})
}

// handleMetrics serves the server's whole registry stamped with build
// provenance: Prometheus text exposition by default (scrapers point here
// directly), the JSON report shape with ?format=json. A server built
// without a Metrics registry still answers — the exposition then carries
// only the build_info gauge. Unguarded like /healthz: a scrape must
// succeed precisely when the service is overloaded or draining.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := obs.NewReport(s.cfg.Metrics.Snapshot())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, rep)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WriteProm(w, rep)
}

// handleHealthz reports process liveness: if this handler runs at all,
// the answer is yes. It stays 200 during drain — liveness and readiness
// are different questions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz reports whether the server accepts new work: 503 once
// draining starts, so load balancers stop routing here before the
// listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.admission.Draining() {
		retryAfterHeader(w, s.cfg.RetryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, map[string]any{
		"ready":    true,
		"inflight": s.admission.InFlight(),
		"queued":   s.admission.Queued(),
		"capacity": s.admission.Capacity(),
	})
}
