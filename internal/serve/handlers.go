package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/core/shard/supervisor"
	"trajpattern/internal/geom"
	"trajpattern/internal/obs"
	"trajpattern/internal/predict"
)

// ScoreRequest asks for the normalized match of each submitted pattern.
type ScoreRequest struct {
	Patterns [][]int `json:"patterns"`
}

// ScoredPatternJSON is one pattern with its NM score.
type ScoredPatternJSON struct {
	Cells []int   `json:"cells"`
	NM    float64 `json:"nm"`
}

// ScoreResponse answers a ScoreRequest, scores in request order.
type ScoreResponse struct {
	Scores []ScoredPatternJSON `json:"scores"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(req.Patterns) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "no patterns submitted")
		return
	}
	pats := make([]core.Pattern, len(req.Patterns))
	for i, cells := range req.Patterns {
		if len(cells) == 0 {
			s.writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("pattern %d is empty", i))
			return
		}
		for _, c := range cells {
			if c < 0 || c >= s.grid.NumCells() {
				s.writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("pattern %d: cell %d outside grid of %d cells", i, c, s.grid.NumCells()))
				return
			}
		}
		pats[i] = core.Pattern(cells)
	}
	scores, err := s.scorer.ScoreAll(r.Context(), pats)
	if err != nil {
		s.writeScoreError(w, r, err)
		return
	}
	resp := ScoreResponse{Scores: make([]ScoredPatternJSON, len(pats))}
	for i, p := range pats {
		resp.Scores[i] = ScoredPatternJSON{Cells: p, NM: scores[i]}
	}
	writeJSON(w, resp)
}

// writeScoreError distinguishes the three ways ScoreAll fails: the
// caller's deadline or disconnect (503, retryable), a scoring panic
// captured as *core.ScorePanicError (500, a bug report), and anything
// else (500).
func (s *Server) writeScoreError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *core.ScorePanicError
	switch {
	case r.Context().Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		retryAfterHeader(w, s.cfg.RetryAfter)
		s.writeError(w, http.StatusServiceUnavailable, "timeout", err.Error())
	case errors.As(err, &pe):
		s.metrics.panics.Inc()
		s.logf("serve: scoring panic: %v", pe)
		s.writeError(w, http.StatusInternalServerError, "score_panic", pe.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// MineRequest asks for a bounded top-k mining run over the server's
// dataset.
type MineRequest struct {
	K      int `json:"k"`
	MinLen int `json:"min_len,omitempty"`
	MaxLen int `json:"max_len,omitempty"`
	// MaxWallMS bounds the run's wall time in milliseconds; the server
	// clamps it to its own MaxMineWallTime. Zero means the server cap.
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
}

// MineResponse carries the mined top-k. Degraded marks a partial answer:
// the wall-time budget (or the caller's deadline) fired before the
// algorithm's own termination test, so Patterns is the best-so-far top-k
// rather than the converged answer — served as 200, not an error.
// Shards is the number of dataset partitions the run was mined over;
// values above 1 mean the server's sharded engine handled the request
// (Iterations and Candidates then aggregate over all shards).
type MineResponse struct {
	Patterns        []ScoredPatternJSON `json:"patterns"`
	Degraded        bool                `json:"degraded"`
	InterruptReason string              `json:"interrupt_reason,omitempty"`
	Iterations      int                 `json:"iterations"`
	Candidates      int                 `json:"candidates"`
	Shards          int                 `json:"shards,omitempty"`
	// Generation, when positive, marks an answer served from the
	// streaming-ingest re-mining loop rather than mined on demand.
	Generation int `json:"generation,omitempty"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// An ingest-enabled server mines continuously and serves
	// best-so-far: once the re-mining loop has completed a generation,
	// /v1/mine answers from it immediately — flagged degraded while a
	// newer generation is still being mined — instead of re-running the
	// search in the request path. Before the first generation (or with
	// ingest off) the on-demand path below still applies.
	if s.ingestEnabled() {
		if gen := s.generation(); gen.Generation > 0 {
			mining := s.remineBusy.Load()
			resp := MineResponse{
				Patterns:        make([]ScoredPatternJSON, len(gen.Patterns)),
				Degraded:        gen.Degraded || mining,
				InterruptReason: gen.InterruptReason,
				Iterations:      gen.Iterations,
				Candidates:      gen.Candidates,
				Generation:      gen.Generation,
			}
			if mining && resp.InterruptReason == "" {
				resp.InterruptReason = "re-mine in flight; serving previous generation"
			}
			for i, sp := range gen.Patterns {
				resp.Patterns[i] = ScoredPatternJSON{Cells: sp.Pattern, NM: sp.NM}
			}
			writeJSON(w, resp)
			return
		}
	}
	wall := s.cfg.MaxMineWallTime
	if req.MaxWallMS > 0 {
		if asked := time.Duration(req.MaxWallMS) * time.Millisecond; wall <= 0 || asked < wall {
			wall = asked
		}
	}
	mcfg := core.MinerConfig{
		K:           req.K,
		MinLen:      req.MinLen,
		MaxLen:      req.MaxLen,
		MaxWallTime: wall,
		Metrics:     s.cfg.Metrics,
		Tracer:      s.cfg.Tracer,
	}
	var resp MineResponse
	var patterns []core.ScoredPattern
	if s.engine != nil {
		var res *shard.Result
		var err error
		if s.cfg.MineProcs > 0 {
			res, err = s.mineSupervised(r.Context(), mcfg)
		} else {
			res, err = s.engine.Mine(r.Context(), mcfg, nil)
		}
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		patterns = res.Patterns
		resp = MineResponse{
			Degraded:        res.Interrupted,
			InterruptReason: res.InterruptReason,
			Iterations:      res.Total.Iterations,
			Candidates:      res.Total.Candidates,
			Shards:          res.Shards,
		}
	} else {
		res, err := core.Mine(r.Context(), s.scorer, mcfg)
		if err != nil {
			s.writeMineError(w, r, err)
			return
		}
		patterns = res.Patterns
		resp = MineResponse{
			Degraded:        res.Interrupted,
			InterruptReason: res.InterruptReason,
			Iterations:      res.Stats.Iterations,
			Candidates:      res.Stats.Candidates,
		}
	}
	resp.Patterns = make([]ScoredPatternJSON, len(patterns))
	for i, sp := range patterns {
		resp.Patterns[i] = ScoredPatternJSON{Cells: sp.Pattern, NM: sp.NM}
	}
	if len(patterns) > 0 {
		s.SetPatterns(patterns)
	}
	writeJSON(w, resp)
}

// mineSupervised serves one sharded mine request through the worker
// supervisor: each shard runs as a `-shard-worker` child of this very
// binary (crashed, stalled or killed workers are relaunched from their
// last checkpoint), checkpoints land in a per-request temp directory,
// and the merged result is identical to the in-process engine's. The
// request context cancels the supervisor, which SIGTERMs the workers —
// their checkpointed progress still merges into a degraded partial, so
// the drain story matches in-process mining.
func (s *Server) mineSupervised(ctx context.Context, mcfg core.MinerConfig) (*shard.Result, error) {
	n := s.engine.Shards()
	dir, err := os.MkdirTemp("", "trajserve-mine-*")
	if err != nil {
		return nil, fmt.Errorf("serve: supervised mine scratch dir: %w", err)
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
	prefix := filepath.Join(dir, "ck")
	mcfg.CheckpointPath = prefix
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("serve: locate worker binary: %w", err)
	}
	// The worker flags must reproduce this server's scorer fingerprint:
	// same grid fit (FitGrid over the same file), same δ multiple, and
	// the miner knobs from this request. -maxlowq 0 matches the miner
	// default this handler uses.
	scfg := supervisor.Config{
		CheckpointPrefix: prefix,
		Command: func(i int) *exec.Cmd {
			return exec.Command(exe,
				"-shard-worker", fmt.Sprintf("%d/%d", i, n),
				"-in", s.cfg.DataPath,
				"-k", strconv.Itoa(mcfg.K),
				"-gridn", strconv.Itoa(s.cfg.GridN),
				"-minlen", strconv.Itoa(mcfg.MinLen),
				"-maxlen", strconv.Itoa(mcfg.MaxLen),
				"-maxlowq", "0",
				"-delta", strconv.FormatFloat(s.cfg.DeltaMul, 'g', -1, 64),
				"-maxwall", mcfg.MaxWallTime.String(),
				"-checkpoint", prefix,
				"-checkpoint-every", "1",
				"-resume",
			)
		},
		Procs:   s.cfg.MineProcs,
		Metrics: s.cfg.Metrics,
		Tracer:  s.cfg.Tracer,
		// The supervisor logs from its own goroutines; route it through
		// the server's log mutex so its lines can't race logf's.
		Log: serverLog{s},
	}
	res, run, err := supervisor.Mine(ctx, s.engine, mcfg, scfg)
	if err != nil {
		return nil, err
	}
	for _, f := range run.Failures {
		s.logf("serve: mine shard %d gave up (%s, %d attempts): %v", f.Shard, f.Kind, f.Attempts, f.Err)
	}
	return res, nil
}

// serverLog adapts the server's operator log (plus its mutex) to an
// io.Writer for components that log concurrently with the handlers.
type serverLog struct{ s *Server }

func (l serverLog) Write(p []byte) (int, error) {
	l.s.logMu.Lock()
	defer l.s.logMu.Unlock()
	return l.s.cfg.Log.Write(p)
}

// writeMineError maps a mining failure onto the wire: a *core.ConfigError
// is the caller's fault (400); everything else follows the score-error
// taxonomy (503 on deadline/disconnect, 500 on panic or other faults).
func (s *Server) writeMineError(w http.ResponseWriter, r *http.Request, err error) {
	var cfgErr *core.ConfigError
	if errors.As(err, &cfgErr) {
		s.writeError(w, http.StatusBadRequest, "bad_config", cfgErr.Error())
		return
	}
	s.writeScoreError(w, r, err)
}

// PointJSON is one observed or predicted position.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PredictRequest submits an observed position history, oldest first.
type PredictRequest struct {
	History []PointJSON `json:"history"`
}

// PredictResponse is the predicted next position.
type PredictResponse struct {
	Next PointJSON `json:"next"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(req.History) < 2 {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			"need at least 2 history points to predict")
		return
	}
	scored := s.Patterns()
	if len(scored) == 0 {
		// 409: the request is well-formed but the server has no patterns
		// yet — mine first (or start with -patterns), then retry.
		s.writeError(w, http.StatusConflict, "no_patterns",
			"no mined patterns installed; POST /v1/mine first")
		return
	}
	pats := make([]core.Pattern, len(scored))
	for i, sp := range scored {
		pats[i] = sp.Pattern
	}
	pp := &predict.PatternPredictor{
		Base:     predict.NewLinear(),
		Patterns: pats,
		Mode:     predict.LocationPatterns,
		Grid:     s.grid,
		Delta:    s.delta,
		Sigma:    s.sigma,
	}
	if err := pp.Validate(); err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	for _, p := range req.History {
		pp.Observe(geom.Pt(p.X, p.Y))
	}
	next := pp.Predict()
	writeJSON(w, PredictResponse{Next: PointJSON{X: next.X, Y: next.Y}})
}

// handleMetrics serves the server's whole registry stamped with build
// provenance: Prometheus text exposition by default (scrapers point here
// directly), the JSON report shape with ?format=json. A server built
// without a Metrics registry still answers — the exposition then carries
// only the build_info gauge. Unguarded like /healthz: a scrape must
// succeed precisely when the service is overloaded or draining.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := obs.NewReport(s.cfg.Metrics.Snapshot())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, rep)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WriteProm(w, rep)
}

// handleHealthz reports process liveness: if this handler runs at all,
// the answer is yes. It stays 200 during drain — liveness and readiness
// are different questions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz reports whether the server accepts new work: 503 once
// draining starts, so load balancers stop routing here before the
// listener closes, and 503 while an ingest-enabled server is still
// replaying its WAL — a process that has not rebuilt its history yet
// must not take traffic it would mis-order.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	notReady := func(reason string) {
		retryAfterHeader(w, s.cfg.RetryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": reason})
	}
	if s.admission.Draining() {
		notReady("draining")
		return
	}
	if s.ingestEnabled() && !s.ingestReady.Load() {
		notReady("replaying")
		return
	}
	writeJSON(w, map[string]any{
		"ready":    true,
		"inflight": s.admission.InFlight(),
		"queued":   s.admission.Queued(),
		"capacity": s.admission.Capacity(),
	})
}
