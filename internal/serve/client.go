package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"trajpattern/internal/retry"
	"trajpattern/internal/stat"
)

// Client default knobs. They alias the retry package's defaults — the
// backoff implementation was extracted there (the shard supervisor
// relaunches crashed workers on the same schedule) and these names stay
// for compatibility.
const (
	DefaultMaxAttempts = retry.DefaultMaxAttempts
	DefaultBaseBackoff = retry.DefaultBase
	DefaultMaxBackoff  = retry.DefaultMax
)

// APIError is a non-retryable HTTP failure decoded from the server's
// error envelope (400, 409, 500 — answers, not congestion).
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	if e == nil {
		return "serve: API error"
	}
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Code, e.Message)
}

// RetriesExhaustedError reports that every attempt failed on a retryable
// condition; Last is the final attempt's error.
type RetriesExhaustedError struct {
	Attempts int
	Last     error
}

// Error implements error.
func (e *RetriesExhaustedError) Error() string {
	if e == nil {
		return "serve: retries exhausted"
	}
	return fmt.Sprintf("serve: %d attempts exhausted: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetriesExhaustedError) Unwrap() error {
	if e == nil {
		return nil
	}
	return e.Last
}

// Client is a retrying client for trajserve. Transport errors (including
// torn responses), 429 and 503 are retried with capped exponential
// backoff plus deterministic jitter, honouring the server's Retry-After
// hint when it is longer than the computed backoff. Everything else —
// 200s, 400s, 409s, 500s — is an answer, returned immediately.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP performs the requests. Nil means http.DefaultClient. The soak
	// test injects a chaos.Transport here.
	HTTP *http.Client
	// MaxAttempts bounds total tries (first + retries). Zero means
	// DefaultMaxAttempts.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff
	// (base·2^attempt, capped). Zero means the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RNG supplies the jitter draw (uniform in [0.5, 1.5) of the
	// backoff). Nil means full backoff with no jitter — deterministic,
	// which tests want anyway.
	RNG *stat.RNG
	// Sleep waits between attempts, returning early with ctx's error if
	// it ends first. Nil means a timer-based wait. Tests inject a fake
	// to run the retry schedule without real time.
	Sleep func(ctx context.Context, d time.Duration) error

	mu sync.Mutex // guards RNG draws
}

// Score submits patterns for NM scoring.
func (c *Client) Score(ctx context.Context, req ScoreRequest) (*ScoreResponse, error) {
	var resp ScoreResponse
	if err := c.do(ctx, routeScore, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Mine runs a bounded mining request.
func (c *Client) Mine(ctx context.Context, req MineRequest) (*MineResponse, error) {
	var resp MineResponse
	if err := c.do(ctx, routeMine, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Predict submits a position history for next-position prediction.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var resp PredictResponse
	if err := c.do(ctx, routePredict, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs the request/retry loop for one call.
func (c *Client) do(ctx context.Context, route string, reqBody, out any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("serve: encode request: %w", err)
	}
	attempts := (&retry.Policy{MaxAttempts: c.MaxAttempts}).Attempts()
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.wait(ctx, attempt, last); err != nil {
				return err
			}
		}
		retryable, err := c.once(ctx, route, payload, out)
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		last = err
	}
	return &RetriesExhaustedError{Attempts: attempts, Last: last}
}

// retryAfterError carries the server's Retry-After hint through the
// retry loop so wait can honour it.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string {
	if e == nil {
		return "serve: retryable error"
	}
	return e.err.Error()
}

func (e *retryAfterError) Unwrap() error {
	if e == nil {
		return nil
	}
	return e.err
}

// once performs a single attempt. The bool reports whether the failure
// is worth retrying.
func (c *Client) once(ctx context.Context, route string, payload []byte, out any) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+route, bytes.NewReader(payload))
	if err != nil {
		return false, fmt.Errorf("serve: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, fmt.Errorf("serve: %s: %w", route, context.Cause(ctx))
		}
		return true, fmt.Errorf("serve: %s: %w", route, err)
	}
	defer resp.Body.Close()

	// Read the whole body before trusting it: a torn stream must fail
	// here as a retryable transport error, never half-decode.
	body, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBodySize))
	if err != nil {
		return true, fmt.Errorf("serve: %s: read response: %w", route, err)
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		dec := json.NewDecoder(bytes.NewReader(body))
		if err := dec.Decode(out); err != nil {
			return true, fmt.Errorf("serve: %s: decode response: %w", route, err)
		}
		return false, nil
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		apiErr := decodeAPIError(resp.StatusCode, body)
		return true, &retryAfterError{err: apiErr, after: parseRetryAfter(resp)}
	default:
		return false, decodeAPIError(resp.StatusCode, body)
	}
}

// wait sleeps the backoff for the given (1-based) retry attempt: capped
// exponential with jitter, raised to the server's Retry-After hint when
// that is longer. The schedule math lives in internal/retry; the policy
// is rebuilt from the client's knobs on every call (they may be edited
// between calls, as tests do) and the jitter draw happens under c.mu so
// concurrent calls sharing one RNG stay serialized.
func (c *Client) wait(ctx context.Context, attempt int, last error) error {
	c.mu.Lock()
	d := (&retry.Policy{Base: c.BaseBackoff, Max: c.MaxBackoff, RNG: c.RNG}).Delay(attempt)
	c.mu.Unlock()
	var ra *retryAfterError
	if errors.As(last, &ra) && ra.after > d {
		d = ra.after
	}
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: backoff wait: %w", context.Cause(ctx))
	}
}

// decodeAPIError turns an error response into an *APIError, tolerating
// bodies that are not the JSON envelope (a torn error body still yields
// a usable status).
func decodeAPIError(status int, body []byte) *APIError {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		return &APIError{Status: status, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	return &APIError{Status: status, Code: "http_error", Message: http.StatusText(status)}
}

// parseRetryAfter reads the Retry-After hint in either RFC 9110 form —
// delay-seconds (what trajserve emits) or HTTP-date. Absent or
// unparsable means no hint.
func parseRetryAfter(resp *http.Response) time.Duration {
	return retry.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
}
