package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/obs"
	"trajpattern/internal/traj"
)

// testDataset is a tiny corpus with an unmistakable repeated route, so
// mining finds real patterns fast.
func testDataset() traj.Dataset {
	var ds traj.Dataset
	for i := 0; i < 6; i++ {
		off := float64(i) * 0.001
		ds = append(ds, traj.Trajectory{
			traj.P(0.1+off, 0.1, 0.02),
			traj.P(0.3+off, 0.3, 0.02),
			traj.P(0.5+off, 0.5, 0.02),
			traj.P(0.7+off, 0.7, 0.02),
			traj.P(0.9+off, 0.9, 0.02),
		})
	}
	return ds
}

func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Dataset: testDataset(), GridN: 6, Metrics: obs.New()}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return v
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
	// A bad grid dimension must fail at construction, not at request
	// time, via the scorer's typed validation.
	_, err := NewServer(Config{Dataset: testDataset(), GridN: -3})
	if err == nil {
		t.Error("negative grid accepted")
	}
}

func TestScoreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Patterns: [][]int{{0}, {1, 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[ScoreResponse](t, resp)
	if len(out.Scores) != 2 {
		t.Fatalf("scores = %d, want 2", len(out.Scores))
	}
	// NM is a normalized measure in [0, 1] up to float rounding.
	if out.Scores[0].NM < -1e-9 || out.Scores[0].NM > 1+1e-9 {
		t.Errorf("NM out of range: %v", out.Scores[0].NM)
	}
}

func TestScoreRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"not json", `{{{`},
		{"no patterns", `{"patterns":[]}`},
		{"empty pattern", `{"patterns":[[]]}`},
		{"cell out of range", `{"patterns":[[999999]]}`},
		{"negative cell", `{"patterns":[[-1]]}`},
		{"unknown field", `{"patternz":[[1]]}`},
		{"trailing garbage", `{"patterns":[[1]]} extra`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			eb := decode[errorBody](t, resp)
			if eb.Error.Code == "" {
				t.Error("error envelope missing code")
			}
		})
	}
}

func TestMineEndpointAndPredict(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Predict before any patterns exist: 409, not 500.
	resp := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		History: []PointJSON{{X: 0.1, Y: 0.1}, {X: 0.3, Y: 0.3}, {X: 0.5, Y: 0.5}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("predict without patterns: status = %d, want 409", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 5, MaxLen: 4})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("mine status = %d: %s", resp.StatusCode, body)
	}
	mined := decode[MineResponse](t, resp)
	if len(mined.Patterns) == 0 {
		t.Fatal("mine returned no patterns")
	}
	if mined.Degraded {
		t.Errorf("unbounded mine on tiny data reported degraded: %s", mined.InterruptReason)
	}
	if len(s.Patterns()) == 0 {
		t.Fatal("mined patterns not installed for predict")
	}

	resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		History: []PointJSON{{X: 0.1, Y: 0.1}, {X: 0.3, Y: 0.3}, {X: 0.5, Y: 0.5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	pred := decode[PredictResponse](t, resp)
	// The route moves up-right; any sane prediction continues that way.
	if pred.Next.X <= 0.5 || pred.Next.Y <= 0.5 {
		t.Errorf("prediction %+v does not continue the route", pred.Next)
	}
}

func TestMineRejectsBadConfig(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=-1 status = %d, want 400", resp.StatusCode)
	}
	eb := decode[errorBody](t, resp)
	if eb.Error.Code != "bad_config" {
		t.Errorf("code = %q, want bad_config", eb.Error.Code)
	}
}

func TestMineWallTimeDegrades(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxMineWallTime = time.Nanosecond // force interruption at the first boundary
	})
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded mine status = %d, want 200", resp.StatusCode)
	}
	mined := decode[MineResponse](t, resp)
	if !mined.Degraded {
		t.Fatal("nanosecond budget did not degrade the answer")
	}
	if mined.InterruptReason == "" {
		t.Error("degraded answer carries no interrupt reason")
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	s.Admission().StartDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
	// Liveness is a different question: still 200.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", resp2.StatusCode)
	}
}

func TestDrainingEndpointsReturn503(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Patterns: [][]int{{0}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain score = %d", resp.StatusCode)
	}
	s.Admission().StartDrain()
	resp = postJSON(t, ts.URL+"/v1/score", ScoreRequest{Patterns: [][]int{{0}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining score = %d, want 503", resp.StatusCode)
	}
	eb := decode[errorBody](t, resp)
	if eb.Error.Code != "draining" {
		t.Errorf("code = %q, want draining", eb.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining response missing Retry-After")
	}
}

func TestOverloadSheds429(t *testing.T) {
	// Capacity 1, queue 1: occupy the slot and the queue directly via
	// the admission controller, then the next HTTP request must be shed
	// with 429 + Retry-After.
	s, ts := newTestServer(t, func(c *Config) {
		c.Capacity = 1
		c.MaxQueue = 1
	})
	release, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	queued := make(chan error, 1)
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		r, err := s.Admission().Acquire(qctx, 1)
		if err == nil {
			r()
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Admission().Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Patterns: [][]int{{0}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded score = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	eb := decode[errorBody](t, resp)
	if eb.Error.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", eb.Error.Code)
	}
	qcancel()
	<-queued
}

func TestPanicIsolation(t *testing.T) {
	// A request that panics the scorer must come back as a typed 500
	// and leave the server serving.
	reg := obs.New()
	var logBuf bytes.Buffer
	s, err := NewServer(Config{Dataset: testDataset(), GridN: 6, Metrics: reg, Log: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the handler with a route that panics, sharing the server's
	// middleware assembly.
	h := s.guarded("/v1/boom", time.Second, 1, func(w http.ResponseWriter, r *http.Request) {
		panic("poisoned request")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/boom", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking route = %d, want 500", rec.Code)
	}
	if !strings.Contains(logBuf.String(), "poisoned request") {
		t.Error("panic not logged")
	}
	snap := reg.Snapshot()
	if snap.Counter("serve.panics") != 1 {
		t.Errorf("serve.panics = %d, want 1", snap.Counter("serve.panics"))
	}
	if snap.Counter("serve.status.5xx") != 1 {
		t.Errorf("serve.status.5xx = %d, want 1", snap.Counter("serve.status.5xx"))
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, func(c *Config) { c.Metrics = reg })
	resp := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Patterns: [][]int{{0}}})
	io.Copy(io.Discard, resp.Body)
	snap := reg.Snapshot()
	if snap.Counter("serve.requests/v1/score") != 1 {
		t.Errorf("request counter = %d, want 1", snap.Counter("serve.requests/v1/score"))
	}
	if snap.Counter("serve.status.2xx") != 1 {
		t.Errorf("2xx counter = %d, want 1", snap.Counter("serve.status.2xx"))
	}
}

func TestClientRetriesOn429ThenSucceeds(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":{"code":"overloaded","message":"busy"}}`)
			return
		}
		io.WriteString(w, `{"scores":[{"cells":[1],"nm":0.5}]}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	out, err := c.Score(context.Background(), ScoreRequest{Patterns: [][]int{{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 1 || out.Scores[0].NM != 0.5 {
		t.Fatalf("response = %+v", out)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Retry-After of 1s dominates the 50ms/100ms backoff.
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("sleep %d = %v, want >= 1s (Retry-After honoured)", i, d)
		}
	}
}

func TestClientHonoursHTTPDateRetryAfter(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 2 {
			// HTTP-date form: ~30s in the future, which must dominate
			// the default 50ms backoff.
			w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":{"code":"overloaded","message":"busy"}}`)
			return
		}
		io.WriteString(w, `{"scores":[{"cells":[1],"nm":0.5}]}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if _, err := c.Score(context.Background(), ScoreRequest{Patterns: [][]int{{1}}}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	// The clock ticked between header construction and parsing, so allow
	// slack below the nominal 30s.
	if slept[0] < 25*time.Second || slept[0] > 30*time.Second {
		t.Errorf("sleep = %v, want ~30s (HTTP-date Retry-After honoured)", slept[0])
	}
}

func TestClientDoesNotRetryAnswers(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusConflict, http.StatusInternalServerError} {
		var calls int
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls++
			w.WriteHeader(status)
			io.WriteString(w, `{"error":{"code":"nope","message":"answer"}}`)
		}))
		c := &Client{BaseURL: ts.URL, Sleep: func(context.Context, time.Duration) error { return nil }}
		_, err := c.Score(context.Background(), ScoreRequest{Patterns: [][]int{{1}}})
		ts.Close()
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("status %d: err = %v, want *APIError", status, err)
		}
		if calls != 1 {
			t.Errorf("status %d retried: %d calls", status, calls)
		}
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"draining","message":"going away"}}`)
	}))
	defer ts.Close()
	c := &Client{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	_, err := c.Score(context.Background(), ScoreRequest{Patterns: [][]int{{1}}})
	var ex *RetriesExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("err = %v, want RetriesExhaustedError after 3", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "draining" {
		t.Errorf("exhausted error does not unwrap to the last APIError: %v", err)
	}
}

func TestClientBackoffCapsAndJitters(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	// attempt 1 → 100ms, 2 → 200ms, 3 → 400ms, 4 → capped 400ms
	wants := []time.Duration{100, 200, 400, 400}
	for i, want := range wants {
		var got time.Duration
		c.Sleep = func(ctx context.Context, d time.Duration) error { got = d; return nil }
		if err := c.wait(context.Background(), i+1, nil); err != nil {
			t.Fatal(err)
		}
		if got != want*time.Millisecond {
			t.Errorf("attempt %d backoff = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

func TestMineShardedMatchesSinglePartition(t *testing.T) {
	_, single := newTestServer(t, nil)
	ref := postJSON(t, single.URL+"/v1/mine", MineRequest{K: 4, MaxLen: 4})
	if ref.StatusCode != http.StatusOK {
		t.Fatalf("single-partition mine status = %d", ref.StatusCode)
	}
	want := decode[MineResponse](t, ref)

	s, ts := newTestServer(t, func(c *Config) { c.MineShards = 3 })
	if s.engine == nil {
		t.Fatal("MineShards=3 did not build a shard engine")
	}
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 4, MaxLen: 4})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sharded mine status = %d: %s", resp.StatusCode, body)
	}
	got := decode[MineResponse](t, resp)
	if got.Shards != 3 {
		t.Errorf("response shards = %d, want 3", got.Shards)
	}
	if got.Degraded {
		t.Errorf("sharded mine degraded: %s", got.InterruptReason)
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("sharded returned %d patterns, single %d", len(got.Patterns), len(want.Patterns))
	}
	for i := range got.Patterns {
		gk, wk := got.Patterns[i].Cells, want.Patterns[i].Cells
		if len(gk) != len(wk) {
			t.Fatalf("rank %d: %v vs %v", i, gk, wk)
		}
		for j := range gk {
			if gk[j] != wk[j] {
				t.Fatalf("rank %d: %v vs %v", i, gk, wk)
			}
		}
	}
	if len(s.Patterns()) == 0 {
		t.Error("sharded mine did not install patterns for predict")
	}
}

func TestMineShardedWeightClampedToCapacity(t *testing.T) {
	// 3 shards × default weight 4 = 12 > capacity 8: without the clamp the
	// request could never be admitted at all.
	_, ts := newTestServer(t, func(c *Config) { c.MineShards = 3 })
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 3, MaxLen: 3})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("clamped sharded mine status = %d: %s", resp.StatusCode, body)
	}
}

func TestMineShardedRejectsBadConfig(t *testing.T) {
	// The shard engine wraps per-shard errors; *core.ConfigError must still
	// unwrap into a 400.
	_, ts := newTestServer(t, func(c *Config) { c.MineShards = 2 })
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=-1 status = %d, want 400", resp.StatusCode)
	}
	eb := decode[errorBody](t, resp)
	if eb.Error.Code != "bad_config" {
		t.Errorf("code = %q, want bad_config", eb.Error.Code)
	}
}

func TestMineShardsPerCPU(t *testing.T) {
	// Negative MineShards means one shard per CPU; whatever the machine,
	// the route must answer with the same top-k semantics.
	_, ts := newTestServer(t, func(c *Config) { c.MineShards = -1 })
	resp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 3, MaxLen: 3})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("per-CPU sharded mine status = %d: %s", resp.StatusCode, body)
	}
	mined := decode[MineResponse](t, resp)
	if len(mined.Patterns) == 0 {
		t.Fatal("per-CPU sharded mine returned no patterns")
	}
}
