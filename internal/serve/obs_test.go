package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/obs"
	"trajpattern/internal/obs/slogx"
	"trajpattern/internal/trace"
)

func doScore(t *testing.T, url, requestID string) *http.Response {
	t.Helper()
	data, err := json.Marshal(ScoreRequest{Patterns: [][]int{{0}}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/score", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	return resp
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// A sane inbound X-Request-ID is echoed back verbatim.
	resp := doScore(t, ts.URL, "client-abc")
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc" {
		t.Errorf("inbound ID not echoed: %q", got)
	}

	// Without one, the server assigns its deterministic sequence.
	resp = doScore(t, ts.URL, "")
	if got := resp.Header.Get("X-Request-ID"); got != "req-00000001" {
		t.Errorf("generated ID = %q, want req-00000001", got)
	}

	// An oversized inbound ID is replaced, never echoed at length.
	resp = doScore(t, ts.URL, strings.Repeat("x", maxRequestIDLen+1))
	if got := resp.Header.Get("X-Request-ID"); got != "req-00000002" {
		t.Errorf("oversized ID response = %q, want req-00000002", got)
	}
}

func TestRequestIDReachesSpans(t *testing.T) {
	tr := trace.New()
	_, ts := newTestServer(t, func(c *Config) { c.Tracer = tr })

	resp := doScore(t, ts.URL, "score-xyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status = %d", resp.StatusCode)
	}
	mineResp := postJSON(t, ts.URL+"/v1/mine", MineRequest{K: 3, MaxLen: 3})
	if mineResp.StatusCode != http.StatusOK {
		t.Fatalf("mine status = %d", mineResp.StatusCode)
	}
	mineID := mineResp.Header.Get("X-Request-ID")
	if mineID == "" {
		t.Fatal("mine response missing X-Request-ID")
	}

	var reqSpan, minerSpan bool
	for _, ev := range tr.Events() {
		switch {
		case ev.Name == "serve.request" && ev.Attrs["request_id"] == "score-xyz":
			reqSpan = true
			if ev.Attrs["route"] != "/v1/score" {
				t.Errorf("request span route = %v", ev.Attrs["route"])
			}
			if ev.Attrs["status"] != http.StatusOK {
				t.Errorf("request span status = %v", ev.Attrs["status"])
			}
		case ev.Name == "miner.run" && ev.Attrs["request_id"] == mineID:
			// The correlation ID crossed the HTTP layer into the miner via
			// the request context, so one trace filter follows a request
			// from admission to the mining loop.
			minerSpan = true
		}
	}
	if !reqSpan {
		t.Error("no serve.request span carries the inbound request ID")
	}
	if !minerSpan {
		t.Errorf("no miner.run span carries the mine request's ID %q", mineID)
	}
}

func TestShedRequestsNotInLatencyHistogram(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, func(c *Config) {
		c.Metrics = reg
		c.Capacity = 1
		c.MaxQueue = 1
	})

	// One served request: exactly one latency observation.
	if resp := doScore(t, ts.URL, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up score = %d", resp.StatusCode)
	}

	// Occupy the only slot and the only queue seat, then shed a request.
	release, err := s.Admission().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	qctx, qcancel := context.WithCancel(context.Background())
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		if r, err := s.Admission().Acquire(qctx, 1); err == nil {
			r()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Admission().Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if resp := doScore(t, ts.URL, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded score = %d, want 429", resp.StatusCode)
	}
	qcancel()
	<-queued

	snap := reg.Snapshot()
	if got := snap.Counters["serve.requests/v1/score"]; got != 2 {
		t.Errorf("request counter = %d, want 2", got)
	}
	if got := snap.Counters["serve.shed"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// The 429 was counted and status-classed but never entered the latency
	// distribution: shed rejections are constant-time and would drag the
	// percentiles toward zero exactly when the server is overloaded.
	if got := snap.Histograms["serve.latency/v1/score"].Count; got != 1 {
		t.Errorf("latency count = %d, want 1 (shed request observed)", got)
	}
	if got := snap.Counters["serve.status.4xx"]; got != 1 {
		t.Errorf("4xx counter = %d, want 1", got)
	}
}

func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slogx.New(slogx.Options{Format: "json", W: &buf, OmitTime: true})
	_, ts := newTestServer(t, func(c *Config) { c.Logger = logger })

	if resp := doScore(t, ts.URL, "log-me"); resp.StatusCode != http.StatusOK {
		t.Fatalf("score status = %d", resp.StatusCode)
	}

	var rec struct {
		Msg       string  `json:"msg"`
		Route     string  `json:"route"`
		RequestID string  `json:"request_id"`
		Status    int     `json:"status"`
		Duration  float64 `json:"duration"`
	}
	line, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("request log is not one JSON record: %v (%q)", err, line)
	}
	if rec.Msg != "request" || rec.Route != "/v1/score" ||
		rec.RequestID != "log-me" || rec.Status != http.StatusOK {
		t.Errorf("request record = %+v", rec)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, func(c *Config) { c.Metrics = reg })
	if resp := doScore(t, ts.URL, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("score status = %d", resp.StatusCode)
	}

	// Default: Prometheus text exposition with the exact content type.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateProm(bytes.NewReader(body)); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "serve_latency_v1_score_bucket") {
		t.Errorf("route latency histogram missing from exposition:\n%s", body)
	}

	// ?format=json: the provenance-stamped report.
	resp2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var rep obs.Report
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Metrics.Counters["serve.requests/v1/score"] != 1 {
		t.Errorf("report counters = %v", rep.Metrics.Counters)
	}
}

// TestServeMetricsDuringDrain pins the scrape contract under duress: the
// unguarded /metrics route keeps answering valid expositions while the
// admission controller is draining and every API route is refusing work.
func TestServeMetricsDuringDrain(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, func(c *Config) { c.Metrics = reg })
	s.Admission().StartDrain()

	if resp := doScore(t, ts.URL, ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining score = %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining metrics status = %d, want 200", resp.StatusCode)
	}
	if err := obs.ValidateProm(resp.Body); err != nil {
		t.Errorf("draining exposition invalid: %v", err)
	}
}
