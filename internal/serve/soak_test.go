package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trajpattern/internal/obs"
	"trajpattern/internal/serve/chaos"
	"trajpattern/internal/stat"
	"trajpattern/internal/testutil/leakcheck"
)

// TestSoakOverloadedServer is the package's central robustness claim: N
// concurrent retrying clients hammering a server with far less admission
// capacity, through a fault-injecting transport that drops, stalls and
// tears responses, observe only clean outcomes — 200s with decodable
// JSON, typed 429/503 shedding, or transport errors the chaos layer
// itself injected. No request hangs, nothing half-parses, and after the
// drain no goroutines are left behind.
func TestSoakOverloadedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	leak := leakcheck.Take()

	reg := obs.New()
	s, err := NewServer(Config{
		Dataset:       testDataset(),
		GridN:         6,
		Capacity:      4,
		MaxQueue:      4,
		RetryAfter:    10 * time.Millisecond,
		ScoreDeadline: 5 * time.Second,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const (
		clients  = 16
		requests = 25
	)
	var (
		mu         sync.Mutex
		statusSeen = map[int]int{}
		transport  = map[string]int{} // transport-level failure tallies
		ok         int
	)
	record := func(err error) error {
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			ok++
			statusSeen[http.StatusOK]++
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			statusSeen[apiErr.Status]++
			if apiErr.Status != http.StatusTooManyRequests &&
				apiErr.Status != http.StatusServiceUnavailable {
				return fmt.Errorf("forbidden status %d: %w", apiErr.Status, err)
			}
			return nil
		}
		// Not an HTTP answer: must be chaos-injected transport trouble
		// (disconnects, torn bodies failing to decode, stalled requests
		// hitting their deadline) — never a hang or a silent half-parse.
		transport[fmt.Sprintf("%.40s", err.Error())]++
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr := &chaos.Transport{
				PDisconnect: 0.10,
				PStall:      0.10,
				Stall:       10 * time.Millisecond,
				PTornBody:   0.10,
				TornBytes:   16,
				RNG:         stat.NewRNG(uint64(1000 + id)),
			}
			httpc := &http.Client{Transport: tr, Timeout: 10 * time.Second}
			c := &Client{
				BaseURL:     ts.URL,
				HTTP:        httpc,
				MaxAttempts: 3,
				RNG:         stat.NewRNG(uint64(id)),
				Sleep: func(ctx context.Context, d time.Duration) error {
					// Compress real time: the schedule shape is covered by
					// unit tests; the soak cares about concurrency.
					timer := time.NewTimer(time.Millisecond)
					defer timer.Stop()
					select {
					case <-timer.C:
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				},
			}
			for r := 0; r < requests; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := c.Score(ctx, ScoreRequest{Patterns: [][]int{{r % 36}, {(r + 1) % 36, (r + 2) % 36}}})
				cancel()
				if verr := record(err); verr != nil {
					errs <- verr
					return
				}
			}
			tr.Inner = nil
			httpc.CloseIdleConnections()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if ok == 0 {
		t.Fatal("soak produced zero successful requests — nothing was actually exercised")
	}
	t.Logf("soak outcomes: statuses=%v transport=%v", statusSeen, transport)

	// Drain: every subsequent request must be a clean 503.
	s.Admission().StartDrain()
	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
	if s.Admission().InFlight() != 0 {
		t.Errorf("in-flight weight after soak = %d, want 0", s.Admission().InFlight())
	}

	ts.CloseClientConnections()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	// Goroutine-leak check: after the server is gone, every goroutine the
	// test spawned must be gone too. leakcheck polls with a deadline —
	// lingering net/http conns take a moment to unwind — and names each
	// survivor by stack instead of reporting a bare count delta.
	if leaked := leak.Wait(10 * time.Second); len(leaked) > 0 {
		for _, g := range leaked {
			t.Errorf("goroutine leaked after soak:\n%s", g.Stack)
		}
	}

	snap := reg.Snapshot()
	if snap.Counter("serve.requests/v1/score") == 0 {
		t.Error("no requests recorded in metrics")
	}
}

// TestSoakMetricsConformance scrapes /metrics continuously while
// concurrent clients load the server, validating every response against
// the strict Prometheus text-format checker: the scrape contract must
// hold mid-flight — half-written families or broken escaping under
// concurrent updates would fail here, not in a monitoring stack.
func TestSoakMetricsConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	defer leakcheck.Check(t)()
	reg := obs.New()
	s, err := NewServer(Config{
		Dataset:       testDataset(),
		GridN:         6,
		Capacity:      2,
		MaxQueue:      2,
		RetryAfter:    10 * time.Millisecond,
		ScoreDeadline: 5 * time.Second,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer http.DefaultClient.CloseIdleConnections()

	const (
		clients  = 8
		requests = 20
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				body := fmt.Sprintf(`{"patterns":[[%d],[%d,%d]]}`, r%36, (r+1)%36, (r+2)%36)
				resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(body))
				if err != nil {
					continue // outcome mix is TestSoakOverloadedServer's business
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
				resp.Body.Close()
			}
		}(i)
	}
	loadDone := make(chan struct{})
	go func() { wg.Wait(); close(loadDone) }()

	scrapes, finals := 0, 0
	for finals < 1 {
		select {
		case <-loadDone:
			// One more scrape after the load stops, so the validated set
			// includes the settled end state as well as mid-flight ones.
			finals++
		default:
		}
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			t.Fatalf("scrape %d Content-Type = %q, want %q", scrapes, ct, obs.PromContentType)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if verr := obs.ValidateProm(bytes.NewReader(body)); verr != nil {
			t.Fatalf("scrape %d is not valid Prometheus exposition: %v\n%s", scrapes, verr, body)
		}
		scrapes++
		if finals > 0 {
			// The settled exposition must carry the request-to-shard
			// telemetry families this PR promises scrapers.
			for _, want := range []string{
				"serve_requests_v1_score",
				"serve_latency_v1_score_bucket",
				"serve_queue_wait_count",
				"serve_queue_depth_max",
				"trajpattern_build_info",
			} {
				if !strings.Contains(string(body), want) {
					t.Errorf("final scrape missing %s:\n%s", want, body)
				}
			}
		}
	}
	t.Logf("validated %d scrapes under load", scrapes)
}
