package guard

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// PanicError reports a panic recovered inside an HTTP handler, the serving
// counterpart of core.ScorePanicError: one poisoned request must not kill
// the process or wedge the listener, so the panic is captured with its
// stack as a typed value and answered as a 500.
type PanicError struct {
	Route string // the route whose handler panicked
	Value any    // the recovered panic value
	Stack string // goroutine stack captured at the recovery point
}

// Error implements error.
func (e *PanicError) Error() string {
	if e == nil {
		return "guard: handler panicked"
	}
	return fmt.Sprintf("guard: handler for %s panicked: %v", e.Route, e.Value)
}

// Recover wraps h so a handler panic is recovered per request: the typed
// *PanicError is handed to onPanic (nil is fine), and a 500 is written if
// the handler had not started a response — a half-written response cannot
// be rescued, so it is left for the client's decoder to reject.
// http.ErrAbortHandler is re-panicked: it is net/http's own abort
// protocol, not a handler fault.
func Recover(route string, onPanic func(*PanicError), h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := NewStatusRecorder(w)
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			pe := &PanicError{Route: route, Value: v, Stack: string(debug.Stack())}
			if onPanic != nil {
				onPanic(pe)
			}
			if !sw.Wrote() {
				http.Error(sw, "internal error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// WithDeadline wraps h so every request's context carries deadline d,
// propagated into whatever the handler calls (the miner's context
// plumbing interrupts at iteration boundaries). The cancellation cause
// names the route so interrupt reasons in responses and traces say which
// bound fired. d <= 0 leaves h untouched. A client disconnect already
// cancels r.Context() via net/http; this adds the server-side bound on
// top.
func WithDeadline(route string, d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeoutCause(r.Context(), d,
			fmt.Errorf("guard: %s deadline %v exceeded", route, d))
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// StatusRecorder wraps a ResponseWriter and records whether and with what
// status the response started, so middleware can decide after the handler
// whether a 500 can still be written and metrics can count status
// classes. All methods are safe on a nil receiver.
type StatusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

// NewStatusRecorder wraps w. If w is already a *StatusRecorder it is
// returned as is, so stacked middleware shares one recorder.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	if sw, ok := w.(*StatusRecorder); ok {
		return sw
	}
	return &StatusRecorder{ResponseWriter: w}
}

// WriteHeader implements http.ResponseWriter.
func (s *StatusRecorder) WriteHeader(code int) {
	if s == nil {
		return
	}
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer, counting an implicit 200.
func (s *StatusRecorder) Write(b []byte) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("guard: Write on nil StatusRecorder")
	}
	if !s.wrote {
		s.status = http.StatusOK
		s.wrote = true
	}
	return s.ResponseWriter.Write(b)
}

// Status returns the first status written, or 0 if none yet (0 on nil).
func (s *StatusRecorder) Status() int {
	if s == nil {
		return 0
	}
	return s.status
}

// Wrote reports whether the response has started (false on nil).
func (s *StatusRecorder) Wrote() bool {
	if s == nil {
		return false
	}
	return s.wrote
}
