// Package guard implements the robustness core of the trajserve service:
// a weighted-semaphore admission controller with a bounded FIFO wait queue
// and typed load-shedding errors, per-route deadline propagation into the
// miner's context plumbing, a panic-to-500 recovery middleware with typed
// capture (mirroring core.ScorePanicError), and the building blocks of the
// two-stage SIGTERM drain.
//
// The package is mechanism only — it knows nothing about the service's
// JSON envelope or routes, so any handler can sit behind it. Every
// exported pointer-receiver method is a no-op on a nil receiver (the same
// contract as internal/obs and internal/trace, enforced by trajlint's
// nilguard): a nil *Admission admits everything, so callers hold an
// optional controller without guards.
package guard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"trajpattern/internal/obs"
)

// ShedError reports that a request was load-shed at admission: the wait
// queue is full, or the request can never fit the capacity. The HTTP layer
// maps it to 429 Too Many Requests with a Retry-After header, the
// contract the retrying client relies on.
type ShedError struct {
	// Reason says why the request was shed ("wait queue full", ...).
	Reason string
	// Queued and MaxQueue report the queue state at the shed decision.
	Queued, MaxQueue int
	// RetryAfter is the server's backoff hint for the client.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	if e == nil {
		return "guard: overloaded"
	}
	return fmt.Sprintf("guard: overloaded: %s (queued %d/%d, retry after %v)",
		e.Reason, e.Queued, e.MaxQueue, e.RetryAfter)
}

// DrainError reports that the server is draining and accepts no new work.
// The HTTP layer maps it to 503 Service Unavailable.
type DrainError struct{}

// Error implements error.
func (e *DrainError) Error() string { return "guard: server draining" }

// waiter is one queued acquisition. ready is buffered so a grant or a
// drain notification never blocks the granting goroutine, even when the
// waiter has already abandoned the wait.
type waiter struct {
	weight int64
	ready  chan error
}

// Admission is a weighted-semaphore admission controller with a bounded
// FIFO wait queue. A request Acquires a weight (heavier routes reserve
// more of the capacity), waits queued if the semaphore is full, and is
// shed with a typed error when the queue itself is full — bounding both
// concurrency and queueing delay, the two quantities an overloaded server
// must not let grow without bound.
//
// All methods are safe for concurrent use; a nil *Admission admits
// everything immediately.
type Admission struct {
	mu         sync.Mutex
	capacity   int64 // <= 0 means unlimited
	maxQueue   int
	retryAfter time.Duration
	inflight   int64
	waiters    []*waiter
	draining   bool
	shed       int64 // requests rejected with ShedError or DrainError
	metrics    AdmissionMetrics
}

// AdmissionMetrics receives the controller's queue telemetry. Every
// handle is optional (each is nil-safe per the obs contract), so the zero
// value disables instrumentation entirely.
type AdmissionMetrics struct {
	// Depth tracks the current wait-queue length.
	Depth *obs.Gauge
	// DepthMax tracks the queue-length high-water mark (via SetMax).
	DepthMax *obs.Gauge
	// Wait observes the queue wait of every successful admission, in
	// seconds — immediate admissions observe ~0, so the histogram's count
	// equals the number of admitted acquisitions.
	Wait *obs.Histogram
}

// Instrument attaches telemetry handles to the controller. Call before
// serving traffic; a nil receiver is a no-op.
func (a *Admission) Instrument(m AdmissionMetrics) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.metrics = m
	a.mu.Unlock()
}

// noteQueueLocked publishes the current queue depth. Caller holds a.mu.
func (a *Admission) noteQueueLocked() {
	n := int64(len(a.waiters))
	a.metrics.Depth.Set(n)
	a.metrics.DepthMax.SetMax(n)
}

// NewAdmission returns a controller admitting up to capacity units of
// in-flight weight with at most maxQueue queued acquisitions. capacity
// <= 0 means unlimited (only draining rejects); maxQueue < 0 means an
// unbounded queue. retryAfter is the backoff hint carried by ShedErrors.
func NewAdmission(capacity int64, maxQueue int, retryAfter time.Duration) *Admission {
	return &Admission{capacity: capacity, maxQueue: maxQueue, retryAfter: retryAfter}
}

// Acquire admits weight units of work, waiting in FIFO order behind the
// bounded queue if the semaphore is full. It returns an idempotent release
// function on success. Failure is typed: *ShedError when the queue is full
// (or the weight can never fit), *DrainError when the controller is
// draining, and the context's cause when ctx ends while queued. weight < 1
// counts as 1.
func (a *Admission) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	start := time.Now()
	a.mu.Lock()
	wait := a.metrics.Wait
	if a.draining {
		a.shed++
		a.mu.Unlock()
		return nil, &DrainError{}
	}
	if a.capacity <= 0 {
		a.inflight += weight
		a.mu.Unlock()
		wait.ObserveDuration(time.Since(start))
		return a.releaseFunc(weight), nil
	}
	if weight > a.capacity {
		a.shed++
		a.mu.Unlock()
		return nil, &ShedError{
			Reason:     fmt.Sprintf("weight %d exceeds capacity %d", weight, a.capacity),
			MaxQueue:   a.maxQueue,
			RetryAfter: a.retryAfter,
		}
	}
	// Admit immediately only when no one is queued ahead: capacity that
	// frees up belongs to the queue head, or FIFO order would starve
	// heavy requests.
	if len(a.waiters) == 0 && a.inflight+weight <= a.capacity {
		a.inflight += weight
		a.mu.Unlock()
		wait.ObserveDuration(time.Since(start))
		return a.releaseFunc(weight), nil
	}
	if a.maxQueue >= 0 && len(a.waiters) >= a.maxQueue {
		queued := len(a.waiters)
		a.shed++
		a.mu.Unlock()
		return nil, &ShedError{
			Reason:     "wait queue full",
			Queued:     queued,
			MaxQueue:   a.maxQueue,
			RetryAfter: a.retryAfter,
		}
	}
	w := &waiter{weight: weight, ready: make(chan error, 1)}
	a.waiters = append(a.waiters, w)
	a.noteQueueLocked()
	a.mu.Unlock()

	select {
	case gerr := <-w.ready:
		if gerr != nil {
			return nil, gerr
		}
		wait.ObserveDuration(time.Since(start))
		return a.releaseFunc(weight), nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, x := range a.waiters {
			if x == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.noteQueueLocked()
				a.mu.Unlock()
				return nil, fmt.Errorf("guard: admission wait: %w", context.Cause(ctx))
			}
		}
		a.mu.Unlock()
		// No longer queued: a grant or drain notice raced the
		// cancellation. Consume it so an already-granted slot is not
		// leaked.
		if gerr := <-w.ready; gerr == nil {
			a.release(weight)
		}
		return nil, fmt.Errorf("guard: admission wait: %w", context.Cause(ctx))
	}
}

// releaseFunc wraps release in a sync.Once so double-releasing a slot (a
// handler bug) cannot corrupt the accounting.
func (a *Admission) releaseFunc(weight int64) func() {
	var once sync.Once
	return func() { once.Do(func() { a.release(weight) }) }
}

// release returns weight units and grants queued waiters in FIFO order
// while they fit. The grant loop stops at the first waiter that does not
// fit — deliberate head-of-line fairness, so a heavy request queued first
// is never starved by lighter requests slipping past it.
func (a *Admission) release(weight int64) {
	a.mu.Lock()
	a.inflight -= weight
	granted := false
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.capacity > 0 && a.inflight+w.weight > a.capacity {
			break
		}
		a.inflight += w.weight
		a.waiters = a.waiters[1:]
		granted = true
		w.ready <- nil
	}
	if granted {
		a.noteQueueLocked()
	}
	a.mu.Unlock()
}

// StartDrain flips the controller into draining: every queued waiter
// fails with *DrainError now, and every future Acquire is rejected the
// same way. In-flight work is unaffected — it releases normally, which is
// what the two-stage shutdown waits for. StartDrain is idempotent.
func (a *Admission) StartDrain() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.draining = true
	ws := a.waiters
	a.waiters = nil
	a.shed += int64(len(ws))
	a.noteQueueLocked()
	a.mu.Unlock()
	for _, w := range ws {
		w.ready <- &DrainError{}
	}
}

// Draining reports whether StartDrain has been called (false on nil).
func (a *Admission) Draining() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// InFlight returns the admitted weight currently held (0 on nil).
func (a *Admission) InFlight() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Queued returns the number of acquisitions waiting (0 on nil).
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// Shed returns how many acquisitions have been rejected (0 on nil).
func (a *Admission) Shed() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// Capacity returns the configured capacity (0 on nil).
func (a *Admission) Capacity() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}
