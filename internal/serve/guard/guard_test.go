package guard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trajpattern/internal/obs"
)

func TestNilAdmissionAdmitsEverything(t *testing.T) {
	var a *Admission
	release, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("nil Admission rejected: %v", err)
	}
	release()
	a.StartDrain()
	if a.Draining() || a.InFlight() != 0 || a.Queued() != 0 || a.Shed() != 0 || a.Capacity() != 0 {
		t.Error("nil Admission accessors must return zero values")
	}
}

func TestAdmissionImmediate(t *testing.T) {
	a := NewAdmission(4, 2, time.Second)
	r1, err := a.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	r2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r1() // double release must be a no-op
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionWeightBelowOne(t *testing.T) {
	a := NewAdmission(2, 0, 0)
	release, err := a.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got := a.InFlight(); got != 1 {
		t.Fatalf("weight 0 admitted as %d units, want 1", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 1, 250*time.Millisecond)
	release, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background(), 1)
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })

	// Queue is full: this one must shed with the typed error.
	_, err = a.Acquire(context.Background(), 1)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("queue-full Acquire = %v, want *ShedError", err)
	}
	if shed.RetryAfter != 250*time.Millisecond || shed.Queued != 1 || shed.MaxQueue != 1 {
		t.Errorf("ShedError fields = %+v", shed)
	}
	if a.Shed() != 1 {
		t.Errorf("Shed count = %d, want 1", a.Shed())
	}

	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter failed after release: %v", err)
	}
}

func TestAdmissionOverweightSheds(t *testing.T) {
	a := NewAdmission(2, 10, 0)
	_, err := a.Acquire(context.Background(), 3)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overweight Acquire = %v, want *ShedError", err)
	}
	if !strings.Contains(shed.Error(), "exceeds capacity") {
		t.Errorf("reason not explained: %v", shed)
	}
}

func TestAdmissionFIFOHeadOfLine(t *testing.T) {
	// A heavy waiter queued first must not be starved by a light waiter
	// queued second, even when the light one would fit.
	a := NewAdmission(2, 10, 0)
	r0, err := a.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r, err := a.Acquire(context.Background(), 2)
		if err != nil {
			t.Errorf("heavy waiter: %v", err)
			return
		}
		order <- "heavy"
		r()
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })
	go func() {
		defer wg.Done()
		r, err := a.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("light waiter: %v", err)
			return
		}
		order <- "light"
		r()
	}()
	waitFor(t, func() bool { return a.Queued() == 2 })

	r0()
	wg.Wait()
	if first := <-order; first != "heavy" {
		t.Errorf("first grant went to %q, want heavy (FIFO)", first)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 10, 0)
	release, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })
	boom := errors.New("client went away")
	cancel(boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("cancelled Acquire = %v, want cause %v", err, boom)
	}
	if a.Queued() != 0 {
		t.Error("cancelled waiter left in queue")
	}
	// Capacity must be intact: the next acquire succeeds after release.
	release()
	if r, err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("capacity leaked after cancellation: %v", err)
	} else {
		r()
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(1, 10, 0)
	release, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), 1)
		queued <- err
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })

	a.StartDrain()
	a.StartDrain() // idempotent
	var drain *DrainError
	if err := <-queued; !errors.As(err, &drain) {
		t.Fatalf("queued waiter during drain = %v, want *DrainError", err)
	}
	if _, err := a.Acquire(context.Background(), 1); !errors.As(err, &drain) {
		t.Fatalf("Acquire during drain = %v, want *DrainError", err)
	}
	// In-flight work is unaffected and still releases cleanly.
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight during drain = %d, want 1", got)
	}
	release()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after drained release = %d, want 0", got)
	}
}

func TestAdmissionUnlimitedCapacity(t *testing.T) {
	a := NewAdmission(0, 0, 0)
	var rs []func()
	for i := 0; i < 50; i++ {
		r, err := a.Acquire(context.Background(), 1000)
		if err != nil {
			t.Fatalf("unlimited capacity rejected at %d: %v", i, err)
		}
		rs = append(rs, r)
	}
	for _, r := range rs {
		r()
	}
	if a.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", a.InFlight())
	}
}

func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission(4, 64, 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var peak int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			release, err := a.Acquire(context.Background(), w)
			if err != nil {
				t.Errorf("stress Acquire: %v", err)
				return
			}
			mu.Lock()
			if in := a.InFlight(); in > peak {
				peak = in
			}
			mu.Unlock()
			release()
		}(int64(i%3 + 1))
	}
	wg.Wait()
	if peak > 4 {
		t.Errorf("in-flight weight peaked at %d, capacity 4", peak)
	}
	if a.InFlight() != 0 {
		t.Errorf("InFlight after stress = %d, want 0", a.InFlight())
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var captured *PanicError
	h := Recover("/boom", func(pe *PanicError) { captured = pe },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("kaboom")
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if captured == nil {
		t.Fatal("panic not captured")
	}
	if captured.Route != "/boom" || captured.Value != "kaboom" {
		t.Errorf("PanicError = %+v", captured)
	}
	if !strings.Contains(captured.Stack, "guard_test.go") {
		t.Error("stack does not point at the panicking handler")
	}
	if !strings.Contains(captured.Error(), "/boom") {
		t.Errorf("Error() = %q, want route mentioned", captured.Error())
	}
}

func TestRecoverLeavesStartedResponseAlone(t *testing.T) {
	h := Recover("/partial", nil,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"partial":`)
			panic("mid-body")
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/partial", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status rewritten to %d after body started", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "internal error") {
		t.Error("error text appended to a started response body")
	}
}

func TestRecoverRepanicsAbortHandler(t *testing.T) {
	h := Recover("/abort", nil,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic(http.ErrAbortHandler)
		}))
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler re-panicked", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
}

func TestWithDeadlinePropagates(t *testing.T) {
	var deadlineSet bool
	var cause error
	h := WithDeadline("/v1/mine", 5*time.Millisecond,
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, deadlineSet = r.Context().Deadline()
			<-r.Context().Done()
			cause = context.Cause(r.Context())
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/mine", nil))
	if !deadlineSet {
		t.Fatal("no deadline on request context")
	}
	if cause == nil || !strings.Contains(cause.Error(), "/v1/mine") {
		t.Errorf("cancellation cause %v does not name the route", cause)
	}
}

func TestWithDeadlineZeroIsPassThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("deadline set despite d <= 0")
		}
	})
	WithDeadline("/x", 0, inner).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
}

func TestStatusRecorder(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := NewStatusRecorder(rec)
	if sw.Wrote() || sw.Status() != 0 {
		t.Error("fresh recorder claims a write")
	}
	if NewStatusRecorder(sw) != sw {
		t.Error("double wrap allocated a new recorder")
	}
	if _, err := sw.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if !sw.Wrote() || sw.Status() != http.StatusOK {
		t.Errorf("implicit 200 not recorded: wrote=%v status=%d", sw.Wrote(), sw.Status())
	}
	sw.WriteHeader(http.StatusTeapot) // late WriteHeader must not change the record
	if sw.Status() != http.StatusOK {
		t.Errorf("late WriteHeader overwrote status: %d", sw.Status())
	}

	var nilSW *StatusRecorder
	if nilSW.Wrote() || nilSW.Status() != 0 {
		t.Error("nil recorder accessors must return zero values")
	}
	nilSW.WriteHeader(200)
	if _, err := nilSW.Write(nil); err == nil {
		t.Error("nil recorder Write must error, not panic")
	}
}

// waitFor polls until cond holds, failing the test after a bounded wait.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueTelemetryUnderLoad(t *testing.T) {
	reg := obs.New()
	a := NewAdmission(1, 64, time.Millisecond)
	a.Instrument(AdmissionMetrics{
		Depth:    reg.Gauge("serve.queue.depth"),
		DepthMax: reg.Gauge("serve.queue.depth.max"),
		Wait:     reg.Histogram("serve.queue.wait"),
	})

	// Hold the only slot so every concurrent acquisition below must queue:
	// the high-water mark is then exact, not scheduling-dependent.
	hold, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("queued acquire failed: %v", err)
				return
			}
			release()
		}()
	}
	waitFor(t, func() bool { return a.Queued() == n })
	hold()
	wg.Wait()

	snap := reg.Snapshot()
	// Every successful acquisition — the immediate holder plus the n queued
	// grants — observes the wait histogram exactly once.
	if got := snap.Histograms["serve.queue.wait"].Count; got != n+1 {
		t.Errorf("queue.wait count = %d, want %d", got, n+1)
	}
	if hw := snap.Gauges["serve.queue.depth.max"]; hw != n {
		t.Errorf("queue depth high-water = %d, want %d", hw, n)
	}
	if depth := snap.Gauges["serve.queue.depth"]; depth != 0 {
		t.Errorf("final queue depth = %d, want 0", depth)
	}
}

func TestAdmissionShedNotObservedInWait(t *testing.T) {
	reg := obs.New()
	a := NewAdmission(1, 0, time.Millisecond) // no queue: overflow sheds at once
	a.Instrument(AdmissionMetrics{Wait: reg.Histogram("serve.queue.wait")})

	release, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var shed *ShedError
	if _, err := a.Acquire(context.Background(), 1); !errors.As(err, &shed) {
		t.Fatalf("full admission returned %v, want *ShedError", err)
	}
	release()

	// Only the admitted acquisition was observed: a shed request never had
	// a queue wait, so it must not deflate the distribution.
	if got := reg.Snapshot().Histograms["serve.queue.wait"].Count; got != 1 {
		t.Errorf("queue.wait count = %d, want 1", got)
	}
}
