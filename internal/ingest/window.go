package ingest

import (
	"math"
	"sort"
)

// WindowLimits bounds each object's sliding window. Both bounds may be
// active at once; eviction is oldest-first and deterministic: a window's
// contents are a pure function of the record sequence applied to it,
// which is what makes crash-replay convergence checkable byte for byte.
type WindowLimits struct {
	// MaxRecords caps how many records one object retains. Zero means
	// DefaultMaxRecords.
	MaxRecords int
	// MaxAge evicts records older than MaxAge time units behind the
	// object's latest report (the paper's time axis is unitless model
	// time, so the bound is a float64 span, not a Duration). Zero means
	// no age bound.
	MaxAge float64
}

// DefaultMaxRecords is the per-object record cap when WindowLimits leaves
// it zero: enough history for the synchronization schedule of §3.1 to
// cover several mining windows, small enough that a runaway object
// cannot hold the WAL hostage.
const DefaultMaxRecords = 256

// objWindow is one object's retained reports, oldest first.
type objWindow struct {
	recs []Record
}

// Windows holds every object's sliding window. It is NOT safe for
// concurrent use; the pipeline serializes access through its own mutex.
type Windows struct {
	limits WindowLimits
	byObj  map[string]*objWindow
	total  int
}

// NewWindows returns empty windows under the given limits.
func NewWindows(limits WindowLimits) *Windows {
	if limits.MaxRecords <= 0 {
		limits.MaxRecords = DefaultMaxRecords
	}
	return &Windows{limits: limits, byObj: make(map[string]*objWindow)}
}

// LastTime returns the object's most recent report time, with ok=false
// for an object with no retained reports. The pipeline's order check
// compares incoming reports against it.
func (w *Windows) LastTime(obj string) (float64, bool) {
	ow := w.byObj[obj]
	if ow == nil || len(ow.recs) == 0 {
		return 0, false
	}
	return ow.recs[len(ow.recs)-1].Time, true
}

// Apply admits one record (already validated and in order) and evicts
// whatever the limits displace: oldest records beyond MaxRecords, then
// records more than MaxAge behind the object's new latest time.
func (w *Windows) Apply(r Record) {
	ow := w.byObj[r.Obj]
	if ow == nil {
		ow = &objWindow{}
		w.byObj[r.Obj] = ow
	}
	ow.recs = append(ow.recs, r)
	w.total++
	cut := 0
	if over := len(ow.recs) - w.limits.MaxRecords; over > cut {
		cut = over
	}
	if w.limits.MaxAge > 0 {
		horizon := r.Time - w.limits.MaxAge
		for cut < len(ow.recs)-1 && ow.recs[cut].Time < horizon {
			cut++
		}
	}
	if cut > 0 {
		// Copy down rather than reslice so evicted records do not pin
		// the backing array forever.
		n := copy(ow.recs, ow.recs[cut:])
		ow.recs = ow.recs[:n]
		w.total -= cut
	}
}

// MinLiveSeq returns the smallest sequence number any window still
// retains, and ok=false when every window is empty. WAL segments whose
// records all precede it are dead and prunable.
func (w *Windows) MinLiveSeq() (uint64, bool) {
	min, ok := uint64(math.MaxUint64), false
	for _, ow := range w.byObj {
		if len(ow.recs) == 0 {
			continue
		}
		if s := ow.recs[0].Seq; !ok || s < min {
			min, ok = s, true
		}
	}
	return min, ok
}

// Objects returns how many objects currently retain at least one record.
func (w *Windows) Objects() int {
	n := 0
	for _, ow := range w.byObj {
		if len(ow.recs) > 0 {
			n++
		}
	}
	return n
}

// Records returns the total retained record count across all objects.
func (w *Windows) Records() int { return w.total }

// ObjectWindow is the snapshot form of one object's window.
type ObjectWindow struct {
	Obj     string   `json:"obj"`
	Records []Record `json:"records"`
}

// Snapshot returns a deep copy of every non-empty window, sorted by
// object ID — deterministic, so two processes that applied the same
// record sequence produce DeepEqual snapshots. The chaos suite leans on
// exactly that to prove replay convergence.
func (w *Windows) Snapshot() []ObjectWindow {
	out := make([]ObjectWindow, 0, len(w.byObj))
	for obj, ow := range w.byObj {
		if len(ow.recs) == 0 {
			continue
		}
		out = append(out, ObjectWindow{Obj: obj, Records: append([]Record(nil), ow.recs...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}
