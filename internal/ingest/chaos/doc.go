// Package chaos is the fault-injection harness for durable streaming
// ingest. It holds no production code: the package's tests re-exec the
// test binary itself as a live trajserve process (TestMain diverts to a
// serve.Run entry point when INGESTCHAOS_CHILD=1), drive real HTTP
// /v1/ingest traffic at it, and inject one failure mode per scenario —
// SIGKILL racing in-flight requests, a record torn in half at the log
// tail by the crash, a stalled fsync backing traffic up into the shed
// path — then assert the durability contract: every acknowledged report
// survives the restart, replay rebuilds byte-identical windows (and a
// byte-identical mined top-k), exactly one torn tail record is skipped
// and metered, and overload is shed with typed errors rather than lost
// acknowledgements.
package chaos
