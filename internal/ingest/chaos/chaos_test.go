package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"trajpattern/internal/faultio"
	"trajpattern/internal/ingest"
	"trajpattern/internal/obs"
	"trajpattern/internal/testutil/leakcheck"
)

// TestKillRacingInFlightIngestLosesNoAck fires SIGKILL at a live server
// while a client is mid-stream, so the crash races in-flight requests
// arbitrarily: killed between fsync and response, a report may be
// durable without its 200. The contract under that race is one-sided —
// every acknowledged report survives the restart; anything extra in the
// replayed windows must be a report we actually sent, in per-object
// time order.
func TestKillRacingInFlightIngestLosesNoAck(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	dir := t.TempDir()
	const window = 64
	c := startChild(t, dir, window)

	sent := make(map[string]bool)
	var acked []ingest.Record
	for i := 0; i < 150; i++ {
		r := ingest.Record{
			Obj:  fmt.Sprintf("obj-%d", i%3),
			Time: float64(i/3 + 1),
			X:    0.01 * float64(i),
			Y:    0.02 * float64(i),
		}
		sent[recKey(r)] = true
		code, err := c.ingestRecord(r)
		if err != nil {
			break // the kill landed mid-request
		}
		if code != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, code)
		}
		acked = append(acked, r)
		if len(acked) == 25 {
			go c.kill() // crash now, racing the sends that follow
		}
	}
	if len(acked) < 25 {
		t.Fatalf("child died after only %d acks; the kill fired too early", len(acked))
	}
	c.kill() // no-op if the race already delivered it

	// The restarted server replays the log before flipping ready.
	c2 := startChild(t, dir, window)
	st := c2.status()
	replayed := make(map[string]bool)
	for _, ow := range st.Windows {
		last := -1.0
		for _, r := range ow.Records {
			if r.Time <= last {
				t.Fatalf("window %s out of order after replay: %+v", ow.Obj, ow.Records)
			}
			last = r.Time
			key := recKey(r)
			if !sent[key] {
				t.Fatalf("replayed record %+v was never sent", r)
			}
			replayed[key] = true
		}
	}
	for _, r := range acked {
		if !replayed[recKey(r)] {
			t.Fatalf("acknowledged record %+v lost in the crash", r)
		}
	}
	// The log accepts new work where the stream left off.
	c2.mustIngest(ingest.Record{Obj: "obj-0", Time: 1000, X: 1, Y: 1})
}

func recKey(r ingest.Record) string {
	return fmt.Sprintf("%s|%v|%v|%v", r.Obj, r.Time, r.X, r.Y)
}

// TestCrashReplayWindowsAndTopKByteIdentical is the byte-identity leg:
// kill a quiescent server, restart it twice over the same log, and
// require (a) the replayed windows equal the pre-crash windows exactly
// and (b) two independent crash-replay-remine cycles serve the same
// top-k patterns byte for byte — replay and re-mining are deterministic
// functions of the log.
func TestCrashReplayWindowsAndTopKByteIdentical(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	dir := t.TempDir()
	const window = 64
	c := startChild(t, dir, window)
	for i := 0; i < 12; i++ {
		for obj := 0; obj < 2; obj++ {
			c.mustIngest(ingest.Record{
				Obj:  fmt.Sprintf("obj-%d", obj),
				Time: float64(i + 1),
				X:    0.1 * float64(i),
				Y:    0.1 * float64(i),
			})
		}
	}
	winsBefore := c.status().Windows
	c.kill()

	c2 := startChild(t, dir, window)
	if got := c2.status().Windows; !reflect.DeepEqual(got, winsBefore) {
		t.Fatalf("replayed windows diverged from pre-crash windows:\n got %+v\nwant %+v", got, winsBefore)
	}
	c2.waitGeneration()
	pats2 := c2.minePatterns()
	c2.kill()

	c3 := startChild(t, dir, window)
	if got := c3.status().Windows; !reflect.DeepEqual(got, winsBefore) {
		t.Fatalf("second replay diverged from pre-crash windows:\n got %+v\nwant %+v", got, winsBefore)
	}
	c3.waitGeneration()
	if pats3 := c3.minePatterns(); !bytes.Equal(pats2, pats3) {
		t.Fatalf("re-mined top-k not byte-identical across restarts:\n %s\n %s", pats2, pats3)
	}
}

// TestTornTailRecordSkippedExactlyOnce crashes the server, then forges
// what a crash mid-write leaves behind: a plausible length prefix with
// most of its payload missing, torn onto the newest segment's tail. The
// restart must skip exactly that one record — metered, logged — rebuild
// windows from the acknowledged records alone, and keep accepting work.
func TestTornTailRecordSkippedExactlyOnce(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	dir := t.TempDir()
	const window = 16
	c := startChild(t, dir, window)
	var want []ingest.Record
	for i := 1; i <= 6; i++ {
		r := ingest.Record{Obj: "obj-0", Time: float64(i), X: float64(i), Y: -float64(i)}
		c.mustIngest(r)
		r.Seq = uint64(i) // sequential single-client sends: seq i is certain
		want = append(want, r)
	}
	c.kill()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tear [9]byte
	binary.LittleEndian.PutUint32(tear[:4], 40) // a believable record length, payload cut short
	if _, err := f.Write(tear[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := startChild(t, dir, window) // becoming ready proves replay tolerated the tear
	st := c2.status()
	if st.Stats == nil || st.Stats.TornSkipped != 1 {
		t.Fatalf("stats after torn-tail replay = %+v, want exactly 1 torn record skipped", st.Stats)
	}
	expect := ingest.NewWindows(ingest.WindowLimits{MaxRecords: window})
	for _, r := range want {
		expect.Apply(r)
	}
	if !reflect.DeepEqual(st.Windows, expect.Snapshot()) {
		t.Fatalf("windows after torn-tail replay:\n got %+v\nwant %+v", st.Windows, expect.Snapshot())
	}
	// The tail was truncated back to the last good record: the torn seq
	// slot is reused and new ingests land cleanly.
	c2.mustIngest(ingest.Record{Obj: "obj-0", Time: 100, X: 0, Y: 0})
	if st := c2.status(); st.Stats.Records != len(want)+1 {
		t.Fatalf("post-repair ingest not applied: %+v", st.Stats)
	}
}

// TestStalledFsyncShedsThenReplayKeepsEveryAck pins the ingest pipeline
// against a disk whose fsync hangs: acknowledgements stall, the bounded
// queue fills, and further traffic is shed with a typed overload error
// rather than queued unboundedly. When the disk recovers, every stalled
// report commits and is acknowledged — and a replay over the log sees
// exactly the acknowledged reports, never the shed one.
func TestStalledFsyncShedsThenReplayKeepsEveryAck(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	dir := t.TempDir()
	fl := faultio.NewFaults()
	gate := make(chan struct{})
	fl.AppendSyncGate = gate
	reg := obs.New()
	p, err := ingest.Open(ingest.Config{
		WAL: ingest.WALConfig{Dir: dir, FS: fl}, QueueDepth: 2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Report 0's group commit parks inside the gated fsync; 1 and 2 fill
	// the queue behind it.
	var wg sync.WaitGroup
	results := make([]error, 3)
	ingestAsync := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = p.Ingest(ctx, fmt.Sprintf("obj-%d", i), 1, 0, 0)
		}()
	}
	ingestAsync(0)
	batches := reg.Counter("ingest.batches")
	for batches.Value() == 0 {
		runtime.Gosched()
	}
	ingestAsync(1)
	ingestAsync(2)
	depth := reg.Gauge("ingest.queue.depth")
	for depth.Value() < 2 {
		runtime.Gosched()
	}
	var oe *ingest.OverloadError
	if shedErr := p.Ingest(ctx, "shed-me", 1, 0, 0); !errors.As(shedErr, &oe) {
		t.Fatalf("ingest against a stalled disk = %v, want *OverloadError", shedErr)
	}

	close(gate) // the disk recovers; the stalled commits land
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("stalled ingest %d never acknowledged: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Replay with a healthy filesystem: the acknowledged three, nothing else.
	p2, err := ingest.Open(ingest.Config{WAL: ingest.WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close() //nolint:errcheck // read-only teardown
	snap := p2.WindowSnapshot()
	if len(snap) != 3 {
		t.Fatalf("replayed %d objects, want the 3 acknowledged: %+v", len(snap), snap)
	}
	for _, ow := range snap {
		if ow.Obj == "shed-me" {
			t.Fatal("a shed report leaked into the log")
		}
		if len(ow.Records) != 1 {
			t.Fatalf("object %s replayed %d records, want 1", ow.Obj, len(ow.Records))
		}
	}
}
