package chaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"trajpattern/internal/datagen"
	"trajpattern/internal/ingest"
	"trajpattern/internal/serve"
)

// TestMain doubles as the server binary: the scenarios launch this very
// test executable with INGESTCHAOS_CHILD=1 and the process becomes a
// trajserve instance with durable ingest enabled. The harness then
// SIGKILLs it like a real crash — no clean shutdown path runs.
func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

const (
	envChild  = "INGESTCHAOS_CHILD"
	envWAL    = "INGESTCHAOS_WAL"    // ingest WAL directory (shared across restarts)
	envWindow = "INGESTCHAOS_WINDOW" // per-object window record cap
)

// childMain runs the real serve stack — listener, admission, ingest
// pipeline, re-mine loop — over a seeded dataset, printing the bound
// address on stdout. It serves until killed; the harness never asks it
// to exit cleanly.
func childMain() int {
	ds, err := datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: 6, NumGroups: 2, AvgLen: 12, Seed: 7,
	}, 0.01, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: dataset: %v\n", err)
		return 1
	}
	window, err := strconv.Atoi(os.Getenv(envWindow))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: bad %s=%q: %v\n", envWindow, os.Getenv(envWindow), err)
		return 2
	}
	err = serve.Run(context.Background(), serve.Options{
		Addr:    "127.0.0.1:0",
		Dataset: ds,
		Server: serve.Config{
			GridN:           8,
			IngestWALDir:    os.Getenv(envWAL),
			IngestWindow:    window,
			IngestSyncCount: 8,
			IngestMineK:     4,
		},
		Log: os.Stderr,
	}, func(addr string) { fmt.Printf("ADDR=%s\n", addr) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
		return 1
	}
	return 0
}

// child is one running server process under chaos.
type child struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
	dead sync.Once
}

// startChild launches a server over the WAL dir and blocks until it has
// both printed its address and flipped /readyz — i.e. until WAL replay
// finished. The process is SIGKILLed at test end if a scenario has not
// already killed it.
func startChild(t *testing.T, walDir string, window int) *child {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		envChild+"=1",
		envWAL+"="+walDir,
		fmt.Sprintf("%s=%d", envWindow, window),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{t: t, cmd: cmd}
	t.Cleanup(c.kill)

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			c.addr = a
			break
		}
	}
	if c.addr == "" {
		c.kill()
		t.Fatalf("child exited without printing an address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // drain until the process dies
	c.waitReady()
	return c
}

// kill delivers the crash: SIGKILL, no drain, no ingest Close. Idempotent
// so scenarios can kill explicitly and cleanup stays a no-op.
func (c *child) kill() {
	c.dead.Do(func() {
		c.cmd.Process.Kill() //nolint:errcheck // the process may already be gone
		c.cmd.Wait()         //nolint:errcheck // exit status of a killed child is noise
		// The kernel closed the child's sockets with it; drop our side so
		// dead keep-alive connections never outlive the scenario.
		http.DefaultClient.CloseIdleConnections()
	})
}

// waitReady polls /readyz until the child reports ready — replay done,
// windows rebuilt — failing the test if that takes over 30s.
func (c *child) waitReady() {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + c.addr + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("child %s never became ready", c.addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ingestRecord POSTs one report to /v1/ingest and returns the HTTP
// status, or an error when the connection itself died (killed child).
func (c *child) ingestRecord(r ingest.Record) (int, error) {
	body, err := json.Marshal(serve.IngestRequest{Obj: r.Obj, Time: r.Time, X: r.X, Y: r.Y})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post("http://"+c.addr+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	return resp.StatusCode, nil
}

// mustIngest is ingestRecord for records that must be acknowledged.
func (c *child) mustIngest(r ingest.Record) {
	c.t.Helper()
	code, err := c.ingestRecord(r)
	if err != nil || code != http.StatusOK {
		c.t.Fatalf("ingest %+v: status %d, err %v", r, code, err)
	}
}

// statusBody mirrors the /v1/ingest/status response shape.
type statusBody struct {
	Enabled    bool                  `json:"enabled"`
	Ready      bool                  `json:"ready"`
	Stats      *ingest.Stats         `json:"stats"`
	Generation int                   `json:"generation"`
	Degraded   bool                  `json:"degraded"`
	Mining     bool                  `json:"mining"`
	Windows    []ingest.ObjectWindow `json:"windows"`
}

// status fetches /v1/ingest/status?verbose=1 (windows included).
func (c *child) status() statusBody {
	c.t.Helper()
	resp, err := http.Get("http://" + c.addr + "/v1/ingest/status?verbose=1")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitGeneration polls until the re-mine loop has published at least one
// complete generation.
func (c *child) waitGeneration() {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.status().Generation < 1 {
		if time.Now().After(deadline) {
			c.t.Fatal("no re-mine generation completed within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// minePatterns POSTs /v1/mine and returns the raw patterns JSON — raw so
// scenarios can assert byte-identity across a crash and restart.
func (c *child) minePatterns() json.RawMessage {
	c.t.Helper()
	resp, err := http.Post("http://"+c.addr+"/v1/mine", "application/json",
		strings.NewReader(`{"k":4}`))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("mine status = %d", resp.StatusCode)
	}
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		c.t.Fatalf("decode mine response: %v", err)
	}
	return body["patterns"]
}
