package ingest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"trajpattern/internal/faultio"
	"trajpattern/internal/obs"
	"trajpattern/internal/report"
	"trajpattern/internal/testutil/leakcheck"
)

func openPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	if cfg.WAL.Dir == "" {
		cfg.WAL.Dir = t.TempDir()
	}
	p, err := Open(cfg)
	if err != nil {
		t.Fatalf("open pipeline: %v", err)
	}
	return p
}

func TestPipelineIngestToDurableWindow(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	reg := obs.New()
	p := openPipeline(t, Config{WAL: WALConfig{Dir: dir}, Metrics: reg})
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if err := p.Ingest(ctx, "zebra", float64(i), float64(i), -float64(i)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.LastSeq != 5 || st.Records != 5 || st.Objects != 1 || st.Failed {
		t.Fatalf("stats = %+v", st)
	}
	snap := p.WindowSnapshot()
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if reg.Snapshot().Counters["ingest.accepted"] != 5 {
		t.Fatalf("accepted counter = %v", reg.Snapshot().Counters)
	}

	// A restart replays to the byte-identical windows.
	p2 := openPipeline(t, Config{WAL: WALConfig{Dir: dir}})
	defer p2.Close()
	if got := p2.WindowSnapshot(); !reflect.DeepEqual(got, snap) {
		t.Fatalf("replayed windows %+v,\nwant %+v", got, snap)
	}
	if st := p2.Stats(); st.Replayed != 5 {
		t.Fatalf("Replayed = %d, want 5", st.Replayed)
	}
}

func TestPipelineRejectsInvalidAndOutOfOrder(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := obs.New()
	p := openPipeline(t, Config{Metrics: reg})
	defer p.Close()
	ctx := context.Background()

	var ve *report.ValidationError
	if err := p.Ingest(ctx, "", 1, 0, 0); !errors.As(err, &ve) {
		t.Fatalf("empty obj err = %v, want *ValidationError", err)
	}
	if err := p.Ingest(ctx, "z", 5, 1, 1); err != nil {
		t.Fatalf("first report: %v", err)
	}
	var oe *report.OrderError
	if err := p.Ingest(ctx, "z", 5, 2, 2); !errors.As(err, &oe) {
		t.Fatalf("equal-time err = %v, want *OrderError", err)
	}
	if err := p.Ingest(ctx, "z", 4, 2, 2); !errors.As(err, &oe) {
		t.Fatalf("regression err = %v, want *OrderError", err)
	}
	// Other objects are unaffected; order is per object.
	if err := p.Ingest(ctx, "y", 1, 0, 0); err != nil {
		t.Fatalf("other object: %v", err)
	}
	c := reg.Snapshot().Counters
	if c["ingest.rejected.validation"] != 1 || c["ingest.rejected.order"] != 2 || c["ingest.accepted"] != 2 {
		t.Fatalf("counters = %v", c)
	}
	// Rejected reports never reached the WAL.
	if p.Stats().LastSeq != 2 {
		t.Fatalf("LastSeq = %d, want 2", p.Stats().LastSeq)
	}
}

func TestPipelineShedsWhenQueueFull(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	fl := faultio.NewFaults()
	gate := make(chan struct{})
	fl.AppendSyncGate = gate
	reg := obs.New()
	p := openPipeline(t, Config{
		WAL: WALConfig{Dir: dir, FS: fl}, QueueDepth: 2, Metrics: reg,
	})
	ctx := context.Background()

	// One report goes durable-in-flight (its fsync blocks on the gate);
	// two more fill the queue; the next is shed with a typed 429 cause.
	var wg sync.WaitGroup
	results := make([]error, 3)
	ingestAsync := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = p.Ingest(ctx, fmt.Sprintf("obj-%d", i), 1, 0, 0)
		}()
	}
	ingestAsync(0)
	// Wait until report 0's commit started (it will park at the gated
	// fsync without touching the queue again), then fill the queue.
	batches := reg.Counter("ingest.batches")
	for batches.Value() == 0 {
		runtime.Gosched()
	}
	ingestAsync(1)
	ingestAsync(2)
	depth := reg.Gauge("ingest.queue.depth")
	for depth.Value() < 2 {
		runtime.Gosched()
	}
	// Queue full, committer parked: the next report is shed, typed.
	shedErr := p.Ingest(ctx, "shed-me", 1, 0, 0)
	var oe *OverloadError
	if !errors.As(shedErr, &oe) {
		t.Fatalf("ingest into full queue = %v, want *OverloadError", shedErr)
	}
	if oe.Depth != 2 {
		t.Errorf("OverloadError depth = %d, want 2", oe.Depth)
	}
	close(gate) // disk recovers; everything queued commits
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("queued ingest %d failed: %v", i, err)
		}
	}
	if reg.Snapshot().Counters["ingest.shed.overload"] == 0 {
		t.Fatal("overload shed not metered")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestPipelineFailedFsyncRefusesWith503Cause(t *testing.T) {
	defer leakcheck.Check(t)()
	fl := faultio.NewFaults()
	reg := obs.New()
	p := openPipeline(t, Config{WAL: WALConfig{Dir: t.TempDir(), FS: fl}, Metrics: reg})
	defer p.Close()
	ctx := context.Background()
	if err := p.Ingest(ctx, "z", 1, 0, 0); err != nil {
		t.Fatalf("healthy ingest: %v", err)
	}
	fl.FailAppendSync = true
	var ue *UnavailableError
	if err := p.Ingest(ctx, "z", 2, 0, 0); !errors.As(err, &ue) {
		t.Fatalf("ingest over failed fsync = %v, want *UnavailableError", err)
	}
	// The WAL is poisoned for good: later ingests refuse even after the
	// fault clears, and the stats say so.
	fl.FailAppendSync = false
	if err := p.Ingest(ctx, "z", 3, 0, 0); !errors.As(err, &ue) {
		t.Fatalf("ingest after poison = %v, want *UnavailableError", err)
	}
	if st := p.Stats(); !st.Failed {
		t.Fatalf("stats = %+v, want Failed", st)
	}
	if reg.Snapshot().Counters["ingest.shed.unavailable"] != 2 {
		t.Fatalf("unavailable counter = %v", reg.Snapshot().Counters)
	}
}

func TestPipelineCloseRefusesLateIngest(t *testing.T) {
	defer leakcheck.Check(t)()
	p := openPipeline(t, Config{})
	if err := p.Ingest(context.Background(), "z", 1, 0, 0); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var ue *UnavailableError
	if err := p.Ingest(context.Background(), "z", 2, 0, 0); !errors.As(err, &ue) || !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close = %v, want UnavailableError(ErrClosed)", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPipelineConcurrentIngestDurableAndOrdered(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	var applied atomic.Int64
	p := openPipeline(t, Config{
		WAL:     WALConfig{Dir: dir},
		Limits:  WindowLimits{MaxRecords: 64},
		OnApply: func(n int) { applied.Add(int64(n)) },
	})
	ctx := context.Background()
	const objects, perObject = 8, 40
	var wg sync.WaitGroup
	for o := 0; o < objects; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			obj := fmt.Sprintf("obj-%d", o)
			for i := 0; i < perObject; i++ {
				// Per-object times increase, so every report is in
				// order no matter how the objects interleave.
				if err := p.Ingest(ctx, obj, float64(i), float64(i), float64(o)); err != nil {
					t.Errorf("ingest %s/%d: %v", obj, i, err)
					return
				}
			}
		}(o)
	}
	wg.Wait()
	if got := applied.Load(); got != objects*perObject {
		t.Fatalf("OnApply saw %d records, want %d", got, objects*perObject)
	}
	snap := p.WindowSnapshot()
	if len(snap) != objects {
		t.Fatalf("%d objects in windows, want %d", len(snap), objects)
	}
	for _, ow := range snap {
		for i := 1; i < len(ow.Records); i++ {
			if ow.Records[i].Time <= ow.Records[i-1].Time {
				t.Fatalf("object %s window out of order at %d", ow.Obj, i)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Restart: replay must converge to the identical windows.
	p2 := openPipeline(t, Config{WAL: WALConfig{Dir: dir}, Limits: WindowLimits{MaxRecords: 64}})
	defer p2.Close()
	if got := p2.WindowSnapshot(); !reflect.DeepEqual(got, snap) {
		t.Fatal("replayed windows differ from pre-crash windows")
	}
}

func TestPipelinePrunesDeadSegments(t *testing.T) {
	defer leakcheck.Check(t)()
	p := openPipeline(t, Config{
		WAL:    WALConfig{Dir: t.TempDir(), SegmentBytes: 64},
		Limits: WindowLimits{MaxRecords: 2},
	})
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := p.Ingest(ctx, "z", float64(i), 0, 0); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	// 50 one-record commits at 64-byte segments would be ~40 segments;
	// with only 2 records live, pruning must keep the tail short.
	if st := p.Stats(); st.Segments > 3 {
		t.Fatalf("segments = %d after pruning, want <= 3", st.Segments)
	}
}
