package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"trajpattern/internal/geom"
	"trajpattern/internal/obs"
	"trajpattern/internal/report"
)

// OverloadError reports a report shed because the ingest queue was full:
// the durable pipeline is running behind the offered load and admission
// must slow down. The serve layer maps it to 429 with Retry-After.
type OverloadError struct {
	// Depth is the queue bound that was full.
	Depth int
}

// Error implements error.
func (e *OverloadError) Error() string {
	if e == nil {
		return "ingest: pipeline overloaded"
	}
	return fmt.Sprintf("ingest: pipeline overloaded: queue of %d full", e.Depth)
}

// UnavailableError reports a report refused because the pipeline cannot
// currently make anything durable — the WAL failed or the pipeline is
// shut down. The serve layer maps it to 503. Unlike OverloadError this is
// not the client's cue to back off and retry soon; it is the operator's
// cue to look at the disk.
type UnavailableError struct {
	// Reason is a short operator-facing cause ("wal failed", "closed").
	Reason string
	// Err is the underlying failure, when one exists.
	Err error
}

// Error implements error.
func (e *UnavailableError) Error() string {
	if e == nil {
		return "ingest: pipeline unavailable"
	}
	if e.Err != nil {
		return fmt.Sprintf("ingest: pipeline unavailable (%s): %v", e.Reason, e.Err)
	}
	return "ingest: pipeline unavailable (" + e.Reason + ")"
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *UnavailableError) Unwrap() error {
	if e == nil {
		return nil
	}
	return e.Err
}

// ErrClosed is the UnavailableError cause after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// Config configures the ingest pipeline.
type Config struct {
	// WAL configures the write-ahead log (Dir required).
	WAL WALConfig
	// Limits bounds the per-object sliding windows.
	Limits WindowLimits
	// QueueDepth bounds the accept queue; a full queue sheds with
	// OverloadError. Zero means DefaultQueueDepth.
	QueueDepth int
	// FsyncEvery caps how many records one group commit covers. The
	// pipeline needs no timer: a batch is whatever accumulated while
	// the previous fsync was in flight, up to this cap. Zero means
	// DefaultFsyncEvery.
	FsyncEvery int
	// Metrics, when non-nil, receives ingest RED instrumentation.
	Metrics *obs.Registry
	// OnApply, when non-nil, runs on the commit goroutine after each
	// batch lands in the windows, with the number of records applied.
	// It must not block; the serve layer uses it to nudge the re-mining
	// loop through a select/default send.
	OnApply func(applied int)
}

// Queue and batch defaults: deep enough to ride out one slow fsync,
// bounded enough that shed latency stays visible.
const (
	DefaultQueueDepth = 256
	DefaultFsyncEvery = 64
)

// ingestReq is one report waiting for durability; ack (buffered, length
// 1) carries the outcome back to the waiting handler.
type ingestReq struct {
	rec Record
	ack chan error
}

// pipelineMetrics holds the pipeline's resolved obs handles.
type pipelineMetrics struct {
	accepted   *obs.Counter
	rejectedV  *obs.Counter
	rejectedO  *obs.Counter
	shed       *obs.Counter
	unavail    *obs.Counter
	batches    *obs.Counter
	commitDur  *obs.Histogram
	winRecords *obs.Gauge
	winObjects *obs.Gauge
	queueDepth *obs.Gauge
}

func newPipelineMetrics(r *obs.Registry) pipelineMetrics {
	return pipelineMetrics{
		accepted:   r.Counter("ingest.accepted"),
		rejectedV:  r.Counter("ingest.rejected.validation"),
		rejectedO:  r.Counter("ingest.rejected.order"),
		shed:       r.Counter("ingest.shed.overload"),
		unavail:    r.Counter("ingest.shed.unavailable"),
		batches:    r.Counter("ingest.batches"),
		commitDur:  r.Histogram("ingest.commit"),
		winRecords: r.Gauge("ingest.window.records"),
		winObjects: r.Gauge("ingest.window.objects"),
		queueDepth: r.Gauge("ingest.queue.depth"),
	}
}

// Pipeline is the durable ingest path: Ingest validates a report,
// enqueues it on a bounded queue (full queue = typed shed, never an
// unbounded buffer), and a single commit goroutine batches the queue
// into WAL group commits, applies committed records to the sliding
// windows, and acknowledges. A report is acknowledged nil only after its
// batch's fsync returned — the 200 the handler then writes is a
// durability receipt, which is the whole point of the subsystem.
type Pipeline struct {
	wal       *WAL
	queue     chan ingestReq
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	onApply   func(int)
	m         pipelineMetrics
	replayed  int

	mu  sync.Mutex
	win *Windows
}

// Open replays the WAL, rebuilds the windows from the replayed records
// (byte-identically: the windows are a pure function of the record
// sequence), and starts the commit goroutine. The caller flips readiness
// only after Open returns — a replaying process must not accept traffic
// it could not yet order against its history.
func Open(cfg Config) (*Pipeline, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = DefaultFsyncEvery
	}
	if cfg.WAL.Metrics == nil {
		cfg.WAL.Metrics = cfg.Metrics
	}
	wal, replayed, err := OpenWAL(cfg.WAL)
	if err != nil {
		return nil, err
	}
	win := NewWindows(cfg.Limits)
	for _, r := range replayed {
		win.Apply(r)
	}
	p := &Pipeline{
		wal:      wal,
		queue:    make(chan ingestReq, cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		onApply:  cfg.OnApply,
		m:        newPipelineMetrics(cfg.Metrics),
		replayed: len(replayed),
		win:      win,
	}
	p.m.winRecords.Set(int64(win.Records()))
	p.m.winObjects.Set(int64(win.Objects()))
	go p.run(cfg.FsyncEvery)
	return p, nil
}

// Ingest submits one report and blocks until it is durable (nil), shed
// (*OverloadError), refused (*report.ValidationError, *report.OrderError,
// *UnavailableError), or the context ends. A context error leaves the
// report's fate ambiguous — it may still commit — which is the
// unavoidable at-least-once seam every durable ingest has; clients that
// time out must tolerate their retry being rejected as out of order.
func (p *Pipeline) Ingest(ctx context.Context, obj string, t, x, y float64) error {
	if err := report.ValidateFix(obj, t, geom.Pt(x, y)); err != nil {
		p.m.rejectedV.Inc()
		return err
	}
	req := ingestReq{rec: Record{Obj: obj, Time: t, X: x, Y: y}, ack: make(chan error, 1)}
	select {
	case p.queue <- req:
		p.m.queueDepth.Set(int64(len(p.queue)))
	case <-p.stop:
		p.m.unavail.Inc()
		return &UnavailableError{Reason: "closed", Err: ErrClosed}
	default:
		p.m.shed.Inc()
		return &OverloadError{Depth: cap(p.queue)}
	}
	select {
	case err := <-req.ack:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		// The commit goroutine exited after our enqueue; its final
		// drain may have acked us already.
		select {
		case err := <-req.ack:
			return err
		default:
			p.m.unavail.Inc()
			return &UnavailableError{Reason: "closed", Err: ErrClosed}
		}
	}
}

// run is the commit goroutine: one batch per iteration, no timers.
func (p *Pipeline) run(fsyncEvery int) {
	defer close(p.done)
	batch := make([]ingestReq, 0, fsyncEvery)
	for {
		batch = batch[:0]
		select {
		case <-p.stop:
			p.drain()
			return
		case req := <-p.queue:
			batch = append(batch, req)
		}
	collect:
		for len(batch) < fsyncEvery {
			select {
			case req := <-p.queue:
				batch = append(batch, req)
			default:
				break collect
			}
		}
		p.commit(batch)
	}
}

// drain acknowledges every queued-but-uncommitted report with a typed
// refusal so no handler goroutine is left waiting on a dead pipeline.
func (p *Pipeline) drain() {
	for {
		select {
		case req := <-p.queue:
			p.m.unavail.Inc()
			req.ack <- &UnavailableError{Reason: "closed", Err: ErrClosed}
		default:
			return
		}
	}
}

// commit runs one group commit: order-check the batch, append and fsync
// the survivors, apply them to the windows, acknowledge, prune dead WAL
// segments. Order is checked here, on the single goroutine that owns the
// windows, so the WAL never holds an out-of-order record and there is no
// reservation to race on.
func (p *Pipeline) commit(batch []ingestReq) {
	stopTimer := p.m.commitDur.Start()
	defer stopTimer()
	p.m.batches.Inc()

	valid := make([]ingestReq, 0, len(batch))
	recs := make([]Record, 0, len(batch))
	batchLast := make(map[string]float64, len(batch))
	p.mu.Lock()
	for _, req := range batch {
		last, has := batchLast[req.rec.Obj]
		if !has {
			last, has = p.win.LastTime(req.rec.Obj)
		}
		if err := report.CheckOrder(req.rec.Obj, last, req.rec.Time, has); err != nil {
			p.m.rejectedO.Inc()
			req.ack <- err
			continue
		}
		batchLast[req.rec.Obj] = req.rec.Time
		valid = append(valid, req)
		recs = append(recs, req.rec)
	}
	p.mu.Unlock()
	if len(recs) == 0 {
		return
	}

	if err := p.wal.Append(recs); err != nil {
		p.refuse(valid, err)
		return
	}
	if err := p.wal.Sync(); err != nil {
		p.refuse(valid, err)
		return
	}

	p.mu.Lock()
	for _, r := range recs {
		p.win.Apply(r)
	}
	minLive, haveLive := p.win.MinLiveSeq()
	p.m.winRecords.Set(int64(p.win.Records()))
	p.m.winObjects.Set(int64(p.win.Objects()))
	p.mu.Unlock()

	for i := range valid {
		valid[i].ack <- nil
	}
	p.m.accepted.Add(int64(len(valid)))

	if haveLive {
		// Best effort: a failed prune costs disk, not correctness.
		p.wal.Prune(minLive)
	}
	if p.onApply != nil {
		p.onApply(len(recs))
	}
}

// refuse acknowledges a batch that could not be made durable.
func (p *Pipeline) refuse(reqs []ingestReq, cause error) {
	p.m.unavail.Add(int64(len(reqs)))
	for i := range reqs {
		reqs[i].ack <- &UnavailableError{Reason: "wal failed", Err: cause}
	}
}

// Close stops the commit goroutine, refuses everything still queued, and
// closes the WAL. Safe to call more than once.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() { close(p.stop) })
	<-p.done
	return p.wal.Close()
}

// Stats is a point-in-time summary of the pipeline for status endpoints
// and tests.
type Stats struct {
	// LastSeq is the highest WAL sequence number assigned.
	LastSeq uint64 `json:"last_seq"`
	// Replayed is how many records the WAL replayed at Open.
	Replayed int `json:"replayed"`
	// TornSkipped is how many torn tail records replay skipped (0 or 1).
	TornSkipped int `json:"torn_skipped"`
	// Objects and Records describe the live windows.
	Objects int `json:"objects"`
	Records int `json:"records"`
	// Segments is how many WAL segment files exist right now.
	Segments int `json:"segments"`
	// Failed reports a poisoned WAL: every ingest is refused until the
	// process restarts and replays.
	Failed bool `json:"failed"`
}

// Stats returns the current summary.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	objects, records := p.win.Objects(), p.win.Records()
	p.mu.Unlock()
	return Stats{
		LastSeq:     p.wal.LastSeq(),
		Replayed:    p.replayed,
		TornSkipped: p.wal.TornSkipped(),
		Objects:     objects,
		Records:     records,
		Segments:    p.wal.Segments(),
		Failed:      p.wal.Failed() != nil,
	}
}

// WindowSnapshot returns a deep, deterministically ordered copy of every
// object's window.
func (p *Pipeline) WindowSnapshot() []ObjectWindow {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.win.Snapshot()
}
