package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"trajpattern/internal/faultio"
	"trajpattern/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold for WAL segments when
// WALConfig.SegmentBytes is zero: small enough that pruning reclaims
// space promptly, large enough that rotation is rare under load.
const DefaultSegmentBytes = 1 << 20

// WALConfig configures a write-ahead log.
type WALConfig struct {
	// Dir is the directory holding the segment files (created if
	// absent). Required.
	Dir string
	// SegmentBytes is the size past which the active segment is sealed
	// and a new one started. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// FS is the filesystem seam; nil means the real OS. Tests inject a
	// *faultio.Faults to tear appends and fail or stall fsyncs.
	FS faultio.AppendFS
	// Metrics, when non-nil, receives WAL instrumentation under
	// "ingest.wal.*" and "ingest.replay.*".
	Metrics *obs.Registry
	// Log receives replay warnings (the torn-tail skip). Nil means
	// discard.
	Log io.Writer
}

// segmentMeta describes one sealed (no longer written) segment.
type segmentMeta struct {
	index   int
	path    string
	lastSeq uint64 // highest sequence number stored in the segment
}

// walMetrics holds the WAL's resolved obs handles; all nil without a
// registry, which every obs method tolerates.
type walMetrics struct {
	records    *obs.Counter
	bytes      *obs.Counter
	fsyncs     *obs.Counter
	fsyncDur   *obs.Histogram
	appendDur  *obs.Histogram
	rotations  *obs.Counter
	pruned     *obs.Counter
	replayRecs *obs.Counter
	replaySegs *obs.Counter
	replayTorn *obs.Counter
}

func newWALMetrics(r *obs.Registry) walMetrics {
	return walMetrics{
		records:    r.Counter("ingest.wal.records"),
		bytes:      r.Counter("ingest.wal.bytes"),
		fsyncs:     r.Counter("ingest.wal.fsyncs"),
		fsyncDur:   r.Histogram("ingest.wal.fsync"),
		appendDur:  r.Histogram("ingest.wal.append"),
		rotations:  r.Counter("ingest.wal.rotations"),
		pruned:     r.Counter("ingest.wal.pruned_segments"),
		replayRecs: r.Counter("ingest.replay.records"),
		replaySegs: r.Counter("ingest.replay.segments"),
		replayTorn: r.Counter("ingest.replay.torn_skipped"),
	}
}

// WAL is a segmented, CRC-framed write-ahead log of ingest records. One
// writer at a time appends (the pipeline's group-commit goroutine);
// methods are nevertheless mutex-guarded so status probes from other
// goroutines stay safe.
//
// Durability protocol: Append writes the framed batch to the active
// segment; Sync fsyncs it and, past the rotation threshold, seals the
// segment and starts the next. A record is durable — and may be
// acknowledged — only after the Sync that covers it returns nil. Any
// append or sync failure poisons the WAL permanently (a failed fsync
// means the kernel may have dropped the batch on the floor; "retry and
// hope" is how databases used to lose data), except that a failed
// *append* first tries to truncate the torn tail so the on-disk log
// stays clean for the restart that follows.
type WAL struct {
	dir    string
	maxSeg int64
	fs     faultio.AppendFS
	logw   io.Writer

	mu       sync.Mutex
	file     faultio.File
	index    int   // active segment number
	size     int64 // committed bytes in the active segment
	nextSeq  uint64
	lastSeq  uint64 // highest seq ever assigned (0 = none)
	sealed   []segmentMeta
	failed   error
	buf      []byte
	m        walMetrics
	tornSkip int // torn tail records skipped during Open
}

// segmentName formats the file name of segment i.
func segmentName(i int) string { return fmt.Sprintf("wal-%08d.seg", i) }

// parseSegmentName extracts the index from a segment file name,
// reporting ok=false for files that are not segments.
func parseSegmentName(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &i); err != nil || segmentName(i) != name {
		return 0, false
	}
	return i, true
}

// OpenWAL opens (or creates) the log in cfg.Dir, replays every record in
// segment order, and returns the WAL positioned for appending plus the
// replayed records. A truncated record at the very tail of the final
// segment — the shape a crash mid-append leaves — is skipped with a
// logged, metered warning and truncated away before the next append;
// corruption anywhere else (CRC mismatch, impossible framing, a
// truncated record that is not the final bytes of the log) is a hard
// *CorruptError: the log cannot be trusted and must be repaired or
// discarded by an operator, never silently half-replayed.
func OpenWAL(cfg WALConfig) (*WAL, []Record, error) {
	if cfg.Dir == "" {
		return nil, nil, errors.New("ingest: WALConfig.Dir is required")
	}
	fs := cfg.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ingest: create WAL dir: %w", err)
	}
	w := &WAL{
		dir:    cfg.Dir,
		maxSeg: cfg.SegmentBytes,
		fs:     fs,
		logw:   logw,
		m:      newWALMetrics(cfg.Metrics),
	}

	indices, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	var records []Record
	activeSize := int64(0)
	for pos, idx := range indices {
		path := filepath.Join(cfg.Dir, segmentName(idx))
		final := pos == len(indices)-1
		recs, committed, torn, err := w.replaySegment(path, final)
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
		w.m.replaySegs.Inc()
		if len(recs) > 0 {
			last := recs[len(recs)-1].Seq
			if last > w.lastSeq {
				w.lastSeq = last
			}
		}
		if final {
			activeSize = committed
			if torn {
				w.tornSkip++
				w.m.replayTorn.Inc()
				fmt.Fprintf(logw, "ingest: WAL %s: torn tail record skipped, truncating to %d committed bytes\n",
					segmentName(idx), committed)
				if err := fs.Truncate(path, committed); err != nil {
					return nil, nil, fmt.Errorf("ingest: truncate torn tail of %s: %w", path, err)
				}
			}
		} else {
			w.sealed = append(w.sealed, segmentMeta{index: idx, path: path, lastSeq: w.lastSeq})
		}
	}
	w.m.replayRecs.Add(int64(len(records)))
	w.nextSeq = w.lastSeq + 1

	// Position the writer: reuse the final segment while it has room,
	// else seal it and start fresh.
	w.index = 1
	if n := len(indices); n > 0 {
		w.index = indices[n-1]
		if activeSize >= cfg.SegmentBytes {
			w.sealed = append(w.sealed, segmentMeta{
				index: w.index, path: filepath.Join(cfg.Dir, segmentName(w.index)), lastSeq: w.lastSeq,
			})
			w.index++
			activeSize = 0
		}
	}
	f, err := fs.OpenAppend(filepath.Join(cfg.Dir, segmentName(w.index)))
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL segment: %w", err)
	}
	w.file = f
	w.size = activeSize
	return w, records, nil
}

// listSegments returns the segment indices present in dir, ascending,
// erroring on gaps (a missing middle segment means lost records).
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read WAL dir: %w", err)
	}
	var idx []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if i, ok := parseSegmentName(e.Name()); ok {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for k := 1; k < len(idx); k++ {
		if idx[k] != idx[k-1]+1 {
			return nil, &CorruptError{
				Segment: segmentName(idx[k]),
				Reason:  fmt.Sprintf("segment gap: %s follows %s", segmentName(idx[k]), segmentName(idx[k-1])),
			}
		}
	}
	return idx, nil
}

// replaySegment decodes one segment file. committed reports the byte
// offset of the end of the last good record; torn reports a skipped
// truncated tail (only ever true when final is). Errors are always
// *CorruptError.
func (w *WAL) replaySegment(path string, final bool) (recs []Record, committed int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("ingest: read WAL segment: %w", err)
	}
	base := filepath.Base(path)
	off := 0
	for off < len(data) {
		r, n, derr := decodeRecord(data[off:])
		if derr == nil {
			if r.Seq <= w.lastSeqIn(recs) {
				return nil, 0, false, &CorruptError{
					Segment: base, Offset: int64(off),
					Reason: fmt.Sprintf("sequence regression: record %d after %d", r.Seq, w.lastSeqIn(recs)),
				}
			}
			recs = append(recs, r)
			off += n
			continue
		}
		if errors.Is(derr, errTruncatedRecord) && final {
			// The torn tail: a record whose bytes ran out at EOF. Also
			// accept an all-zeros tail — filesystems that allocate
			// blocks ahead of the data can leave one after power loss.
			return recs, int64(off), true, nil
		}
		if allZero(data[off:]) && final {
			return recs, int64(off), true, nil
		}
		var ce *CorruptError
		if errors.As(derr, &ce) {
			return nil, 0, false, &CorruptError{Segment: base, Offset: int64(off), Reason: ce.Reason}
		}
		return nil, 0, false, &CorruptError{Segment: base, Offset: int64(off), Reason: derr.Error()}
	}
	return recs, int64(len(data)), false, nil
}

// lastSeqIn returns the highest seq seen so far, preferring the current
// segment's records over the cross-segment high-water mark.
func (w *WAL) lastSeqIn(recs []Record) uint64 {
	if len(recs) > 0 {
		return recs[len(recs)-1].Seq
	}
	return w.lastSeq
}

// allZero reports whether every byte of b is zero (and b is non-empty).
func allZero(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Append assigns sequence numbers to recs (in place) and writes their
// framed encoding to the active segment in one write. The batch is NOT
// durable until the next Sync returns nil. On a write error the WAL
// truncates the segment back to its committed size — discarding the torn
// tail it just created — and, whether or not that repair succeeds,
// poisons itself: a WAL that failed once serves 503s until the process
// restarts and replays.
func (w *WAL) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return fmt.Errorf("ingest: WAL failed: %w", w.failed)
	}
	stop := w.m.appendDur.Start()
	defer stop()
	w.buf = w.buf[:0]
	for i := range recs {
		recs[i].Seq = w.nextSeq
		w.nextSeq++
		w.buf = appendRecord(w.buf, recs[i])
	}
	if _, err := w.file.Write(w.buf); err != nil {
		w.failed = fmt.Errorf("append: %w", err)
		// Best-effort repair so the NEXT process finds a clean log: cut
		// the partial batch back off. The in-memory state is already
		// poisoned either way.
		path := filepath.Join(w.dir, segmentName(w.index))
		w.file.Close()
		if terr := w.fs.Truncate(path, w.size); terr != nil {
			fmt.Fprintf(w.logw, "ingest: WAL append failed AND truncate failed (%v): torn tail left for replay to skip\n", terr)
		}
		return fmt.Errorf("ingest: WAL append: %w", err)
	}
	w.size += int64(len(w.buf))
	w.lastSeq = recs[len(recs)-1].Seq
	w.m.records.Add(int64(len(recs)))
	w.m.bytes.Add(int64(len(w.buf)))
	return nil
}

// Sync makes every appended record durable, then rotates the active
// segment if it has outgrown the threshold. A failed fsync poisons the
// WAL: the kernel may have discarded the dirty pages, so pretending a
// retry could succeed would acknowledge data that never hit the disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return fmt.Errorf("ingest: WAL failed: %w", w.failed)
	}
	stop := w.m.fsyncDur.Start()
	err := w.file.Sync()
	stop()
	w.m.fsyncs.Inc()
	if err != nil {
		w.failed = fmt.Errorf("fsync: %w", err)
		w.file.Close()
		return fmt.Errorf("ingest: WAL fsync: %w", err)
	}
	if w.size >= w.maxSeg {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment and opens the next. Caller
// holds w.mu; the active segment is synced.
func (w *WAL) rotateLocked() error {
	if err := w.file.Close(); err != nil {
		w.failed = fmt.Errorf("close segment: %w", err)
		return fmt.Errorf("ingest: WAL rotate: %w", err)
	}
	w.sealed = append(w.sealed, segmentMeta{
		index: w.index, path: filepath.Join(w.dir, segmentName(w.index)), lastSeq: w.lastSeq,
	})
	w.index++
	f, err := w.fs.OpenAppend(filepath.Join(w.dir, segmentName(w.index)))
	if err != nil {
		w.failed = fmt.Errorf("open next segment: %w", err)
		return fmt.Errorf("ingest: WAL rotate: %w", err)
	}
	w.file = f
	w.size = 0
	w.m.rotations.Inc()
	return nil
}

// Prune removes sealed segments every record of which has aged out of
// every window: those whose last sequence number is below minLiveSeq
// (the oldest sequence any window still retains). The active segment is
// never pruned. It returns how many segments were removed.
func (w *WAL) Prune(minLiveSeq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.sealed) > 0 && w.sealed[0].lastSeq < minLiveSeq {
		seg := w.sealed[0]
		if err := w.fs.Remove(seg.path); err != nil {
			return removed, fmt.Errorf("ingest: prune %s: %w", seg.path, err)
		}
		w.sealed = w.sealed[1:]
		removed++
		w.m.pruned.Inc()
	}
	return removed, nil
}

// Close syncs and closes the active segment. The WAL must not be used
// afterwards. A poisoned WAL closes without syncing (the segment file
// was already closed when the failure was recorded).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return nil
	}
	w.failed = errors.New("closed")
	if err := w.file.Sync(); err != nil {
		w.file.Close()
		return fmt.Errorf("ingest: WAL close sync: %w", err)
	}
	return w.file.Close()
}

// LastSeq returns the highest assigned sequence number (0 before any).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Segments returns how many segment files the log currently spans,
// active included.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// TornSkipped returns how many torn tail records Open skipped (0 or 1).
func (w *WAL) TornSkipped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tornSkip
}

// Failed returns the sticky failure, nil while the WAL is healthy.
func (w *WAL) Failed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}
