package ingest

import (
	"reflect"
	"testing"
)

func TestWindowCountEviction(t *testing.T) {
	w := NewWindows(WindowLimits{MaxRecords: 3})
	for i := 1; i <= 5; i++ {
		w.Apply(Record{Seq: uint64(i), Obj: "z", Time: float64(i)})
	}
	snap := w.Snapshot()
	if len(snap) != 1 || len(snap[0].Records) != 3 {
		t.Fatalf("snapshot = %+v, want one object with 3 records", snap)
	}
	if snap[0].Records[0].Seq != 3 || snap[0].Records[2].Seq != 5 {
		t.Fatalf("retained seqs %d..%d, want 3..5", snap[0].Records[0].Seq, snap[0].Records[2].Seq)
	}
	if w.Records() != 3 {
		t.Fatalf("Records = %d, want 3", w.Records())
	}
}

func TestWindowAgeEviction(t *testing.T) {
	w := NewWindows(WindowLimits{MaxRecords: 100, MaxAge: 10})
	for _, tm := range []float64{1, 2, 11, 20} {
		w.Apply(Record{Obj: "z", Time: tm})
	}
	snap := w.Snapshot()
	// Horizon is 20-10=10: records at 1 and 2 age out; 11 and 20 stay.
	times := []float64{snap[0].Records[0].Time, snap[0].Records[1].Time}
	if len(snap[0].Records) != 2 || !reflect.DeepEqual(times, []float64{11, 20}) {
		t.Fatalf("retained times %v, want [11 20]", times)
	}
	// The newest record always survives, even alone past the horizon.
	w.Apply(Record{Obj: "z", Time: 1000})
	if snap := w.Snapshot(); len(snap[0].Records) != 1 || snap[0].Records[0].Time != 1000 {
		t.Fatalf("after far-future report: %+v, want only it retained", snap)
	}
}

func TestWindowMinLiveSeqAndLastTime(t *testing.T) {
	w := NewWindows(WindowLimits{MaxRecords: 2})
	if _, ok := w.MinLiveSeq(); ok {
		t.Fatal("empty windows reported a live seq")
	}
	if _, ok := w.LastTime("z"); ok {
		t.Fatal("empty windows reported a last time")
	}
	w.Apply(Record{Seq: 1, Obj: "a", Time: 1})
	w.Apply(Record{Seq: 2, Obj: "b", Time: 1})
	w.Apply(Record{Seq: 3, Obj: "a", Time: 2})
	w.Apply(Record{Seq: 4, Obj: "a", Time: 3}) // evicts seq 1
	if min, ok := w.MinLiveSeq(); !ok || min != 2 {
		t.Fatalf("MinLiveSeq = %d/%v, want 2", min, ok)
	}
	if last, ok := w.LastTime("a"); !ok || last != 3 {
		t.Fatalf("LastTime(a) = %v/%v, want 3", last, ok)
	}
	if w.Objects() != 2 {
		t.Fatalf("Objects = %d, want 2", w.Objects())
	}
}

// TestWindowSnapshotDeterministic: same record sequence, same snapshot —
// the property replay convergence rests on.
func TestWindowSnapshotDeterministic(t *testing.T) {
	build := func() []ObjectWindow {
		w := NewWindows(WindowLimits{MaxRecords: 4, MaxAge: 50})
		for i := 0; i < 200; i++ {
			w.Apply(Record{
				Seq: uint64(i + 1), Obj: string(rune('a' + i%7)),
				Time: float64(i), X: float64(i) * 0.5, Y: -float64(i),
			})
		}
		return w.Snapshot()
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Fatal("two identical applications produced different snapshots")
	}
}
