// Package ingest is the durable streaming-ingest subsystem behind
// trajserve's POST /v1/ingest: accepted location reports append to a
// segmented write-ahead log (length-prefixed records with CRC-32C
// trailers, fsync-batched group commit), feed per-object sliding windows
// with deterministic eviction, and are replayed byte-identically after a
// crash before the service reports ready.
//
// The package holds the paper's ingest contract to the robustness bar of
// the rest of the repo: no report acknowledged with 200 may be lost to a
// SIGKILL, overload sheds with typed errors instead of queueing without
// bound, and a torn WAL tail — the on-disk shape of power loss
// mid-append — is skipped on replay with a logged, metered warning while
// any mid-log corruption is a hard error.
//
// The package is deterministic by construction (trajlint's determinism
// analyzer covers it waiver-free): no wall-clock reads, no global RNG,
// and every map iteration that feeds output is key-sorted. Group commit
// needs no timer — a batch is whatever accumulated while the previous
// fsync was in flight.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"trajpattern/internal/geom"
)

// Record is one accepted location report as persisted in the WAL: the
// wire fields (object, time, location) plus the global sequence number
// the WAL assigned at append. Seq is strictly increasing across the
// whole log and never reused, which is what makes segment pruning and
// replay convergence checkable.
type Record struct {
	Seq  uint64  `json:"seq"`
	Obj  string  `json:"obj"`
	Time float64 `json:"time"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// Loc returns the reported location as a geom.Point.
func (r Record) Loc() geom.Point { return geom.Pt(r.X, r.Y) }

// Wire framing: every record is
//
//	uint32 payloadLen | payload | uint32 crc32c(payload)
//
// with payload
//
//	uint64 seq | float64 time | float64 x | float64 y | uint16 objLen | obj
//
// all little-endian. The length prefix lets a reader skip to the CRC
// without parsing, and the CRC trailer covers the payload alone — the
// length prefix is implicitly verified by the trailer's position.
const (
	recordFixedPayload = 8 + 8 + 8 + 8 + 2 // seq, time, x, y, objLen
	recordFrame        = 4 + 4             // length prefix + CRC trailer

	// maxObjBytes mirrors report.MaxObjectIDLen; the decoder enforces it
	// independently so a hand-forged segment cannot smuggle an oversized
	// ID past validation.
	maxObjBytes = 128

	// maxRecordPayload bounds a credible payload; a length prefix beyond
	// it is corruption (or a tear that mangled the prefix), never a
	// record to wait for.
	maxRecordPayload = recordFixedPayload + maxObjBytes
)

// walCRC is the CRC-32C (Castagnoli) table shared by the WAL writer and
// reader, matching the checkpoint trailer's choice.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports bytes that cannot be a record: a CRC mismatch, an
// impossible length, or an object length that disagrees with the
// payload. Replay treats it as fatal everywhere except a record that
// runs to the exact end of the final segment (see WAL replay).
type CorruptError struct {
	// Segment is the offending segment file (empty during in-memory
	// decoding), Offset the byte offset of the record's length prefix.
	Segment string
	Offset  int64
	// Reason says what was wrong.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e == nil {
		return "ingest: corrupt WAL record"
	}
	if e.Segment == "" {
		return fmt.Sprintf("ingest: corrupt record at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("ingest: corrupt WAL record in %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// errTruncatedRecord marks bytes that end before the framed record does:
// the torn-tail shape. Only the final position of the final segment may
// legally hold it.
var errTruncatedRecord = errors.New("ingest: truncated WAL record")

// appendRecord appends the framed encoding of r to dst and returns the
// extended slice. It assumes r was validated (object within bounds);
// encoding an oversized object panics rather than writing a frame the
// decoder would reject.
func appendRecord(dst []byte, r Record) []byte {
	if len(r.Obj) > maxObjBytes {
		panic(fmt.Sprintf("ingest: appendRecord: object id %d bytes exceeds %d (validation bypassed?)", len(r.Obj), maxObjBytes))
	}
	payloadLen := recordFixedPayload + len(r.Obj)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	payloadStart := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Time))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Y))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Obj)))
	dst = append(dst, r.Obj...)
	sum := crc32.Checksum(dst[payloadStart:], walCRC)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// decodeRecord decodes the first framed record in b. It returns the
// record and the number of bytes consumed, errTruncatedRecord when b
// ends before the frame does (n then reports how many bytes the full
// frame would need), or a *CorruptError when the bytes cannot be a
// record at any length.
func decodeRecord(b []byte) (r Record, n int, err error) {
	if len(b) < 4 {
		return Record{}, recordFrame, errTruncatedRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(b))
	if payloadLen < recordFixedPayload || payloadLen > maxRecordPayload {
		return Record{}, 0, &CorruptError{Reason: fmt.Sprintf("impossible payload length %d", payloadLen)}
	}
	total := recordFrame + payloadLen
	if len(b) < total {
		return Record{}, total, errTruncatedRecord
	}
	payload := b[4 : 4+payloadLen]
	want := binary.LittleEndian.Uint32(b[4+payloadLen:])
	if got := crc32.Checksum(payload, walCRC); got != want {
		return Record{}, 0, &CorruptError{Reason: fmt.Sprintf("CRC mismatch: stored %08x, computed %08x", want, got)}
	}
	objLen := int(binary.LittleEndian.Uint16(payload[32:34]))
	if objLen != payloadLen-recordFixedPayload {
		return Record{}, 0, &CorruptError{Reason: fmt.Sprintf("object length %d disagrees with payload length %d", objLen, payloadLen)}
	}
	r = Record{
		Seq:  binary.LittleEndian.Uint64(payload[0:8]),
		Time: math.Float64frombits(binary.LittleEndian.Uint64(payload[8:16])),
		X:    math.Float64frombits(binary.LittleEndian.Uint64(payload[16:24])),
		Y:    math.Float64frombits(binary.LittleEndian.Uint64(payload[24:32])),
		Obj:  string(payload[34:]),
	}
	return r, total, nil
}
