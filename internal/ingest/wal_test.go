package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"trajpattern/internal/faultio"
	"trajpattern/internal/obs"
)

// testRecords builds n distinct records (sequence numbers unassigned).
func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Obj:  fmt.Sprintf("obj-%d", i%3),
			Time: float64(i) + 0.5,
			X:    float64(i) * 1.25,
			Y:    -float64(i) * 0.5,
		}
	}
	return recs
}

// appendAndSync writes recs through the WAL as one durable batch.
func appendAndSync(t *testing.T, w *WAL, recs []Record) {
	t.Helper()
	if err := w.Append(recs); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := testRecords(5)
	var buf []byte
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
		buf = appendRecord(buf, recs[i])
	}
	off := 0
	for i := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, got, recs[i])
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordRejectsDamage(t *testing.T) {
	frame := appendRecord(nil, Record{Seq: 1, Obj: "z", Time: 1, X: 2, Y: 3})

	// Every strict prefix is a truncated record, never corruption.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := decodeRecord(frame[:cut]); !errors.Is(err, errTruncatedRecord) {
			t.Fatalf("prefix of %d bytes: err = %v, want errTruncatedRecord", cut, err)
		}
	}
	// A flipped payload bit is a CRC mismatch.
	bad := bytes.Clone(frame)
	bad[10] ^= 0x40
	var ce *CorruptError
	if _, _, err := decodeRecord(bad); !errors.As(err, &ce) || !strings.Contains(ce.Reason, "CRC") {
		t.Fatalf("bit flip: err = %v, want CRC CorruptError", err)
	}
	// An absurd length prefix is corruption, not a record to wait for.
	bad = bytes.Clone(frame)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := decodeRecord(bad); !errors.As(err, &ce) {
		t.Fatalf("absurd length: err = %v, want CorruptError", err)
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, replayed, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(replayed))
	}
	recs := testRecords(7)
	appendAndSync(t, w, recs[:4])
	appendAndSync(t, w, recs[4:])
	if w.LastSeq() != 7 {
		t.Fatalf("LastSeq = %d, want 7", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, replayed, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, recs) {
		t.Fatalf("replayed %+v,\nwant %+v", replayed, recs)
	}
	// Appends continue the sequence; no number is reused.
	more := testRecords(1)
	appendAndSync(t, w2, more)
	if more[0].Seq != 8 {
		t.Fatalf("post-replay seq = %d, want 8", more[0].Seq)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	// Tiny segments: every single-record batch overflows one.
	w, _, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(5)
	for i := range recs {
		appendAndSync(t, w, recs[i:i+1])
	}
	if got := w.Segments(); got != 6 {
		t.Fatalf("Segments = %d, want 6 (5 sealed + active)", got)
	}
	// Records 1 and 2 have aged out of every window; their segments go.
	n, err := w.Prune(3)
	if err != nil {
		t.Fatalf("prune: %v", err)
	}
	if n != 2 {
		t.Fatalf("pruned %d segments, want 2", n)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["ingest.wal.rotations"] != 5 || snap.Counters["ingest.wal.pruned_segments"] != 2 {
		t.Fatalf("metrics = %v", snap.Counters)
	}

	// Replay after pruning yields exactly the still-live suffix.
	w2, replayed, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, recs[2:]) {
		t.Fatalf("replayed %+v, want records 3..5", replayed)
	}
}

// TestWALReplaySkipsExactlyOneTornTailRecord is the regression test for
// the faultio short-append seam: a write that lands only partially must
// leave a torn tail that replay skips — exactly one record, the
// unacknowledged one — while every previously synced record survives.
func TestWALReplaySkipsExactlyOneTornTailRecord(t *testing.T) {
	dir := t.TempDir()
	fl := faultio.NewFaults()
	w, _, err := OpenWAL(WALConfig{Dir: dir, FS: fl})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(4)
	appendAndSync(t, w, recs[:3])
	committedLen := int64(len(appendRecord(appendRecord(appendRecord(nil, recs[0]), recs[1]), recs[2])))

	// The fourth record's append tears 5 bytes in (ShortAppendAfter is
	// a cumulative budget, so it sits 5 bytes past what already
	// landed): partial frame on disk, error to the writer, WAL
	// poisoned. The in-process truncate-repair fails too — this is the
	// crashed-before-repair shape, the one replay must handle.
	fl.ShortAppendAfter = int(committedLen) + 5
	fl.FailTruncate = true
	if err := w.Append(recs[3:4]); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("torn append err = %v, want ErrInjected", err)
	}
	if w.Failed() == nil {
		t.Fatal("WAL not poisoned after failed append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync on poisoned WAL succeeded")
	}
	// The injected truncate-repair also goes through the faulty FS;
	// make it fail too so the torn tail really is on disk, as after a
	// crash with no chance to repair.
	seg := filepath.Join(dir, "wal-00000001.seg")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= committedLen {
		t.Fatalf("segment %d bytes, want torn tail beyond the %d committed", info.Size(), committedLen)
	}

	reg := obs.New()
	var log strings.Builder
	w2, replayed, err := OpenWAL(WALConfig{Dir: dir, Metrics: reg, Log: &log})
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if !reflect.DeepEqual(replayed, recs[:3]) {
		t.Fatalf("replayed %+v, want exactly the 3 synced records", replayed)
	}
	if w2.TornSkipped() != 1 {
		t.Fatalf("TornSkipped = %d, want 1", w2.TornSkipped())
	}
	if reg.Snapshot().Counters["ingest.replay.torn_skipped"] != 1 {
		t.Fatal("torn skip not metered")
	}
	if !strings.Contains(log.String(), "torn tail") {
		t.Fatalf("torn skip not logged: %q", log.String())
	}
	// Replay truncated the tear away; the file is clean for appending.
	if info, err := os.Stat(seg); err != nil || info.Size() != committedLen {
		t.Fatalf("post-replay size = %v/%v, want %d", info, err, committedLen)
	}
	more := testRecords(1)
	appendAndSync(t, w2, more)
	if more[0].Seq != 4 {
		t.Fatalf("seq after torn replay = %d, want 4 (torn record's number reused: it was never acked)", more[0].Seq)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestWALFailedAppendRepairsTail: when truncate works, a failed append
// leaves a clean file immediately (no torn tail for replay to skip).
func TestWALFailedAppendRepairsTail(t *testing.T) {
	dir := t.TempDir()
	fl := faultio.NewFaults()
	w, _, err := OpenWAL(WALConfig{Dir: dir, FS: fl})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(3)
	appendAndSync(t, w, recs[:2])
	fl.ShortAppendAfter = 3
	if err := w.Append(recs[2:3]); err == nil {
		t.Fatal("torn append succeeded")
	}
	fl.ShortAppendAfter = -1 // repair truncate must not be cut short

	reg := obs.New()
	w2, replayed, err := OpenWAL(WALConfig{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, recs[:2]) {
		t.Fatalf("replayed %+v, want the 2 synced records", replayed)
	}
	if w2.TornSkipped() != 0 {
		t.Fatalf("TornSkipped = %d, want 0: append-failure repair already truncated", w2.TornSkipped())
	}
}

func TestWALReplayRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(3)
	appendAndSync(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Flip one payload bit in the FIRST record: corruption with intact
	// records after it — not a tear, and not recoverable by truncation.
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenWAL(WALConfig{Dir: dir})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-log corruption: err = %v (%T), want *CorruptError", err, err)
	}
	if ce.Segment != "wal-00000001.seg" || ce.Offset != 0 {
		t.Fatalf("CorruptError located at %q offset %d, want segment 1 offset 0", ce.Segment, ce.Offset)
	}
}

func TestWALReplayRefusesTornNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(2)
	appendAndSync(t, w, recs[:1])
	appendAndSync(t, w, recs[1:])
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Tear the tail of segment 1 — which is NOT the final segment, so
	// the tear cannot be a crash artifact and must be fatal.
	if err := faultio.TearTail(filepath.Join(dir, "wal-00000001.seg"), 3); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenWAL(WALConfig{Dir: dir})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("torn non-final segment: err = %v, want *CorruptError", err)
	}
}

func TestWALReplayTreatsZeroFilledTailAsTorn(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(2)
	appendAndSync(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A delayed-allocation crash can leave a zero-filled tail whose
	// "length prefix" of 0 would otherwise read as impossible framing.
	seg := filepath.Join(dir, "wal-00000001.seg")
	f, err := (faultio.OS{}).OpenAppend(seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, replayed, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("zero tail replay: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, recs) {
		t.Fatalf("replayed %+v, want both records", replayed)
	}
	if w2.TornSkipped() != 1 {
		t.Fatalf("TornSkipped = %d, want 1", w2.TornSkipped())
	}
}

func TestWALFailedFsyncPoisons(t *testing.T) {
	dir := t.TempDir()
	fl := faultio.NewFaults()
	w, _, err := OpenWAL(WALConfig{Dir: dir, FS: fl})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAndSync(t, w, testRecords(1))
	fl.FailAppendSync = true
	if err := w.Append(testRecords(1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	// Poisoned for good: no appends, no syncs, even after the fault
	// clears — fsync failure semantics don't allow "try again".
	fl.FailAppendSync = false
	if err := w.Append(testRecords(1)); err == nil {
		t.Fatal("append after failed fsync succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync after failed fsync succeeded")
	}
	if w.Failed() == nil {
		t.Fatal("Failed() = nil after failed fsync")
	}
}

func TestWALRefusesSegmentGap(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(3)
	for i := range recs {
		appendAndSync(t, w, recs[i:i+1])
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Deleting a MIDDLE segment loses records silently if replay just
	// concatenates what remains; it must refuse instead.
	if err := os.Remove(filepath.Join(dir, "wal-00000002.seg")); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenWAL(WALConfig{Dir: dir})
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "gap") {
		t.Fatalf("segment gap: err = %v, want gap CorruptError", err)
	}
}
