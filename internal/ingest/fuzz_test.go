package ingest

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"trajpattern/internal/geom"
	"trajpattern/internal/report"
)

// addTestdataSeeds adds every file under testdata/ matching glob as a
// seed input, so the corpus starts from realistic on-disk and on-wire
// shapes rather than only hand-written literals.
func addTestdataSeeds(f *testing.F, glob string) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", glob))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatalf("no testdata seeds match %q", glob)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// TestFuzzSeedFramesDecode pins the recorded binary seed to the codec:
// it must stay a valid three-record frame stream, or the fuzz corpus
// silently stops covering the happy path.
func TestFuzzSeedFramesDecode(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fuzz_seed_frames.bin"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for off := 0; off < len(data); {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			t.Fatalf("seed frame at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += n
	}
	want := []Record{
		{Seq: 1, Obj: "zebra-1", Time: 1, X: 0.25, Y: -0.5},
		{Seq: 2, Obj: "zebra-1", Time: 2, X: 0.5, Y: -0.25},
		{Seq: 3, Obj: "bus-9", Time: 1.5, X: 3, Y: 4},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("seed frames decode to %+v, want %+v", recs, want)
	}
}

// FuzzIngestRecord fuzzes both decoders a location report passes
// through: the WAL record codec (untrusted bytes off disk after a
// crash) and the /v1/ingest JSON body (untrusted bytes off the wire).
// Neither may panic or over-read on any input, a successful binary
// decode must re-encode byte-identically (replay determinism leans on
// that), and a JSON body the validator accepts must be finite and
// encodable.
func FuzzIngestRecord(f *testing.F) {
	// Seeds: recorded frames and wire bodies from testdata, a healthy
	// frame, its torn prefixes, a corrupt flip, an impossible length,
	// and JSON bodies good and bad.
	addTestdataSeeds(f, "fuzz_seed_*")
	healthy := appendRecord(nil, Record{Seq: 7, Obj: "zebra-1", Time: 3.5, X: 0.25, Y: -1.5})
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	f.Add(healthy[:5])
	flipped := bytes.Clone(healthy)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0}, 48))
	f.Add([]byte(`{"obj":"z","time":1,"x":0.5,"y":-0.5}`))
	f.Add([]byte(`{"obj":"","time":1e309,"x":null}`))
	f.Add([]byte("{\"seq\":1,\"obj\":\"\x00evil\",\"time\":-0,\"x\":1e-320,\"y\":2}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err == nil {
			if n < recordFrame+recordFixedPayload || n > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			if enc := appendRecord(nil, rec); !bytes.Equal(enc, data[:n]) {
				t.Fatalf("decode/encode not a round trip:\n in  %x\n out %x", data[:n], enc)
			}
		}

		var req Record
		if json.Unmarshal(data, &req) != nil {
			return
		}
		if verr := report.ValidateFix(req.Obj, req.Time, geom.Pt(req.X, req.Y)); verr != nil {
			return
		}
		// Accepted by the wire validator: the record must be safely
		// encodable into the WAL (finite floats, bounded object id).
		if math.IsNaN(req.Time) || math.IsInf(req.Time, 0) ||
			math.IsNaN(req.X) || math.IsInf(req.X, 0) ||
			math.IsNaN(req.Y) || math.IsInf(req.Y, 0) {
			t.Fatalf("validator accepted a non-finite report: %+v", req)
		}
		frame := appendRecord(nil, req) // must not panic on validated input
		back, _, derr := decodeRecord(frame)
		if derr != nil || back != req {
			t.Fatalf("validated report did not survive the WAL codec: %+v -> %+v (%v)", req, back, derr)
		}
	})
}
