package faultio

import (
	"errors"
	"io"
	"os"
)

// ErrInjected is the sentinel wrapped by every fault this package
// injects, so tests can assert errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultio: injected fault")

// Faults is an FS that forwards to the real OS but injects failures at
// chosen points of the atomic write protocol. The zero value injects
// nothing. Each knob simulates one way a write can die:
//
//   - FailCreate: the temp file cannot be created at all.
//   - ShortWriteAfter: writes succeed for the first N bytes and then
//     fail, as on a full disk — the classic torn-write producer.
//   - FailSync: data reached the page cache but fsync reports an I/O
//     error, i.e. durability was NOT achieved.
//   - FailRename: the final rename fails (crash between close and
//     rename). TornRename additionally deletes the temp file first,
//     simulating a crash where the temp never became durable either.
//   - TearTargetBytes: the rename "succeeds" but installs only the
//     first N bytes at the target — the on-disk outcome of power loss
//     on a filesystem that reordered the rename ahead of the data
//     blocks. The writer believes the file landed; only a later reader
//     discovers the truncation. This is the knob for testing torn-file
//     *readers* rather than writers.
//
// Counters record how far the protocol got, so tests can assert both
// the failure and the cleanup.
type Faults struct {
	FailCreate      bool
	ShortWriteAfter int // <0: no limit; >=0: fail writes past this many bytes
	FailSync        bool
	FailRename      bool
	TornRename      bool
	TearTargetBytes int // >0: rename installs only this many bytes at the target

	Creates int // temp files created
	Renames int // renames attempted
	Removes int // removals attempted (cleanup)

	written int
}

// NewFaults returns a Faults with no fault armed (ShortWriteAfter
// disabled rather than zero, which would fail the first byte).
func NewFaults() *Faults {
	return &Faults{ShortWriteAfter: -1}
}

// CreateTemp implements FS.
func (fl *Faults) CreateTemp(dir, pattern string) (File, error) {
	if fl.FailCreate {
		return nil, errors.Join(ErrInjected, errors.New("create refused"))
	}
	f, err := OS{}.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	fl.Creates++
	return &faultFile{File: f, fl: fl}, nil
}

// Rename implements FS.
func (fl *Faults) Rename(oldpath, newpath string) error {
	fl.Renames++
	if fl.TornRename {
		// A crash mid-rename: the temp file is gone and the target was
		// never replaced.
		OS{}.Remove(oldpath)
		return errors.Join(ErrInjected, errors.New("rename torn"))
	}
	if fl.FailRename {
		return errors.Join(ErrInjected, errors.New("rename refused"))
	}
	if fl.TearTargetBytes > 0 {
		data, err := os.ReadFile(oldpath)
		if err != nil {
			return err
		}
		if len(data) > fl.TearTargetBytes {
			data = data[:fl.TearTargetBytes]
		}
		if err := os.WriteFile(newpath, data, 0o644); err != nil {
			return err
		}
		OS{}.Remove(oldpath)
		return nil
	}
	return OS{}.Rename(oldpath, newpath)
}

// Remove implements FS.
func (fl *Faults) Remove(name string) error {
	fl.Removes++
	return OS{}.Remove(name)
}

// faultFile wraps a real temp file, cutting writes short and failing
// sync according to the owning Faults.
type faultFile struct {
	File
	fl *Faults
}

func (f *faultFile) Write(p []byte) (int, error) {
	fl := f.fl
	if fl.ShortWriteAfter >= 0 {
		room := fl.ShortWriteAfter - fl.written
		if room <= 0 {
			return 0, errors.Join(ErrInjected, io.ErrShortWrite)
		}
		if room < len(p) {
			n, _ := f.File.Write(p[:room])
			fl.written += n
			return n, errors.Join(ErrInjected, io.ErrShortWrite)
		}
	}
	n, err := f.File.Write(p)
	fl.written += n
	return n, err
}

func (f *faultFile) Sync() error {
	if f.fl.FailSync {
		return errors.Join(ErrInjected, errors.New("sync refused"))
	}
	return f.File.Sync()
}
