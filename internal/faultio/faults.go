package faultio

import (
	"errors"
	"io"
	"os"
)

// ErrInjected is the sentinel wrapped by every fault this package
// injects, so tests can assert errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultio: injected fault")

// Faults is an FS that forwards to the real OS but injects failures at
// chosen points of the atomic write protocol. The zero value injects
// nothing. Each knob simulates one way a write can die:
//
//   - FailCreate: the temp file cannot be created at all.
//   - ShortWriteAfter: writes succeed for the first N bytes and then
//     fail, as on a full disk — the classic torn-write producer.
//   - FailSync: data reached the page cache but fsync reports an I/O
//     error, i.e. durability was NOT achieved.
//   - FailRename: the final rename fails (crash between close and
//     rename). TornRename additionally deletes the temp file first,
//     simulating a crash where the temp never became durable either.
//   - TearTargetBytes: the rename "succeeds" but installs only the
//     first N bytes at the target — the on-disk outcome of power loss
//     on a filesystem that reordered the rename ahead of the data
//     blocks. The writer believes the file landed; only a later reader
//     discovers the truncation. This is the knob for testing torn-file
//     *readers* rather than writers.
//
// Counters record how far the protocol got, so tests can assert both
// the failure and the cleanup.
type Faults struct {
	FailCreate      bool
	ShortWriteAfter int // <0: no limit; >=0: fail writes past this many bytes
	FailSync        bool
	FailRename      bool
	TornRename      bool
	TearTargetBytes int // >0: rename installs only this many bytes at the target

	// Append-path knobs, simulating the ways an append-only log write
	// dies. They apply only to files opened through OpenAppend, so a
	// test can fault the WAL while checkpoint writes stay healthy:
	//
	//   - FailOpenAppend: the segment cannot be opened at all.
	//   - ShortAppendAfter: appends succeed for the first N bytes and
	//     then fail mid-record, leaving a torn tail on disk — the
	//     producer of exactly the truncated-record shape a crash
	//     leaves behind.
	//   - FailAppendSync: the append fsync reports an I/O error, i.e.
	//     the batch was NOT made durable (set knobs before the writer
	//     starts; Faults is not synchronized).
	//   - AppendSyncGate: when non-nil, every append fsync blocks until
	//     the channel is closed — a stalled disk rather than a failed
	//     one, for testing that callers shed instead of hanging.
	//   - FailTruncate: the torn-tail truncation after a failed append
	//     is itself refused.
	FailOpenAppend   bool
	ShortAppendAfter int // <0: no limit; >=0: fail appends past this many bytes
	FailAppendSync   bool
	AppendSyncGate   chan struct{}
	FailTruncate     bool

	Creates     int // temp files created
	Renames     int // renames attempted
	Removes     int // removals attempted (cleanup)
	OpensAppend int // append opens attempted
	AppendSyncs int // append fsyncs attempted
	Truncates   int // truncations attempted

	written  int
	appended int
}

// NewFaults returns a Faults with no fault armed (ShortWriteAfter and
// ShortAppendAfter disabled rather than zero, which would fail the first
// byte).
func NewFaults() *Faults {
	return &Faults{ShortWriteAfter: -1, ShortAppendAfter: -1}
}

// CreateTemp implements FS.
func (fl *Faults) CreateTemp(dir, pattern string) (File, error) {
	if fl.FailCreate {
		return nil, errors.Join(ErrInjected, errors.New("create refused"))
	}
	f, err := OS{}.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	fl.Creates++
	return &faultFile{File: f, fl: fl}, nil
}

// Rename implements FS.
func (fl *Faults) Rename(oldpath, newpath string) error {
	fl.Renames++
	if fl.TornRename {
		// A crash mid-rename: the temp file is gone and the target was
		// never replaced.
		OS{}.Remove(oldpath)
		return errors.Join(ErrInjected, errors.New("rename torn"))
	}
	if fl.FailRename {
		return errors.Join(ErrInjected, errors.New("rename refused"))
	}
	if fl.TearTargetBytes > 0 {
		data, err := os.ReadFile(oldpath)
		if err != nil {
			return err
		}
		if len(data) > fl.TearTargetBytes {
			data = data[:fl.TearTargetBytes]
		}
		if err := os.WriteFile(newpath, data, 0o644); err != nil {
			return err
		}
		OS{}.Remove(oldpath)
		return nil
	}
	return OS{}.Rename(oldpath, newpath)
}

// Remove implements FS.
func (fl *Faults) Remove(name string) error {
	fl.Removes++
	return OS{}.Remove(name)
}

// OpenAppend implements AppendFS, wrapping the file so the append knobs
// (ShortAppendAfter, FailAppendSync, AppendSyncGate) apply to it.
func (fl *Faults) OpenAppend(name string) (File, error) {
	fl.OpensAppend++
	if fl.FailOpenAppend {
		return nil, errors.Join(ErrInjected, errors.New("append open refused"))
	}
	f, err := OS{}.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &appendFile{File: f, fl: fl}, nil
}

// Truncate implements AppendFS.
func (fl *Faults) Truncate(name string, size int64) error {
	fl.Truncates++
	if fl.FailTruncate {
		return errors.Join(ErrInjected, errors.New("truncate refused"))
	}
	return OS{}.Truncate(name, size)
}

// faultFile wraps a real temp file, cutting writes short and failing
// sync according to the owning Faults.
type faultFile struct {
	File
	fl *Faults
}

func (f *faultFile) Write(p []byte) (int, error) {
	fl := f.fl
	if fl.ShortWriteAfter >= 0 {
		room := fl.ShortWriteAfter - fl.written
		if room <= 0 {
			return 0, errors.Join(ErrInjected, io.ErrShortWrite)
		}
		if room < len(p) {
			n, _ := f.File.Write(p[:room])
			fl.written += n
			return n, errors.Join(ErrInjected, io.ErrShortWrite)
		}
	}
	n, err := f.File.Write(p)
	fl.written += n
	return n, err
}

func (f *faultFile) Sync() error {
	if f.fl.FailSync {
		return errors.Join(ErrInjected, errors.New("sync refused"))
	}
	return f.File.Sync()
}

// appendFile wraps a file opened through OpenAppend, cutting appends
// short mid-record and failing or stalling the append fsync according to
// the owning Faults. The partial bytes of a short append DO land on disk
// — that is the point: a torn tail a later reader must cope with.
type appendFile struct {
	File
	fl *Faults
}

func (f *appendFile) Write(p []byte) (int, error) {
	fl := f.fl
	if fl.ShortAppendAfter >= 0 {
		room := fl.ShortAppendAfter - fl.appended
		if room <= 0 {
			return 0, errors.Join(ErrInjected, io.ErrShortWrite)
		}
		if room < len(p) {
			n, _ := f.File.Write(p[:room])
			fl.appended += n
			return n, errors.Join(ErrInjected, io.ErrShortWrite)
		}
	}
	n, err := f.File.Write(p)
	fl.appended += n
	return n, err
}

func (f *appendFile) Sync() error {
	f.fl.AppendSyncs++
	if gate := f.fl.AppendSyncGate; gate != nil {
		<-gate // a stalled disk: block until the test releases it
	}
	if f.fl.FailAppendSync {
		return errors.Join(ErrInjected, errors.New("append sync refused"))
	}
	return f.File.Sync()
}
