package faultio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readFile fails the test on error so call sites stay one line.
func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

// listDir returns the names in dir, for asserting temp-file cleanup.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if got := readFile(t, path); got != "hello\n" {
		t.Fatalf("content = %q, want %q", got, "hello\n")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("leftover files: %v", names)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if got := readFile(t, path); got != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

// fillErr is a fill callback failure: the target must be untouched and
// the temp file removed.
func TestWriteFileAtomicFillError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(nil, path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := readFile(t, path); got != "old" {
		t.Fatalf("target disturbed: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp not cleaned up: %v", names)
	}
}

// Each injected fault must leave the previous file intact and clean up
// its temp file (except FailCreate, which never creates one, and
// TornRename, which deletes it itself).
func TestWriteFileAtomicInjectedFaults(t *testing.T) {
	cases := []struct {
		name string
		arm  func(*Faults)
	}{
		{"create", func(fl *Faults) { fl.FailCreate = true }},
		{"short-write", func(fl *Faults) { fl.ShortWriteAfter = 3 }},
		{"sync", func(fl *Faults) { fl.FailSync = true }},
		{"rename", func(fl *Faults) { fl.FailRename = true }},
		{"torn-rename", func(fl *Faults) { fl.TornRename = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			fl := NewFaults()
			tc.arm(fl)
			err := WriteFileAtomic(fl, path, func(w io.Writer) error {
				_, err := io.WriteString(w, "new contents that are longer")
				return err
			})
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if got := readFile(t, path); got != "old" {
				t.Fatalf("target disturbed: %q", got)
			}
			if names := listDir(t, dir); len(names) != 1 {
				t.Fatalf("temp not cleaned up: %v", names)
			}
		})
	}
}

func TestFaultsShortWriteTruncates(t *testing.T) {
	dir := t.TempDir()
	fl := NewFaults()
	fl.ShortWriteAfter = 4
	f, err := fl.CreateTemp(dir, "x*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Write = (%d, %v), want (4, ErrShortWrite)", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f.Name()); got != "abcd" {
		t.Fatalf("temp content = %q, want %q", got, "abcd")
	}
}

func TestWriteFileAtomicTempNamePattern(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "patterns.json")
	fl := NewFaults()
	fl.FailRename = true
	var tmpName string
	origRemove := fl.Removes
	_ = origRemove
	err := WriteFileAtomic(fl, path, func(w io.Writer) error {
		tmpName = w.(*faultFile).Name()
		return nil
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// The temp file must live in the target's directory (rename across
	// filesystems is not atomic) and be clearly associated with it.
	if filepath.Dir(tmpName) != dir {
		t.Fatalf("temp %q not in target dir %q", tmpName, dir)
	}
	if !strings.HasPrefix(filepath.Base(tmpName), "patterns.json.tmp") {
		t.Fatalf("temp name %q lacks target prefix", tmpName)
	}
	if fl.Removes != 1 {
		t.Fatalf("Removes = %d, want 1", fl.Removes)
	}
}
