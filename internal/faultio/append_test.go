package faultio

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestOSAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.seg")
	for _, chunk := range []string{"one", "two", "three"} {
		f, err := (OS{}).OpenAppend(path)
		if err != nil {
			t.Fatalf("open append: %v", err)
		}
		if _, err := io.WriteString(f, chunk); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if got := readFile(t, path); got != "onetwothree" {
		t.Fatalf("appended content = %q, want onetwothree", got)
	}
	if err := (OS{}).Truncate(path, 3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if got := readFile(t, path); got != "one" {
		t.Fatalf("truncated content = %q, want one", got)
	}
}

func TestFaultsShortAppendLeavesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.seg")
	fl := NewFaults()
	fl.ShortAppendAfter = 5
	f, err := fl.OpenAppend(path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	n, err := io.WriteString(f, "0123456789")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short append error = %v, want ErrInjected+ErrShortWrite", err)
	}
	if n != 5 {
		t.Fatalf("short append wrote %d bytes, want 5", n)
	}
	f.Close()
	// The torn tail is ON DISK — that is the whole point of the knob.
	if got := readFile(t, path); got != "01234" {
		t.Fatalf("torn file = %q, want the 5 partial bytes", got)
	}
	// Every subsequent append fails outright: the budget is spent.
	f2, err := fl.OpenAppend(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := io.WriteString(f2, "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("append past budget = %v, want ErrInjected", err)
	}
	f2.Close()
	if fl.OpensAppend != 2 {
		t.Fatalf("OpensAppend = %d, want 2", fl.OpensAppend)
	}
}

func TestFaultsFailAppendSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.seg")
	fl := NewFaults()
	fl.FailAppendSync = true
	f, err := fl.OpenAppend(path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	if _, err := io.WriteString(f, "record"); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	f.Close()
	if fl.AppendSyncs != 1 {
		t.Fatalf("AppendSyncs = %d, want 1", fl.AppendSyncs)
	}
	// The plain-write path is unaffected: atomic checkpoint writes stay
	// healthy while the WAL is faulted.
	other := filepath.Join(filepath.Dir(path), "ck.json")
	if err := WriteFileAtomic(fl, other, func(w io.Writer) error {
		_, err := io.WriteString(w, "{}")
		return err
	}); err != nil {
		t.Fatalf("atomic write through append-faulted FS: %v", err)
	}
}

func TestFaultsAppendSyncGateStalls(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.seg")
	fl := NewFaults()
	gate := make(chan struct{})
	fl.AppendSyncGate = gate
	f, err := fl.OpenAppend(path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	if _, err := io.WriteString(f, "record"); err != nil {
		t.Fatalf("append: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Sync() }()
	select {
	case err := <-done:
		t.Fatalf("sync returned %v before the gate opened", err)
	default:
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("sync after gate: %v", err)
	}
	f.Close()
}

func TestFaultsFailOpenAppendAndTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.seg")
	fl := NewFaults()
	fl.FailOpenAppend = true
	if _, err := fl.OpenAppend(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("open append = %v, want ErrInjected", err)
	}
	fl.FailOpenAppend = false
	f, err := fl.OpenAppend(path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	if _, err := io.WriteString(f, "0123456789"); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close()
	fl.FailTruncate = true
	if err := fl.Truncate(path, 4); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate = %v, want ErrInjected", err)
	}
	fl.FailTruncate = false
	if err := fl.Truncate(path, 4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if got := readFile(t, path); got != "0123" {
		t.Fatalf("truncated = %q, want 0123", got)
	}
}

func TestTearTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.seg")
	f, err := (OS{}).OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "0123456789"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := TearTail(path, 4); err != nil {
		t.Fatalf("tear: %v", err)
	}
	if got := readFile(t, path); got != "012345" {
		t.Fatalf("torn = %q, want 012345", got)
	}
	// Tearing more than the file holds empties it rather than erroring.
	if err := TearTail(path, 100); err != nil {
		t.Fatalf("over-tear: %v", err)
	}
	if got := readFile(t, path); got != "" {
		t.Fatalf("over-torn = %q, want empty", got)
	}
}
