// Package faultio provides the filesystem seam behind the repo's
// crash-safe file writes: an FS interface covering exactly the
// operations an atomic write needs (create a temp file, write, sync,
// rename, remove), a passthrough OS implementation, and a Faults
// implementation that injects errors — create failures, short writes,
// sync failures, torn renames — so tests can prove that a writer either
// completes a file or leaves the previous one untouched.
//
// Production code calls WriteFileAtomic with a nil FS and gets the real
// operating system; tests pass a *Faults to simulate a crash at any
// point of the temp-file + fsync + rename protocol.
package faultio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File an atomic write uses.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the atomic write protocol.
// Implementations must be safe for use from a single goroutine at a
// time; the repo's writers never share an FS across goroutines.
type FS interface {
	// CreateTemp creates a new unique file in dir (as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath (as os.Rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (as os.Remove); used for cleanup on failure.
	Remove(name string) error
}

// AppendFS extends FS with the operations of an append-only log writer:
// opening a file for appending (creating it if absent) and truncating a
// file back to a known-good length after a failed append. The repo's
// write-ahead log (internal/ingest) writes through this seam so tests can
// inject short appends, fsync failures and fsync stalls.
type AppendFS interface {
	FS
	// OpenAppend opens name for appending, creating it if necessary
	// (as os.OpenFile with O_CREATE|O_WRONLY|O_APPEND).
	OpenAppend(name string) (File, error)
	// Truncate cuts name to size bytes (as os.Truncate); an append-log
	// writer uses it to discard a torn tail before appending again.
	Truncate(name string, size int64) error
}

// OS is the passthrough FS backed by the real operating system.
type OS struct{}

// CreateTemp implements FS via os.CreateTemp.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// OpenAppend implements AppendFS via os.OpenFile.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Truncate implements AppendFS via os.Truncate.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// TearTail truncates the final n bytes off path, producing on disk
// exactly what power loss mid-append leaves behind: a length-prefixed
// record whose payload (or CRC trailer) never fully landed. Chaos tests
// use it to tear a write-ahead-log segment after the writer has exited;
// the torn-file *writer* knobs (ShortAppendAfter) produce the same shape
// in-process. Tearing more bytes than the file holds empties it.
func TearTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// WriteFileAtomic writes a file so that path always holds either its
// previous contents or the complete new contents, never a torn mix:
// fill streams the contents into a temp file in path's directory, the
// temp file is fsynced and closed, and only then renamed over path.
// Any failure — including a panic-free error from fill — removes the
// temp file and leaves path untouched.
//
// fs selects the filesystem; nil means the real OS. Tests inject a
// *Faults to simulate crashes at each step.
func WriteFileAtomic(fs FS, path string, fill func(io.Writer) error) (err error) {
	if fs == nil {
		fs = OS{}
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("faultio: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = fill(f); err != nil {
		return fmt.Errorf("faultio: write %s: %w", path, err)
	}
	// Sync before rename: on a crash after the rename the new name must
	// point at durable bytes, not a page-cache ghost.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("faultio: sync %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("faultio: close %s: %w", path, err)
	}
	if err = fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("faultio: rename %s over %s: %w", tmp, path, err)
	}
	return nil
}
