// Package faultio provides the filesystem seam behind the repo's
// crash-safe file writes: an FS interface covering exactly the
// operations an atomic write needs (create a temp file, write, sync,
// rename, remove), a passthrough OS implementation, and a Faults
// implementation that injects errors — create failures, short writes,
// sync failures, torn renames — so tests can prove that a writer either
// completes a file or leaves the previous one untouched.
//
// Production code calls WriteFileAtomic with a nil FS and gets the real
// operating system; tests pass a *Faults to simulate a crash at any
// point of the temp-file + fsync + rename protocol.
package faultio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File an atomic write uses.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the atomic write protocol.
// Implementations must be safe for use from a single goroutine at a
// time; the repo's writers never share an FS across goroutines.
type FS interface {
	// CreateTemp creates a new unique file in dir (as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath (as os.Rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (as os.Remove); used for cleanup on failure.
	Remove(name string) error
}

// OS is the passthrough FS backed by the real operating system.
type OS struct{}

// CreateTemp implements FS via os.CreateTemp.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// WriteFileAtomic writes a file so that path always holds either its
// previous contents or the complete new contents, never a torn mix:
// fill streams the contents into a temp file in path's directory, the
// temp file is fsynced and closed, and only then renamed over path.
// Any failure — including a panic-free error from fill — removes the
// temp file and leaves path untouched.
//
// fs selects the filesystem; nil means the real OS. Tests inject a
// *Faults to simulate crashes at each step.
func WriteFileAtomic(fs FS, path string, fill func(io.Writer) error) (err error) {
	if fs == nil {
		fs = OS{}
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("faultio: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = fill(f); err != nil {
		return fmt.Errorf("faultio: write %s: %w", path, err)
	}
	// Sync before rename: on a crash after the rename the new name must
	// point at durable bytes, not a page-cache ghost.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("faultio: sync %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("faultio: close %s: %w", path, err)
	}
	if err = fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("faultio: rename %s over %s: %w", tmp, path, err)
	}
	return nil
}
