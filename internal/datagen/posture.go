package datagen

import (
	"fmt"
	"math"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// PostureConfig parameterizes the human-posture dataset simulator. §6.1
// mentions a second real data set of human postures with "similar results"
// but omits it for space; since those recordings are unavailable, this
// generator produces the same structure: each subject's posture, embedded
// as a 2-D point (e.g. the two leading components of a joint-angle
// vector), follows cyclic activity loops (gait cycles) interleaved with
// activity switches, observed through sensor noise.
type PostureConfig struct {
	NumSubjects int     // trajectories (default 50)
	Length      int     // snapshots per subject (default 120)
	Activities  int     // distinct cyclic activities shared by subjects (default 4)
	CycleLen    int     // postures per activity cycle (default 6)
	SwitchProb  float64 // per-snapshot probability of switching activity (default 0.02)
	SensorNoise float64 // observation noise std-dev (default 0.01)
	Seed        uint64
}

func (c PostureConfig) withDefaults() PostureConfig {
	if c.NumSubjects == 0 {
		c.NumSubjects = 50
	}
	if c.Length == 0 {
		c.Length = 120
	}
	if c.Activities == 0 {
		c.Activities = 4
	}
	if c.CycleLen == 0 {
		c.CycleLen = 6
	}
	if c.SwitchProb == 0 {
		c.SwitchProb = 0.02
	}
	if c.SensorNoise == 0 {
		c.SensorNoise = 0.01
	}
	return c
}

func (c PostureConfig) validate() error {
	if c.NumSubjects < 1 || c.Length < 2 || c.Activities < 1 || c.CycleLen < 2 {
		return fmt.Errorf("datagen: PostureConfig needs >=1 subject, Length >= 2, >=1 activity, CycleLen >= 2")
	}
	if c.SwitchProb < 0 || c.SwitchProb > 1 {
		return fmt.Errorf("datagen: PostureConfig.SwitchProb must be in [0,1]")
	}
	if c.SensorNoise < 0 {
		return fmt.Errorf("datagen: PostureConfig.SensorNoise must be >= 0")
	}
	return nil
}

// Postures generates the true posture-space paths of every subject. All
// subjects share the same activity vocabulary, so common sequential
// patterns (the gait cycles) exist across trajectories by construction.
func Postures(cfg PostureConfig) ([][]geom.Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed)

	// Activity loops: small rings around well-separated centers.
	centers := activityCenters(cfg.Activities, rng)
	loops := make([][]geom.Point, cfg.Activities)
	for a := range loops {
		r := rng.Uniform(0.06, 0.12)
		loop := make([]geom.Point, cfg.CycleLen)
		phase := rng.Uniform(0, 2*math.Pi)
		for i := range loop {
			th := phase + 2*math.Pi*float64(i)/float64(cfg.CycleLen)
			loop[i] = geom.UnitSquare().Clamp(centers[a].Add(
				geom.Pt(r*math.Cos(th), 0.6*r*math.Sin(th))))
		}
		loops[a] = loop
	}

	paths := make([][]geom.Point, cfg.NumSubjects)
	for s := range paths {
		srng := rng.Fork(uint64(s + 1))
		act := srng.Intn(cfg.Activities)
		phase := srng.Intn(cfg.CycleLen)
		path := make([]geom.Point, cfg.Length)
		for t := 0; t < cfg.Length; t++ {
			if srng.Bool(cfg.SwitchProb) {
				act = srng.Intn(cfg.Activities)
				phase = 0
			}
			p := loops[act][phase%cfg.CycleLen]
			path[t] = geom.UnitSquare().Clamp(p.Add(
				geom.Pt(srng.Normal(0, cfg.SensorNoise), srng.Normal(0, cfg.SensorNoise))))
			phase++
		}
		paths[s] = path
	}
	return paths, nil
}

// activityCenters spreads activity centers over the unit square on a
// jittered grid so loops do not overlap.
func activityCenters(n int, rng *stat.RNG) []geom.Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	centers := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		cx := (float64(i%side) + 0.5) / float64(side)
		cy := (float64(i/side) + 0.5) / float64(side)
		centers = append(centers, geom.Pt(
			cx+rng.Uniform(-0.05, 0.05),
			cy+rng.Uniform(-0.05, 0.05)))
	}
	return centers
}

// PostureDataset generates the imprecise dataset form of Postures with
// σ = u/c, mirroring ZebraDataset.
func PostureDataset(cfg PostureConfig, u, c float64) (traj.Dataset, error) {
	if u <= 0 || c <= 0 {
		return nil, fmt.Errorf("datagen: u and c must be > 0")
	}
	paths, err := Postures(cfg)
	if err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed ^ 0x9057)
	sigma := u / c
	ds := make(traj.Dataset, len(paths))
	for i, path := range paths {
		tr := make(traj.Trajectory, len(path))
		for j, p := range path {
			tr[j] = traj.Point{
				Mean:  p.Add(geom.Pt(rng.Normal(0, sigma), rng.Normal(0, sigma))),
				Sigma: sigma,
			}
		}
		ds[i] = tr
	}
	return ds, nil
}
