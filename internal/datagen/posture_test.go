package datagen

import (
	"testing"

	"trajpattern/internal/geom"
)

func TestPosturesShape(t *testing.T) {
	paths, err := Postures(PostureConfig{NumSubjects: 10, Length: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 {
		t.Fatalf("subjects = %d", len(paths))
	}
	for _, p := range paths {
		if len(p) != 50 {
			t.Fatalf("length = %d", len(p))
		}
		for _, pt := range p {
			if !geom.UnitSquare().Contains(pt) {
				t.Fatalf("posture outside unit square: %v", pt)
			}
		}
	}
}

func TestPosturesCyclicStructure(t *testing.T) {
	// With no switching and no noise, each subject's path is exactly
	// periodic with the cycle length.
	cfg := PostureConfig{
		NumSubjects: 3, Length: 40, Activities: 2, CycleLen: 5,
		SwitchProb: 1e-12, SensorNoise: 1e-12, Seed: 2,
	}
	paths, err := Postures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range paths {
		for i := 0; i+5 < len(p); i++ {
			if p[i].Dist(p[i+5]) > 1e-6 {
				t.Fatalf("subject %d not periodic at %d: %v", s, i, p[i].Dist(p[i+5]))
			}
		}
	}
}

func TestPosturesSharedVocabulary(t *testing.T) {
	// Two subjects performing the same single activity visit the same
	// loop positions (possibly phase-shifted).
	cfg := PostureConfig{
		NumSubjects: 2, Length: 30, Activities: 1, CycleLen: 4,
		SwitchProb: 1e-12, SensorNoise: 1e-12, Seed: 3,
	}
	paths, err := Postures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every position of subject 1 appears (within epsilon) in subject 0's
	// path.
	for _, q := range paths[1][:4] {
		found := false
		for _, p := range paths[0][:8] {
			if p.Dist(q) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("position %v not shared across subjects", q)
		}
	}
}

func TestPostureValidation(t *testing.T) {
	bad := []PostureConfig{
		{NumSubjects: 1, Length: 1},
		{SwitchProb: 2},
		{SensorNoise: -1},
	}
	for i, cfg := range bad {
		if _, err := Postures(cfg); err == nil {
			t.Errorf("bad posture config %d accepted", i)
		}
	}
	if _, err := PostureDataset(PostureConfig{}, 0, 1); err == nil {
		t.Error("u=0 accepted")
	}
}

func TestPostureDataset(t *testing.T) {
	ds, err := PostureDataset(PostureConfig{NumSubjects: 5, Length: 20, Seed: 4}, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 || ds[0].Len() != 20 {
		t.Fatalf("dataset shape %d × %d", len(ds), ds[0].Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds {
		for _, p := range tr {
			if p.Sigma != 0.01 {
				t.Fatalf("sigma = %v", p.Sigma)
			}
		}
	}
}

func TestPostureDeterminism(t *testing.T) {
	cfg := PostureConfig{NumSubjects: 3, Length: 15, Seed: 5}
	a, err := Postures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Postures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("posture generation not deterministic")
			}
		}
	}
}
