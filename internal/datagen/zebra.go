package datagen

import (
	"fmt"
	"math"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// ZebraConfig parameterizes the ZebraNet-style generator of §6.2: zebras
// move in groups; at each snapshot every group is assigned a moving
// distance and direction drawn from distributions extracted from the real
// traces (here: the synthetic equivalents below), each individual adds
// noise, and a small fraction of zebras leaves its group to move
// independently.
type ZebraConfig struct {
	NumZebras int     // number of trajectories S (default 100)
	NumGroups int     // herds moving together (default 8)
	AvgLen    int     // average trajectory length L (default 100)
	LenJitter float64 // relative length variation in [0,1) (default 0.3)

	// Movement statistics (the paper extracts these from the ZebraNet
	// traces; these defaults emulate grazing/walking behaviour on the
	// unit square).
	MeanStep   float64 // mean per-snapshot group distance (default 0.015)
	StepSigma  float64 // log-scale sigma of the step distribution (default 0.5)
	TurnSigma  float64 // per-snapshot direction change in radians (default 0.4)
	IndivNoise float64 // individual position noise around the group (default 0.01)
	LeaveProb  float64 // per-snapshot probability a zebra leaves its group (default 0.002)

	Seed uint64
}

func (c ZebraConfig) withDefaults() ZebraConfig {
	if c.NumZebras == 0 {
		c.NumZebras = 100
	}
	if c.NumGroups == 0 {
		c.NumGroups = 8
	}
	if c.AvgLen == 0 {
		c.AvgLen = 100
	}
	if c.LenJitter == 0 {
		c.LenJitter = 0.3
	}
	if c.MeanStep == 0 {
		c.MeanStep = 0.015
	}
	if c.StepSigma == 0 {
		c.StepSigma = 0.5
	}
	if c.TurnSigma == 0 {
		c.TurnSigma = 0.4
	}
	if c.IndivNoise == 0 {
		c.IndivNoise = 0.01
	}
	if c.LeaveProb == 0 {
		c.LeaveProb = 0.002
	}
	return c
}

func (c ZebraConfig) validate() error {
	if c.NumZebras < 1 || c.NumGroups < 1 || c.AvgLen < 2 {
		return fmt.Errorf("datagen: ZebraConfig needs >=1 zebra, >=1 group, AvgLen >= 2")
	}
	if c.LenJitter < 0 || c.LenJitter >= 1 {
		return fmt.Errorf("datagen: ZebraConfig.LenJitter must be in [0,1)")
	}
	if c.LeaveProb < 0 || c.LeaveProb > 1 {
		return fmt.Errorf("datagen: ZebraConfig.LeaveProb must be in [0,1]")
	}
	if c.MeanStep <= 0 || c.StepSigma < 0 || c.TurnSigma < 0 || c.IndivNoise < 0 {
		return fmt.Errorf("datagen: invalid ZebraConfig movement parameters")
	}
	return nil
}

// Zebras generates the true per-snapshot paths of every zebra. The maximum
// trajectory length is AvgLen·(1+LenJitter); individual lengths are
// uniform in AvgLen·(1±LenJitter).
func Zebras(cfg ZebraConfig) ([][]geom.Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed)
	maxLen := int(math.Ceil(float64(cfg.AvgLen) * (1 + cfg.LenJitter)))

	// Group state: position and heading, updated per snapshot.
	type groupState struct {
		pos     geom.Point
		heading float64
	}
	groups := make([]groupState, cfg.NumGroups)
	for gi := range groups {
		groups[gi] = groupState{
			pos:     geom.Pt(rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)),
			heading: rng.Uniform(0, 2*math.Pi),
		}
	}

	// Zebra state.
	type zebraState struct {
		group   int // -1 once it has left
		pos     geom.Point
		heading float64 // own heading when independent
		length  int
	}
	zebras := make([]zebraState, cfg.NumZebras)
	for zi := range zebras {
		gi := zi % cfg.NumGroups
		span := cfg.LenJitter * float64(cfg.AvgLen)
		length := cfg.AvgLen + int(rng.Uniform(-span, span))
		if length < 2 {
			length = 2
		}
		zebras[zi] = zebraState{
			group: gi,
			pos: groups[gi].pos.Add(
				geom.Pt(rng.Normal(0, cfg.IndivNoise*3), rng.Normal(0, cfg.IndivNoise*3))),
			length: length,
		}
	}

	paths := make([][]geom.Point, cfg.NumZebras)
	bounds := geom.UnitSquare()
	for t := 0; t < maxLen; t++ {
		// Advance each group: draw distance (lognormal around MeanStep)
		// and direction (heading random walk).
		for gi := range groups {
			g := &groups[gi]
			g.heading += rng.Normal(0, cfg.TurnSigma)
			step := cfg.MeanStep * math.Exp(rng.Normal(0, cfg.StepSigma)-cfg.StepSigma*cfg.StepSigma/2)
			next := g.pos.Add(geom.Pt(step*math.Cos(g.heading), step*math.Sin(g.heading)))
			if !bounds.Contains(next) {
				// Turn back toward the interior (water hole behaviour).
				g.heading += math.Pi
				next = bounds.Clamp(next)
			}
			g.pos = next
		}
		for zi := range zebras {
			z := &zebras[zi]
			if t >= z.length {
				continue
			}
			if z.group >= 0 && rng.Bool(cfg.LeaveProb) {
				z.group = -1
				z.heading = rng.Uniform(0, 2*math.Pi)
			}
			if z.group >= 0 {
				z.pos = groups[z.group].pos.Add(
					geom.Pt(rng.Normal(0, cfg.IndivNoise), rng.Normal(0, cfg.IndivNoise)))
			} else {
				z.heading += rng.Normal(0, cfg.TurnSigma*1.5)
				step := cfg.MeanStep * math.Exp(rng.Normal(0, cfg.StepSigma)-cfg.StepSigma*cfg.StepSigma/2)
				next := z.pos.Add(geom.Pt(step*math.Cos(z.heading), step*math.Sin(z.heading)))
				if !bounds.Contains(next) {
					z.heading += math.Pi
					next = bounds.Clamp(next)
				}
				z.pos = next
			}
			paths[zi] = append(paths[zi], z.pos)
		}
	}
	return paths, nil
}

// ZebraDataset generates the imprecise trajectory dataset directly: each
// true position is perturbed by the observation noise implied by the
// reporting scheme and annotated with σ = U/C. This bypasses the full
// device/server simulation for the scalability sweeps, where only the
// statistical shape of the input matters; use the report package for the
// end-to-end pipeline.
func ZebraDataset(cfg ZebraConfig, u, c float64) (traj.Dataset, error) {
	if u <= 0 || c <= 0 {
		return nil, fmt.Errorf("datagen: u and c must be > 0")
	}
	paths, err := Zebras(cfg)
	if err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed ^ 0x2EB7A) // independent observation-noise stream
	sigma := u / c
	ds := make(traj.Dataset, len(paths))
	for i, path := range paths {
		tr := make(traj.Trajectory, len(path))
		for j, p := range path {
			tr[j] = traj.Point{
				Mean:  p.Add(geom.Pt(rng.Normal(0, sigma), rng.Normal(0, sigma))),
				Sigma: sigma,
			}
		}
		ds[i] = tr
	}
	return ds, nil
}
