package datagen

import (
	"fmt"
	"math"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// TPRConfig parameterizes the uniform moving-object workload in the style
// of the TPR-tree evaluation [9]: objects start uniformly in the unit
// square with uniformly distributed velocities, keep each velocity for a
// geometric number of snapshots, and bounce off the boundary.
type TPRConfig struct {
	NumObjects int     // trajectories (default 100)
	Length     int     // snapshots per trajectory (default 100)
	MaxSpeed   float64 // per-snapshot speed bound (default 0.03)
	ChangeProb float64 // per-snapshot probability of drawing a new velocity (default 0.1)
	Seed       uint64
}

func (c TPRConfig) withDefaults() TPRConfig {
	if c.NumObjects == 0 {
		c.NumObjects = 100
	}
	if c.Length == 0 {
		c.Length = 100
	}
	if c.MaxSpeed == 0 {
		c.MaxSpeed = 0.03
	}
	if c.ChangeProb == 0 {
		c.ChangeProb = 0.1
	}
	return c
}

func (c TPRConfig) validate() error {
	if c.NumObjects < 1 || c.Length < 2 {
		return fmt.Errorf("datagen: TPRConfig needs >=1 object and Length >= 2")
	}
	if c.MaxSpeed <= 0 {
		return fmt.Errorf("datagen: TPRConfig.MaxSpeed must be > 0")
	}
	if c.ChangeProb < 0 || c.ChangeProb > 1 {
		return fmt.Errorf("datagen: TPRConfig.ChangeProb must be in [0,1]")
	}
	return nil
}

// TPRObjects generates the true paths of the uniform workload.
func TPRObjects(cfg TPRConfig) ([][]geom.Point, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed)
	bounds := geom.UnitSquare()
	paths := make([][]geom.Point, cfg.NumObjects)
	for i := range paths {
		pos := geom.Pt(rng.Float64(), rng.Float64())
		vel := randomVelocity(rng, cfg.MaxSpeed)
		path := make([]geom.Point, cfg.Length)
		for t := 0; t < cfg.Length; t++ {
			path[t] = pos
			if rng.Bool(cfg.ChangeProb) {
				vel = randomVelocity(rng, cfg.MaxSpeed)
			}
			next := pos.Add(vel)
			// Bounce off the walls.
			if next.X < bounds.Min.X || next.X > bounds.Max.X {
				vel.X = -vel.X
				next.X = pos.X + vel.X
			}
			if next.Y < bounds.Min.Y || next.Y > bounds.Max.Y {
				vel.Y = -vel.Y
				next.Y = pos.Y + vel.Y
			}
			pos = bounds.Clamp(next)
		}
		paths[i] = path
	}
	return paths, nil
}

// randomVelocity draws a velocity with uniform direction and speed uniform
// in (0, maxSpeed].
func randomVelocity(rng *stat.RNG, maxSpeed float64) geom.Point {
	th := rng.Uniform(0, 2*math.Pi)
	sp := rng.Float64() * maxSpeed
	return geom.Pt(sp*math.Cos(th), sp*math.Sin(th))
}

// TPRDataset generates the imprecise dataset form of TPRObjects with
// observation noise and σ = u/c, mirroring ZebraDataset.
func TPRDataset(cfg TPRConfig, u, c float64) (traj.Dataset, error) {
	if u <= 0 || c <= 0 {
		return nil, fmt.Errorf("datagen: u and c must be > 0")
	}
	paths, err := TPRObjects(cfg)
	if err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed ^ 0x79A1)
	sigma := u / c
	ds := make(traj.Dataset, len(paths))
	for i, path := range paths {
		tr := make(traj.Trajectory, len(path))
		for j, p := range path {
			tr[j] = traj.Point{
				Mean:  p.Add(geom.Pt(rng.Normal(0, sigma), rng.Normal(0, sigma))),
				Sigma: sigma,
			}
		}
		ds[i] = tr
	}
	return ds, nil
}
