// Package datagen synthesizes the datasets of the paper's evaluation:
//
//   - BusSim reproduces the shape of the §6.1 bus data set (50 buses on 5
//     routes, 10 weekdays, per-minute GPS readings, 500 traces): the real
//     GPS traces are not available, so buses follow fixed route loops with
//     speed noise, dwell stops and GPS jitter. Shared routes induce the
//     common velocity patterns the experiment mines.
//   - ZebraSim reproduces the §6.2 ZebraNet-style generator exactly as the
//     paper describes it: zebra groups draw a per-snapshot moving distance
//     and direction, individuals add noise, and a small number of zebras
//     leave their group and move independently.
//   - TPRSim generates uniform objects with piecewise-constant random
//     velocities, the network-style workload of [9].
//
// All generators are deterministic functions of their seed.
package datagen

import (
	"fmt"
	"math"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

// BusConfig parameterizes the bus-route simulator. The defaults mirror the
// paper's data set: 5 routes × 10 buses × 10 days = 500 traces of
// per-minute readings.
type BusConfig struct {
	Routes        int     // number of distinct routes (default 5)
	BusesPerRoute int     // buses sharing each route (default 10)
	Days          int     // traces per bus (default 10)
	Minutes       int     // readings per trace (default 101 → 100 velocities)
	BaseSpeed     float64 // route distance covered per minute (default 0.02)
	SpeedNoise    float64 // relative speed jitter per minute (default 0.15)
	GPSNoise      float64 // std-dev of position jitter (default 0.002)
	StopProb      float64 // probability of a random traffic dwell (default 0.05)
	// Stops is the number of fixed bus stops per route (default 4). A bus
	// reaching a stop dwells DwellMin minutes. Fixed stops anchor the
	// phase of every bus along its route, which is what makes velocity
	// sequences repeat across traces (real schedules share stops). Set
	// negative to disable fixed stops.
	Stops    int
	DwellMin int    // dwell duration at a fixed stop in minutes (default 2)
	Seed     uint64 // RNG seed
}

// WithDefaults returns the configuration with zero fields replaced by the
// paper-comparable defaults.
func (c BusConfig) WithDefaults() BusConfig {
	if c.Routes == 0 {
		c.Routes = 5
	}
	if c.BusesPerRoute == 0 {
		c.BusesPerRoute = 10
	}
	if c.Days == 0 {
		c.Days = 10
	}
	if c.Minutes == 0 {
		c.Minutes = 101
	}
	if c.BaseSpeed == 0 {
		c.BaseSpeed = 0.02
	}
	if c.SpeedNoise == 0 {
		c.SpeedNoise = 0.15
	}
	if c.GPSNoise == 0 {
		c.GPSNoise = 0.002
	}
	if c.StopProb == 0 {
		c.StopProb = 0.05
	}
	if c.Stops == 0 {
		c.Stops = 4
	}
	if c.DwellMin == 0 {
		c.DwellMin = 2
	}
	return c
}

func (c BusConfig) validate() error {
	if c.Routes < 0 || c.BusesPerRoute < 0 || c.Days < 0 || c.Minutes < 0 {
		return fmt.Errorf("datagen: negative BusConfig counts")
	}
	if c.BaseSpeed < 0 || c.SpeedNoise < 0 || c.GPSNoise < 0 {
		return fmt.Errorf("datagen: negative BusConfig noise parameters")
	}
	if c.StopProb < 0 || c.StopProb >= 1 {
		return fmt.Errorf("datagen: BusConfig.StopProb must be in [0,1)")
	}
	return nil
}

// BusTrace is one bus-day: the true per-minute locations plus provenance.
type BusTrace struct {
	Route int
	Bus   int
	Day   int
	Path  []geom.Point
}

// Buses generates the full trace set: Routes × BusesPerRoute × Days traces
// of Minutes readings each, inside the unit square.
func Buses(cfg BusConfig) ([]BusTrace, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stat.NewRNG(cfg.Seed)
	routes := make([][]geom.Point, cfg.Routes)
	for r := range routes {
		routes[r] = makeRoute(rng.Fork(uint64(r + 1)))
	}

	var traces []BusTrace
	for r := 0; r < cfg.Routes; r++ {
		loopLen := geom.PolylineLength(closeLoop(routes[r]))
		stops := stopArcs(loopLen, cfg.Stops)
		for b := 0; b < cfg.BusesPerRoute; b++ {
			// Each bus starts at its own offset along the loop, fixed
			// across days (same driver, same schedule).
			offset := rng.Float64() * loopLen
			for d := 0; d < cfg.Days; d++ {
				busRNG := rng.Fork(uint64(r)<<20 | uint64(b)<<10 | uint64(d))
				traces = append(traces, BusTrace{
					Route: r, Bus: b, Day: d,
					Path: driveBus(routes[r], loopLen, offset, stops, cfg, busRNG),
				})
			}
		}
	}
	return traces, nil
}

// stopArcs places n fixed stops evenly along a loop of the given length.
func stopArcs(loopLen float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	arcs := make([]float64, n)
	for i := range arcs {
		arcs[i] = loopLen * float64(i) / float64(n)
	}
	return arcs
}

// BusPaths returns just the true paths of Buses, in trace order.
func BusPaths(cfg BusConfig) ([][]geom.Point, error) {
	traces, err := Buses(cfg)
	if err != nil {
		return nil, err
	}
	paths := make([][]geom.Point, len(traces))
	for i, tr := range traces {
		paths[i] = tr.Path
	}
	return paths, nil
}

// makeRoute builds a closed rectilinear route: buses drive city blocks, so
// the loop is an axis-aligned rectangle on a street grid with one or two
// rectangular notches. Rectilinear routes concentrate the velocity
// vocabulary in a handful of directions (±x, ±y and stopped), which is
// what makes fleet-wide velocity patterns minable — the property the real
// bus traces of §6.1 have by construction of street networks.
func makeRoute(rng *stat.RNG) []geom.Point {
	const street = 0.1 // street spacing
	snap := func(v float64) float64 { return math.Round(v/street) * street }

	// Compact loops: a lap takes a handful of minutes, so each trace
	// covers many laps and every corner/stop recurs often enough to mine.
	x1 := snap(rng.Uniform(0.1, 0.55))
	x2 := snap(x1 + rng.Uniform(0.2, 0.35))
	y1 := snap(rng.Uniform(0.1, 0.55))
	y2 := snap(y1 + rng.Uniform(0.2, 0.35))

	// Base rectangle, counterclockwise.
	pts := []geom.Point{
		geom.Pt(x1, y1), geom.Pt(x2, y1), geom.Pt(x2, y2), geom.Pt(x1, y2),
	}
	// Optional notch on the top edge: detour one block down and back.
	if rng.Bool(0.7) && x2-x1 >= 3*street {
		nx1 := snap(rng.Uniform(x1+street, x2-2*street))
		nx2 := nx1 + street
		ny := y2 - street
		pts = []geom.Point{
			geom.Pt(x1, y1), geom.Pt(x2, y1), geom.Pt(x2, y2),
			geom.Pt(nx2, y2), geom.Pt(nx2, ny), geom.Pt(nx1, ny), geom.Pt(nx1, y2),
			geom.Pt(x1, y2),
		}
	}
	return pts
}

// closeLoop appends the first vertex so the polyline closes.
func closeLoop(pts []geom.Point) []geom.Point {
	return append(append([]geom.Point(nil), pts...), pts[0])
}

// driveBus advances a bus along its route loop minute by minute, dwelling
// at the route's fixed stops and occasionally in traffic.
func driveBus(route []geom.Point, loopLen, offset float64, stops []float64, cfg BusConfig, rng *stat.RNG) []geom.Point {
	loop := closeLoop(route)
	path := make([]geom.Point, cfg.Minutes)
	s := offset
	dwell := 0
	for m := 0; m < cfg.Minutes; m++ {
		pos := geom.PointAlongPolyline(loop, math.Mod(s, loopLen))
		path[m] = pos.Add(geom.Pt(rng.Normal(0, cfg.GPSNoise), rng.Normal(0, cfg.GPSNoise)))
		if dwell > 0 {
			dwell--
			continue
		}
		if rng.Bool(cfg.StopProb) {
			continue // random traffic dwell
		}
		step := cfg.BaseSpeed * (1 + rng.Normal(0, cfg.SpeedNoise))
		if step < 0 {
			step = 0
		}
		// A fixed stop inside the step: snap to it and start dwelling, so
		// every bus leaves the stop from the same position.
		if arc, ok := nextStop(math.Mod(s, loopLen), step, stops, loopLen); ok {
			s += math.Mod(arc-math.Mod(s, loopLen)+loopLen, loopLen)
			dwell = cfg.DwellMin
			continue
		}
		s += step
	}
	return path
}

// nextStop returns the first stop arc within (pos, pos+step] on the loop,
// handling wraparound.
func nextStop(pos, step float64, stops []float64, loopLen float64) (float64, bool) {
	best, found := 0.0, false
	bestDist := step
	for _, arc := range stops {
		d := math.Mod(arc-pos+loopLen, loopLen)
		if d > 0 && d <= bestDist {
			best, bestDist, found = arc, d, true
		}
	}
	return best, found
}
