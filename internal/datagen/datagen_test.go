package datagen

import (
	"math"
	"testing"

	"trajpattern/internal/geom"
)

func TestBusesDefaultsShape(t *testing.T) {
	traces, err := Buses(BusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 5 routes × 10 buses × 10 days = 500 traces, each 101 readings.
	if len(traces) != 500 {
		t.Fatalf("traces = %d, want 500", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Path) != 101 {
			t.Fatalf("trace length = %d, want 101", len(tr.Path))
		}
	}
}

func TestBusesStayNearUnitSquare(t *testing.T) {
	traces, err := Buses(BusConfig{Routes: 2, BusesPerRoute: 2, Days: 2, Minutes: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	box := geom.UnitSquare().Expand(0.05) // GPS noise may spill slightly
	for _, tr := range traces {
		for _, p := range tr.Path {
			if !box.Contains(p) {
				t.Fatalf("bus left the area: %v", p)
			}
		}
	}
}

func TestBusesSameRouteSharesGeometry(t *testing.T) {
	// Two buses on one route cover overlapping space; buses on different
	// routes generally do not share centers. Check that the bounding
	// boxes of same-route traces overlap strongly.
	traces, err := Buses(BusConfig{Routes: 2, BusesPerRoute: 2, Days: 1, Minutes: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byRoute := make(map[int][]BusTrace)
	for _, tr := range traces {
		byRoute[tr.Route] = append(byRoute[tr.Route], tr)
	}
	for r, ts := range byRoute {
		if len(ts) < 2 {
			continue
		}
		a := geom.BoundingRect(ts[0].Path)
		b := geom.BoundingRect(ts[1].Path)
		if !a.Intersects(b) {
			t.Errorf("route %d buses do not overlap: %v vs %v", r, a, b)
		}
	}
}

func TestBusesDeterministic(t *testing.T) {
	cfg := BusConfig{Routes: 1, BusesPerRoute: 1, Days: 1, Minutes: 20, Seed: 4}
	a, err := Buses(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Buses(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Path {
		if a[0].Path[i] != b[0].Path[i] {
			t.Fatal("bus generation not deterministic")
		}
	}
}

func TestBusConfigValidation(t *testing.T) {
	if _, err := Buses(BusConfig{Routes: -1}); err == nil {
		t.Error("negative routes accepted")
	}
	if _, err := Buses(BusConfig{StopProb: 1.5}); err == nil {
		t.Error("StopProb > 1 accepted")
	}
}

func TestZebrasShape(t *testing.T) {
	cfg := ZebraConfig{NumZebras: 20, NumGroups: 4, AvgLen: 50, Seed: 5}
	paths, err := Zebras(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 20 {
		t.Fatalf("paths = %d", len(paths))
	}
	var totalLen int
	for _, p := range paths {
		if len(p) < 2 {
			t.Fatalf("trajectory too short: %d", len(p))
		}
		totalLen += len(p)
	}
	avg := float64(totalLen) / 20
	if math.Abs(avg-50) > 15 {
		t.Errorf("average length = %v, want ≈50", avg)
	}
}

func TestZebrasGroupCohesion(t *testing.T) {
	// Without leavers, zebras in the same group stay close at every
	// snapshot.
	cfg := ZebraConfig{
		NumZebras: 8, NumGroups: 2, AvgLen: 40, LenJitter: 0.01,
		LeaveProb: 1e-12, IndivNoise: 0.005, Seed: 6,
	}
	paths, err := Zebras(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zebras 0 and 2 share group 0 (round-robin assignment).
	a, b := paths[0], paths[2]
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t2 := 0; t2 < n; t2++ {
		if a[t2].Dist(b[t2]) > 0.1 {
			t.Fatalf("group members separated at %d: %v", t2, a[t2].Dist(b[t2]))
		}
	}
}

func TestZebrasStayInBounds(t *testing.T) {
	paths, err := Zebras(ZebraConfig{NumZebras: 10, AvgLen: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	box := geom.UnitSquare().Expand(0.05)
	for _, path := range paths {
		for _, p := range path {
			if !box.Contains(p) {
				t.Fatalf("zebra escaped: %v", p)
			}
		}
	}
}

func TestZebraConfigValidation(t *testing.T) {
	bad := []ZebraConfig{
		{NumZebras: 1, NumGroups: 1, AvgLen: 1},
		{LenJitter: -0.1},
		{LeaveProb: 2},
		{MeanStep: -1},
	}
	for i, cfg := range bad {
		if _, err := Zebras(cfg); err == nil {
			t.Errorf("bad zebra config %d accepted", i)
		}
	}
}

func TestZebraDataset(t *testing.T) {
	ds, err := ZebraDataset(ZebraConfig{NumZebras: 10, AvgLen: 30, Seed: 8}, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 10 {
		t.Fatalf("dataset size = %d", len(ds))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds {
		for _, p := range tr {
			if p.Sigma != 0.01 {
				t.Fatalf("sigma = %v, want U/C = 0.01", p.Sigma)
			}
		}
	}
	if _, err := ZebraDataset(ZebraConfig{}, 0, 1); err == nil {
		t.Error("u=0 accepted")
	}
}

func TestTPRObjects(t *testing.T) {
	paths, err := TPRObjects(TPRConfig{NumObjects: 15, Length: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 15 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, path := range paths {
		if len(path) != 60 {
			t.Fatalf("length = %d", len(path))
		}
		for i, p := range path {
			if !geom.UnitSquare().Contains(p) {
				t.Fatalf("object outside unit square: %v", p)
			}
			if i > 0 {
				// Speed bound: one step plus bounce cannot exceed maxSpeed·√2.
				if path[i].Dist(path[i-1]) > 0.03*1.5 {
					t.Fatalf("speed bound violated: %v", path[i].Dist(path[i-1]))
				}
			}
		}
	}
}

func TestTPRValidation(t *testing.T) {
	if _, err := TPRObjects(TPRConfig{NumObjects: 1, Length: 1}); err == nil {
		t.Error("Length=1 accepted")
	}
	if _, err := TPRObjects(TPRConfig{ChangeProb: -1}); err == nil {
		t.Error("negative ChangeProb accepted")
	}
	if _, err := TPRDataset(TPRConfig{}, -1, 1); err == nil {
		t.Error("negative u accepted")
	}
}

func TestTPRDataset(t *testing.T) {
	ds, err := TPRDataset(TPRConfig{NumObjects: 5, Length: 20, Seed: 10}, 0.04, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 || ds[0].Len() != 20 {
		t.Fatalf("dataset shape wrong: %d × %d", len(ds), ds[0].Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}
