package grid

import (
	"testing"
	"testing/quick"

	"trajpattern/internal/geom"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(geom.UnitSquare(), 0, 1) },
		func() { New(geom.UnitSquare(), 1, -1) },
		func() { New(geom.NewRect(geom.Pt(0, 0), geom.Pt(0, 1)), 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from invalid grid")
				}
			}()
			bad()
		}()
	}
}

func TestBasicGeometry(t *testing.T) {
	g := NewSquare(10)
	if g.NumCells() != 100 || g.NX() != 10 || g.NY() != 10 {
		t.Fatalf("shape wrong: %v", g)
	}
	if g.CellWidth() != 0.1 || g.CellHeight() != 0.1 {
		t.Errorf("cell size %v×%v", g.CellWidth(), g.CellHeight())
	}
	c := g.CellOf(geom.Pt(0.05, 0.05))
	if c != (Cell{0, 0}) {
		t.Errorf("CellOf corner = %v", c)
	}
	if got := g.Center(Cell{0, 0}); got != geom.Pt(0.05, 0.05) {
		t.Errorf("Center = %v", got)
	}
	if got := g.CellOf(geom.Pt(0.95, 0.15)); got != (Cell{9, 1}) {
		t.Errorf("CellOf = %v", got)
	}
}

func TestClampingOutOfBounds(t *testing.T) {
	g := NewSquare(4)
	if got := g.CellOf(geom.Pt(-5, -5)); got != (Cell{0, 0}) {
		t.Errorf("clamp low = %v", got)
	}
	if got := g.CellOf(geom.Pt(5, 5)); got != (Cell{3, 3}) {
		t.Errorf("clamp high = %v", got)
	}
	// Exactly on the max boundary lands in the last cell.
	if got := g.CellOf(geom.Pt(1, 1)); got != (Cell{3, 3}) {
		t.Errorf("max boundary = %v", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := New(geom.NewRect(geom.Pt(-2, 1), geom.Pt(4, 5)), 6, 8)
	for idx := 0; idx < g.NumCells(); idx++ {
		c := g.CellAt(idx)
		if g.Index(c) != idx {
			t.Fatalf("round trip failed at %d -> %v", idx, c)
		}
		if !g.CellRect(c).Contains(g.Center(c)) {
			t.Fatalf("center of %v outside its rect", c)
		}
		if g.IndexOf(g.Center(c)) != idx {
			t.Fatalf("IndexOf(Center) != idx at %d", idx)
		}
	}
}

func TestIndexPanics(t *testing.T) {
	g := NewSquare(3)
	for _, f := range []func(){
		func() { g.Index(Cell{3, 0}) },
		func() { g.Index(Cell{0, -1}) },
		func() { g.CellAt(9) },
		func() { g.CellAt(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from out-of-range cell/index")
				}
			}()
			f()
		}()
	}
}

func TestNeighbors(t *testing.T) {
	g := NewSquare(4)
	// Interior cell (1,1) = index 5 has 8 neighbors at r=1.
	if n := g.Neighbors(5, 1); len(n) != 8 {
		t.Errorf("interior neighbors = %d, want 8", len(n))
	}
	// Corner (0,0) = index 0 has 3.
	if n := g.Neighbors(0, 1); len(n) != 3 {
		t.Errorf("corner neighbors = %d, want 3", len(n))
	}
	// r=0 yields none.
	if n := g.Neighbors(5, 0); len(n) != 0 {
		t.Errorf("r=0 neighbors = %v", n)
	}
	// Never contains self.
	for _, idx := range g.Neighbors(5, 2) {
		if idx == 5 {
			t.Error("Neighbors contains self")
		}
	}
}

func TestCellsNear(t *testing.T) {
	g := NewSquare(10)
	p := g.Center(Cell{5, 5})
	// Only the containing cell within a tiny radius.
	near := g.CellsNear(p, 0.01)
	if len(near) != 1 || near[0] != g.Index(Cell{5, 5}) {
		t.Errorf("tiny radius = %v", near)
	}
	// Radius of one cell width (with slack for float rounding of the
	// center spacing) includes the 4 axis neighbors.
	near = g.CellsNear(p, 0.1+1e-9)
	if len(near) != 5 {
		t.Errorf("axis radius count = %d, want 5 (%v)", len(near), near)
	}
	// All returned centers really are within d.
	for _, idx := range g.CellsNear(p, 0.25) {
		if g.CenterAt(idx).Dist(p) > 0.25 {
			t.Errorf("cell %d center too far", idx)
		}
	}
}

// Property: every finite point maps to a valid cell whose rect (expanded by
// eps for boundary points) contains the clamped point.
func TestQuickCellOfValid(t *testing.T) {
	g := New(geom.NewRect(geom.Pt(-1, -1), geom.Pt(3, 2)), 7, 5)
	f := func(x, y float64) bool {
		p := geom.Pt(x, y)
		if !p.IsFinite() {
			return true
		}
		c := g.CellOf(p)
		if c.X < 0 || c.X >= g.NX() || c.Y < 0 || c.Y >= g.NY() {
			return false
		}
		clamped := g.Bounds().Clamp(p)
		return g.CellRect(c).Expand(1e-9).Contains(clamped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Index and CellAt are inverse bijections over the valid range.
func TestQuickIndexBijection(t *testing.T) {
	g := New(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 1)), 13, 3)
	f := func(raw uint32) bool {
		idx := int(raw) % g.NumCells()
		return g.Index(g.CellAt(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
