// Package grid discretizes the continuous 2-D space into rectangular cells,
// as Section 3.3 of the TrajPattern paper prescribes: "we discretize the
// space into small regions and only the centers of these regions may serve
// as the positions in a pattern".
//
// A Grid maps between continuous points, integer cell coordinates, and flat
// cell indices. Cell indices are the alphabet of the pattern miners: a
// trajectory pattern is a sequence of cell indices, and the total number of
// cells is the paper's parameter G.
package grid

import (
	"fmt"

	"trajpattern/internal/geom"
)

// Cell identifies one grid cell by integer column (X) and row (Y)
// coordinates, both starting at 0 in the lower-left corner of the space.
type Cell struct {
	X, Y int
}

// Grid partitions an axis-aligned rectangle into NX × NY equal cells.
type Grid struct {
	bounds geom.Rect
	nx, ny int
	cw, ch float64 // cell width and height (the paper's gₓ, g_y)
}

// New returns a grid over bounds with nx columns and ny rows. It panics if
// the bounds are degenerate or the cell counts are not positive, because a
// grid is always constructed from static configuration.
func New(bounds geom.Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: non-positive cell counts %d×%d", nx, ny))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate bounds %v", bounds))
	}
	return &Grid{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cw:     bounds.Width() / float64(nx),
		ch:     bounds.Height() / float64(ny),
	}
}

// NewSquare returns an n×n grid over the unit square, the default mining
// space used by the experiments (G = n²).
func NewSquare(n int) *Grid { return New(geom.UnitSquare(), n, n) }

// Bounds returns the rectangle the grid covers.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// NX returns the number of columns.
func (g *Grid) NX() int { return g.nx }

// NY returns the number of rows.
func (g *Grid) NY() int { return g.ny }

// NumCells returns the total number of cells, the paper's parameter G.
func (g *Grid) NumCells() int { return g.nx * g.ny }

// CellWidth returns gₓ, the horizontal extent of one cell.
func (g *Grid) CellWidth() float64 { return g.cw }

// CellHeight returns g_y, the vertical extent of one cell.
func (g *Grid) CellHeight() float64 { return g.ch }

// CellOf returns the cell containing p. Points outside the bounds are
// clamped to the nearest boundary cell, so every point maps to a valid cell.
func (g *Grid) CellOf(p geom.Point) Cell {
	// Clamp in the float domain first: converting an out-of-range float to
	// int is platform-defined in Go, so huge coordinates could otherwise
	// wrap to the wrong side.
	p = g.bounds.Clamp(p)
	cx := int((p.X - g.bounds.Min.X) / g.cw)
	cy := int((p.Y - g.bounds.Min.Y) / g.ch)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return Cell{X: cx, Y: cy}
}

// Index flattens a cell to a single integer in [0, NumCells), row-major.
// It panics on out-of-range cells.
func (g *Grid) Index(c Cell) int {
	if c.X < 0 || c.X >= g.nx || c.Y < 0 || c.Y >= g.ny {
		panic(fmt.Sprintf("grid: cell %v out of range %d×%d", c, g.nx, g.ny))
	}
	return c.Y*g.nx + c.X
}

// CellAt is the inverse of Index. It panics on out-of-range indices.
func (g *Grid) CellAt(idx int) Cell {
	if idx < 0 || idx >= g.NumCells() {
		panic(fmt.Sprintf("grid: index %d out of range %d", idx, g.NumCells()))
	}
	return Cell{X: idx % g.nx, Y: idx / g.nx}
}

// IndexOf returns the flat index of the cell containing p.
func (g *Grid) IndexOf(p geom.Point) int { return g.Index(g.CellOf(p)) }

// Center returns the center point of cell c.
func (g *Grid) Center(c Cell) geom.Point {
	return geom.Point{
		X: g.bounds.Min.X + (float64(c.X)+0.5)*g.cw,
		Y: g.bounds.Min.Y + (float64(c.Y)+0.5)*g.ch,
	}
}

// CenterAt returns the center point of the cell with flat index idx.
func (g *Grid) CenterAt(idx int) geom.Point { return g.Center(g.CellAt(idx)) }

// CellRect returns the rectangle covered by cell c.
func (g *Grid) CellRect(c Cell) geom.Rect {
	min := geom.Point{
		X: g.bounds.Min.X + float64(c.X)*g.cw,
		Y: g.bounds.Min.Y + float64(c.Y)*g.ch,
	}
	return geom.Rect{Min: min, Max: geom.Point{X: min.X + g.cw, Y: min.Y + g.ch}}
}

// Neighbors returns the flat indices of the cells within Chebyshev distance
// r (in cells) of the cell with flat index idx, excluding idx itself. The
// result is ordered row-major for determinism.
func (g *Grid) Neighbors(idx, r int) []int {
	c := g.CellAt(idx)
	var out []int
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := Cell{X: c.X + dx, Y: c.Y + dy}
			if n.X >= 0 && n.X < g.nx && n.Y >= 0 && n.Y < g.ny {
				out = append(out, g.Index(n))
			}
		}
	}
	return out
}

// CellsNear returns the flat indices of all cells whose center lies within
// Euclidean distance d of point p, ordered by flat index. The singular
// pattern seeding of the miners uses this to restrict candidate positions.
func (g *Grid) CellsNear(p geom.Point, d float64) []int {
	lo := g.CellOf(geom.Point{X: p.X - d, Y: p.Y - d})
	hi := g.CellOf(geom.Point{X: p.X + d, Y: p.Y + d})
	var out []int
	for y := lo.Y; y <= hi.Y; y++ {
		for x := lo.X; x <= hi.X; x++ {
			c := Cell{X: x, Y: y}
			if g.Center(c).Dist(p) <= d {
				out = append(out, g.Index(c))
			}
		}
	}
	return out
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %d×%d over %v", g.nx, g.ny, g.bounds)
}
