package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestScoreAllPanicIsolated(t *testing.T) {
	s := testScorer(t, randomDataset(3, 4, 10, 0.1), 4)
	// NM panics on the empty pattern; the pool must surface that as a
	// typed error for the smallest offending index, not crash or wedge.
	patterns := []Pattern{{0}, {}, {1, 2}, {}}
	_, err := s.ScoreAll(context.Background(), patterns)
	if err == nil {
		t.Fatal("panic in NM not surfaced")
	}
	var pe *ScorePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *ScorePanicError: %v", err, err)
	}
	if pe.Index != 1 {
		t.Errorf("panic index = %d, want 1 (the smallest offender)", pe.Index)
	}
	if pe.Stack == "" {
		t.Error("panic error carries no stack trace")
	}
	if !strings.Contains(pe.Error(), "panicked") {
		t.Errorf("error %q does not say the worker panicked", pe)
	}
	// The pool must stay usable after a panic.
	if _, err := s.ScoreAll(context.Background(), []Pattern{{0}}); err != nil {
		t.Errorf("scorer unusable after a panic: %v", err)
	}
}

func TestScoreAllCancelled(t *testing.T) {
	s := testScorer(t, randomDataset(3, 4, 10, 0.1), 4)
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(fmt.Errorf("operator gave up"))
	_, err := s.ScoreAll(ctx, []Pattern{{0}, {1}})
	if err == nil {
		t.Fatal("cancelled context not surfaced")
	}
	var pe *ScorePanicError
	if errors.As(err, &pe) {
		t.Fatalf("cancellation misreported as a panic: %v", err)
	}
	if !strings.Contains(err.Error(), "operator gave up") {
		t.Errorf("error %q does not carry the cancellation cause", err)
	}
}

// TestMinePreCancelled checks the earliest interrupt point: a context
// cancelled before seeding yields an empty interrupted result, not an
// error.
func TestMinePreCancelled(t *testing.T) {
	s := testScorer(t, randomDataset(3, 4, 10, 0.1), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Mine(ctx, s, MinerConfig{K: 3})
	if err != nil {
		t.Fatalf("pre-cancelled Mine errored: %v", err)
	}
	if !res.Interrupted || res.InterruptReason == "" {
		t.Errorf("pre-cancelled Mine not flagged interrupted: %+v", res)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("pre-cancelled Mine returned %d patterns, want 0", len(res.Patterns))
	}
}

// TestMineCancelMidRun interrupts a run from its own progress callback —
// with scoring workers active — and checks that Mine drains cleanly and
// returns a valid best-so-far answer. Run under -race this also proves
// the worker pool shuts down without leaking or racing.
func TestMineCancelMidRun(t *testing.T) {
	data := randomDataset(7, 8, 20, 0.1)
	s := testScorer(t, data, 5)
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	cfg := MinerConfig{K: 5, MaxLen: 6, OnProgress: func(p Progress) {
		if p.Iteration == 1 {
			cancel(fmt.Errorf("test cancel after iteration %d", p.Iteration))
		}
	}}
	res, err := Mine(ctx, s, cfg)
	if err != nil {
		t.Fatalf("cancelled Mine errored: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled Mine not flagged interrupted")
	}
	if !strings.Contains(res.InterruptReason, "test cancel") {
		t.Errorf("reason %q does not carry the cancellation cause", res.InterruptReason)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("interrupted run returned no best-so-far patterns")
	}
	// The partial answer must be internally consistent: correctly ordered
	// and scored (each NM matches an independent evaluation).
	for i, sp := range res.Patterns {
		if nm := s.NM(sp.Pattern); nm != sp.NM {
			t.Errorf("pattern %d NM %v, independent evaluation %v", i, sp.NM, nm)
		}
		if i > 0 && sp.NM > res.Patterns[i-1].NM {
			t.Errorf("patterns out of order at %d", i)
		}
	}
}

func TestMineMaxWallTime(t *testing.T) {
	s := testScorer(t, randomDataset(7, 8, 20, 0.1), 5)
	res, err := Mine(context.Background(), s, MinerConfig{K: 5, MaxLen: 6, MaxWallTime: time.Nanosecond})
	if err != nil {
		t.Fatalf("wall-time-bounded Mine errored: %v", err)
	}
	if !res.Interrupted || !strings.Contains(res.InterruptReason, "max wall time") {
		t.Errorf("wall-time bound not reported: %+v", res)
	}
	if _, err := Mine(context.Background(), s, MinerConfig{K: 5, MaxWallTime: -time.Second}); err == nil {
		t.Error("negative MaxWallTime accepted")
	}
}
