package core

import (
	"context"
	"math"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

func TestWildPatternBasics(t *testing.T) {
	p := WildPattern{3, Wildcard, Wildcard, 7}
	if p.SpecifiedLen() != 2 {
		t.Errorf("SpecifiedLen = %d", p.SpecifiedLen())
	}
	if p.MaxConsecutiveWildcards() != 2 {
		t.Errorf("MaxConsecutiveWildcards = %d", p.MaxConsecutiveWildcards())
	}
	if p.String() != "3,*,*,7" {
		t.Errorf("String = %q", p.String())
	}
	if (WildPattern{1, 2}).MaxConsecutiveWildcards() != 0 {
		t.Error("no-wildcard run should be 0")
	}
}

func TestNMWildValidation(t *testing.T) {
	s := testScorer(t, randomDataset(1, 2, 8, 0.1), 4)
	if _, err := s.NMWild(WildPattern{Wildcard, Wildcard}); err == nil {
		t.Error("all-wildcard pattern accepted")
	}
	if _, err := s.NMWild(WildPattern{Wildcard, 3}); err == nil {
		t.Error("leading wildcard accepted")
	}
	if _, err := s.NMWild(WildPattern{3, Wildcard}); err == nil {
		t.Error("trailing wildcard accepted")
	}
}

func TestNMWildNoWildcardsMatchesNM(t *testing.T) {
	s := testScorer(t, randomDataset(2, 4, 10, 0.1), 4)
	p := Pattern{3, 7, 11}
	wp := WildPattern{3, 7, 11}
	got, err := s.NMWild(wp)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.NM(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("NMWild = %v, NM = %v", got, want)
	}
}

func TestNMWildSkipsNoisyMiddle(t *testing.T) {
	// Four trajectories walk A, noiseᵢ, B where the middle cell differs
	// per trajectory (the four corners). Any exact 3-pattern A,?,B can
	// match at most one trajectory's middle; A,*,B matches all four.
	g := grid.NewSquare(4)
	a, b := 5, 10
	ca, cb := g.CenterAt(a), g.CenterAt(b)
	var data traj.Dataset
	for _, noise := range []int{0, 3, 12, 15} {
		data = append(data, traj.Trajectory{
			{Mean: ca, Sigma: 0.03},
			{Mean: g.CenterAt(noise), Sigma: 0.03},
			{Mean: cb, Sigma: 0.03},
		})
	}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	wild, err := s.NMWild(WildPattern{a, Wildcard, b})
	if err != nil {
		t.Fatal(err)
	}
	exactBest := math.Inf(-1)
	for mid := 0; mid < 16; mid++ {
		if v := s.NM(Pattern{a, mid, b}); v > exactBest {
			exactBest = v
		}
	}
	if wild <= exactBest {
		t.Errorf("wildcard NM %v should beat best exact middle %v", wild, exactBest)
	}
}

func TestGapPatternValidation(t *testing.T) {
	s := testScorer(t, randomDataset(3, 2, 10, 0.1), 4)
	bad := []GapPattern{
		{},
		{Segments: []Pattern{{1}, {}}, MinGap: []int{0}, MaxGap: []int{1}},
		{Segments: []Pattern{{1}, {2}}, MinGap: []int{0}, MaxGap: nil},
		{Segments: []Pattern{{1}, {2}}, MinGap: []int{-1}, MaxGap: []int{1}},
		{Segments: []Pattern{{1}, {2}}, MinGap: []int{2}, MaxGap: []int{1}},
	}
	for i, p := range bad {
		if _, err := s.NMGap(p); err == nil {
			t.Errorf("bad gap pattern %d accepted", i)
		}
	}
}

func TestNMGapZeroGapMatchesNM(t *testing.T) {
	s := testScorer(t, randomDataset(4, 3, 12, 0.1), 4)
	p := GapPattern{
		Segments: []Pattern{{3, 7}, {11}},
		MinGap:   []int{0},
		MaxGap:   []int{0},
	}
	got, err := s.NMGap(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.NM(Pattern{3, 7, 11}); math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-gap NM = %v, contiguous NM = %v", got, want)
	}
}

func TestNMGapFixedGapMatchesWildcards(t *testing.T) {
	s := testScorer(t, randomDataset(5, 3, 12, 0.1), 4)
	gp := GapPattern{
		Segments: []Pattern{{3}, {11}},
		MinGap:   []int{2},
		MaxGap:   []int{2},
	}
	got, err := s.NMGap(gp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.NMWild(WildPattern{3, Wildcard, Wildcard, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("fixed-gap NM = %v, wildcard NM = %v", got, want)
	}
}

func TestNMGapFlexibleBeatsFixed(t *testing.T) {
	// A flexible gap can only do at least as well as any fixed gap within
	// its bounds.
	s := testScorer(t, randomDataset(6, 4, 15, 0.1), 4)
	flex := GapPattern{Segments: []Pattern{{3}, {11}}, MinGap: []int{0}, MaxGap: []int{3}}
	flexNM, err := s.NMGap(flex)
	if err != nil {
		t.Fatal(err)
	}
	for gap := 0; gap <= 3; gap++ {
		fixed := GapPattern{Segments: []Pattern{{3}, {11}}, MinGap: []int{gap}, MaxGap: []int{gap}}
		fixedNM, err := s.NMGap(fixed)
		if err != nil {
			t.Fatal(err)
		}
		if fixedNM > flexNM+1e-9 {
			t.Errorf("fixed gap %d NM %v beats flexible NM %v", gap, fixedNM, flexNM)
		}
	}
}

func TestNMGapShortTrajectoryFloor(t *testing.T) {
	data := traj.Dataset{{traj.P(0.5, 0.5, 0.1), traj.P(0.5, 0.5, 0.1)}}
	s := testScorer(t, data, 4)
	gp := GapPattern{Segments: []Pattern{{5}, {5}}, MinGap: []int{3}, MaxGap: []int{5}}
	got, err := s.NMGap(gp)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.Config().LogFloor {
		t.Errorf("short trajectory gap NM = %v, want floor", got)
	}
}

func TestMineWithWildcards(t *testing.T) {
	// Repeating A, varying-noise, B walks: the wildcard refinement should
	// produce patterns at least as good as the plain mined ones.
	g := grid.NewSquare(4)
	a, b := 5, 10
	var data traj.Dataset
	for _, noise := range []int{0, 3, 12, 15} {
		var tr traj.Trajectory
		for r := 0; r < 3; r++ {
			tr = append(tr,
				traj.Point{Mean: g.CenterAt(a), Sigma: 0.03},
				traj.Point{Mean: g.CenterAt(noise), Sigma: 0.03},
				traj.Point{Mean: g.CenterAt(b), Sigma: 0.03},
			)
		}
		data = append(data, tr)
	}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	wild, plain, err := MineWithWildcards(context.Background(), s, MinerConfig{K: 5, MinLen: 2, MaxLen: 4, MaxLowQ: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(wild) != len(plain.Patterns) {
		t.Fatalf("size mismatch: %d vs %d", len(wild), len(plain.Patterns))
	}
	// Sorted descending and each refined NM >= the best plain NM it came
	// from is not guaranteed after re-ranking, but the best refined NM
	// must be at least the best plain NM.
	for i := 1; i < len(wild); i++ {
		if wild[i].NM > wild[i-1].NM {
			t.Error("wild results not sorted")
		}
	}
	if wild[0].NM < plain.Patterns[0].NM-1e-12 {
		t.Errorf("refinement degraded the best pattern: %v < %v", wild[0].NM, plain.Patterns[0].NM)
	}
	if _, _, err := MineWithWildcards(context.Background(), s, MinerConfig{K: 2, MaxLen: 3}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestExpandWithWildcards(t *testing.T) {
	// Data walks A, noise, B repeatedly: expansion should insert a star.
	g := grid.NewSquare(4)
	a, b := 5, 10
	var tr traj.Trajectory
	for r := 0; r < 4; r++ {
		tr = append(tr,
			traj.Point{Mean: g.CenterAt(a), Sigma: 0.03},
			traj.Point{Mean: g.CenterAt(0), Sigma: 0.03},
			traj.Point{Mean: g.CenterAt(b), Sigma: 0.03},
		)
	}
	s, err := NewScorer(traj.Dataset{tr}, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	wp, nm, err := s.ExpandWithWildcards(Pattern{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wp.String() != "5,*,10" {
		t.Errorf("expanded = %q, want 5,*,10", wp.String())
	}
	base, err := s.NMWild(WildPattern{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if nm <= base {
		t.Errorf("expansion did not improve NM: %v vs %v", nm, base)
	}
	// Budget 0 returns the pattern unchanged.
	wp0, _, err := s.ExpandWithWildcards(Pattern{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wp0.String() != "5,10" {
		t.Errorf("zero budget changed pattern: %q", wp0.String())
	}
	if _, _, err := s.ExpandWithWildcards(nil, 1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, _, err := s.ExpandWithWildcards(Pattern{a}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}
