package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"trajpattern/internal/faultio"
)

// CheckpointVersion identifies the on-disk checkpoint schema.
const CheckpointVersion = 1

// checkpointMagic leads the CRC trailer line so a reader can tell a
// truncated file from one with a trailing-garbage problem.
const checkpointMagic = "trajpattern-checkpoint"

// castagnoli is the CRC-32C polynomial table shared by checkpoint
// writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is a crash-safe snapshot of a Mine run, taken at a grow
// iteration boundary (never mid-iteration, so a resumed run replays the
// remaining iterations exactly as the uninterrupted run would).
// DESIGN.md maps each field to its §4 set.
//
// All slices are sorted deterministically before serialization, so the
// same miner state always produces byte-identical checkpoint files.
type Checkpoint struct {
	Version int `json:"version"`
	// Fingerprint identifies the mining problem (config + scoring +
	// dataset shape). Resume refuses a checkpoint whose fingerprint does
	// not match the current run — replaying someone else's state would
	// silently produce wrong patterns. Run bounds (MaxIters,
	// MaxWallTime, checkpoint settings) are deliberately excluded: a run
	// interrupted under a tight bound may be resumed under a looser one.
	Fingerprint string `json:"fingerprint"`
	// Iteration is the next grow iteration to execute (0-based): the
	// snapshot was taken after Iteration-many iterations completed.
	Iteration int `json:"iteration"`
	// LastFresh is the number of fresh candidates evaluated in the
	// iteration before the snapshot; the termination test reads it.
	LastFresh int `json:"last_fresh"`
	// PrevHigh and PrevAns are the high-set and answer-set keys at the
	// last labeling, the stability witnesses of the termination test.
	PrevHigh []string `json:"prev_high"`
	PrevAns  []string `json:"prev_answer"`
	// Stats is the cumulative work accounting up to the snapshot.
	Stats MinerStats `json:"stats"`
	// Q holds the keys of the current pattern set Q; their NM values
	// live in Evaluated, of which Q's keys are always a subset.
	Q []string `json:"q"`
	// Evaluated is the full NM memo — every pattern ever scored, with
	// its value. Restoring it (not just Q) is what makes resume
	// deterministic: readmissions and fresh-candidate counts after
	// resume match the uninterrupted run exactly.
	Evaluated []SavedEntry `json:"evaluated"`
}

// FingerprintMismatchError reports a resume checkpoint taken for a
// different mining problem (config, seeds, scoring, or dataset). It is
// permanent: retrying the same run with the same checkpoint can never
// succeed, so a supervisor must surface it instead of backing off.
type FingerprintMismatchError struct {
	// Checkpoint is the fingerprint stored in the checkpoint file.
	Checkpoint string
	// Run is the fingerprint of the run that refused it.
	Run string
}

// Error implements error.
func (e *FingerprintMismatchError) Error() string {
	if e == nil {
		return "core: checkpoint fingerprint mismatch"
	}
	return fmt.Sprintf("core: checkpoint fingerprint %s does not match this run's %s (different config, seeds, scoring, or dataset)", e.Checkpoint, e.Run)
}

// SavedEntry is one pattern/NM record of a Checkpoint. NM survives the
// JSON round trip bit-for-bit (Go emits the shortest representation
// that parses back to the same float64), and is always finite thanks to
// the scorer's log floor.
type SavedEntry struct {
	Cells []int   `json:"cells"`
	NM    float64 `json:"nm"`
}

// WriteCheckpoint serializes ck as indented JSON followed by a one-line
// CRC-32C trailer covering every preceding byte, so a reader can detect
// torn or corrupted files without trusting the JSON parser to notice.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	body, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	body = append(body, '\n')
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s crc32c=%08x\n", checkpointMagic, crc32.Checksum(body, castagnoli))
	return err
}

// ReadCheckpoint parses and verifies a checkpoint written by
// WriteCheckpoint: the trailer must be present, the CRC must match, and
// the schema version must be the current one.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	i := bytes.LastIndexByte(trimmed, '\n')
	if i < 0 {
		return nil, fmt.Errorf("core: checkpoint corrupt: no CRC trailer")
	}
	body, trailer := data[:i+1], string(trimmed[i+1:])
	var sum uint32
	if _, err := fmt.Sscanf(trailer, checkpointMagic+" crc32c=%08x", &sum); err != nil {
		return nil, fmt.Errorf("core: checkpoint corrupt: bad trailer %q", trailer)
	}
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("core: checkpoint corrupt: crc32c %08x, trailer says %08x", got, sum)
	}
	var ck Checkpoint
	if err := json.Unmarshal(body, &ck); err != nil {
		return nil, fmt.Errorf("core: checkpoint corrupt: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// SaveCheckpoint writes ck to path atomically (temp file + fsync +
// rename): a crash at any point leaves either the previous checkpoint
// or the complete new one, never a torn file. fs selects the filesystem
// seam; nil means the real OS (tests inject faults).
func SaveCheckpoint(fs faultio.FS, path string, ck *Checkpoint) error {
	return faultio.WriteFileAtomic(fs, path, func(w io.Writer) error {
		return WriteCheckpoint(w, ck)
	})
}

// LoadCheckpoint reads and verifies the checkpoint at path. A missing
// file surfaces as an error satisfying errors.Is(err, os.ErrNotExist),
// which CLIs treat as "start fresh".
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// Fingerprint returns the fingerprint Mine would stamp on checkpoints
// of this configuration run against scorer s: defaults applied and the
// seed set resolved exactly as the miner does. Callers use it to vet
// externally produced checkpoints (shard worker files) before trusting
// their state.
func (c MinerConfig) Fingerprint(s *Scorer) (string, error) {
	c = c.withDefaults()
	seeds := c.Seeds
	if seeds == nil {
		seeds = s.ObservedCells(1)
	}
	if len(seeds) == 0 {
		return "", fmt.Errorf("core: no seed cells")
	}
	return c.fingerprint(s, seeds), nil
}

// fingerprint hashes the parts of a run that define the mining problem:
// the search parameters, the seed set, the scoring configuration, and
// the dataset shape. Run bounds and instrumentation are excluded (see
// Checkpoint.Fingerprint).
func (c MinerConfig) fingerprint(s *Scorer, seeds []int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "k=%d minlen=%d maxlen=%d maxhigh=%d maxlowq=%d noprune=%t;",
		c.K, c.MinLen, c.MaxLen, c.MaxHigh, c.MaxLowQ, c.DisablePrune)
	fmt.Fprintf(h, "seeds=%d:", len(seeds))
	for _, sd := range seeds {
		fmt.Fprintf(h, "%d,", sd)
	}
	sc := s.cfg
	fmt.Fprintf(h, ";grid=%dx%d bounds=%v delta=%v mode=%v floor=%v cache=%t;",
		sc.Grid.NX(), sc.Grid.NY(), sc.Grid.Bounds(), sc.Delta, sc.Mode, sc.LogFloor, !sc.DisableCache)
	fmt.Fprintf(h, "data=%d/%d", len(s.data), len(s.flat))
	// FingerprintExtra binds sharded checkpoints to their shard slot;
	// hashing it only when set keeps every pre-sharding fingerprint —
	// and thus every existing checkpoint — valid.
	if c.FingerprintExtra != "" {
		fmt.Fprintf(h, ";extra=%s", c.FingerprintExtra)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// snapshot captures the miner's boundary state as a Checkpoint. q maps
// key → entry, evaluated is the NM memo, and the key sets are the
// stability witnesses of the termination test.
func snapshot(fp string, iter, lastFresh int, stats MinerStats,
	q map[string]*entry, evaluated map[string]float64,
	prevHigh, prevAns map[string]struct{}) *Checkpoint {
	ck := &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: fp,
		Iteration:   iter,
		LastFresh:   lastFresh,
		PrevHigh:    sortedKeys(prevHigh),
		PrevAns:     sortedKeys(prevAns),
		Stats:       stats,
		Q:           make([]string, 0, len(q)),
		Evaluated:   make([]SavedEntry, 0, len(evaluated)),
	}
	for k := range q {
		ck.Q = append(ck.Q, k)
	}
	sort.Strings(ck.Q)
	keys := make([]string, 0, len(evaluated))
	for k := range evaluated {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p, err := ParsePattern(k)
		if err != nil {
			// Keys originate from Pattern.Key, so this cannot happen;
			// panicking here would hide a programming error behind a
			// checkpoint failure.
			panic(fmt.Sprintf("core: unparseable memo key %q: %v", k, err))
		}
		ck.Evaluated = append(ck.Evaluated, SavedEntry{Cells: p, NM: evaluated[k]})
	}
	return ck
}

// restore rebuilds the miner's maps from a verified checkpoint. It
// returns an error when the checkpoint is internally inconsistent (a Q
// key missing from the memo), which a CRC-valid file produced by this
// package never is.
func (ck *Checkpoint) restore() (q map[string]*entry, evaluated map[string]float64,
	prevHigh, prevAns map[string]struct{}, err error) {
	evaluated = make(map[string]float64, len(ck.Evaluated))
	for _, se := range ck.Evaluated {
		evaluated[Pattern(se.Cells).Key()] = se.NM
	}
	q = make(map[string]*entry, len(ck.Q))
	for _, k := range ck.Q {
		nm, ok := evaluated[k]
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("core: checkpoint inconsistent: Q key %q not in memo", k)
		}
		p, perr := ParsePattern(k)
		if perr != nil {
			return nil, nil, nil, nil, fmt.Errorf("core: checkpoint inconsistent: %w", perr)
		}
		q[k] = &entry{pat: p, key: k, nm: nm}
	}
	prevHigh = keySet(ck.PrevHigh)
	prevAns = keySet(ck.PrevAns)
	return q, evaluated, prevHigh, prevAns, nil
}

// sortedKeys flattens a key set into a sorted slice; nil stays nil so
// the pre-first-labeling state round-trips through a checkpoint.
func sortedKeys(set map[string]struct{}) []string {
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keySet is the inverse of sortedKeys.
func keySet(keys []string) map[string]struct{} {
	if keys == nil {
		return nil
	}
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return set
}
