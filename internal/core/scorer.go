package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/stat"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// ProbMode selects the geometric interpretation of the paper's
// Prob(l, σ, p, δ): the probability that the object's true location is
// "within δ" of the pattern position p.
type ProbMode int

const (
	// ProbBox integrates the location distribution over the axis-aligned
	// square [p±δ]², the natural companion of the rectangular grid
	// (gₓ = g_y = δ in the experiments). This is the default: it is exact
	// under coordinate independence and an order of magnitude cheaper.
	ProbBox ProbMode = iota
	// ProbDisk integrates over the Euclidean disk of radius δ around p
	// (Rice distribution), the literal reading of "at most δ away".
	ProbDisk
)

// String implements fmt.Stringer.
func (m ProbMode) String() string {
	switch m {
	case ProbBox:
		return "box"
	case ProbDisk:
		return "disk"
	default:
		return fmt.Sprintf("ProbMode(%d)", int(m))
	}
}

// DefaultLogFloor bounds per-position log-probabilities away from -Inf so
// NM arithmetic stays finite when a cell has (numerically) zero probability.
const DefaultLogFloor = -700 // ≈ log of the smallest positive float64

// Config parameterizes NM/match scoring.
type Config struct {
	// Grid discretizes the space; its cell centers are the pattern
	// positions. Required.
	Grid *grid.Grid
	// Delta is the indifference threshold δ. Must be positive. The paper
	// sets δ to the grid cell size.
	Delta float64
	// Mode selects box or disk probability. Default ProbBox.
	Mode ProbMode
	// LogFloor clamps log Prob from below. Zero means DefaultLogFloor.
	LogFloor float64
	// Workers bounds the parallelism of batch NM evaluation. Zero means
	// GOMAXPROCS.
	Workers int
	// DisableCache turns off the per-cell log-probability cache (used by
	// the A3 ablation benchmark). Scoring results are identical either way.
	DisableCache bool
	// Metrics, when non-nil, receives scorer instrumentation (NM
	// evaluation, cache, scratch-pool, batch and per-worker accounting
	// under "scorer.*" names). Nil disables collection at the cost of one
	// nil check per event.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one "scorer.batch" span per ScoreAll
	// call (patterns and cells per batch) on the run timeline; StreamNM
	// additionally records a "stream.pass" span per pass. Nil disables
	// tracing at the cost of one nil check per batch.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	//trajlint:allow floatcmp -- zero means "unset" for this config field; exact sentinel test, not a numeric comparison
	if c.LogFloor == 0 {
		c.LogFloor = DefaultLogFloor
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// validate rejects configurations that would panic deep in the scorer or
// silently poison every score. All failures are *ConfigError so callers
// (CLIs, trajserve) can distinguish caller mistakes from internal faults.
func (c Config) validate() error {
	if c.Grid == nil {
		return cfgErr("ScorerConfig", "Grid", "required")
	}
	if c.Grid.NumCells() <= 0 {
		return cfgErr("ScorerConfig", "Grid", "non-positive cell count %d×%d", c.Grid.NX(), c.Grid.NY())
	}
	// NaN fails every comparison, so test it explicitly: a NaN δ would
	// sail through `<= 0` and turn every probability into NaN.
	if math.IsNaN(c.Delta) || math.IsInf(c.Delta, 0) {
		return cfgErr("ScorerConfig", "Delta", "must be finite, got %v", c.Delta)
	}
	if c.Delta <= 0 {
		return cfgErr("ScorerConfig", "Delta", "must be > 0, got %v", c.Delta)
	}
	if math.IsNaN(c.LogFloor) || c.LogFloor > 0 {
		return cfgErr("ScorerConfig", "LogFloor", "must be <= 0 and not NaN, got %v", c.LogFloor)
	}
	return nil
}

// Scorer evaluates the match and normalized-match measures of patterns
// against a fixed dataset. It caches, per touched grid cell, the vector of
// log Prob(lᵢ, σᵢ, cell, δ) over every snapshot of every trajectory, so the
// NM of a candidate pattern reduces to windowed sums over cached vectors.
//
// A Scorer is safe for concurrent scoring after Prepare has been called for
// all cells involved; the mining loop batches candidate evaluation through
// ScoreAll which handles this automatically.
type Scorer struct {
	cfg  Config
	data traj.Dataset

	// Flattened snapshots: positions of trajectory t live at
	// flat[offsets[t] : offsets[t+1]].
	flat    []traj.Point
	offsets []int

	mu      sync.Mutex
	cache   map[int][]float64 // cell index -> per-flat-position log prob
	nmEvals int               // number of NM evaluations (for MinerStats)

	m  scorerMetrics
	tl *trace.Local // batch-span recorder; nil when Config.Tracer is nil
}

// scorerMetrics holds the resolved obs handles of one Scorer. All fields
// are nil when Config.Metrics is nil; obs handles treat nil receivers as
// no-ops, so call sites need no guards.
type scorerMetrics struct {
	nmEvals      *obs.Counter // NM evaluations (the §4.4 dominant cost)
	cellsBuilt   *obs.Counter // per-cell log-prob vectors materialized
	cacheHits    *obs.Counter // vector lookups served from the cache
	scratchHits  *obs.Counter // window scans reusing a pooled accumulator
	scratchGrows *obs.Counter // window scans that had to grow the accumulator
	batches      *obs.Counter // ScoreAll calls
	batchPats    *obs.Counter // patterns scored across all batches
	batchMax     *obs.Gauge   // largest single batch
	batchTime    *obs.Timer   // wall time inside ScoreAll
	registry     *obs.Registry
}

func newScorerMetrics(r *obs.Registry) scorerMetrics {
	return scorerMetrics{
		nmEvals:      r.Counter("scorer.nm.evals"),
		cellsBuilt:   r.Counter("scorer.cells.built"),
		cacheHits:    r.Counter("scorer.cache.hits"),
		scratchHits:  r.Counter("scorer.scratch.hits"),
		scratchGrows: r.Counter("scorer.scratch.grows"),
		batches:      r.Counter("scorer.batches"),
		batchPats:    r.Counter("scorer.batch.patterns"),
		batchMax:     r.Gauge("scorer.batch.max"),
		batchTime:    r.Timer("scorer.time.batch"),
		registry:     r,
	}
}

// NewScorer validates the configuration and indexes the dataset. The
// dataset must be non-empty and structurally valid.
func NewScorer(data traj.Dataset, cfg Config) (*Scorer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if err := data.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Scorer{
		cfg:     cfg,
		data:    data,
		offsets: make([]int, len(data)+1),
		cache:   make(map[int][]float64),
		m:       newScorerMetrics(cfg.Metrics),
		tl:      cfg.Tracer.Local(),
	}
	for i, t := range data {
		s.offsets[i+1] = s.offsets[i] + len(t)
	}
	s.flat = make([]traj.Point, 0, s.offsets[len(data)])
	for _, t := range data {
		s.flat = append(s.flat, t...)
	}
	return s, nil
}

// Config returns the scoring configuration (with defaults applied).
func (s *Scorer) Config() Config { return s.cfg }

// Dataset returns the dataset the scorer was built over.
func (s *Scorer) Dataset() traj.Dataset { return s.data }

// NumTrajectories returns |𝒟|.
func (s *Scorer) NumTrajectories() int { return len(s.data) }

// logProb computes log Prob(l, σ, p, δ) for a single snapshot/cell pair,
// clamped to the configured floor.
func (s *Scorer) logProb(pt traj.Point, cell int) float64 {
	c := s.cfg.Grid.CenterAt(cell)
	var prob float64
	switch s.cfg.Mode {
	case ProbDisk:
		prob = stat.DiskProb2D(pt.Mean.X, pt.Mean.Y, pt.Sigma, c.X, c.Y, s.cfg.Delta)
	default:
		prob = stat.BoxProb2D(pt.Mean.X, pt.Mean.Y, pt.Sigma, c.X, c.Y, s.cfg.Delta)
	}
	lp := math.Log(prob)
	if lp < s.cfg.LogFloor || math.IsNaN(lp) {
		return s.cfg.LogFloor
	}
	return lp
}

// cellLogProbs returns the per-flat-position log-prob vector for cell,
// computing and caching it on first use. Callers must not mutate the
// result.
func (s *Scorer) cellLogProbs(cell int) []float64 {
	if !s.cfg.DisableCache {
		s.mu.Lock()
		if v, ok := s.cache[cell]; ok {
			s.mu.Unlock()
			s.m.cacheHits.Inc()
			return v
		}
		s.mu.Unlock()
	}
	s.m.cellsBuilt.Inc()
	v := make([]float64, len(s.flat))
	for i, pt := range s.flat {
		v[i] = s.logProb(pt, cell)
	}
	if !s.cfg.DisableCache {
		s.mu.Lock()
		s.cache[cell] = v
		s.mu.Unlock()
	}
	return v
}

// Prepare precomputes the log-prob vectors for the given cells so that
// subsequent concurrent scoring never writes the cache. It is idempotent.
func (s *Scorer) Prepare(cells []int) {
	for _, c := range cells {
		s.cellLogProbs(c)
	}
}

// CacheSize returns the number of cells with materialized log-prob vectors.
func (s *Scorer) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// NMEvaluations returns how many pattern NM evaluations this scorer has
// performed, the dominant cost term of the complexity analysis (§4.4).
func (s *Scorer) NMEvaluations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nmEvals
}

// scratchPool recycles the window-sum accumulators of logMatchWindows.
var scratchPool = sync.Pool{
	New: func() any {
		buf := make([]float64, 0, 256)
		return &buf
	},
}

// logMatchWindows returns, for trajectory ti, the maximum window sum of
// log Prob for pattern p (i.e. max log M(P,T')), or (floor·len(p), false)
// if the trajectory is shorter than the pattern. The scan accumulates all
// window sums position-by-position over contiguous slices — the innermost
// loop of the whole miner — rather than window-by-window, which keeps the
// memory access sequential and lets the compiler eliminate bounds checks.
func (s *Scorer) logMatchWindows(p Pattern, ti int, vecs [][]float64) (float64, bool) {
	start, end := s.offsets[ti], s.offsets[ti+1]
	m := len(p)
	if end-start < m {
		return s.cfg.LogFloor * float64(m), false
	}
	nw := end - start - m + 1

	bufp := scratchPool.Get().(*[]float64)
	defer scratchPool.Put(bufp)
	if cap(*bufp) < nw {
		*bufp = make([]float64, nw)
		s.m.scratchGrows.Inc()
	} else {
		s.m.scratchHits.Inc()
	}
	acc := (*bufp)[:nw]
	copy(acc, vecs[0][start:start+nw])
	for j := 1; j < m; j++ {
		v := vecs[j][start+j : start+j+nw]
		for i, x := range v {
			acc[i] += x
		}
	}
	best := acc[0]
	for _, v := range acc[1:] {
		if v > best {
			best = v
		}
	}
	return best, true
}

// vectors gathers the cached log-prob vectors for each pattern position.
func (s *Scorer) vectors(p Pattern) [][]float64 {
	vecs := make([][]float64, len(p))
	for j, cell := range p {
		vecs[j] = s.cellLogProbs(cell)
	}
	return vecs
}

// NMTrajectory returns NM(P, T) for trajectory index ti: the maximum
// normalized match over all windows of T with the pattern's length
// (Equation 4). Trajectories shorter than the pattern contribute the floor
// value (the worst possible NM), keeping the min-max property intact.
func (s *Scorer) NMTrajectory(p Pattern, ti int) float64 {
	if len(p) == 0 {
		panic("core: NM of empty pattern")
	}
	logM, _ := s.logMatchWindows(p, ti, s.vectors(p))
	return logM / float64(len(p))
}

// NM returns the normalized match of p in the whole dataset:
// Σ_T NM(P, T) (Section 3.3). Larger (closer to zero) is better.
func (s *Scorer) NM(p Pattern) float64 {
	if len(p) == 0 {
		panic("core: NM of empty pattern")
	}
	vecs := s.vectors(p)
	var sum float64
	for ti := range s.data {
		logM, _ := s.logMatchWindows(p, ti, vecs)
		sum += logM / float64(len(p))
	}
	s.mu.Lock()
	s.nmEvals++
	s.mu.Unlock()
	s.m.nmEvals.Inc()
	return sum
}

// MatchTrajectory returns M(P, T) for trajectory ti: the maximum joint
// probability over windows (Equation 2 with the max of Equation 4 applied
// to the unnormalized measure, as in [14]). Trajectories shorter than the
// pattern contribute 0.
func (s *Scorer) MatchTrajectory(p Pattern, ti int) float64 {
	if len(p) == 0 {
		panic("core: match of empty pattern")
	}
	logM, ok := s.logMatchWindows(p, ti, s.vectors(p))
	if !ok {
		return 0
	}
	return math.Exp(logM)
}

// Match returns the match of p in the whole dataset: Σ_T M(P, T), the
// measure of [14] that the paper compares against.
func (s *Scorer) Match(p Pattern) float64 {
	if len(p) == 0 {
		panic("core: match of empty pattern")
	}
	vecs := s.vectors(p)
	var sum float64
	for ti := range s.data {
		logM, ok := s.logMatchWindows(p, ti, vecs)
		if ok {
			sum += math.Exp(logM)
		}
	}
	return sum
}

// ScorePanicError reports a panic recovered inside a ScoreAll worker.
// The pool recovers per job, so one poisoned pattern never wedges the
// other workers or kills the process; the batch instead returns this
// typed error. When several jobs panic in one batch, the one with the
// smallest pattern index is reported, keeping the error deterministic
// regardless of goroutine scheduling.
type ScorePanicError struct {
	Index int    // index into the batch of the pattern whose evaluation panicked
	Value any    // the recovered panic value
	Stack string // goroutine stack captured at the recovery point
}

// Error implements error.
func (e *ScorePanicError) Error() string {
	return fmt.Sprintf("core: scoring pattern %d panicked: %v", e.Index, e.Value)
}

// ScoreAll evaluates NM for every pattern concurrently and returns the
// values in input order. It first materializes the log-prob vectors of all
// touched cells (serially), then fans the window scans out over
// cfg.Workers goroutines.
//
// ctx cancellation stops dispatching new jobs; in-flight evaluations
// finish (each is short), the pool drains cleanly, and the call returns
// ctx's cause wrapped in an error. A panic in a worker is recovered per
// job and surfaces as a *ScorePanicError after the pool has drained.
// Either way no goroutine is left behind. On success the returned error
// is nil and the values are deterministic for a given dataset/config.
func (s *Scorer) ScoreAll(ctx context.Context, patterns []Pattern) ([]float64, error) {
	defer s.m.batchTime.Start()()
	s.m.batches.Inc()
	s.m.batchPats.Add(int64(len(patterns)))
	s.m.batchMax.SetMax(int64(len(patterns)))
	var sp *trace.Span
	if s.tl != nil {
		sp = s.tl.Span("scorer.batch", trace.Attrs{"patterns": len(patterns)})
	}
	defer sp.End()

	cells := make(map[int]struct{})
	for _, p := range patterns {
		for _, c := range p {
			cells[c] = struct{}{}
		}
	}
	order := make([]int, 0, len(cells))
	for c := range cells {
		order = append(order, c)
	}
	sort.Ints(order)
	sp.Attr("cells", len(order))
	s.Prepare(order)

	out := make([]float64, len(patterns))
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicErr *ScorePanicError
	)
	jobs := make(chan int)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		// Per-worker job counts accumulate locally and post once per
		// batch, so utilization tracking costs the hot loop nothing.
		var jobCount *obs.Counter
		if s.m.registry != nil {
			jobCount = s.m.registry.Counter(fmt.Sprintf("scorer.worker.%02d.jobs", w))
		}
		go func() {
			defer wg.Done()
			done := int64(0)
			for i := range jobs {
				done++
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicErr == nil || i < panicErr.Index {
								panicErr = &ScorePanicError{Index: i, Value: r, Stack: string(debug.Stack())}
							}
							panicMu.Unlock()
						}
					}()
					out[i] = s.NM(patterns[i])
				}()
			}
			jobCount.Add(done)
		}()
	}
dispatch:
	for i := range patterns {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if panicErr != nil {
		return nil, panicErr
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("core: scoring cancelled: %w", context.Cause(ctx))
	}
	return out, nil
}

// Append adds trajectories to the dataset in place, extending every
// cached per-cell log-probability vector with the new snapshots instead of
// recomputing it — the incremental path for a server that keeps receiving
// traces. Scores evaluated after Append are identical to those of a scorer
// built over the combined dataset. Append must not run concurrently with
// scoring.
func (s *Scorer) Append(trs ...traj.Trajectory) error {
	for i, t := range trs {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("core: appended trajectory %d: %w", i, err)
		}
	}
	for _, t := range trs {
		s.data = append(s.data, t)
		s.offsets = append(s.offsets, s.offsets[len(s.offsets)-1]+len(t))
		s.flat = append(s.flat, t...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for cell, vec := range s.cache {
		start := len(vec)
		grown := append(vec, make([]float64, len(s.flat)-start)...)
		for i := start; i < len(s.flat); i++ {
			grown[i] = s.logProb(s.flat[i], cell)
		}
		s.cache[cell] = grown
	}
	return nil
}

// BestSingularLogProb returns, for each trajectory, the maximum cached
// log-prob over the given cells and all window positions. The PB baseline
// uses it as its optimistic per-position bound. The result is indexed by
// trajectory.
func (s *Scorer) BestSingularLogProb(cells []int) []float64 {
	out := make([]float64, len(s.data))
	for ti := range s.data {
		out[ti] = math.Inf(-1)
	}
	for _, c := range cells {
		v := s.cellLogProbs(c)
		for ti := range s.data {
			for w := s.offsets[ti]; w < s.offsets[ti+1]; w++ {
				if v[w] > out[ti] {
					out[ti] = v[w]
				}
			}
		}
	}
	return out
}

// ObservedCells returns the sorted flat indices of every cell that contains
// at least one snapshot mean, expanded by ring cells of Chebyshev radius r.
// Cells far from all data have NM equal to the floor sum and can never be
// in the top k, so the miners use this as their default singular seed set.
func (s *Scorer) ObservedCells(r int) []int {
	set := make(map[int]struct{})
	for _, pt := range s.flat {
		idx := s.cfg.Grid.IndexOf(pt.Mean)
		set[idx] = struct{}{}
	}
	if r > 0 {
		base := make([]int, 0, len(set))
		for c := range set {
			base = append(base, c)
		}
		sort.Ints(base)
		for _, c := range base {
			for _, n := range s.cfg.Grid.Neighbors(c, r) {
				set[n] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// AllCells returns every cell index of the grid, the paper's literal
// singular seed set.
func (s *Scorer) AllCells() []int {
	out := make([]int, s.cfg.Grid.NumCells())
	for i := range out {
		out[i] = i
	}
	return out
}
