package core

import "fmt"

// ConfigError reports an invalid field of a configuration struct
// (ScorerConfig, MinerConfig, or the pattern-group parameters). It is a
// caller error, not an internal failure: CLIs print it as a usage message
// and trajserve maps it to a 400 response instead of letting a poisoned
// value (NaN δ, zero-cell grid, k < 1) panic deep inside the miner or
// silently corrupt scores. Test with errors.As:
//
//	var ce *core.ConfigError
//	if errors.As(err, &ce) { ... 400, not 500 ... }
type ConfigError struct {
	// Struct names the configuration being validated ("ScorerConfig",
	// "MinerConfig", "Groups").
	Struct string
	// Field names the offending field ("Delta", "K", "Gamma", ...).
	Field string
	// Reason describes the problem, including the rejected value.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid %s.%s: %s", e.Struct, e.Field, e.Reason)
}

// cfgErr builds a *ConfigError with a formatted reason.
func cfgErr(strct, field, format string, args ...any) *ConfigError {
	return &ConfigError{Struct: strct, Field: field, Reason: fmt.Sprintf(format, args...)}
}
