package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Explanation breaks a pattern's NM down per trajectory: where the best
// window lies and how much each trajectory contributes. It turns an opaque
// score into something a user can audit against the raw data.
type Explanation struct {
	Pattern Pattern
	NM      float64             // total (the sum of contributions)
	PerTraj []TrajectoryContrib // indexed by trajectory
}

// TrajectoryContrib is one trajectory's share of a pattern's NM.
type TrajectoryContrib struct {
	Trajectory int     // index into the dataset
	NM         float64 // NM(P, T): best-window normalized log match
	Window     int     // start snapshot of the best window (-1 if too short)
	TooShort   bool    // trajectory shorter than the pattern (floor applied)
}

// Explain computes the full NM breakdown of p.
func (s *Scorer) Explain(p Pattern) (*Explanation, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: empty pattern")
	}
	if err := p.Validate(s.cfg.Grid); err != nil {
		return nil, err
	}
	vecs := s.vectors(p)
	m := len(p)
	ex := &Explanation{Pattern: p.Clone(), PerTraj: make([]TrajectoryContrib, len(s.data))}
	for ti := range s.data {
		start, end := s.offsets[ti], s.offsets[ti+1]
		contrib := TrajectoryContrib{Trajectory: ti, Window: -1}
		if end-start < m {
			contrib.TooShort = true
			contrib.NM = s.cfg.LogFloor
		} else {
			best := math.Inf(-1)
			for w := start; w+m <= end; w++ {
				var sum float64
				for j := 0; j < m; j++ {
					sum += vecs[j][w+j]
				}
				if sum > best {
					best = sum
					contrib.Window = w - start
				}
			}
			contrib.NM = best / float64(m)
		}
		ex.PerTraj[ti] = contrib
		ex.NM += contrib.NM
	}
	return ex, nil
}

// TopContributors returns the n trajectories contributing the most
// (closest to zero) to the pattern's NM, best first.
func (e *Explanation) TopContributors(n int) []TrajectoryContrib {
	out := append([]TrajectoryContrib(nil), e.PerTraj...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].NM > out[j].NM })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// String renders a short human-readable summary.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern %s: NM %.4f over %d trajectories\n",
		e.Pattern.Key(), e.NM, len(e.PerTraj))
	for _, c := range e.TopContributors(5) {
		if c.TooShort {
			fmt.Fprintf(&b, "  traj %d: too short (floor %.4g)\n", c.Trajectory, c.NM)
			continue
		}
		fmt.Fprintf(&b, "  traj %d: NM %.4f at window %d\n", c.Trajectory, c.NM, c.Window)
	}
	return b.String()
}
