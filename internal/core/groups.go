package core

import (
	"fmt"
	"math"
	"sort"

	"trajpattern/internal/grid"
	"trajpattern/internal/trace"
)

// Group is a pattern group (Definition 2): a set of patterns of equal
// length that are pairwise similar — at every snapshot the distance between
// any two members is at most γ (Definition 1). Members are ordered
// deterministically.
type Group struct {
	Members []Pattern
}

// Len returns the number of member patterns.
func (g Group) Len() int { return len(g.Members) }

// PatternLen returns the common length of the member patterns, or 0 for an
// empty group.
func (g Group) PatternLen() int {
	if len(g.Members) == 0 {
		return 0
	}
	return len(g.Members[0])
}

// Representative returns the member with the highest NM under the given
// scorer — the pattern a user would display for the whole group. It
// returns the zero value for an empty group.
func (g Group) Representative(s *Scorer) Pattern {
	if len(g.Members) == 0 {
		return nil
	}
	best := g.Members[0]
	bestNM := s.NM(best)
	for _, m := range g.Members[1:] {
		if nm := s.NM(m); nm > bestNM {
			best, bestNM = m, nm
		}
	}
	return best
}

// Spread returns the largest per-snapshot distance between any two members
// (always <= the γ the group was built with).
func (g Group) Spread(gr *grid.Grid) float64 {
	var max float64
	for i := 0; i < len(g.Members); i++ {
		for j := i + 1; j < len(g.Members); j++ {
			for s := range g.Members[i] {
				d := gr.CenterAt(g.Members[i][s]).Dist(gr.CenterAt(g.Members[j][s]))
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}

// Similar reports whether two patterns of the same length are similar
// patterns per Definition 1: at every snapshot their positions are within
// gamma (Euclidean distance between cell centers). Patterns of different
// lengths are never similar.
func Similar(a, b Pattern, g *grid.Grid, gamma float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if g.CenterAt(a[i]).Dist(g.CenterAt(b[i])) > gamma {
			return false
		}
	}
	return true
}

// DiscoverGroups clusters the given patterns into pattern groups following
// Section 4.2: patterns are first bucketed by length; within a bucket the
// patterns are clustered at each snapshot into "snapshot groups" (sets
// whose positions at that snapshot are pairwise within gamma); then the
// iterative smallest-group intersection procedure assembles pattern groups.
//
// Every returned group satisfies the pairwise-γ-at-every-snapshot
// invariant, every input pattern appears in exactly one group, and the
// output order is deterministic. The paper recommends γ = 3σ̄ (Section 5).
func DiscoverGroups(patterns []Pattern, g *grid.Grid, gamma float64) ([]Group, error) {
	return DiscoverGroupsTraced(patterns, g, gamma, nil)
}

// DiscoverGroupsTraced is DiscoverGroups with run tracing: when tr is
// non-nil the clustering is recorded as one "groups.cluster" span (pattern
// count, γ, resulting group count) on the shared run timeline.
func DiscoverGroupsTraced(patterns []Pattern, g *grid.Grid, gamma float64, tr *trace.Tracer) ([]Group, error) {
	var sp *trace.Span
	if tr != nil {
		sp = tr.Local().Span("groups.cluster", trace.Attrs{"patterns": len(patterns), "gamma": gamma})
	}
	groups, err := discoverGroups(patterns, g, gamma)
	sp.Attr("groups", len(groups)).End()
	return groups, err
}

// discoverGroups is the untraced §4.2 procedure.
func discoverGroups(patterns []Pattern, g *grid.Grid, gamma float64) ([]Group, error) {
	// NaN fails every comparison (a NaN γ would pass `< 0` and make every
	// similarity test false), so reject it explicitly.
	if math.IsNaN(gamma) || gamma < 0 {
		return nil, cfgErr("Groups", "Gamma", "must be >= 0 and not NaN, got %v", gamma)
	}
	byLen := make(map[int][]Pattern)
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("core: empty pattern at index %d", i)
		}
		byLen[len(p)] = append(byLen[len(p)], p)
	}
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)

	var groups []Group
	for _, l := range lengths {
		bucket := byLen[l]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i].Key() < bucket[j].Key() })
		groups = append(groups, groupBucket(bucket, g, gamma)...)
	}
	return groups, nil
}

// groupBucket runs the §4.2 procedure on patterns of one common length.
func groupBucket(bucket []Pattern, g *grid.Grid, gamma float64) []Group {
	n := len(bucket)
	if n == 0 {
		return nil
	}
	m := len(bucket[0])

	// Snapshot groups: cluster pattern indices at each snapshot. Greedy
	// complete-linkage assignment in deterministic order: a pattern joins
	// the first cluster whose every member is within gamma at this
	// snapshot.
	snapGroups := make([][][]int, m) // per snapshot: list of clusters of indices
	for s := 0; s < m; s++ {
		var clusters [][]int
	assign:
		for i := 0; i < n; i++ {
			pi := g.CenterAt(bucket[i][s])
			for ci, cl := range clusters {
				ok := true
				for _, j := range cl {
					if pi.Dist(g.CenterAt(bucket[j][s])) > gamma {
						ok = false
						break
					}
				}
				if ok {
					clusters[ci] = append(clusters[ci], i)
					continue assign
				}
			}
			clusters = append(clusters, []int{i})
		}
		snapGroups[s] = clusters
	}

	remaining := make(map[int]struct{}, n)
	for i := 0; i < n; i++ {
		remaining[i] = struct{}{}
	}

	// live returns cluster restricted to remaining patterns.
	live := func(cl []int) []int {
		var out []int
		for _, i := range cl {
			if _, ok := remaining[i]; ok {
				out = append(out, i)
			}
		}
		return out
	}

	emit := func(members []int) Group {
		sort.Ints(members)
		grp := Group{Members: make([]Pattern, len(members))}
		for i, idx := range members {
			grp.Members[i] = bucket[idx]
			delete(remaining, idx)
		}
		return grp
	}

	var groups []Group
	for len(remaining) > 0 {
		// Find the smallest non-empty live snapshot group.
		var smallest []int
		for s := 0; s < m; s++ {
			for _, cl := range snapGroups[s] {
				lv := live(cl)
				if len(lv) == 0 {
					continue
				}
				if smallest == nil || len(lv) < len(smallest) {
					smallest = lv
				}
			}
		}
		cand := smallest
		// Intersect with the snapshot groups of other snapshots until the
		// candidate is contained in some group at every snapshot.
		for len(cand) > 1 {
			contained := true
			var bestInter []int
			for s := 0; s < m && contained; s++ {
				found := false
				for _, cl := range snapGroups[s] {
					lv := live(cl)
					if containsAll(lv, cand) {
						found = true
						break
					}
					if in := intersect(cand, lv); len(in) > 0 {
						if bestInter == nil || len(in) < len(bestInter) {
							bestInter = in
						}
					}
				}
				if !found {
					contained = false
				}
			}
			if contained {
				break
			}
			cand = bestInter
		}
		groups = append(groups, emit(cand))
	}

	// Deterministic output order: by first member's key.
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Members[0].Key() < groups[j].Members[0].Key()
	})
	return groups
}

// containsAll reports whether set (sorted or not) contains every element of
// sub.
func containsAll(set, sub []int) bool {
	in := make(map[int]struct{}, len(set))
	for _, v := range set {
		in[v] = struct{}{}
	}
	for _, v := range sub {
		if _, ok := in[v]; !ok {
			return false
		}
	}
	return true
}

// intersect returns the elements of a that are also in b, in a's order.
func intersect(a, b []int) []int {
	in := make(map[int]struct{}, len(b))
	for _, v := range b {
		in[v] = struct{}{}
	}
	var out []int
	for _, v := range a {
		if _, ok := in[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// DefaultGamma returns the paper's recommended maximum similar-pattern
// distance γ = 3σ̄ for a dataset with mean standard deviation sigmaBar
// (Section 5: the normal distribution concentrates ~99.7% of its mass
// within 3σ).
func DefaultGamma(sigmaBar float64) float64 { return 3 * sigmaBar }
