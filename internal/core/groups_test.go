package core

import (
	"math"
	"testing"
	"testing/quick"

	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

func TestSimilar(t *testing.T) {
	g := grid.NewSquare(10)
	a := Pattern{g.Index(grid.Cell{X: 3, Y: 3}), g.Index(grid.Cell{X: 4, Y: 4})}
	b := Pattern{g.Index(grid.Cell{X: 3, Y: 4}), g.Index(grid.Cell{X: 4, Y: 5})}
	// Adjacent cells: distance 0.1 at both snapshots.
	if !Similar(a, b, g, 0.15) {
		t.Error("close patterns not similar")
	}
	if Similar(a, b, g, 0.05) {
		t.Error("patterns similar under tight gamma")
	}
	if Similar(a, Pattern{a[0]}, g, 10) {
		t.Error("different lengths similar")
	}
}

// TestPaperWorkedExample reproduces the Section 4.2 example: six 2-patterns
// whose snapshot groups are (p1,p3,p4,p5),(p2,p6) at snapshot one and
// (p'1,p'3,p'6),(p'2,p'4),(p'5) at snapshot two; the final pattern groups
// must be (P2),(P4),(P5),(P6) and (P1,P3).
func TestPaperWorkedExample(t *testing.T) {
	g := grid.NewSquare(20) // cell size 0.05
	gamma := 0.12
	cell := func(x, y int) int { return g.Index(grid.Cell{X: x, Y: y}) }

	// Snapshot 1 blobs: {p1,p3,p4,p5} near (0.2,0.2); {p2,p6} near (0.7,0.7).
	s1 := map[int]int{
		1: cell(3, 3), 3: cell(4, 3), 4: cell(3, 4), 5: cell(4, 4),
		2: cell(13, 13), 6: cell(14, 13),
	}
	// Snapshot 2 blobs: {p'1,p'3,p'6} near (0.2,0.8); {p'2,p'4} near
	// (0.8,0.2); {p'5} isolated at (0.5,0.5).
	s2 := map[int]int{
		1: cell(3, 15), 3: cell(4, 15), 6: cell(3, 16),
		2: cell(15, 3), 4: cell(16, 3),
		5: cell(10, 10),
	}
	patterns := make([]Pattern, 0, 6)
	byID := make(map[string]int)
	for id := 1; id <= 6; id++ {
		p := Pattern{s1[id], s2[id]}
		byID[p.Key()] = id
		patterns = append(patterns, p)
	}

	groups, err := DiscoverGroups(patterns, g, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 {
		t.Fatalf("got %d groups, want 5: %+v", len(groups), groups)
	}
	// Collect groups as sets of pattern IDs.
	var got [][]int
	for _, grp := range groups {
		var ids []int
		for _, m := range grp.Members {
			ids = append(ids, byID[m.Key()])
		}
		got = append(got, ids)
	}
	want := map[int][]int{1: {1, 3}, 2: {2}, 4: {4}, 5: {5}, 6: {6}}
	matched := 0
	for _, ids := range got {
		if w, ok := want[ids[0]]; ok && equalIntSets(ids, w) {
			matched++
		}
	}
	if matched != 5 {
		t.Errorf("groups mismatch: got %v, want {1,3},{2},{4},{5},{6}", got)
	}
}

func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool)
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return false
		}
	}
	return true
}

func TestDiscoverGroupsValidation(t *testing.T) {
	g := grid.NewSquare(4)
	if _, err := DiscoverGroups([]Pattern{{}}, g, 0.1); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := DiscoverGroups([]Pattern{{0}}, g, -1); err == nil {
		t.Error("negative gamma accepted")
	}
	groups, err := DiscoverGroups(nil, g, 0.1)
	if err != nil || len(groups) != 0 {
		t.Errorf("empty input: %v, %v", groups, err)
	}
}

func TestGroupsSeparateLengths(t *testing.T) {
	g := grid.NewSquare(4)
	patterns := []Pattern{{0}, {0, 1}, {0, 1, 2}}
	groups, err := DiscoverGroups(patterns, g, 100) // everything within gamma
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("lengths merged: %+v", groups)
	}
	for _, grp := range groups {
		if grp.Len() != 1 {
			t.Errorf("cross-length group: %+v", grp)
		}
	}
}

func TestGroupsAllSimilarCollapse(t *testing.T) {
	g := grid.NewSquare(10)
	// Three adjacent 2-patterns, all pairwise within gamma.
	patterns := []Pattern{
		{g.Index(grid.Cell{X: 3, Y: 3}), g.Index(grid.Cell{X: 5, Y: 5})},
		{g.Index(grid.Cell{X: 3, Y: 4}), g.Index(grid.Cell{X: 5, Y: 6})},
		{g.Index(grid.Cell{X: 4, Y: 3}), g.Index(grid.Cell{X: 6, Y: 5})},
	}
	groups, err := DiscoverGroups(patterns, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Len() != 3 {
		t.Errorf("expected one group of 3, got %+v", groups)
	}
	if groups[0].PatternLen() != 2 {
		t.Errorf("PatternLen = %d", groups[0].PatternLen())
	}
}

func TestGroupsAllDistantSingletons(t *testing.T) {
	g := grid.NewSquare(10)
	patterns := []Pattern{
		{g.Index(grid.Cell{X: 0, Y: 0})},
		{g.Index(grid.Cell{X: 9, Y: 9})},
		{g.Index(grid.Cell{X: 0, Y: 9})},
	}
	groups, err := DiscoverGroups(patterns, g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Errorf("expected 3 singletons, got %+v", groups)
	}
}

func TestGroupRepresentativeAndSpread(t *testing.T) {
	g := grid.NewSquare(10)
	// Data sits dead-center of cell (3,3): the pattern on that cell must
	// be the representative of any group containing it.
	center := g.Center(grid.Cell{X: 3, Y: 3})
	data := traj.Dataset{{
		{Mean: center, Sigma: 0.02},
		{Mean: center, Sigma: 0.02},
	}}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	exact := Pattern{g.Index(grid.Cell{X: 3, Y: 3}), g.Index(grid.Cell{X: 3, Y: 3})}
	offGrid := Pattern{g.Index(grid.Cell{X: 4, Y: 3}), g.Index(grid.Cell{X: 4, Y: 3})}
	grp := Group{Members: []Pattern{offGrid, exact}}
	if rep := grp.Representative(s); !rep.Equal(exact) {
		t.Errorf("representative = %v, want %v", rep, exact)
	}
	if (Group{}).Representative(s) != nil {
		t.Error("empty group representative should be nil")
	}
	// Spread: members differ by one cell (0.1) at both snapshots.
	if got := grp.Spread(g); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Spread = %v, want 0.1", got)
	}
	if (Group{Members: []Pattern{exact}}).Spread(g) != 0 {
		t.Error("singleton spread should be 0")
	}
}

func TestDefaultGamma(t *testing.T) {
	if math.Abs(DefaultGamma(0.1)-0.3) > 1e-15 {
		t.Errorf("DefaultGamma = %v", DefaultGamma(0.1))
	}
}

// Property: DiscoverGroups partitions the input (every pattern in exactly
// one group) and every group satisfies pairwise similarity at every
// snapshot.
func TestQuickGroupsInvariants(t *testing.T) {
	g := grid.NewSquare(6)
	f := func(seed uint64, nRaw, lenRaw, gammaRaw uint8) bool {
		rng := stat.NewRNG(seed)
		n := 1 + int(nRaw)%12
		plen := 1 + int(lenRaw)%4
		gamma := float64(gammaRaw%10) / 10 * 0.5
		seen := make(map[string]bool)
		var patterns []Pattern
		for i := 0; i < n; i++ {
			p := make(Pattern, plen)
			for j := range p {
				p[j] = rng.Intn(36)
			}
			if seen[p.Key()] {
				continue // duplicate patterns are not meaningful input
			}
			seen[p.Key()] = true
			patterns = append(patterns, p)
		}
		groups, err := DiscoverGroups(patterns, g, gamma)
		if err != nil {
			return false
		}
		// Partition check.
		count := 0
		covered := make(map[string]bool)
		for _, grp := range groups {
			for _, m := range grp.Members {
				if covered[m.Key()] {
					return false
				}
				covered[m.Key()] = true
				count++
			}
			// Pairwise similarity check.
			for i := 0; i < len(grp.Members); i++ {
				for j := i + 1; j < len(grp.Members); j++ {
					if !Similar(grp.Members[i], grp.Members[j], g, gamma) {
						return false
					}
				}
			}
		}
		return count == len(patterns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
