package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// exhaustiveTopK enumerates every pattern up to maxLen over the given cells
// and returns the k best by NM with the miner's tie-breaking. It is the
// test oracle; only usable for tiny alphabets.
func exhaustiveTopK(s *Scorer, cells []int, k, minLen, maxLen int) []ScoredPattern {
	var all []ScoredPattern
	var cur Pattern
	var rec func()
	rec = func() {
		if len(cur) > 0 && len(cur) >= minLen {
			all = append(all, ScoredPattern{Pattern: cur.Clone(), NM: s.NM(cur)})
		}
		if len(cur) == maxLen {
			return
		}
		for _, c := range cells {
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	sort.Slice(all, func(i, j int) bool {
		if all[i].NM != all[j].NM {
			return all[i].NM > all[j].NM
		}
		if len(all[i].Pattern) != len(all[j].Pattern) {
			return len(all[i].Pattern) < len(all[j].Pattern)
		}
		return all[i].Pattern.Key() < all[j].Pattern.Key()
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestMinerConfigValidation(t *testing.T) {
	s := testScorer(t, randomDataset(1, 2, 5, 0.1), 3)
	if _, err := Mine(context.Background(), s, MinerConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Mine(context.Background(), s, MinerConfig{K: 1, MinLen: 5, MaxLen: 3}); err == nil {
		t.Error("MinLen > MaxLen accepted")
	}
	if _, err := Mine(context.Background(), s, MinerConfig{K: 1, Seeds: []int{}}); err == nil {
		t.Error("empty seed set accepted")
	}
}

func TestMinerFindsPlantedPattern(t *testing.T) {
	g := grid.NewSquare(4)
	// Objects repeatedly walk cells 5 -> 6 -> 10.
	path := []int{5, 6, 10}
	data := patternedDatasetPts(7, g, path, 10, 4, 0.03, 0.01)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 5, MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 5 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}
	// The planted 3-pattern (or a super-pattern of it) must rank high;
	// at minimum some top pattern must contain the planted transition.
	planted := Pattern{5, 6, 10}
	found := false
	for _, sp := range res.Patterns {
		if sp.Pattern.IsSuperPatternOf(planted) || planted.IsSuperPatternOf(sp.Pattern) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("planted pattern not reflected in top-5: %+v", res.Patterns)
	}
	// Results sorted by NM descending.
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i].NM > res.Patterns[i-1].NM {
			t.Error("results not sorted by NM")
		}
	}
}

// patternedDatasetPts is patternedDataset with geom jitter returning
// traj points (avoiding an import cycle in the helper above).
func patternedDatasetPts(seed uint64, g *grid.Grid, path []int, nTraj, reps int, sigma, noise float64) traj.Dataset {
	rng := stat.NewRNG(seed)
	d := make(traj.Dataset, nTraj)
	for i := range d {
		var tr traj.Trajectory
		for r := 0; r < reps; r++ {
			for _, cell := range path {
				c := g.CenterAt(cell)
				tr = append(tr, traj.P(c.X+rng.Normal(0, noise), c.Y+rng.Normal(0, noise), sigma))
			}
		}
		d[i] = tr
	}
	return d
}

func TestMinerMatchesExhaustiveOracle(t *testing.T) {
	// On tiny instances the miner should recover the exact top-k (the
	// paper's Theorem 1). Use structured data so the top patterns have
	// clear margins.
	g := grid.NewSquare(2) // 4 cells
	data := patternedDatasetPts(3, g, []int{0, 1, 3}, 6, 3, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 4
	k := 8
	res, err := Mine(context.Background(), s, MinerConfig{K: k, MaxLen: maxLen, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	oracle := exhaustiveTopK(s, s.AllCells(), k, 1, maxLen)
	if len(res.Patterns) != len(oracle) {
		t.Fatalf("count mismatch: %d vs %d", len(res.Patterns), len(oracle))
	}
	for i := range oracle {
		if math.Abs(res.Patterns[i].NM-oracle[i].NM) > 1e-9 {
			t.Errorf("rank %d: miner NM %v (pattern %v) vs oracle NM %v (pattern %v)",
				i, res.Patterns[i].NM, res.Patterns[i].Pattern, oracle[i].NM, oracle[i].Pattern)
		}
	}
}

func TestMinerMinLenVariant(t *testing.T) {
	g := grid.NewSquare(2)
	data := patternedDatasetPts(5, g, []int{0, 1, 3, 2}, 6, 3, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 5, MinLen: 3, MaxLen: 5, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Patterns {
		if len(sp.Pattern) < 3 {
			t.Errorf("MinLen violated: %v", sp.Pattern)
		}
	}
	// Against the oracle restricted to length >= 3.
	oracle := exhaustiveTopK(s, s.AllCells(), 5, 3, 5)
	for i := range oracle {
		if i >= len(res.Patterns) {
			t.Fatalf("missing pattern at rank %d", i)
		}
		if math.Abs(res.Patterns[i].NM-oracle[i].NM) > 1e-9 {
			t.Errorf("rank %d: miner NM %v vs oracle NM %v (%v vs %v)",
				i, res.Patterns[i].NM, oracle[i].NM, res.Patterns[i].Pattern, oracle[i].Pattern)
		}
	}
}

func TestMinerPruningAblationSameResults(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(11, g, []int{0, 4, 8}, 8, 3, 0.05, 0.02)
	s1, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MinerConfig{K: 6, MaxLen: 5, Seeds: s1.AllCells()}
	withPrune, err := Mine(context.Background(), s1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePrune = true
	noPrune, err := Mine(context.Background(), s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(withPrune.Patterns) != len(noPrune.Patterns) {
		t.Fatalf("result sizes differ: %d vs %d", len(withPrune.Patterns), len(noPrune.Patterns))
	}
	for i := range withPrune.Patterns {
		if math.Abs(withPrune.Patterns[i].NM-noPrune.Patterns[i].NM) > 1e-9 {
			t.Errorf("rank %d NM differs with pruning: %v vs %v",
				i, withPrune.Patterns[i].NM, noPrune.Patterns[i].NM)
		}
	}
	if withPrune.Stats.Pruned == 0 {
		t.Error("pruning never fired on this workload")
	}
	if noPrune.Stats.MaxQ < withPrune.Stats.MaxQ {
		t.Errorf("pruning should shrink Q: %d (pruned) vs %d (unpruned)",
			withPrune.Stats.MaxQ, noPrune.Stats.MaxQ)
	}
}

func TestMinerDeterminism(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(13, g, []int{0, 1, 2}, 5, 3, 0.05, 0.03)
	run := func() *Result {
		s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mine(context.Background(), s, MinerConfig{K: 4, MaxLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatal("different result sizes across runs")
	}
	for i := range a.Patterns {
		if !a.Patterns[i].Pattern.Equal(b.Patterns[i].Pattern) || a.Patterns[i].NM != b.Patterns[i].NM {
			t.Fatalf("nondeterministic result at rank %d: %v vs %v", i, a.Patterns[i], b.Patterns[i])
		}
	}
}

func TestMinerStatsPopulated(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(17, g, []int{0, 4}, 4, 3, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 3, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Iterations == 0 || st.Candidates == 0 || st.MaxQ == 0 || st.NMEvaluations == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestMinerMaxHighUnlimited(t *testing.T) {
	// MaxHigh < 0 (the paper's literal rule) must agree with the default
	// cap on a small instance without pathological ties.
	g := grid.NewSquare(2)
	data := patternedDatasetPts(23, g, []int{0, 1, 3}, 5, 3, 0.05, 0.02)
	run := func(maxHigh int) []ScoredPattern {
		s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mine(context.Background(), s, MinerConfig{K: 6, MaxLen: 4, MaxHigh: maxHigh, Seeds: s.AllCells()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Patterns
	}
	capped, unlimited := run(0), run(-1)
	if len(capped) != len(unlimited) {
		t.Fatalf("result sizes differ: %d vs %d", len(capped), len(unlimited))
	}
	for i := range capped {
		if math.Abs(capped[i].NM-unlimited[i].NM) > 1e-9 {
			t.Errorf("rank %d NM differs: %v vs %v", i, capped[i].NM, unlimited[i].NM)
		}
	}
}

func TestMinerMaxLowQCap(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(29, g, []int{0, 4, 8}, 6, 3, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 4, MaxLen: 5, MaxLowQ: 3, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LowCapped == 0 {
		t.Error("tight MaxLowQ never fired")
	}
	if len(res.Patterns) != 4 {
		t.Errorf("result size = %d", len(res.Patterns))
	}
}

func TestMinerSurvivesDegenerateTies(t *testing.T) {
	// Every snapshot dead-center of the same cell with a huge δ: every
	// touched pattern has NM exactly 0 and ties flood the high set. The
	// default MaxHigh cap must keep the run bounded.
	g := grid.NewSquare(3)
	var tr traj.Trajectory
	for i := 0; i < 12; i++ {
		tr = append(tr, traj.Point{Mean: g.CenterAt(4), Sigma: 0.001})
	}
	s, err := NewScorer(traj.Dataset{tr}, Config{Grid: g, Delta: 3 * g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 5, MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 5 {
		t.Errorf("result size = %d", len(res.Patterns))
	}
	if res.Stats.Candidates > 200000 {
		t.Errorf("tie explosion not contained: %d candidates", res.Stats.Candidates)
	}
}

func TestMinerRespectsMaxLen(t *testing.T) {
	g := grid.NewSquare(2)
	data := patternedDatasetPts(19, g, []int{0, 1}, 4, 6, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(context.Background(), s, MinerConfig{K: 5, MaxLen: 3, Seeds: s.AllCells()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Patterns {
		if len(sp.Pattern) > 3 {
			t.Errorf("MaxLen violated: %v", sp.Pattern)
		}
	}
}
