package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/traj"
)

// TestMinerMetricsConsistency mines with a registry attached and checks
// the obs counters against both the returned MinerStats and the internal
// bookkeeping identity of the pattern set Q: every pattern enters Q exactly
// once (as a seed, a fresh candidate or a re-admission) and leaves exactly
// once (1-extension prune or MaxLowQ cap), so the final |Q| equals
// insertions minus removals.
func TestMinerMetricsConsistency(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(17, g, []int{0, 4, 8}, 6, 3, 0.05, 0.02)

	reg := obs.New()
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MinerConfig{K: 3, MaxLen: 4, MaxLowQ: 12, Metrics: reg}
	res, err := Mine(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	st := res.Stats

	if got := snap.Counter("miner.iterations"); got != int64(st.Iterations) {
		t.Errorf("miner.iterations = %d, stats say %d", got, st.Iterations)
	}
	seeds := snap.Counter("miner.seeds")
	fresh := snap.Counter("miner.candidates.fresh")
	if seeds+fresh != int64(st.Candidates) {
		t.Errorf("seeds %d + fresh %d != stats.Candidates %d", seeds, fresh, st.Candidates)
	}
	if got := snap.Counter("miner.pruned.extension"); got != int64(st.Pruned) {
		t.Errorf("miner.pruned.extension = %d, stats say %d", got, st.Pruned)
	}
	if got := snap.Counter("miner.pruned.lowcap"); got != int64(st.LowCapped) {
		t.Errorf("miner.pruned.lowcap = %d, stats say %d", got, st.LowCapped)
	}
	if got := snap.Counter("scorer.nm.evals"); got != int64(st.NMEvaluations) || got == 0 {
		t.Errorf("scorer.nm.evals = %d, stats say %d (must be nonzero)", got, st.NMEvaluations)
	}

	// The Q ledger: inserted − removed = retained. This identity survives
	// aggregation across multiple Mine runs on a shared registry, which is
	// how the bench harness snapshots a whole sweep.
	inserted := seeds + fresh + snap.Counter("miner.candidates.readmitted")
	removed := snap.Counter("miner.pruned.extension") + snap.Counter("miner.pruned.lowcap")
	qFinal := snap.Gauge("miner.q.final")
	if retained := snap.Counter("miner.q.retained"); inserted-removed != retained {
		t.Errorf("Q ledger broken: inserted %d − removed %d != q.retained %d", inserted, removed, retained)
	} else if retained != qFinal {
		t.Errorf("single run: q.retained %d != q.final %d", retained, qFinal)
	}
	if peak := snap.Gauge("miner.q.peak"); peak < qFinal || peak != int64(st.MaxQ) {
		t.Errorf("miner.q.peak = %d (q.final %d, stats.MaxQ %d)", peak, qFinal, st.MaxQ)
	}
	if int64(len(res.Patterns)) > qFinal {
		t.Errorf("returned %d patterns out of a final Q of %d", len(res.Patterns), qFinal)
	}

	// Exactly one termination cause.
	term := snap.Counter("miner.term.stable") +
		snap.Counter("miner.term.exhausted") +
		snap.Counter("miner.term.maxiters")
	if term != 1 {
		t.Errorf("termination causes sum to %d, want exactly 1 (snapshot:\n%s)", term, snap)
	}

	// Scorer-side accounting: every batch pattern is an NM evaluation.
	if bp := snap.Counter("scorer.batch.patterns"); bp != snap.Counter("scorer.nm.evals") {
		t.Errorf("scorer.batch.patterns = %d != scorer.nm.evals = %d", bp, snap.Counter("scorer.nm.evals"))
	}
	if snap.Counter("scorer.batches") == 0 || snap.Gauge("scorer.batch.max") == 0 {
		t.Error("batch accounting missing")
	}
	if snap.Counter("scorer.cells.built") == 0 {
		t.Error("no cell vectors recorded")
	}
	if snap.Timers["miner.time.total"].Count != 1 {
		t.Errorf("miner.time.total observed %d times, want 1", snap.Timers["miner.time.total"].Count)
	}

	// Attaching a registry must not change the mined result.
	s2, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = nil
	res2, err := Mine(context.Background(), s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Patterns, res2.Patterns) {
		t.Error("metrics collection changed the mined patterns")
	}
}

// TestStreamNMMetrics checks the streaming path's instrumentation.
func TestStreamNMMetrics(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(5, g, []int{0, 4}, 4, 2, 0.05, 0.02)
	reg := obs.New()
	cfg := Config{Grid: g, Delta: g.CellWidth(), Metrics: reg}
	patterns := []Pattern{{0, 4}, {4, 8}}
	if _, err := StreamNM(context.Background(), NewSliceCursor(data), cfg, patterns); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.trajectories"); got != int64(len(data)) {
		t.Errorf("stream.trajectories = %d, want %d", got, len(data))
	}
	if got := snap.Gauge("stream.patterns"); got != int64(len(patterns)) {
		t.Errorf("stream.patterns = %d, want %d", got, len(patterns))
	}
	if snap.Timers["stream.time.total"].Count != 1 {
		t.Error("stream.time.total not observed")
	}
}

// TestScorerMetricsCacheAccounting pins the cache hit/miss split: Prepare
// builds each vector once, subsequent lookups hit.
func TestScorerMetricsCacheAccounting(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(5, g, []int{0, 4}, 4, 2, 0.05, 0.02)
	reg := obs.New()
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{0, 4}
	s.NM(p)
	s.NM(p)
	snap := reg.Snapshot()
	if got := snap.Counter("scorer.cells.built"); got != 2 {
		t.Errorf("scorer.cells.built = %d, want 2", got)
	}
	// First NM builds both vectors, second hits both.
	if got := snap.Counter("scorer.cache.hits"); got != 2 {
		t.Errorf("scorer.cache.hits = %d, want 2", got)
	}
	if got := int64(s.CacheSize()); got != snap.Counter("scorer.cells.built") {
		t.Errorf("cache size %d != cells built %d", got, snap.Counter("scorer.cells.built"))
	}
}

func ExampleMinerConfig_metrics() {
	g := grid.NewSquare(2)
	tr := make(traj.Trajectory, 0, 8)
	for i := 0; i < 4; i++ {
		for _, cell := range []int{0, 3} {
			c := g.CenterAt(cell)
			tr = append(tr, traj.P(c.X, c.Y, 0.05))
		}
	}
	reg := obs.New()
	s, _ := NewScorer(traj.Dataset{tr}, Config{Grid: g, Delta: g.CellWidth(), Metrics: reg})
	res, _ := Mine(context.Background(), s, MinerConfig{K: 2, MaxLen: 3, Metrics: reg})
	snap := reg.Snapshot()
	fmt.Println(len(res.Patterns) > 0,
		snap.Counter("scorer.nm.evals") > 0,
		snap.Counter("miner.seeds")+snap.Counter("miner.candidates.fresh") == int64(res.Stats.Candidates))
	// Output: true true true
}
