package core

import (
	"strings"
	"testing"
)

// FuzzParsePattern checks that ParsePattern never panics and that every
// successfully parsed key round-trips exactly.
func FuzzParsePattern(f *testing.F) {
	f.Add("1,2,3")
	f.Add("")
	f.Add("0")
	f.Add("-1,5")
	f.Add("9999999999999999999999")
	f.Add("1,,2")
	f.Add("a,b")
	f.Fuzz(func(t *testing.T, key string) {
		p, err := ParsePattern(key)
		if err != nil {
			return
		}
		if len(p) == 0 {
			t.Fatalf("ParsePattern(%q) returned empty pattern without error", key)
		}
		back := p.Key()
		// Canonical keys round-trip; non-canonical inputs (leading zeros,
		// plus signs) may normalize, but re-parsing the canonical form
		// must be stable.
		p2, err := ParsePattern(back)
		if err != nil {
			t.Fatalf("canonical key %q failed to parse: %v", back, err)
		}
		if !p.Equal(p2) {
			t.Fatalf("round trip changed pattern: %v vs %v", p, p2)
		}
	})
}

// FuzzSuperPattern checks the consistency of the super-pattern relation
// under random cell sequences encoded as comma strings.
func FuzzSuperPattern(f *testing.F) {
	f.Add("1,2,3", "2,3")
	f.Add("1", "1")
	f.Add("5,5,5", "5,5")
	f.Fuzz(func(t *testing.T, a, b string) {
		pa, errA := ParsePattern(a)
		pb, errB := ParsePattern(b)
		if errA != nil || errB != nil {
			return
		}
		super := pa.IsSuperPatternOf(pb)
		proper := pa.IsProperSuperPatternOf(pb)
		if proper && !super {
			t.Fatal("proper super-pattern that is not a super-pattern")
		}
		if super && len(pb) > len(pa) {
			t.Fatal("super-pattern shorter than sub-pattern")
		}
		if super && strings.Count(","+pa.Key()+",", ","+pb.Key()+",") == 0 {
			// The key of a contiguous sub-pattern must appear inside the
			// super-pattern's key (with comma delimiters).
			t.Fatalf("IsSuperPatternOf(%q, %q) true but key not contained", a, b)
		}
	})
}
