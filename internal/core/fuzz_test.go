package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzLoadPatterns checks that the pattern-file decoder never panics on
// arbitrary input and that everything it accepts is structurally safe to
// serve (non-empty patterns, non-negative cells, finite NM) and re-encodes
// stably. Seeds come from testdata so the corpus starts at realistic
// on-disk shapes.
func FuzzLoadPatterns(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "fuzz_patterns_*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no testdata pattern seeds")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("")
	f.Add("{}")
	f.Add(`{"version":1,"patterns":[]}`)
	f.Add(`{"version":1,"patterns":[{"cells":[-1],"nm":0}]}`)
	f.Add(`{"version":1,"patterns":[{"cells":[],"nm":0}]}`)
	f.Add(`{"version":2,"patterns":[{"cells":[1],"nm":0}]}`)
	f.Add(`{"version":1,"patterns":[{"cells":[1],"nm":1e400}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		pats, err := ReadPatterns(strings.NewReader(in), nil)
		if err != nil {
			return
		}
		for i, sp := range pats {
			if len(sp.Pattern) == 0 {
				t.Fatalf("accepted empty pattern at %d", i)
			}
			for j, c := range sp.Pattern {
				if c < 0 {
					t.Fatalf("accepted negative cell at [%d][%d]: %d", i, j, c)
				}
			}
			if math.IsNaN(sp.NM) || math.IsInf(sp.NM, 0) {
				t.Fatalf("accepted non-finite NM at %d: %v", i, sp.NM)
			}
		}
		var out bytes.Buffer
		if err := WritePatterns(&out, pats); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		pats2, err := ReadPatterns(&out, nil)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(pats2) != len(pats) {
			t.Fatalf("round trip changed pattern count: %d vs %d", len(pats2), len(pats))
		}
		for i := range pats {
			if !pats[i].Pattern.Equal(pats2[i].Pattern) || pats[i].NM != pats2[i].NM {
				t.Fatalf("round trip changed pattern %d", i)
			}
		}
	})
}

// FuzzParsePattern checks that ParsePattern never panics and that every
// successfully parsed key round-trips exactly.
func FuzzParsePattern(f *testing.F) {
	f.Add("1,2,3")
	f.Add("")
	f.Add("0")
	f.Add("-1,5")
	f.Add("9999999999999999999999")
	f.Add("1,,2")
	f.Add("a,b")
	f.Fuzz(func(t *testing.T, key string) {
		p, err := ParsePattern(key)
		if err != nil {
			return
		}
		if len(p) == 0 {
			t.Fatalf("ParsePattern(%q) returned empty pattern without error", key)
		}
		back := p.Key()
		// Canonical keys round-trip; non-canonical inputs (leading zeros,
		// plus signs) may normalize, but re-parsing the canonical form
		// must be stable.
		p2, err := ParsePattern(back)
		if err != nil {
			t.Fatalf("canonical key %q failed to parse: %v", back, err)
		}
		if !p.Equal(p2) {
			t.Fatalf("round trip changed pattern: %v vs %v", p, p2)
		}
	})
}

// FuzzSuperPattern checks the consistency of the super-pattern relation
// under random cell sequences encoded as comma strings.
func FuzzSuperPattern(f *testing.F) {
	f.Add("1,2,3", "2,3")
	f.Add("1", "1")
	f.Add("5,5,5", "5,5")
	f.Fuzz(func(t *testing.T, a, b string) {
		pa, errA := ParsePattern(a)
		pb, errB := ParsePattern(b)
		if errA != nil || errB != nil {
			return
		}
		super := pa.IsSuperPatternOf(pb)
		proper := pa.IsProperSuperPatternOf(pb)
		if proper && !super {
			t.Fatal("proper super-pattern that is not a super-pattern")
		}
		if super && len(pb) > len(pa) {
			t.Fatal("super-pattern shorter than sub-pattern")
		}
		if super && strings.Count(","+pa.Key()+",", ","+pb.Key()+",") == 0 {
			// The key of a contiguous sub-pattern must appear inside the
			// super-pattern's key (with comma delimiters).
			t.Fatalf("IsSuperPatternOf(%q, %q) true but key not contained", a, b)
		}
	})
}
