package core

import (
	"math"
	"strings"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

func TestExplainConsistentWithNM(t *testing.T) {
	data := randomDataset(31, 5, 12, 0.1)
	s := testScorer(t, data, 4)
	p := Pattern{3, 7, 11}
	ex, err := s.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.NM-s.NM(p)) > 1e-12 {
		t.Errorf("Explain total %v != NM %v", ex.NM, s.NM(p))
	}
	var sum float64
	for ti, c := range ex.PerTraj {
		sum += c.NM
		if want := s.NMTrajectory(p, ti); math.Abs(c.NM-want) > 1e-12 {
			t.Errorf("traj %d: %v vs %v", ti, c.NM, want)
		}
	}
	if math.Abs(sum-ex.NM) > 1e-9 {
		t.Error("contributions do not sum to total")
	}
}

func TestExplainBestWindow(t *testing.T) {
	// Pattern matching exactly the tail: best window must be index 2.
	g := grid.NewSquare(4)
	far, a, b := g.CenterAt(0), g.CenterAt(5), g.CenterAt(10)
	data := traj.Dataset{{
		{Mean: far, Sigma: 0.05},
		{Mean: far, Sigma: 0.05},
		{Mean: a, Sigma: 0.05},
		{Mean: b, Sigma: 0.05},
	}}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.Explain(Pattern{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if ex.PerTraj[0].Window != 2 {
		t.Errorf("best window = %d, want 2", ex.PerTraj[0].Window)
	}
}

func TestExplainTooShort(t *testing.T) {
	data := traj.Dataset{
		{traj.P(0.5, 0.5, 0.1)}, // length 1
		{traj.P(0.5, 0.5, 0.1), traj.P(0.5, 0.5, 0.1), traj.P(0.5, 0.5, 0.1)},
	}
	s := testScorer(t, data, 4)
	ex, err := s.Explain(Pattern{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.PerTraj[0].TooShort || ex.PerTraj[0].Window != -1 {
		t.Errorf("short trajectory not flagged: %+v", ex.PerTraj[0])
	}
	if ex.PerTraj[1].TooShort {
		t.Error("long trajectory flagged short")
	}
}

func TestExplainValidation(t *testing.T) {
	s := testScorer(t, randomDataset(32, 2, 6, 0.1), 4)
	if _, err := s.Explain(nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := s.Explain(Pattern{999}); err == nil {
		t.Error("out-of-grid pattern accepted")
	}
}

func TestTopContributorsAndString(t *testing.T) {
	data := randomDataset(33, 8, 10, 0.1)
	s := testScorer(t, data, 4)
	ex, err := s.Explain(Pattern{5})
	if err != nil {
		t.Fatal(err)
	}
	top := ex.TopContributors(3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].NM > top[i-1].NM {
			t.Error("contributors not sorted")
		}
	}
	// All requested when n exceeds the dataset.
	if got := ex.TopContributors(100); len(got) != 8 {
		t.Errorf("overlong request = %d", len(got))
	}
	out := ex.String()
	if !strings.Contains(out, "pattern 5:") || !strings.Contains(out, "traj ") {
		t.Errorf("String output:\n%s", out)
	}
}
