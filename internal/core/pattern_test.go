package core

import (
	"testing"
	"testing/quick"

	"trajpattern/internal/grid"
)

func TestPatternKeyRoundTrip(t *testing.T) {
	p := Pattern{3, 0, 15}
	got, err := ParsePattern(p.Key())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("round trip = %v", got)
	}
	if _, err := ParsePattern(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := ParsePattern("1,x"); err == nil {
		t.Error("garbage key accepted")
	}
}

func TestPatternEqual(t *testing.T) {
	if !(Pattern{1, 2}).Equal(Pattern{1, 2}) {
		t.Error("equal patterns unequal")
	}
	if (Pattern{1, 2}).Equal(Pattern{1, 2, 3}) {
		t.Error("different lengths equal")
	}
	if (Pattern{1, 2}).Equal(Pattern{2, 1}) {
		t.Error("different contents equal")
	}
}

func TestConcat(t *testing.T) {
	a, b := Pattern{1, 2}, Pattern{3}
	c := a.Concat(b)
	if !c.Equal(Pattern{1, 2, 3}) {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias its receiver's backing array.
	c[0] = 99
	if a[0] != 1 {
		t.Error("Concat aliased receiver")
	}
}

func TestSuperPattern(t *testing.T) {
	p := Pattern{1, 2, 3}
	cases := []struct {
		sub    Pattern
		super  bool
		proper bool
	}{
		{Pattern{1, 2, 3}, true, false}, // itself
		{Pattern{1, 2}, true, true},
		{Pattern{2, 3}, true, true},
		{Pattern{2}, true, true},
		{Pattern{1, 3}, false, false}, // not contiguous
		{Pattern{3, 2}, false, false},
		{Pattern{1, 2, 3, 4}, false, false}, // longer
		{nil, false, false},                 // empty
	}
	for _, c := range cases {
		if got := p.IsSuperPatternOf(c.sub); got != c.super {
			t.Errorf("IsSuperPatternOf(%v) = %v, want %v", c.sub, got, c.super)
		}
		if got := p.IsProperSuperPatternOf(c.sub); got != c.proper {
			t.Errorf("IsProperSuperPatternOf(%v) = %v, want %v", c.sub, got, c.proper)
		}
	}
}

func TestDropFirstLast(t *testing.T) {
	p := Pattern{1, 2, 3}
	if !p.DropFirst().Equal(Pattern{2, 3}) {
		t.Errorf("DropFirst = %v", p.DropFirst())
	}
	if !p.DropLast().Equal(Pattern{1, 2}) {
		t.Errorf("DropLast = %v", p.DropLast())
	}
	if (Pattern{1}).DropFirst() != nil || (Pattern{1}).DropLast() != nil {
		t.Error("singular drops should be nil")
	}
	// Drops must be copies.
	d := p.DropFirst()
	d[0] = 99
	if p[1] != 2 {
		t.Error("DropFirst aliased")
	}
}

func TestValidateAndCenters(t *testing.T) {
	g := grid.NewSquare(4)
	if err := (Pattern{0, 15}).Validate(g); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	if err := (Pattern{}).Validate(g); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := (Pattern{16}).Validate(g); err == nil {
		t.Error("out-of-range cell accepted")
	}
	cs := (Pattern{0}).Centers(g)
	if len(cs) != 1 || cs[0] != g.CenterAt(0) {
		t.Errorf("Centers = %v", cs)
	}
	if (Pattern{0, 5}).Format(g) == "" {
		t.Error("Format empty")
	}
}

// Property: Key is injective over random small patterns.
func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		pa := make(Pattern, len(a))
		pb := make(Pattern, len(b))
		for i, v := range a {
			pa[i] = int(v)
		}
		for i, v := range b {
			pb[i] = int(v)
		}
		if pa.Equal(pb) {
			return pa.Key() == pb.Key()
		}
		return pa.Key() != pb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every contiguous slice of a pattern is a sub-pattern.
func TestQuickContiguousSubPatterns(t *testing.T) {
	f := func(raw []uint8, lo, width uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make(Pattern, len(raw))
		for i, v := range raw {
			p[i] = int(v)
		}
		start := int(lo) % len(p)
		w := 1 + int(width)%(len(p)-start)
		sub := p[start : start+w]
		return p.IsSuperPatternOf(sub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
