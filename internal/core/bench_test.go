package core

import (
	"context"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

func benchDataset(nTraj, length int) traj.Dataset {
	rng := stat.NewRNG(99)
	d := make(traj.Dataset, nTraj)
	for i := range d {
		tr := make(traj.Trajectory, length)
		x, y := rng.Float64(), rng.Float64()
		for j := range tr {
			x += rng.Normal(0, 0.01)
			y += rng.Normal(0, 0.01)
			tr[j] = traj.P(clamp01(x), clamp01(y), 0.02)
		}
		d[i] = tr
	}
	return d
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func benchScorer(b *testing.B, mode ProbMode, cache bool) *Scorer {
	b.Helper()
	g := grid.NewSquare(12)
	s, err := NewScorer(benchDataset(50, 100), Config{
		Grid:         g,
		Delta:        g.CellWidth(),
		Mode:         mode,
		DisableCache: !cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkNMColdCache measures a single NM evaluation including the
// log-probability computation for its cells.
func BenchmarkNMColdCache(b *testing.B) {
	s := benchScorer(b, ProbBox, false)
	p := Pattern{50, 51, 62, 63}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NM(p)
	}
}

// BenchmarkNMWarmCache measures the steady-state cost of NM evaluation:
// windowed sums over cached per-cell vectors — the inner loop of the
// miner's complexity O(k²MNG).
func BenchmarkNMWarmCache(b *testing.B) {
	s := benchScorer(b, ProbBox, true)
	p := Pattern{50, 51, 62, 63}
	s.NM(p) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NM(p)
	}
}

// BenchmarkLogProbBox measures the per-snapshot box probability.
func BenchmarkLogProbBox(b *testing.B) {
	s := benchScorer(b, ProbBox, true)
	pt := traj.P(0.4, 0.4, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.logProb(pt, 50)
	}
}

// BenchmarkLogProbDisk measures the per-snapshot Rice-distribution disk
// probability (Simpson integration of the scaled Bessel integrand).
func BenchmarkLogProbDisk(b *testing.B) {
	s := benchScorer(b, ProbDisk, true)
	pt := traj.P(0.4, 0.4, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.logProb(pt, 50)
	}
}

// BenchmarkScoreAllBatch measures batched parallel NM evaluation, the
// miner's candidate-scoring path.
func BenchmarkScoreAllBatch(b *testing.B) {
	s := benchScorer(b, ProbBox, true)
	rng := stat.NewRNG(3)
	patterns := make([]Pattern, 200)
	for i := range patterns {
		n := 2 + rng.Intn(4)
		p := make(Pattern, n)
		for j := range p {
			p[j] = rng.Intn(144)
		}
		patterns[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreAll(context.Background(), patterns)
	}
}

// BenchmarkMineSmall measures an end-to-end mining run on a small
// workload.
func BenchmarkMineSmall(b *testing.B) {
	g := grid.NewSquare(10)
	ds := benchDataset(30, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewScorer(ds, Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Mine(context.Background(), s, MinerConfig{K: 8, MaxLen: 5, MaxLowQ: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineSmallMetrics is BenchmarkMineSmall with an obs registry
// attached — compare the two to see the cost of enabling instrumentation
// (the nil-registry path of BenchmarkMineSmall is the zero-cost default).
func BenchmarkMineSmallMetrics(b *testing.B) {
	g := grid.NewSquare(10)
	ds := benchDataset(30, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := obs.New()
		s, err := NewScorer(ds, Config{Grid: g, Delta: g.CellWidth(), Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Mine(context.Background(), s, MinerConfig{K: 8, MaxLen: 5, MaxLowQ: 32, Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverGroups measures pattern-group clustering of a mined
// result set.
func BenchmarkDiscoverGroups(b *testing.B) {
	g := grid.NewSquare(20)
	rng := stat.NewRNG(4)
	patterns := make([]Pattern, 100)
	for i := range patterns {
		p := make(Pattern, 3)
		base := rng.Intn(380)
		for j := range p {
			p[j] = base + rng.Intn(20)
		}
		patterns[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverGroups(patterns, g, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNMGapDP measures the gap-pattern dynamic program (§5).
func BenchmarkNMGapDP(b *testing.B) {
	s := benchScorer(b, ProbBox, true)
	gp := GapPattern{
		Segments: []Pattern{{50, 51}, {62}, {75, 76}},
		MinGap:   []int{0, 1},
		MaxGap:   []int{3, 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NMGap(gp); err != nil {
			b.Fatal(err)
		}
	}
}
