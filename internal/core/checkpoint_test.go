package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"trajpattern/internal/faultio"
	"trajpattern/internal/testutil/leakcheck"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: "00000000deadbeef",
		Iteration:   3,
		LastFresh:   7,
		PrevHigh:    []string{"1", "1-2"},
		PrevAns:     []string{"1"},
		Stats:       MinerStats{Iterations: 3, Candidates: 42, MaxQ: 9, NMEvaluations: 42},
		Q:           []string{"1", "1-2", "2"},
		Evaluated: []SavedEntry{
			{Cells: []int{1}, NM: -0.5},
			{Cells: []int{1, 2}, NM: -1.25},
			{Cells: []int{2}, NM: -0.75},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("round trip changed the checkpoint:\ngot  %+v\nwant %+v", got, ck)
	}
	// The trailer is one self-describing line at the end of the file.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "trajpattern-checkpoint crc32c=") {
		t.Errorf("trailer = %q, want a trajpattern-checkpoint crc32c line", last)
	}
	// Serialization is deterministic: writing the same state twice gives
	// byte-identical files.
	var buf2 bytes.Buffer
	if err := WriteCheckpoint(&buf2, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two writes of the same checkpoint differ")
	}
}

func TestReadCheckpointRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one byte of the body: the CRC must catch it even though the
	// result may still be valid JSON.
	for _, i := range []int{10, len(good) / 2} {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x20
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Errorf("corrupted byte %d accepted", i)
		}
	}
	// Truncation loses the trailer.
	if _, err := ReadCheckpoint(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("")); err == nil {
		t.Error("empty checkpoint accepted")
	}
	// Wrong schema version.
	ck := sampleCheckpoint()
	ck.Version = CheckpointVersion + 1
	buf.Reset()
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint error = %v, want os.ErrNotExist", err)
	}
}

// TestSaveCheckpointFaults proves the atomicity claim: under every
// injected failure mode of the write protocol, the previous checkpoint
// at the path survives intact.
func TestSaveCheckpointFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "miner.ckpt")
	old := sampleCheckpoint()
	if err := SaveCheckpoint(nil, path, old); err != nil {
		t.Fatal(err)
	}
	newer := sampleCheckpoint()
	newer.Iteration = 4

	for name, faults := range map[string]*faultio.Faults{
		"create":      {FailCreate: true, ShortWriteAfter: -1},
		"short-write": {ShortWriteAfter: 10},
		"sync":        {FailSync: true, ShortWriteAfter: -1},
		"rename":      {FailRename: true, ShortWriteAfter: -1},
		"torn-rename": {TornRename: true, ShortWriteAfter: -1},
	} {
		if err := SaveCheckpoint(faults, path, newer); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("%s: error = %v, want an injected fault", name, err)
		}
		got, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: previous checkpoint unreadable after failed save: %v", name, err)
		}
		if !reflect.DeepEqual(got, old) {
			t.Errorf("%s: previous checkpoint changed by a failed save", name)
		}
	}
	// And a healthy save through the fault FS replaces it.
	if err := SaveCheckpoint(faultio.NewFaults(), path, newer); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadCheckpoint(path); err != nil || got.Iteration != 4 {
		t.Errorf("healthy save not visible: %v, %+v", err, got)
	}
}

// TestMineCheckpointWriteFailureIsHard: a miner that cannot persist the
// checkpoint it was asked for must fail loudly, not keep mining.
func TestMineCheckpointWriteFailure(t *testing.T) {
	s := testScorer(t, randomDataset(7, 8, 20, 0.1), 5)
	faults := &faultio.Faults{FailRename: true, ShortWriteAfter: -1}
	_, err := Mine(context.Background(), s, MinerConfig{
		K: 5, MaxLen: 6,
		CheckpointPath: filepath.Join(t.TempDir(), "miner.ckpt"),
		CheckpointFS:   faults,
	})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("failed checkpoint write not surfaced: %v", err)
	}
	if !errors.Is(err, faultio.ErrInjected) {
		t.Errorf("error %v does not wrap the injected fault", err)
	}
}

func TestMineResumeFingerprintMismatch(t *testing.T) {
	data := randomDataset(7, 8, 20, 0.1)
	s := testScorer(t, data, 5)
	path := filepath.Join(t.TempDir(), "miner.ckpt")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	cfg := MinerConfig{K: 5, MaxLen: 6, CheckpointPath: path,
		OnProgress: func(p Progress) {
			if p.Iteration == 2 {
				cancel(fmt.Errorf("stop for the mismatch test"))
			}
		}}
	if _, err := Mine(ctx, s, cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same checkpoint, different problem (K): refuse to resume.
	s2 := testScorer(t, data, 5)
	_, err = Mine(context.Background(), s2, MinerConfig{K: 4, MaxLen: 6, Resume: ck})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch accepted: %v", err)
	}
	// Same problem: resume is accepted.
	s3 := testScorer(t, data, 5)
	if _, err := Mine(context.Background(), s3, MinerConfig{K: 5, MaxLen: 6, Resume: ck}); err != nil {
		t.Errorf("matching resume refused: %v", err)
	}
}

// TestMineResumeEqualsUninterrupted is the core crash-safety guarantee:
// interrupt a run at an arbitrary iteration, resume from its checkpoint
// with a fresh scorer, and the final persisted answer is byte-identical
// to the uninterrupted run's.
func TestMineResumeEqualsUninterrupted(t *testing.T) {
	defer leakcheck.Check(t)()
	data := randomDataset(7, 8, 20, 0.1)
	// The §5 MinLen variant takes several iterations to saturate, giving
	// resume points both before and after the first long patterns appear.
	base := MinerConfig{K: 8, MinLen: 3, MaxLen: 6}
	dir := t.TempDir()

	// Reference: one uninterrupted run.
	sA := testScorer(t, data, 5)
	resA, err := Mine(context.Background(), sA, base)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Interrupted {
		t.Fatal("reference run interrupted")
	}
	if resA.Stats.Iterations < 3 {
		t.Fatalf("reference run too short (%d iterations) to exercise resume", resA.Stats.Iterations)
	}
	refPath := filepath.Join(dir, "ref.json")
	if err := SavePatterns(refPath, resA.Patterns); err != nil {
		t.Fatal(err)
	}

	for stopAt := 1; stopAt < resA.Stats.Iterations; stopAt++ {
		ckPath := filepath.Join(dir, fmt.Sprintf("stop%d.ckpt", stopAt))

		// Interrupted run: cancel after stopAt iterations.
		sB := testScorer(t, data, 5)
		ctx, cancel := context.WithCancelCause(context.Background())
		cfgB := base
		cfgB.CheckpointPath = ckPath
		cfgB.OnProgress = func(p Progress) {
			if p.Iteration == stopAt {
				cancel(fmt.Errorf("simulated crash after iteration %d", stopAt))
			}
		}
		resB, err := Mine(ctx, sB, cfgB)
		cancel(nil)
		if err != nil {
			t.Fatalf("stop %d: %v", stopAt, err)
		}
		if !resB.Interrupted {
			t.Fatalf("stop %d: run not interrupted", stopAt)
		}

		// Resume with a fresh scorer (a new process would have one).
		ck, err := LoadCheckpoint(ckPath)
		if err != nil {
			t.Fatalf("stop %d: %v", stopAt, err)
		}
		sC := testScorer(t, data, 5)
		cfgC := base
		cfgC.Resume = ck
		resC, err := Mine(context.Background(), sC, cfgC)
		if err != nil {
			t.Fatalf("stop %d: resume: %v", stopAt, err)
		}
		if resC.Interrupted {
			t.Fatalf("stop %d: resumed run interrupted", stopAt)
		}
		if resC.Stats.Iterations != resA.Stats.Iterations {
			t.Errorf("stop %d: resumed run took %d iterations, uninterrupted took %d",
				stopAt, resC.Stats.Iterations, resA.Stats.Iterations)
		}

		gotPath := filepath.Join(dir, fmt.Sprintf("resume%d.json", stopAt))
		if err := SavePatterns(gotPath, resC.Patterns); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(gotPath)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(refPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("stop %d: resumed answer differs from the uninterrupted run", stopAt)
		}
	}
}
