package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"trajpattern/internal/faultio"
)

// This file persists mined results so patterns can be mined once and
// reused by prediction services (the Figure 3 deployment model: the server
// mines offline, devices download the pattern set).

// resultFile is the on-disk representation of a mined result.
type resultFile struct {
	Version  int             `json:"version"`
	Patterns []scoredPattern `json:"patterns"`
}

type scoredPattern struct {
	Cells []int   `json:"cells"`
	NM    float64 `json:"nm"`
}

const persistVersion = 1

// WritePatterns encodes scored patterns to w as JSON.
func WritePatterns(w io.Writer, patterns []ScoredPattern) error {
	f := resultFile{Version: persistVersion, Patterns: make([]scoredPattern, len(patterns))}
	for i, sp := range patterns {
		if len(sp.Pattern) == 0 {
			return fmt.Errorf("core: empty pattern at index %d", i)
		}
		f.Patterns[i] = scoredPattern{Cells: sp.Pattern, NM: sp.NM}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("core: encoding patterns: %w", err)
	}
	return bw.Flush()
}

// ReadPatterns decodes scored patterns from r, validating structure and —
// when g is non-nil — that every cell is a valid index of g.
func ReadPatterns(r io.Reader, validate func(Pattern) error) ([]ScoredPattern, error) {
	var f resultFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding patterns: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported pattern file version %d", f.Version)
	}
	out := make([]ScoredPattern, len(f.Patterns))
	for i, sp := range f.Patterns {
		if len(sp.Cells) == 0 {
			return nil, fmt.Errorf("core: pattern %d is empty", i)
		}
		// Structural floor applied even with no validate callback: a
		// negative cell index is out of every grid and would panic the
		// scorer, and a non-finite NM poisons every ranking comparison
		// (found by FuzzLoadPatterns).
		for j, c := range sp.Cells {
			if c < 0 {
				return nil, fmt.Errorf("core: pattern %d: cell %d is negative (%d)", i, j, c)
			}
		}
		if math.IsNaN(sp.NM) || math.IsInf(sp.NM, 0) {
			return nil, fmt.Errorf("core: pattern %d: non-finite NM %v", i, sp.NM)
		}
		p := Pattern(sp.Cells)
		if validate != nil {
			if err := validate(p); err != nil {
				return nil, fmt.Errorf("core: pattern %d: %w", i, err)
			}
		}
		out[i] = ScoredPattern{Pattern: p, NM: sp.NM}
	}
	return out, nil
}

// SavePatterns writes scored patterns to the named file atomically
// (temp file + fsync + rename): a crash mid-write leaves the previous
// file, never a torn one.
func SavePatterns(path string, patterns []ScoredPattern) error {
	return faultio.WriteFileAtomic(nil, path, func(w io.Writer) error {
		return WritePatterns(w, patterns)
	})
}

// LoadPatterns reads scored patterns from the named file.
func LoadPatterns(path string, validate func(Pattern) error) ([]ScoredPattern, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return ReadPatterns(f, validate)
}
