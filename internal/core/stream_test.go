package core

import (
	"math"
	"path/filepath"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

func TestStreamNMMatchesResidentScorer(t *testing.T) {
	data := randomDataset(21, 6, 15, 0.1)
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	s, err := NewScorer(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	patterns := []Pattern{{0}, {5, 6}, {1, 2, 3}, {15, 15, 15, 15}}
	want := make([]float64, len(patterns))
	for i, p := range patterns {
		want[i] = s.NM(p)
	}
	got, err := StreamNM(NewSliceCursor(data), cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("pattern %d: streamed %v vs resident %v", i, got[i], want[i])
		}
	}
}

func TestStreamNMFileCursor(t *testing.T) {
	data := randomDataset(22, 4, 12, 0.1)
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	if err := traj.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	patterns := []Pattern{{3}, {7, 11}}

	cur := NewFileCursor(path)
	got, err := StreamNM(cur, cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScorer(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		if want := s.NM(p); math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("pattern %d: %v vs %v", i, got[i], want)
		}
	}
	// A second pass after Reset must give the same answer (the cursor
	// reopens the file).
	got2, err := StreamNM(cur, cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Error("second pass differs")
		}
	}
}

func TestStreamNMValidation(t *testing.T) {
	data := randomDataset(23, 2, 8, 0.1)
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	if _, err := StreamNM(NewSliceCursor(data), cfg, []Pattern{{}}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := StreamNM(NewSliceCursor(data), cfg, []Pattern{{99}}); err == nil {
		t.Error("out-of-grid pattern accepted")
	}
	if _, err := StreamNM(NewSliceCursor(nil), cfg, []Pattern{{0}}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := StreamNM(NewSliceCursor(data), Config{Grid: g, Delta: 0}, []Pattern{{0}}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := StreamNM(NewFileCursor("/nonexistent/x.jsonl"), cfg, []Pattern{{0}}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSliceCursor(t *testing.T) {
	data := randomDataset(24, 3, 5, 0.1)
	c := NewSliceCursor(data)
	count := 0
	for {
		tr, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("cursor yielded %d trajectories", count)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if tr, err := c.Next(); err != nil || tr == nil {
		t.Error("reset cursor empty")
	}
}
