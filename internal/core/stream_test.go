package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

func TestStreamNMMatchesResidentScorer(t *testing.T) {
	data := randomDataset(21, 6, 15, 0.1)
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	s, err := NewScorer(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	patterns := []Pattern{{0}, {5, 6}, {1, 2, 3}, {15, 15, 15, 15}}
	want := make([]float64, len(patterns))
	for i, p := range patterns {
		want[i] = s.NM(p)
	}
	got, err := StreamNM(context.Background(), NewSliceCursor(data), cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("pattern %d: streamed %v vs resident %v", i, got[i], want[i])
		}
	}
}

func TestStreamNMFileCursor(t *testing.T) {
	data := randomDataset(22, 4, 12, 0.1)
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	if err := traj.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	patterns := []Pattern{{3}, {7, 11}}

	cur := NewFileCursor(path)
	got, err := StreamNM(context.Background(), cur, cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScorer(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		if want := s.NM(p); math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("pattern %d: %v vs %v", i, got[i], want)
		}
	}
	// A second pass after Reset must give the same answer (the cursor
	// reopens the file).
	got2, err := StreamNM(context.Background(), cur, cfg, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Error("second pass differs")
		}
	}
}

func TestStreamNMValidation(t *testing.T) {
	data := randomDataset(23, 2, 8, 0.1)
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}
	if _, err := StreamNM(context.Background(), NewSliceCursor(data), cfg, []Pattern{{}}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := StreamNM(context.Background(), NewSliceCursor(data), cfg, []Pattern{{99}}); err == nil {
		t.Error("out-of-grid pattern accepted")
	}
	if _, err := StreamNM(context.Background(), NewSliceCursor(nil), cfg, []Pattern{{0}}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := StreamNM(context.Background(), NewSliceCursor(data), Config{Grid: g, Delta: 0}, []Pattern{{0}}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := StreamNM(context.Background(), NewFileCursor("/nonexistent/x.jsonl"), cfg, []Pattern{{0}}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestFileCursorReleasesOnError checks the error-path descriptor
// handling: a malformed line fails Next, and the cursor must have closed
// the file rather than holding it until Reset.
func TestFileCursorReleasesOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	data := randomDataset(25, 2, 6, 0.1)
	if err := traj.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, []byte("{not json\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewFileCursor(path)
	var readErr error
	for {
		tr, err := c.Next(context.Background())
		if err != nil {
			readErr = err
			break
		}
		if tr == nil {
			break
		}
	}
	if readErr == nil {
		t.Fatal("malformed line did not fail Next")
	}
	if c.r != nil {
		t.Error("file descriptor still held after a read error")
	}
	// The failed scan stays terminated until Reset: no silent restart.
	if tr, err := c.Next(context.Background()); err != nil || tr != nil {
		t.Errorf("Next after error = (%v, %v), want (nil, nil)", tr, err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if tr, err := c.Next(context.Background()); err != nil || tr == nil {
		t.Errorf("Next after Reset = (%v, %v), want a trajectory", tr, err)
	}
	if c.r == nil {
		t.Fatal("expected an open reader mid-scan")
	}
	// Early abort: Close mid-scan releases the descriptor and terminates.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.r != nil {
		t.Error("file descriptor still held after Close")
	}
	if tr, err := c.Next(context.Background()); err != nil || tr != nil {
		t.Errorf("Next after Close = (%v, %v), want (nil, nil)", tr, err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestFileCursorClosesAtEOF checks the normal path releases the
// descriptor as soon as the last trajectory has been read.
func TestFileCursorClosesAtEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	data := randomDataset(26, 3, 6, 0.1)
	if err := traj.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	c := NewFileCursor(path)
	defer c.Close()
	n := 0
	for {
		tr, err := c.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			break
		}
		n++
	}
	if n != len(data) {
		t.Fatalf("read %d trajectories, want %d", n, len(data))
	}
	if c.r != nil {
		t.Error("file descriptor still held after EOF")
	}
	// Idempotent EOF: further Next calls stay (nil, nil) without reopening.
	if tr, err := c.Next(context.Background()); err != nil || tr != nil {
		t.Errorf("Next after EOF = (%v, %v), want (nil, nil)", tr, err)
	}
	if c.r != nil {
		t.Error("Next after EOF reopened the file")
	}
}

func TestSliceCursor(t *testing.T) {
	data := randomDataset(24, 3, 5, 0.1)
	c := NewSliceCursor(data)
	count := 0
	for {
		tr, err := c.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("cursor yielded %d trajectories", count)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if tr, err := c.Next(context.Background()); err != nil || tr == nil {
		t.Error("reset cursor empty")
	}
}
