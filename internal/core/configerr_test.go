package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/grid"
	"trajpattern/internal/traj"
)

// asConfigError asserts err unwraps to a *ConfigError naming the given
// struct and field.
func asConfigError(t *testing.T, err error, strct, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want ConfigError for %s.%s, got nil", strct, field)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError for %s.%s, got %T: %v", strct, field, err, err)
	}
	if ce.Struct != strct || ce.Field != field {
		t.Fatalf("ConfigError names %s.%s, want %s.%s", ce.Struct, ce.Field, strct, field)
	}
	if !strings.Contains(ce.Error(), strct) || !strings.Contains(ce.Error(), field) {
		t.Fatalf("Error() %q does not name %s.%s", ce.Error(), strct, field)
	}
}

func TestScorerConfigValidation(t *testing.T) {
	ds := traj.Dataset{{traj.P(0.5, 0.5, 0.1)}}
	g := grid.NewSquare(4)
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"nil grid", Config{Delta: 0.1}, "Grid"},
		{"zero-value grid", Config{Grid: &grid.Grid{}, Delta: 0.1}, "Grid"},
		{"zero delta", Config{Grid: g}, "Delta"},
		{"negative delta", Config{Grid: g, Delta: -1}, "Delta"},
		{"NaN delta", Config{Grid: g, Delta: math.NaN()}, "Delta"},
		{"Inf delta", Config{Grid: g, Delta: math.Inf(1)}, "Delta"},
		{"positive log floor", Config{Grid: g, Delta: 0.1, LogFloor: 1}, "LogFloor"},
		{"NaN log floor", Config{Grid: g, Delta: 0.1, LogFloor: math.NaN()}, "LogFloor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewScorer(ds, tc.cfg)
			asConfigError(t, err, "ScorerConfig", tc.field)
		})
	}
	if _, err := NewScorer(ds, Config{Grid: g, Delta: 0.1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMinerConfigTypedErrors(t *testing.T) {
	ds := traj.Dataset{{traj.P(0.5, 0.5, 0.1), traj.P(0.6, 0.6, 0.1)}}
	g := grid.NewSquare(4)
	s, err := NewScorer(ds, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		cfg   MinerConfig
		field string
	}{
		{"zero k", MinerConfig{}, "K"},
		{"negative k", MinerConfig{K: -3}, "K"},
		{"negative maxlen", MinerConfig{K: 1, MaxLen: -1}, "MaxLen"},
		{"negative maxiters", MinerConfig{K: 1, MaxIters: -1}, "MaxIters"},
		{"negative maxlowq", MinerConfig{K: 1, MaxLowQ: -1}, "MaxLowQ"},
		{"negative wall time", MinerConfig{K: 1, MaxWallTime: -time.Second}, "MaxWallTime"},
		{"minlen over maxlen", MinerConfig{K: 1, MinLen: 9, MaxLen: 4}, "MinLen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Mine(context.Background(), s, tc.cfg)
			asConfigError(t, err, "MinerConfig", tc.field)
		})
	}
}

func TestGroupsGammaValidation(t *testing.T) {
	g := grid.NewSquare(4)
	pats := []Pattern{{0, 1}}
	if _, err := DiscoverGroups(pats, g, math.NaN()); err == nil {
		t.Fatal("NaN gamma accepted")
	} else {
		asConfigError(t, err, "Groups", "Gamma")
	}
	if _, err := DiscoverGroups(pats, g, -0.5); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := DiscoverGroups(pats, g, 0.5); err != nil {
		t.Fatalf("valid gamma rejected: %v", err)
	}
}
