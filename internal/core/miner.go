package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"trajpattern/internal/faultio"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// MinerConfig parameterizes the TrajPattern algorithm (Section 4).
type MinerConfig struct {
	// K is the number of patterns to mine (top-k by NM). Required.
	K int
	// MinLen, when > 1, activates the Section 5 variant that returns the
	// top-k patterns of length at least MinLen. Zero or one means no
	// constraint.
	//
	// Deviation from the paper, documented in DESIGN.md: §5 re-defines
	// the high threshold ω as the kth best NM among patterns of length
	// ≥ MinLen, which floods the high set (almost every pattern exceeds
	// that much lower ω) and makes the candidate volume quadratic in the
	// whole pattern set. This implementation instead keeps the base
	// algorithm's ω (kth best over all patterns) for high/low labeling —
	// so |H| stays ≈ K — while separately tracking the running top-k
	// answer among length-≥-MinLen patterns; the answer set is protected
	// from pruning and always eligible for extension, and the loop runs
	// until both the high set and the answer set are stable.
	MinLen int
	// MaxLen caps the length of generated candidates. The paper observes
	// that qualified patterns are much shorter than trajectories; the cap
	// bounds the doubling growth of concatenation. Zero means
	// DefaultMaxLen.
	MaxLen int
	// MaxIters bounds the number of grow iterations as a safety net on
	// top of the termination test. Zero means DefaultMaxIters.
	MaxIters int
	// MaxHigh caps the size of the high set used for candidate
	// generation. The paper labels every pattern with NM >= ω as high;
	// when many patterns tie at ω — which is guaranteed once δ is large
	// enough that whole regions have probability 1 and NM 0 — that rule
	// floods H and the candidate volume explodes combinatorially. The
	// cap keeps the best MaxHigh patterns (deterministic order) plus the
	// protected answer set. Zero means 4·K; negative means unlimited
	// (the paper's literal rule).
	MaxHigh int
	// MaxLowQ caps how many low 1-extension patterns are retained in Q
	// as extension partners, keeping the best by NM. The paper retains
	// all of them (O(kG), which with its O(k²G) candidate volume per
	// iteration is impractical at the paper's own k = 1000); a cap of a
	// few multiples of K preserves the useful partners. Zero means
	// unlimited (the paper's literal rule).
	MaxLowQ int
	// DisablePrune keeps all low patterns in Q instead of removing those
	// failing the 1-extension property — the A1 ablation. MaxLowQ still
	// applies if non-zero.
	DisablePrune bool
	// Seeds is the set of singular-pattern cells to start from. Nil means
	// Scorer.ObservedCells(1): every cell holding data plus one ring,
	// which contains all cells that can appear in a top-k pattern unless
	// the floor dominates. Use Scorer.AllCells for the paper's literal
	// seeding on small grids.
	Seeds []int
	// Metrics, when non-nil, receives per-run miner instrumentation
	// (candidate, prune and set-size accounting under "miner.*" names —
	// see DESIGN.md for the name-to-paper-quantity map). Nil disables
	// collection at the cost of one nil check per event.
	Metrics *obs.Registry
	// Tracer, when non-nil, records the run's timeline: a "miner.run"
	// span, one "miner.iteration" span per grow iteration, and one
	// "miner.candidate.{admitted,readmitted,pruned}" event per candidate
	// with its pattern key, NM value and iteration (see DESIGN.md for the
	// span/event-to-§4-phase map). Nil disables tracing at the cost of one
	// nil check per site.
	Tracer *trace.Tracer
	// OnProgress, when non-nil, is invoked once per grow iteration with
	// the miner's live state, after candidate generation and pruning. It
	// runs on the mining goroutine — keep it fast (the CLIs install a
	// throttled printer).
	OnProgress func(Progress)
	// MaxWallTime, when > 0, bounds the run's wall-clock duration on top
	// of any deadline carried by the Context: the miner stops at the
	// first iteration boundary past the budget and returns its
	// best-so-far answer with Result.Interrupted set. Like context
	// cancellation this is graceful degradation, not an error — but it
	// trades the determinism of the result for the bound, so leave it
	// zero when reproducibility matters.
	MaxWallTime time.Duration
	// CheckpointPath, when non-empty, makes the miner persist a
	// crash-safe snapshot of its state (see Checkpoint) every
	// CheckpointEvery iterations and at a cancellation boundary. Writes
	// are atomic (temp file + fsync + rename) with a CRC trailer, so the
	// path always holds a complete, verifiable checkpoint.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in grow iterations.
	// Zero means 1 (every iteration boundary).
	CheckpointEvery int
	// Resume, when non-nil, restores the miner's state from a previous
	// run's checkpoint instead of seeding from scratch. The checkpoint's
	// fingerprint must match this run's configuration and dataset.
	// Because checkpoints are taken only at iteration boundaries, a
	// resumed run replays the remaining iterations exactly and its final
	// answer is identical to the uninterrupted run's.
	Resume *Checkpoint
	// CheckpointFS overrides the filesystem used for checkpoint writes;
	// nil means the real OS. Tests inject a *faultio.Faults to prove
	// crash-safety.
	CheckpointFS faultio.FS
	// Shards, when > 1, asks for the sharded engine: the dataset is
	// partitioned and mined per shard, and the per-shard candidate sets
	// are merged under the min-max bound (package core/shard; the CLIs
	// and trajserve route through it). Mine itself ignores the field —
	// it always runs the single-partition algorithm — so Shards <= 1 is
	// byte-identical to the pre-sharding miner. Zero means 1.
	Shards int
	// FingerprintExtra, when non-empty, is hashed into the checkpoint
	// fingerprint on top of the problem description. The sharded engine
	// uses it to bind each per-shard checkpoint to its shard index, so a
	// shard can never resume a sibling's state just because their
	// sub-datasets have the same shape. Empty leaves the fingerprint
	// exactly as before — existing checkpoints stay resumable.
	FingerprintExtra string
	// CaptureFinalState, when set, makes Mine attach its terminal
	// boundary state (Q, the full NM memo, and the stability witnesses)
	// to Result.FinalState in checkpoint form. The sharded merge reads
	// per-shard memos from it instead of re-deriving them from disk.
	CaptureFinalState bool
}

// Progress is the point-in-time view of a running Mine call handed to
// MinerConfig.OnProgress.
type Progress struct {
	Iteration  int           // 1-based grow iteration just finished
	MaxIters   int           // the MaxIters bound (after defaults)
	QSize      int           // |Q| after pruning
	HighSize   int           // |H| at the last labeling
	AnswerSize int           // running answer-set size (≤ K)
	K          int           // patterns wanted
	Candidates int           // cumulative candidates NM-evaluated (incl. seeds)
	Elapsed    time.Duration // wall time since Mine started
}

// Defaults for MinerConfig.
const (
	DefaultMaxLen   = 24
	DefaultMaxIters = 64
)

func (c MinerConfig) withDefaults() MinerConfig {
	if c.MaxLen == 0 {
		c.MaxLen = DefaultMaxLen
	}
	if c.MaxIters == 0 {
		c.MaxIters = DefaultMaxIters
	}
	if c.MinLen < 1 {
		c.MinLen = 1
	}
	if c.MaxHigh == 0 {
		c.MaxHigh = 4 * c.K
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// validate rejects miner configurations up front with typed *ConfigError
// values, so CLIs and trajserve surface a clean caller-error message
// instead of a deep panic or silent garbage.
func (c MinerConfig) validate() error {
	if c.K <= 0 {
		return cfgErr("MinerConfig", "K", "must be > 0, got %d", c.K)
	}
	if c.MaxLen < 0 {
		return cfgErr("MinerConfig", "MaxLen", "must be >= 0, got %d", c.MaxLen)
	}
	if c.MaxIters < 0 {
		return cfgErr("MinerConfig", "MaxIters", "must be >= 0, got %d", c.MaxIters)
	}
	if c.MaxLowQ < 0 {
		return cfgErr("MinerConfig", "MaxLowQ", "must be >= 0, got %d", c.MaxLowQ)
	}
	if c.MaxWallTime < 0 {
		return cfgErr("MinerConfig", "MaxWallTime", "must be >= 0, got %v", c.MaxWallTime)
	}
	if c.Shards < 0 {
		return cfgErr("MinerConfig", "Shards", "must be >= 0, got %d", c.Shards)
	}
	if c.Resume != nil && c.Resume.Version != CheckpointVersion {
		return fmt.Errorf("core: resume checkpoint version %d, want %d", c.Resume.Version, CheckpointVersion)
	}
	if c.MinLen > c.MaxLen && c.MaxLen != 0 {
		return cfgErr("MinerConfig", "MinLen", "%d exceeds MaxLen %d", c.MinLen, c.MaxLen)
	}
	return nil
}

// MinerStats reports the work done by one Mine call.
type MinerStats struct {
	Iterations    int // grow iterations executed
	Candidates    int // candidate patterns whose NM was evaluated
	MaxQ          int // peak size of the pattern set Q
	Pruned        int // low patterns removed by the 1-extension test
	LowCapped     int // low patterns removed by the MaxLowQ cap
	NMEvaluations int // total NM computations (including seeds)
}

// Result is the output of Mine.
type Result struct {
	// Patterns holds the k patterns with the highest NM (among those of
	// length >= MinLen), best first. Ties break toward shorter patterns,
	// then lexicographic cell order, so results are deterministic.
	Patterns []ScoredPattern
	Stats    MinerStats
	// Interrupted reports that the run stopped before the algorithm's
	// own termination test fired: the context was cancelled or
	// MaxWallTime elapsed. The running answer set is always a valid
	// partial answer, so Patterns still holds the best-so-far top-k —
	// graceful degradation, not an error.
	Interrupted bool
	// InterruptReason says why the run was interrupted ("context
	// canceled", "max wall time 5s elapsed", ...); empty when
	// Interrupted is false.
	InterruptReason string
	// FinalState is the terminal boundary snapshot of the run (Q, the
	// NM memo, stability witnesses), present only when
	// MinerConfig.CaptureFinalState was set. The sharded merge consumes
	// it; it is never written to disk by Mine itself.
	FinalState *Checkpoint
}

// entry is Q's record of one pattern.
type entry struct {
	pat Pattern
	key string
	nm  float64
}

// labeling is one iteration's view of Q: the high set (paper ω = Kth best
// NM over all of Q, plus the protected top-K answer patterns of length >=
// MinLen) and the current answer key set.
type labeling struct {
	high    []*entry
	highKey map[string]struct{}
	ansKey  map[string]struct{}
	capped  int // entries dropped from the high set by the MaxHigh cap
}

// minerMetrics holds the resolved obs handles of one Mine call. All fields
// are nil when MinerConfig.Metrics is nil; obs handles treat nil receivers
// as no-ops, so call sites need no guards.
type minerMetrics struct {
	iterations *obs.Counter // grow iterations executed
	seeds      *obs.Counter // singular seed patterns evaluated
	fresh      *obs.Counter // never-seen candidates evaluated (NM computed)
	readmitted *obs.Counter // previously pruned patterns re-inserted from the memo
	prunedExt  *obs.Counter // low patterns removed by the 1-extension test
	prunedCap  *obs.Counter // low patterns removed by the MaxLowQ cap
	retained   *obs.Counter // patterns left in Q at the end of a run; across
	// any number of runs, retained = seeds + fresh + readmitted − pruned
	highCapped    *obs.Counter // high-set entries dropped by the MaxHigh cap
	termStable    *obs.Counter // terminations: high+answer sets stable, answer full
	termDry       *obs.Counter // terminations: stable and no fresh candidates left
	termMaxIter   *obs.Counter // terminations: MaxIters safety net hit
	termInterrupt *obs.Counter // terminations: context cancelled or MaxWallTime elapsed
	checkpoints   *obs.Counter // checkpoint files written
	qFinal        *obs.Gauge   // |Q| when the loop ended
	qPeak         *obs.Gauge   // peak |Q| across iterations
	highSize      *obs.Gauge   // |H| at the last labeling
	lowSize       *obs.Gauge   // |Q| − |H| at the last labeling
	ansSize       *obs.Gauge   // answer-set size at the last labeling
	total         *obs.Timer   // whole Mine call
	iteration     *obs.Timer   // one grow iteration
}

func newMinerMetrics(r *obs.Registry) minerMetrics {
	return minerMetrics{
		iterations:    r.Counter("miner.iterations"),
		seeds:         r.Counter("miner.seeds"),
		fresh:         r.Counter("miner.candidates.fresh"),
		readmitted:    r.Counter("miner.candidates.readmitted"),
		prunedExt:     r.Counter("miner.pruned.extension"),
		prunedCap:     r.Counter("miner.pruned.lowcap"),
		retained:      r.Counter("miner.q.retained"),
		highCapped:    r.Counter("miner.high.capped"),
		termStable:    r.Counter("miner.term.stable"),
		termDry:       r.Counter("miner.term.exhausted"),
		termMaxIter:   r.Counter("miner.term.maxiters"),
		termInterrupt: r.Counter("miner.term.interrupted"),
		checkpoints:   r.Counter("miner.checkpoints"),
		qFinal:        r.Gauge("miner.q.final"),
		qPeak:         r.Gauge("miner.q.peak"),
		highSize:      r.Gauge("miner.high.size"),
		lowSize:       r.Gauge("miner.low.size"),
		ansSize:       r.Gauge("miner.answer.size"),
		total:         r.Timer("miner.time.total"),
		iteration:     r.Timer("miner.time.iteration"),
	}
}

// Mine runs the TrajPattern algorithm: seed Q with singular patterns,
// iterate candidate generation from the high set (concatenating every high
// pattern with every pattern in Q on both sides), re-threshold, prune low
// patterns failing the 1-extension property (§4.1), and stop when the high
// set and the answer set are stable. See MinerConfig.MinLen and
// MinerConfig.MaxLowQ for the two documented deviations from the paper.
//
// ctx cancellation (and MinerConfig.MaxWallTime) interrupt the run
// gracefully: the miner drains its scoring workers, optionally flushes a
// final checkpoint, and returns its best-so-far top-k with
// Result.Interrupted set — not an error. Real failures (invalid config,
// a scoring panic, a checkpoint write error) are errors.
func Mine(ctx context.Context, s *Scorer, cfg MinerConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	seeds := cfg.Seeds
	if seeds == nil {
		seeds = s.ObservedCells(1)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: no seed cells")
	}
	fp := cfg.fingerprint(s, seeds)

	var stats MinerStats
	m := newMinerMetrics(cfg.Metrics)
	defer m.total.Start()()

	start := time.Now() //trajlint:allow determinism -- feeds Progress.Elapsed (UI) and the opt-in MaxWallTime bound; never part of the mined result otherwise
	tl := cfg.Tracer.Local()
	var runSpan *trace.Span
	if tl != nil {
		attrs := trace.Attrs{"k": cfg.K, "seeds": len(seeds)}
		if id := trace.RequestIDFrom(ctx); id != "" {
			attrs["request_id"] = id
		}
		runSpan = tl.Span("miner.run", attrs)
	}
	defer runSpan.End()

	// interrupted reports why the run should stop early, or "".
	interrupted := func() string {
		if ctx.Err() != nil {
			return context.Cause(ctx).Error()
		}
		if cfg.MaxWallTime > 0 && time.Since(start) >= cfg.MaxWallTime { //trajlint:allow determinism -- implements the opt-in MaxWallTime bound
			return fmt.Sprintf("max wall time %v elapsed", cfg.MaxWallTime)
		}
		return ""
	}

	// Q and the evaluation memo. The memo survives pruning so a pattern
	// regenerated in a later iteration is never rescored.
	q := make(map[string]*entry, len(seeds))
	evaluated := make(map[string]float64, len(seeds))

	insert := func(p Pattern, nm float64) {
		k := p.Key()
		if _, ok := q[k]; !ok {
			q[k] = &entry{pat: p, key: k, nm: nm}
		}
	}

	var prevHigh, prevAns map[string]struct{}
	lastFresh := -1   // fresh candidates evaluated in the previous iteration
	startIter := 0    // first grow iteration to execute
	resumeBaseNM := 0 // NM evaluations done before the resumed-from snapshot
	if ck := cfg.Resume; ck != nil {
		if ck.Fingerprint != fp {
			return nil, &FingerprintMismatchError{Checkpoint: ck.Fingerprint, Run: fp}
		}
		var err error
		q, evaluated, prevHigh, prevAns, err = ck.restore()
		if err != nil {
			return nil, err
		}
		lastFresh = ck.LastFresh
		stats = ck.Stats
		startIter = ck.Iteration
		resumeBaseNM = ck.Stats.NMEvaluations
		if tl != nil {
			tl.Event("miner.resume", trace.Attrs{"iter": startIter, "q": len(q)})
		}
	} else {
		// Seed with singular patterns.
		seedPats := make([]Pattern, len(seeds))
		for i, c := range seeds {
			seedPats[i] = Pattern{c}
		}
		nms, err := s.ScoreAll(ctx, seedPats)
		if err != nil {
			var pe *ScorePanicError
			if errors.As(err, &pe) {
				return nil, err
			}
			// Cancelled before any miner state exists: the empty answer
			// is the only valid partial result.
			m.termInterrupt.Inc()
			return &Result{Stats: stats, Interrupted: true, InterruptReason: interrupted()}, nil
		}
		for i, nm := range nms {
			evaluated[seedPats[i].Key()] = nm
			insert(seedPats[i], nm)
		}
		stats.Candidates += len(seedPats)
		m.seeds.Add(int64(len(seedPats)))
	}

	// saveCk flushes a boundary snapshot: iter is the next iteration to
	// execute. A failed checkpoint write is a hard error — continuing
	// would let a crash lose far more work than the caller asked us to
	// protect.
	saveCk := func(iter int) error {
		cks := stats
		cks.NMEvaluations = resumeBaseNM + s.NMEvaluations()
		snap := snapshot(fp, iter, lastFresh, cks, q, evaluated, prevHigh, prevAns)
		if err := SaveCheckpoint(cfg.CheckpointFS, cfg.CheckpointPath, snap); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
		m.checkpoints.Inc()
		if tl != nil {
			tl.Event("miner.checkpoint", trace.Attrs{"iter": iter, "q": len(q)})
		}
		return nil
	}

	terminated := false
	interruptReason := ""
	for iter := startIter; iter < cfg.MaxIters; iter++ {
		// Interrupt and checkpoint only at iteration boundaries: the
		// in-memory state here is exactly what a resumed run needs to
		// replay the rest of the search deterministically.
		if reason := interrupted(); reason != "" {
			interruptReason = reason
			if cfg.CheckpointPath != "" && iter != startIter {
				if err := saveCk(iter); err != nil {
					return nil, err
				}
			}
			break
		}
		if cfg.CheckpointPath != "" && iter != startIter && (iter-startIter)%cfg.CheckpointEvery == 0 {
			if err := saveCk(iter); err != nil {
				return nil, err
			}
		}
		stats.Iterations = iter + 1
		m.iterations.Inc()
		stopIter := m.iteration.Start()
		var iterSpan *trace.Span
		if tl != nil {
			iterSpan = tl.Span("miner.iteration", trace.Attrs{"iter": iter + 1})
		}

		lab := label(q, cfg.K, cfg.MinLen, cfg.MaxHigh)
		m.highCapped.Add(int64(lab.capped))
		m.highSize.Set(int64(len(lab.high)))
		m.lowSize.Set(int64(len(q) - len(lab.high)))
		m.ansSize.Set(int64(len(lab.ansKey)))

		// Termination: the high set and the answer set did not change
		// during the last iteration, and the search is saturated — the
		// answer holds K patterns, or the last iteration produced no new
		// candidates at all. (Without the saturation condition the
		// MinLen variant would stop before any long pattern exists: the
		// top-K singulars stabilize immediately because concatenation
		// never raises NM above its best part.)
		stable := prevHigh != nil &&
			sameKeySet(prevHigh, lab.highKey) &&
			sameKeySet(prevAns, lab.ansKey)
		if stable && (len(lab.ansKey) >= cfg.K || lastFresh == 0) {
			if len(lab.ansKey) >= cfg.K {
				m.termStable.Inc()
			} else {
				m.termDry.Inc()
			}
			terminated = true
			iterSpan.Attr("q", len(q)).Attr("high", len(lab.high)).Attr("terminated", true).End()
			stopIter()
			break
		}
		prevHigh, prevAns = lab.highKey, lab.ansKey

		// Candidate generation: extend every high pattern with every
		// pattern in Q, on both sides.
		all := make([]*entry, 0, len(q))
		for _, e := range q {
			all = append(all, e)
		}
		sortEntries(all)

		var fresh []Pattern
		seen := make(map[string]struct{})
		propose := func(p Pattern) {
			if len(p) > cfg.MaxLen {
				return
			}
			k := p.Key()
			if _, ok := q[k]; ok {
				return
			}
			if _, ok := seen[k]; ok {
				return
			}
			seen[k] = struct{}{}
			if nm, ok := evaluated[k]; ok {
				insert(p, nm) // re-admit a previously pruned pattern
				m.readmitted.Inc()
				if tl != nil {
					tl.Event("miner.candidate.readmitted", trace.Attrs{"pattern": k, "nm": nm, "iter": iter + 1})
				}
				return
			}
			fresh = append(fresh, p)
		}
		for _, h := range lab.high {
			for _, e := range all {
				propose(h.pat.Concat(e.pat))
				propose(e.pat.Concat(h.pat))
			}
		}

		lastFresh = len(fresh)
		if len(fresh) > 0 {
			nms, err := s.ScoreAll(ctx, fresh)
			if err != nil {
				var pe *ScorePanicError
				if errors.As(err, &pe) {
					iterSpan.Attr("error", pe.Error()).End()
					stopIter()
					return nil, err
				}
				// Cancelled mid-iteration. Q already absorbed this
				// iteration's readmissions but that is still a valid
				// pattern set for a best-so-far answer; the last
				// boundary checkpoint (if any) remains the resume
				// point, so resuming replays this iteration in full.
				interruptReason = interrupted()
				iterSpan.Attr("interrupted", true).End()
				stopIter()
				break
			}
			for i, p := range fresh {
				evaluated[p.Key()] = nms[i]
				insert(p, nms[i])
			}
			stats.Candidates += len(fresh)
			m.fresh.Add(int64(len(fresh)))
			if tl != nil {
				for i, p := range fresh {
					tl.Event("miner.candidate.admitted", trace.Attrs{"pattern": p.Key(), "nm": nms[i], "iter": iter + 1})
				}
			}
		}

		if len(q) > stats.MaxQ {
			stats.MaxQ = len(q)
		}
		m.qPeak.SetMax(int64(len(q)))

		// Re-label with the new candidates, then prune: keep high and
		// answer patterns, and low patterns satisfying the 1-extension
		// property with respect to the new high set (Definition 5 /
		// Lemma 1), up to the MaxLowQ cap.
		newLab := label(q, cfg.K, cfg.MinLen, cfg.MaxHigh)
		m.highCapped.Add(int64(newLab.capped))
		m.highSize.Set(int64(len(newLab.high)))
		m.ansSize.Set(int64(len(newLab.ansKey)))
		protected := func(k string) bool {
			if _, ok := newLab.highKey[k]; ok {
				return true
			}
			_, ok := newLab.ansKey[k]
			return ok
		}
		if !cfg.DisablePrune {
			for k, e := range q {
				if protected(k) || len(e.pat) == 1 {
					continue
				}
				if isOneExtension(e.pat, newLab.highKey) {
					continue
				}
				delete(q, k)
				stats.Pruned++
				m.prunedExt.Inc()
				if tl != nil {
					tl.Event("miner.candidate.pruned", trace.Attrs{"pattern": k, "nm": e.nm, "reason": "extension", "iter": iter + 1})
				}
			}
		}
		if cfg.MaxLowQ > 0 {
			var lows []*entry
			for k, e := range q {
				if !protected(k) && len(e.pat) > 1 {
					lows = append(lows, e)
				}
			}
			if len(lows) > cfg.MaxLowQ {
				sortEntries(lows)
				for _, e := range lows[cfg.MaxLowQ:] {
					delete(q, e.key)
					stats.LowCapped++
					m.prunedCap.Inc()
					if tl != nil {
						tl.Event("miner.candidate.pruned", trace.Attrs{"pattern": e.key, "nm": e.nm, "reason": "lowcap", "iter": iter + 1})
					}
				}
			}
		}
		m.lowSize.Set(int64(len(q) - len(newLab.high)))
		iterSpan.Attr("q", len(q)).Attr("high", len(newLab.high)).Attr("fresh", lastFresh).End()
		stopIter()
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Iteration:  iter + 1,
				MaxIters:   cfg.MaxIters,
				QSize:      len(q),
				HighSize:   len(newLab.high),
				AnswerSize: len(newLab.ansKey),
				K:          cfg.K,
				Candidates: stats.Candidates,
				Elapsed:    time.Since(start), //trajlint:allow determinism -- Progress.Elapsed is UI feedback, not mined output
			})
		}
	}
	switch {
	case interruptReason != "":
		m.termInterrupt.Inc()
	case !terminated:
		m.termMaxIter.Inc()
	}
	m.qFinal.Set(int64(len(q)))
	m.retained.Add(int64(len(q)))
	runSpan.Attr("iterations", stats.Iterations).Attr("q_final", len(q))

	stats.NMEvaluations = resumeBaseNM + s.NMEvaluations()
	res := &Result{Patterns: topK(q, cfg.K, cfg.MinLen), Stats: stats}
	if cfg.CaptureFinalState {
		res.FinalState = snapshot(fp, stats.Iterations, lastFresh, stats, q, evaluated, prevHigh, prevAns)
	}
	if interruptReason != "" {
		res.Interrupted = true
		res.InterruptReason = interruptReason
		runSpan.Attr("interrupted", interruptReason)
	}
	return res, nil
}

// label computes the current high set and answer set of Q. The high
// threshold ω is the Kth largest NM over all patterns (-Inf when Q holds
// fewer than K), the high set is capped at maxHigh entries (ties at ω can
// otherwise flood it), and the answer set is the top-K patterns of length
// >= minLen, which are always marked high as well so they keep extending.
func label(q map[string]*entry, k, minLen, maxHigh int) labeling {
	all := make([]*entry, 0, len(q))
	for _, e := range q {
		all = append(all, e)
	}
	sortEntries(all)

	omega := math.Inf(-1)
	if len(all) >= k {
		omega = all[k-1].nm
	}

	lab := labeling{
		highKey: make(map[string]struct{}),
		ansKey:  make(map[string]struct{}),
	}
	for _, e := range all {
		if e.nm >= omega {
			lab.high = append(lab.high, e)
			lab.highKey[e.key] = struct{}{}
		}
	}
	if maxHigh > 0 && len(lab.high) > maxHigh {
		lab.capped = len(lab.high) - maxHigh
		for _, e := range lab.high[maxHigh:] {
			delete(lab.highKey, e.key)
		}
		lab.high = lab.high[:maxHigh]
	}
	// Answer set: the running top-K result. For minLen == 1 it is simply
	// the top-K of Q (a subset of the high set); for the Section 5
	// variant it is the top-K among patterns of length >= minLen, which
	// are additionally marked high so they keep extending.
	count := 0
	for _, e := range all {
		if len(e.pat) >= minLen {
			lab.ansKey[e.key] = struct{}{}
			if _, ok := lab.highKey[e.key]; !ok {
				lab.high = append(lab.high, e)
				lab.highKey[e.key] = struct{}{}
			}
			count++
			if count == k {
				break
			}
		}
	}
	sortEntries(lab.high)
	return lab
}

// isOneExtension reports whether removing the first or last position of p
// yields a pattern in the high set (Definition 5; 1-patterns always
// satisfy the property and are handled by the caller).
func isOneExtension(p Pattern, high map[string]struct{}) bool {
	if _, ok := high[p.DropFirst().Key()]; ok {
		return true
	}
	_, ok := high[p.DropLast().Key()]
	return ok
}

// sameKeySet reports whether two key sets are identical.
func sameKeySet(a, b map[string]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// sortEntries orders entries by NM descending, then length ascending, then
// key, for fully deterministic iteration.
func sortEntries(es []*entry) {
	sort.Slice(es, func(i, j int) bool {
		//trajlint:allow floatcmp -- comparator tie-break: exact inequality is what makes the order total and deterministic
		if es[i].nm != es[j].nm {
			return es[i].nm > es[j].nm
		}
		if len(es[i].pat) != len(es[j].pat) {
			return len(es[i].pat) < len(es[j].pat)
		}
		return es[i].key < es[j].key
	})
}

// topK extracts the final answer from Q: the k best patterns of length >=
// minLen. If Q holds fewer than k eligible patterns, all of them are
// returned.
func topK(q map[string]*entry, k, minLen int) []ScoredPattern {
	var es []*entry
	for _, e := range q {
		if len(e.pat) >= minLen {
			es = append(es, e)
		}
	}
	sortEntries(es)
	if len(es) > k {
		es = es[:k]
	}
	out := make([]ScoredPattern, len(es))
	for i, e := range es {
		out[i] = ScoredPattern{Pattern: e.pat, NM: e.nm}
	}
	return out
}
