package core

import (
	"context"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"trajpattern/internal/grid"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// testScorer builds a scorer over the given dataset on an n×n unit-square
// grid with δ equal to the cell size.
func testScorer(t *testing.T, data traj.Dataset, n int) *Scorer {
	t.Helper()
	g := grid.NewSquare(n)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomDataset generates a deterministic random dataset inside the unit
// square.
func randomDataset(seed uint64, nTraj, length int, sigma float64) traj.Dataset {
	rng := stat.NewRNG(seed)
	d := make(traj.Dataset, nTraj)
	for i := range d {
		tr := make(traj.Trajectory, length)
		for j := range tr {
			tr[j] = traj.P(rng.Float64(), rng.Float64(), sigma)
		}
		d[i] = tr
	}
	return d
}

func TestNewScorerValidation(t *testing.T) {
	g := grid.NewSquare(4)
	good := traj.Dataset{{traj.P(0.5, 0.5, 0.1)}}
	if _, err := NewScorer(good, Config{Grid: nil, Delta: 0.1}); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := NewScorer(good, Config{Grid: g, Delta: 0}); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := NewScorer(good, Config{Grid: g, Delta: 0.1, LogFloor: 1}); err == nil {
		t.Error("positive log floor accepted")
	}
	if _, err := NewScorer(nil, Config{Grid: g, Delta: 0.1}); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := traj.Dataset{{traj.P(0, 0, -1)}}
	if _, err := NewScorer(bad, Config{Grid: g, Delta: 0.1}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestNMSingularAgainstDirectComputation(t *testing.T) {
	// One trajectory with one snapshot: NM of a singular pattern is just
	// log Prob(l, σ, cell, δ).
	data := traj.Dataset{{traj.P(0.55, 0.55, 0.1)}}
	s := testScorer(t, data, 10)
	cell := s.Config().Grid.IndexOf(data[0][0].Mean)
	c := s.Config().Grid.CenterAt(cell)
	want := math.Log(stat.BoxProb2D(0.55, 0.55, 0.1, c.X, c.Y, s.Config().Delta))
	if got := s.NM(Pattern{cell}); math.Abs(got-want) > 1e-12 {
		t.Errorf("NM = %v, want %v", got, want)
	}
}

func TestNMWindowMaximization(t *testing.T) {
	// Pattern of two cells matching exactly the tail of the trajectory;
	// NM(P,T) must pick the best window, not the first.
	g := grid.NewSquare(4)
	a := g.CenterAt(5)  // cell (1,1)
	b := g.CenterAt(10) // cell (2,2)
	far := g.CenterAt(0)
	data := traj.Dataset{{
		{Mean: far, Sigma: 0.05},
		{Mean: far, Sigma: 0.05},
		{Mean: a, Sigma: 0.05},
		{Mean: b, Sigma: 0.05},
	}}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{5, 10}
	got := s.NMTrajectory(p, 0)
	// The perfect window: both positions centered on their cells.
	lp := math.Log(stat.BoxProb2D(a.X, a.Y, 0.05, a.X, a.Y, g.CellWidth()))
	want := lp // average of two identical log-probs
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("windowed NM = %v, want %v", got, want)
	}
}

func TestNMShortTrajectoryUsesFloor(t *testing.T) {
	data := traj.Dataset{{traj.P(0.5, 0.5, 0.1)}} // length 1
	s := testScorer(t, data, 4)
	p := Pattern{0, 1, 2} // length 3 > trajectory
	got := s.NM(p)
	if got != s.Config().LogFloor {
		t.Errorf("short-trajectory NM = %v, want floor %v", got, s.Config().LogFloor)
	}
}

func TestMatchApriori(t *testing.T) {
	// The match measure keeps the Apriori property: extending a pattern
	// never increases its match (Section 3.3).
	data := randomDataset(1, 5, 20, 0.08)
	s := testScorer(t, data, 5)
	rng := stat.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		p := make(Pattern, n)
		for i := range p {
			p[i] = rng.Intn(25)
		}
		ext := p.Concat(Pattern{rng.Intn(25)})
		if s.Match(ext) > s.Match(p)+1e-12 {
			t.Fatalf("Apriori violated: match(%v)=%v > match(%v)=%v",
				ext, s.Match(ext), p, s.Match(p))
		}
	}
}

func TestNMAprioriCounterexample(t *testing.T) {
	// The paper's motivation: NM does NOT obey Apriori. Construct a case
	// where extending a pattern increases NM: a weak singular followed by
	// a strong singular has higher average log-prob than the weak one
	// alone.
	g := grid.NewSquare(4)
	weak := g.CenterAt(5)
	strong := g.CenterAt(10)
	data := traj.Dataset{{
		{Mean: weak.Add(weak.Sub(g.CenterAt(10)).Unit().Scale(0.12)), Sigma: 0.05}, // offset from cell 5
		{Mean: strong, Sigma: 0.02}, // dead center of cell 10
	}}
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	sub := Pattern{5}
	super := Pattern{5, 10}
	if !(s.NM(super) > s.NM(sub)) {
		t.Errorf("expected NM(super)=%v > NM(sub)=%v (Apriori must fail for NM)",
			s.NM(super), s.NM(sub))
	}
}

func TestMinMaxProperty(t *testing.T) {
	// Property 1: NM(P'·P'') <= max(NM(P'), NM(P'')) on random data and
	// random splits.
	data := randomDataset(3, 4, 15, 0.1)
	s := testScorer(t, data, 4)
	rng := stat.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		p := make(Pattern, n)
		for i := range p {
			p[i] = rng.Intn(16)
		}
		cut := 1 + rng.Intn(n-1)
		left, right := p[:cut], p[cut:]
		nm := s.NM(p)
		bound := math.Max(s.NM(left), s.NM(right))
		if nm > bound+1e-9 {
			t.Fatalf("min-max violated: NM(%v)=%v > max(%v, %v)=%v",
				p, nm, left, right, bound)
		}
	}
}

func TestScoreAllMatchesIndividual(t *testing.T) {
	data := randomDataset(5, 6, 12, 0.1)
	s := testScorer(t, data, 4)
	patterns := []Pattern{{0}, {5, 6}, {1, 2, 3}, {15}, {8, 8}}
	batch, err := s.ScoreAll(context.Background(), patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		if ind := s.NM(p); math.Abs(batch[i]-ind) > 1e-12 {
			t.Errorf("ScoreAll[%d]=%v != NM=%v", i, batch[i], ind)
		}
	}
}

func TestCacheTransparency(t *testing.T) {
	data := randomDataset(6, 3, 10, 0.1)
	g := grid.NewSquare(4)
	withCache, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{3, 7, 11}
	if a, b := withCache.NM(p), noCache.NM(p); a != b {
		t.Errorf("cache changed result: %v vs %v", a, b)
	}
	if withCache.CacheSize() == 0 {
		t.Error("cache not populated")
	}
	if noCache.CacheSize() != 0 {
		t.Error("disabled cache populated")
	}
}

func TestProbModesBothValid(t *testing.T) {
	data := randomDataset(7, 3, 10, 0.1)
	g := grid.NewSquare(4)
	box, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), Mode: ProbDisk})
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{5, 6}
	bNM, dNM := box.NM(p), disk.NM(p)
	// Disk of radius δ is contained in the box of half-width δ, so the
	// disk NM is never larger.
	if dNM > bNM+1e-9 {
		t.Errorf("disk NM %v > box NM %v", dNM, bNM)
	}
	// Both are valid finite log values.
	if math.IsNaN(bNM) || math.IsNaN(dNM) || bNM > 0 || dNM > 0 {
		t.Errorf("invalid NM values: box %v disk %v", bNM, dNM)
	}
}

func TestObservedCells(t *testing.T) {
	data := traj.Dataset{{traj.P(0.05, 0.05, 0.01)}} // lower-left cell only
	s := testScorer(t, data, 10)
	cells := s.ObservedCells(0)
	if len(cells) != 1 || cells[0] != 0 {
		t.Errorf("ObservedCells(0) = %v", cells)
	}
	// With one ring: 0 and its 3 corner neighbors.
	cells = s.ObservedCells(1)
	if len(cells) != 4 {
		t.Errorf("ObservedCells(1) = %v", cells)
	}
	if got := s.AllCells(); len(got) != 100 || got[99] != 99 {
		t.Errorf("AllCells = %d cells", len(got))
	}
}

// TestObservedCellsDeterministic is the regression test for the trajlint
// determinism finding in ObservedCells: the base cells were expanded in map
// iteration order. The output must be identical (and sorted) across calls.
func TestObservedCellsDeterministic(t *testing.T) {
	data := traj.Dataset{
		{traj.P(0.05, 0.05, 0.01), traj.P(0.55, 0.55, 0.01), traj.P(0.95, 0.15, 0.01)},
		{traj.P(0.25, 0.85, 0.01), traj.P(0.65, 0.35, 0.01)},
	}
	s := testScorer(t, data, 10)
	first := s.ObservedCells(2)
	if !sort.IntsAreSorted(first) {
		t.Fatalf("ObservedCells not sorted: %v", first)
	}
	for i := 0; i < 10; i++ {
		got := s.ObservedCells(2)
		if len(got) != len(first) {
			t.Fatalf("run %d: %d cells, want %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d differs at %d: %v vs %v", i, j, got, first)
			}
		}
	}
}

func TestBestSingularLogProb(t *testing.T) {
	data := traj.Dataset{
		{traj.P(0.55, 0.55, 0.05), traj.P(0.85, 0.85, 0.05)},
		{traj.P(0.15, 0.15, 0.05)},
	}
	s := testScorer(t, data, 10)
	cells := s.ObservedCells(0)
	best := s.BestSingularLogProb(cells)
	if len(best) != 2 {
		t.Fatalf("len = %d", len(best))
	}
	// Each trajectory's best over its own observed cells must equal its
	// best singular NM.
	for ti := range data {
		var want float64 = math.Inf(-1)
		for _, c := range cells {
			if v := s.NMTrajectory(Pattern{c}, ti); v > want {
				want = v
			}
		}
		if math.Abs(best[ti]-want) > 1e-12 {
			t.Errorf("traj %d: best %v != max singular NM %v", ti, best[ti], want)
		}
	}
}

func TestAppendMatchesRebuild(t *testing.T) {
	base := randomDataset(41, 4, 10, 0.1)
	extra := randomDataset(42, 3, 12, 0.1)
	g := grid.NewSquare(4)
	cfg := Config{Grid: g, Delta: g.CellWidth()}

	inc, err := NewScorer(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the cache before appending so the extension path is exercised.
	p := Pattern{3, 7, 11}
	before := inc.NM(p)
	if err := inc.Append(extra...); err != nil {
		t.Fatal(err)
	}
	after := inc.NM(p)

	combined := append(append(traj.Dataset{}, base...), extra...)
	fresh, err := NewScorer(combined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh.NM(p); math.Abs(after-want) > 1e-12 {
		t.Errorf("incremental NM %v != rebuilt %v", after, want)
	}
	if after == before {
		t.Error("append had no effect on the score")
	}
	// Additivity: the appended trajectories only add (negative) terms.
	if after > before {
		t.Errorf("NM grew after append: %v -> %v", before, after)
	}
	// Per-trajectory scores for the new data match the rebuilt scorer.
	for ti := len(base); ti < len(combined); ti++ {
		if a, b := inc.NMTrajectory(p, ti), fresh.NMTrajectory(p, ti); math.Abs(a-b) > 1e-12 {
			t.Errorf("traj %d: %v vs %v", ti, a, b)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	s := testScorer(t, randomDataset(43, 2, 6, 0.1), 4)
	if err := s.Append(traj.Trajectory{traj.P(0, 0, -1)}); err == nil {
		t.Error("invalid appended trajectory accepted")
	}
	if s.NumTrajectories() != 2 {
		t.Error("failed append mutated the dataset")
	}
}

func TestNMEmptyPatternPanics(t *testing.T) {
	s := testScorer(t, randomDataset(8, 2, 5, 0.1), 4)
	for _, f := range []func(){
		func() { s.NM(nil) },
		func() { s.Match(nil) },
		func() { s.NMTrajectory(nil, 0) },
		func() { s.MatchTrajectory(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty pattern")
				}
			}()
			f()
		}()
	}
}

// Property: NM is always <= 0 (probabilities never exceed 1) and >= floor.
func TestQuickNMBounds(t *testing.T) {
	data := randomDataset(9, 3, 10, 0.1)
	s := testScorer(t, data, 4)
	floor := s.Config().LogFloor * float64(len(data))
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		p := make(Pattern, len(raw))
		for i, v := range raw {
			p[i] = int(v) % 16
		}
		nm := s.NM(p)
		return nm <= 1e-12 && nm >= floor-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (full min-max over random datasets too, not just one fixture).
func TestQuickMinMaxProperty(t *testing.T) {
	f := func(seed uint64, rawP []uint8, cutRaw uint8) bool {
		if len(rawP) < 2 || len(rawP) > 6 {
			return true
		}
		data := randomDataset(seed, 2, 8, 0.15)
		g := grid.NewSquare(3)
		s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
		if err != nil {
			return false
		}
		p := make(Pattern, len(rawP))
		for i, v := range rawP {
			p[i] = int(v) % 9
		}
		cut := 1 + int(cutRaw)%(len(p)-1)
		bound := math.Max(s.NM(p[:cut]), s.NM(p[cut:]))
		return s.NM(p) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
