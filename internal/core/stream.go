package core

import (
	"context"
	"fmt"

	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// This file implements the §4.4 space observation: "it is not necessary to
// load the entire input data set at once since we only need a portion of
// the data set at a time for computing the NM". StreamNM evaluates
// patterns against a dataset that is visited trajectory by trajectory
// through a cursor, holding only one trajectory's probability vectors at a
// time — O(M + L·m) working memory instead of the resident scorer's
// O(G·N·L) cache.

// Cursor yields the trajectories of a dataset one at a time. Next returns
// (nil, nil) after the last trajectory; Reset restarts the iteration. A
// cursor implementation typically streams a JSON-lines file.
//
// Next honours its context: a cursor returns promptly with the context's
// cause once it is cancelled, so a stream evaluation over a huge file can
// be interrupted between records.
type Cursor interface {
	Next(ctx context.Context) (traj.Trajectory, error)
	Reset() error
}

// SliceCursor adapts an in-memory dataset to the Cursor interface.
type SliceCursor struct {
	data traj.Dataset
	pos  int
}

// NewSliceCursor returns a cursor over d.
func NewSliceCursor(d traj.Dataset) *SliceCursor { return &SliceCursor{data: d} }

// Next implements Cursor.
func (c *SliceCursor) Next(ctx context.Context) (traj.Trajectory, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: cursor cancelled: %w", context.Cause(ctx))
	}
	if c.pos >= len(c.data) {
		return nil, nil
	}
	t := c.data[c.pos]
	c.pos++
	return t, nil
}

// Reset implements Cursor.
func (c *SliceCursor) Reset() error {
	c.pos = 0
	return nil
}

// FileCursor streams trajectories from a JSON-lines file without keeping
// previously read trajectories alive. The file descriptor is held only
// while a scan is in flight: Next releases it at end of file and on the
// first read error, Reset releases it before restarting, and Close
// releases it on early abort (a caller that stops mid-scan must call
// Close, or the descriptor lives until the cursor is garbage collected).
type FileCursor struct {
	path string
	r    *traj.Reader
	done bool // EOF or a read error ended the scan; Reset/Close rearm
}

// NewFileCursor returns a cursor over the JSON-lines dataset at path.
func NewFileCursor(path string) *FileCursor {
	return &FileCursor{path: path}
}

// Next implements Cursor. After the last trajectory (or after a read
// error or cancellation) the underlying file is closed and every further
// call returns (nil, nil) until Reset.
func (c *FileCursor) Next(ctx context.Context) (traj.Trajectory, error) {
	if c.done {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		// Cancellation ends the scan like a read error: the descriptor
		// is released now, not at garbage collection.
		c.done = true
		c.release()
		return nil, fmt.Errorf("core: cursor cancelled: %w", context.Cause(ctx))
	}
	if c.r == nil {
		r, err := traj.OpenReader(c.path)
		if err != nil {
			return nil, err
		}
		c.r = r
	}
	t, err := c.r.Next()
	if err != nil {
		c.done = true
		c.release() // the read error is the more useful one to surface
		return nil, err
	}
	if t == nil {
		c.done = true
		if cerr := c.release(); cerr != nil {
			return nil, cerr
		}
	}
	return t, nil
}

// Reset implements Cursor: it closes the current scan so the next call to
// Next reopens the file from the beginning.
func (c *FileCursor) Reset() error {
	c.done = false
	return c.release()
}

// Close releases the file descriptor without rearming the cursor: further
// Next calls return (nil, nil) until Reset. Closing an idle or already
// closed cursor is a no-op, so Close is safe to defer unconditionally.
func (c *FileCursor) Close() error {
	c.done = true
	return c.release()
}

// release closes the open reader, if any.
func (c *FileCursor) release() error {
	if c.r == nil {
		return nil
	}
	err := c.r.Close()
	c.r = nil
	return err
}

// StreamNM computes NM(p) for every pattern in one pass over the cursor,
// holding only the current trajectory in memory. The scoring configuration
// (grid, δ, mode, floor) is taken from cfg, which is validated exactly as
// NewScorer validates it. Results are indexed like patterns.
//
// One pass evaluates all patterns against each trajectory before moving
// on, so the I/O cost is a single scan regardless of len(patterns).
func StreamNM(ctx context.Context, cur Cursor, cfg Config, patterns []Pattern) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("core: empty pattern at index %d", i)
		}
		if err := p.Validate(cfg.Grid); err != nil {
			return nil, fmt.Errorf("core: pattern %d: %w", i, err)
		}
	}
	if err := cur.Reset(); err != nil {
		return nil, err
	}

	// The per-trajectory evaluation reuses the resident scorer on a
	// one-trajectory dataset, so the window scan and probability code
	// paths are shared (and tested) once. Scorer-level metrics (if any)
	// flow through cfg into every per-trajectory scorer and accumulate in
	// the shared registry.
	trajectories := cfg.Metrics.Counter("stream.trajectories")
	cfg.Metrics.Gauge("stream.patterns").Set(int64(len(patterns)))
	defer cfg.Metrics.Timer("stream.time.total").Start()()
	var sp *trace.Span
	if cfg.Tracer != nil {
		sp = cfg.Tracer.Local().Span("stream.pass", trace.Attrs{"patterns": len(patterns)})
	}
	// The tracer must not reach the per-trajectory scorers: each NewScorer
	// would register one buffer per trajectory with the tracer, an
	// unbounded accumulation over a large stream (the whole point of this
	// path). The pass-level span carries the stream's timeline instead.
	cfg.Tracer = nil
	sums := make([]float64, len(patterns))
	n := 0
	defer func() { sp.Attr("trajectories", n).End() }()
	for {
		t, err := cur.Next(ctx)
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		if len(t) == 0 {
			continue
		}
		trajectories.Inc()
		one, err := NewScorer(traj.Dataset{t}, cfg)
		if err != nil {
			return nil, err
		}
		for i, p := range patterns {
			sums[i] += one.NMTrajectory(p, 0)
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	return sums, nil
}
