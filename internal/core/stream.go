package core

import (
	"fmt"

	"trajpattern/internal/traj"
)

// This file implements the §4.4 space observation: "it is not necessary to
// load the entire input data set at once since we only need a portion of
// the data set at a time for computing the NM". StreamNM evaluates
// patterns against a dataset that is visited trajectory by trajectory
// through a cursor, holding only one trajectory's probability vectors at a
// time — O(M + L·m) working memory instead of the resident scorer's
// O(G·N·L) cache.

// Cursor yields the trajectories of a dataset one at a time. Next returns
// (nil, nil) after the last trajectory; Reset restarts the iteration. A
// cursor implementation typically streams a JSON-lines file.
type Cursor interface {
	Next() (traj.Trajectory, error)
	Reset() error
}

// SliceCursor adapts an in-memory dataset to the Cursor interface.
type SliceCursor struct {
	data traj.Dataset
	pos  int
}

// NewSliceCursor returns a cursor over d.
func NewSliceCursor(d traj.Dataset) *SliceCursor { return &SliceCursor{data: d} }

// Next implements Cursor.
func (c *SliceCursor) Next() (traj.Trajectory, error) {
	if c.pos >= len(c.data) {
		return nil, nil
	}
	t := c.data[c.pos]
	c.pos++
	return t, nil
}

// Reset implements Cursor.
func (c *SliceCursor) Reset() error {
	c.pos = 0
	return nil
}

// FileCursor streams trajectories from a JSON-lines file without keeping
// previously read trajectories alive.
type FileCursor struct {
	path string
	r    *traj.Reader
}

// NewFileCursor returns a cursor over the JSON-lines dataset at path.
func NewFileCursor(path string) *FileCursor {
	return &FileCursor{path: path}
}

// Next implements Cursor.
func (c *FileCursor) Next() (traj.Trajectory, error) {
	if c.r == nil {
		r, err := traj.OpenReader(c.path)
		if err != nil {
			return nil, err
		}
		c.r = r
	}
	return c.r.Next()
}

// Reset implements Cursor: it closes the current scan so the next call to
// Next reopens the file from the beginning.
func (c *FileCursor) Reset() error {
	if c.r == nil {
		return nil
	}
	err := c.r.Close()
	c.r = nil
	return err
}

// StreamNM computes NM(p) for every pattern in one pass over the cursor,
// holding only the current trajectory in memory. The scoring configuration
// (grid, δ, mode, floor) is taken from cfg, which is validated exactly as
// NewScorer validates it. Results are indexed like patterns.
//
// One pass evaluates all patterns against each trajectory before moving
// on, so the I/O cost is a single scan regardless of len(patterns).
func StreamNM(cur Cursor, cfg Config, patterns []Pattern) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("core: empty pattern at index %d", i)
		}
		if err := p.Validate(cfg.Grid); err != nil {
			return nil, fmt.Errorf("core: pattern %d: %w", i, err)
		}
	}
	if err := cur.Reset(); err != nil {
		return nil, err
	}

	// The per-trajectory evaluation reuses the resident scorer on a
	// one-trajectory dataset, so the window scan and probability code
	// paths are shared (and tested) once. Scorer-level metrics (if any)
	// flow through cfg into every per-trajectory scorer and accumulate in
	// the shared registry.
	trajectories := cfg.Metrics.Counter("stream.trajectories")
	cfg.Metrics.Gauge("stream.patterns").Set(int64(len(patterns)))
	defer cfg.Metrics.Timer("stream.time.total").Start()()
	sums := make([]float64, len(patterns))
	n := 0
	for {
		t, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		if len(t) == 0 {
			continue
		}
		trajectories.Inc()
		one, err := NewScorer(traj.Dataset{t}, cfg)
		if err != nil {
			return nil, err
		}
		for i, p := range patterns {
			sums[i] += one.NMTrajectory(p, 0)
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	return sums, nil
}
