package core

import (
	"context"
	"reflect"
	"testing"

	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// traceCounts tallies a tracer's records by name.
func traceCounts(tr *trace.Tracer) map[string]int {
	out := map[string]int{}
	for _, e := range tr.Events() {
		out[e.Name]++
	}
	return out
}

// TestMinerTraceConsistency cross-checks the trace journal against the obs
// counters of the same run: every admitted/readmitted/pruned candidate
// event matches its counter, every iteration has a span, and the journal
// is deterministic (same counts on a re-run over the same data).
func TestMinerTraceConsistency(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(17, g, []int{0, 4, 8}, 6, 3, 0.05, 0.02)

	run := func() (*Result, map[string]int, obs.Snapshot) {
		reg := obs.New()
		tr := trace.New()
		s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), Metrics: reg, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mine(context.Background(), s, MinerConfig{K: 3, MaxLen: 4, MaxLowQ: 12, Metrics: reg, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return res, traceCounts(tr), reg.Snapshot()
	}

	res, counts, snap := run()
	if got := counts["miner.run"]; got != 1 {
		t.Errorf("miner.run spans = %d, want 1", got)
	}
	if got := counts["miner.iteration"]; got != res.Stats.Iterations {
		t.Errorf("miner.iteration spans = %d, stats say %d iterations", got, res.Stats.Iterations)
	}
	if got := counts["miner.candidate.admitted"]; got != int(snap.Counter("miner.candidates.fresh")) {
		t.Errorf("admitted events = %d, counter says %d", got, snap.Counter("miner.candidates.fresh"))
	}
	if got := counts["miner.candidate.readmitted"]; got != int(snap.Counter("miner.candidates.readmitted")) {
		t.Errorf("readmitted events = %d, counter says %d", got, snap.Counter("miner.candidates.readmitted"))
	}
	pruned := snap.Counter("miner.pruned.extension") + snap.Counter("miner.pruned.lowcap")
	if got := counts["miner.candidate.pruned"]; got != int(pruned) {
		t.Errorf("pruned events = %d, counters say %d", got, pruned)
	}
	if got := counts["scorer.batch"]; got != int(snap.Counter("scorer.batches")) {
		t.Errorf("scorer.batch spans = %d, counter says %d", got, snap.Counter("scorer.batches"))
	}
	if counts["miner.candidate.admitted"] == 0 || counts["miner.candidate.pruned"] == 0 {
		t.Fatalf("workload too small to exercise tracing: %v", counts)
	}

	// Deterministic event counts under a fixed dataset/config.
	res2, counts2, _ := run()
	if !reflect.DeepEqual(counts, counts2) {
		t.Errorf("trace counts differ across identical runs:\n%v\n%v", counts, counts2)
	}

	// Tracing must not change the mined result.
	s3, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Mine(context.Background(), s3, MinerConfig{K: 3, MaxLen: 4, MaxLowQ: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*Result{res2, res3} {
		if !reflect.DeepEqual(res.Patterns, other.Patterns) {
			t.Error("tracing changed the mined patterns")
		}
	}
}

// TestMinerTraceAttrs spot-checks the journal payloads: candidate events
// carry a parseable pattern key, an NM value and the 1-based iteration.
func TestMinerTraceAttrs(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(9, g, []int{0, 4}, 5, 3, 0.05, 0.02)
	tr := trace.New()
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth(), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(context.Background(), s, MinerConfig{K: 2, MaxLen: 3, MaxLowQ: 8, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range tr.Events() {
		switch e.Name {
		case "miner.candidate.admitted", "miner.candidate.readmitted", "miner.candidate.pruned":
			key, ok := e.Attrs["pattern"].(string)
			if !ok {
				t.Fatalf("%s event without pattern key: %v", e.Name, e.Attrs)
			}
			if _, err := ParsePattern(key); err != nil {
				t.Errorf("%s pattern %q does not parse: %v", e.Name, key, err)
			}
			if _, ok := e.Attrs["nm"].(float64); !ok {
				t.Errorf("%s event without nm: %v", e.Name, e.Attrs)
			}
			if iter, ok := e.Attrs["iter"].(int); !ok || iter < 1 {
				t.Errorf("%s event with bad iter: %v", e.Name, e.Attrs)
			}
			if e.Name == "miner.candidate.pruned" {
				if r := e.Attrs["reason"]; r != "extension" && r != "lowcap" {
					t.Errorf("pruned event with reason %v", r)
				}
			}
			checked++
		case "miner.iteration":
			if e.Dur < 0 {
				t.Errorf("iteration span with negative duration")
			}
		}
	}
	if checked == 0 {
		t.Fatal("no candidate events recorded")
	}
}

// TestStreamNMTrace checks the streaming path records one pass span with
// the trajectory count, and that per-trajectory scorers do not register
// tracer buffers (the Local count must stay constant per pass).
func TestStreamNMTrace(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(5, g, []int{0, 4}, 4, 2, 0.05, 0.02)
	tr := trace.New()
	cfg := Config{Grid: g, Delta: g.CellWidth(), Tracer: tr}
	if _, err := StreamNM(context.Background(), NewSliceCursor(data), cfg, []Pattern{{0, 4}, {4, 8}}); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("got %d trace records, want exactly 1 stream.pass span (no per-trajectory leakage): %v", len(events), events)
	}
	e := events[0]
	if e.Name != "stream.pass" || e.Kind != trace.KindSpan {
		t.Fatalf("record = %+v, want a stream.pass span", e)
	}
	if got := e.Attrs["trajectories"]; got != len(data) {
		t.Errorf("stream.pass trajectories attr = %v, want %d", got, len(data))
	}
	if got := e.Attrs["patterns"]; got != 2 {
		t.Errorf("stream.pass patterns attr = %v, want 2", got)
	}
}

// TestMinerProgress checks the OnProgress callback fires once per
// iteration with monotonically consistent state.
func TestMinerProgress(t *testing.T) {
	g := grid.NewSquare(3)
	data := patternedDatasetPts(9, g, []int{0, 4}, 5, 3, 0.05, 0.02)
	s, err := NewScorer(data, Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	var updates []Progress
	res, err := Mine(context.Background(), s, MinerConfig{K: 2, MaxLen: 3, MaxLowQ: 8, OnProgress: func(p Progress) {
		updates = append(updates, p)
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The final iteration only runs the termination test, which fires no
	// progress update, so len(updates) is Iterations or Iterations-1.
	if len(updates) == 0 || len(updates) > res.Stats.Iterations {
		t.Fatalf("got %d progress updates for %d iterations", len(updates), res.Stats.Iterations)
	}
	for i, p := range updates {
		if p.Iteration != i+1 {
			t.Errorf("update %d has Iteration %d", i, p.Iteration)
		}
		if p.MaxIters != DefaultMaxIters || p.K != 2 {
			t.Errorf("update %d carries wrong config: %+v", i, p)
		}
		if p.QSize <= 0 || p.Candidates <= 0 {
			t.Errorf("update %d has empty state: %+v", i, p)
		}
		if i > 0 && p.Candidates < updates[i-1].Candidates {
			t.Errorf("Candidates went backwards at update %d", i)
		}
		if p.AnswerSize > p.K {
			t.Errorf("update %d AnswerSize %d > K", i, p.AnswerSize)
		}
	}
}

// TestDiscoverGroupsTraced checks the clustering span and that the traced
// variant returns the same groups as the plain one.
func TestDiscoverGroupsTraced(t *testing.T) {
	g := grid.NewSquare(4)
	patterns := []Pattern{{0, 1}, {0, 2}, {5, 6}, {10, 11, 12}}
	gamma := 10 * g.CellWidth()
	plain, err := DiscoverGroups(patterns, g, gamma)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	traced, err := DiscoverGroupsTraced(patterns, g, gamma, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Error("traced grouping differs from plain grouping")
	}
	events := tr.Events()
	if len(events) != 1 || events[0].Name != "groups.cluster" {
		t.Fatalf("trace records = %v, want one groups.cluster span", events)
	}
	if got := events[0].Attrs["groups"]; got != len(traced) {
		t.Errorf("groups attr = %v, want %d", got, len(traced))
	}
	if got := events[0].Attrs["patterns"]; got != len(patterns) {
		t.Errorf("patterns attr = %v, want %d", got, len(patterns))
	}
}
