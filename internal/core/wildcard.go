package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Section 5 extensions: patterns with wild-card
// ("don't care") positions and gap patterns with a variable number of
// consecutive wild cards, whose NM is computed by dynamic programming.
//
// A wild-card position matches any location with probability 1 and is not
// counted in the normalization length m, so adding wild cards can never
// inflate a pattern's NM by itself — it only allows specified positions to
// align with better windows.

// Wildcard is the cell value representing the "*" don't-care position.
const Wildcard = -1

// WildPattern is a pattern that may contain Wildcard positions. At least
// one position must be specified.
type WildPattern []int

// SpecifiedLen returns the number of non-wildcard positions, the
// normalization length.
func (p WildPattern) SpecifiedLen() int {
	n := 0
	for _, c := range p {
		if c != Wildcard {
			n++
		}
	}
	return n
}

// MaxConsecutiveWildcards returns the longest run of Wildcard positions,
// the quantity the paper bounds with the parameter d.
func (p WildPattern) MaxConsecutiveWildcards() int {
	best, run := 0, 0
	for _, c := range p {
		if c == Wildcard {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// String renders the pattern with "*" for wild cards, e.g. "3,*,*,7".
func (p WildPattern) String() string {
	var b strings.Builder
	for i, c := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		if c == Wildcard {
			b.WriteByte('*')
		} else {
			b.WriteString(strconv.Itoa(c))
		}
	}
	return b.String()
}

func (p WildPattern) validate() error {
	if p.SpecifiedLen() == 0 {
		return fmt.Errorf("core: wild pattern %q has no specified positions", p.String())
	}
	if len(p) > 0 && (p[0] == Wildcard || p[len(p)-1] == Wildcard) {
		return fmt.Errorf("core: wild pattern %q begins or ends with a wildcard (trim it: boundary wildcards are vacuous)", p.String())
	}
	return nil
}

// NMWild returns the normalized match of a wild-card pattern: the window
// scan treats wildcard positions as probability 1 (log 0 contribution) and
// normalizes by the number of specified positions. Boundary wildcards are
// rejected because they never change the score.
func (s *Scorer) NMWild(p WildPattern) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	spec := p.SpecifiedLen()
	vecs := make([][]float64, len(p))
	for j, cell := range p {
		if cell != Wildcard {
			vecs[j] = s.cellLogProbs(cell)
		}
	}
	var total float64
	m := len(p)
	for ti := range s.data {
		start, end := s.offsets[ti], s.offsets[ti+1]
		if end-start < m {
			total += s.cfg.LogFloor
			continue
		}
		best := math.Inf(-1)
		for w := start; w+m <= end; w++ {
			var sum float64
			for j := 0; j < m; j++ {
				if vecs[j] != nil {
					sum += vecs[j][w+j]
				}
			}
			if sum > best {
				best = sum
			}
		}
		total += best / float64(spec)
	}
	return total, nil
}

// GapPattern is a pattern whose fixed segments are separated by variable
// gaps: between Segments[i] and Segments[i+1] the trajectory may contain
// between MinGap[i] and MaxGap[i] snapshots that are not constrained (a
// variable run of "*"). len(MinGap) == len(MaxGap) == len(Segments)-1.
type GapPattern struct {
	Segments []Pattern
	MinGap   []int
	MaxGap   []int
}

// SpecifiedLen returns the total number of specified positions.
func (p GapPattern) SpecifiedLen() int {
	n := 0
	for _, seg := range p.Segments {
		n += len(seg)
	}
	return n
}

func (p GapPattern) validate() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("core: gap pattern with no segments")
	}
	for i, seg := range p.Segments {
		if len(seg) == 0 {
			return fmt.Errorf("core: gap pattern segment %d is empty", i)
		}
	}
	if len(p.MinGap) != len(p.Segments)-1 || len(p.MaxGap) != len(p.Segments)-1 {
		return fmt.Errorf("core: gap pattern needs %d gap bounds, got %d/%d",
			len(p.Segments)-1, len(p.MinGap), len(p.MaxGap))
	}
	for i := range p.MinGap {
		if p.MinGap[i] < 0 || p.MaxGap[i] < p.MinGap[i] {
			return fmt.Errorf("core: gap %d has invalid bounds [%d,%d]", i, p.MinGap[i], p.MaxGap[i])
		}
	}
	return nil
}

// minSpan returns the smallest window length the pattern can occupy.
func (p GapPattern) minSpan() int {
	n := p.SpecifiedLen()
	for _, g := range p.MinGap {
		n += g
	}
	return n
}

// NMGap returns the normalized match of a gap pattern via the dynamic
// program the paper sketches: for each trajectory, the best total
// log-probability over all placements of the segments respecting the gap
// bounds, normalized by the number of specified positions; per-trajectory
// values are summed over the dataset.
func (s *Scorer) NMGap(p GapPattern) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	spec := p.SpecifiedLen()
	// Cache segment vectors once.
	segVecs := make([][][]float64, len(p.Segments))
	for i, seg := range p.Segments {
		segVecs[i] = s.vectors(seg)
	}

	var total float64
	for ti := range s.data {
		start, end := s.offsets[ti], s.offsets[ti+1]
		L := end - start
		if L < p.minSpan() {
			total += s.cfg.LogFloor
			continue
		}
		// segScore[i][w] = log-match of segment i anchored at window
		// offset w (within this trajectory).
		segScore := make([][]float64, len(p.Segments))
		for i, seg := range p.Segments {
			m := len(seg)
			scores := make([]float64, L-m+1)
			for w := 0; w+m <= L; w++ {
				var sum float64
				for j := 0; j < m; j++ {
					sum += segVecs[i][j][start+w+j]
				}
				scores[w] = sum
			}
			segScore[i] = scores
		}
		// DP over segments: best[i][w] = best total log-match of segments
		// 0..i with segment i anchored at w.
		prev := segScore[0]
		for i := 1; i < len(p.Segments); i++ {
			segLen := len(p.Segments[i-1])
			cur := make([]float64, len(segScore[i]))
			for w := range cur {
				best := math.Inf(-1)
				// Segment i-1 anchored at u ends at u+segLen-1; the gap is
				// w - (u+segLen), constrained to [MinGap, MaxGap].
				for gap := p.MinGap[i-1]; gap <= p.MaxGap[i-1]; gap++ {
					u := w - gap - segLen
					if u < 0 || u >= len(prev) {
						continue
					}
					if prev[u] > best {
						best = prev[u]
					}
				}
				cur[w] = best + segScore[i][w]
			}
			prev = cur
		}
		best := math.Inf(-1)
		for _, v := range prev {
			if v > best {
				best = v
			}
		}
		if math.IsInf(best, -1) {
			total += s.cfg.LogFloor
			continue
		}
		total += best / float64(spec)
	}
	return total, nil
}

// ScoredWildPattern pairs a wild pattern with its NM value.
type ScoredWildPattern struct {
	Pattern WildPattern
	NM      float64
}

// MineWithWildcards runs the TrajPattern miner and then applies the
// Section 5 wildcard refinement to every mined pattern: up to maxRun
// consecutive "*" symbols are inserted at each internal boundary whenever
// that improves the pattern's NM, and the refined set is re-ranked. The
// result keeps cfg.K entries.
func MineWithWildcards(ctx context.Context, s *Scorer, cfg MinerConfig, maxRun int) ([]ScoredWildPattern, *Result, error) {
	if maxRun < 0 {
		return nil, nil, fmt.Errorf("core: negative wildcard budget %d", maxRun)
	}
	res, err := Mine(ctx, s, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]ScoredWildPattern, 0, len(res.Patterns))
	for _, sp := range res.Patterns {
		wp, nm, err := s.ExpandWithWildcards(sp.Pattern, maxRun)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, ScoredWildPattern{Pattern: wp, NM: nm})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].NM > out[j].NM })
	return out, res, nil
}

// ExpandWithWildcards post-processes a mined pattern per Section 5: it
// tries inserting 1..maxRun wild cards at every internal boundary of p and
// returns the wild pattern with the best NM — which is p itself (as a
// WildPattern) when no insertion helps. This realizes "for each pattern P
// in Q, we can add between 0 and d '*' symbols" as a refinement step.
func (s *Scorer) ExpandWithWildcards(p Pattern, maxRun int) (WildPattern, float64, error) {
	if len(p) == 0 {
		return nil, 0, fmt.Errorf("core: empty pattern")
	}
	if maxRun < 0 {
		return nil, 0, fmt.Errorf("core: negative wildcard budget %d", maxRun)
	}
	best := make(WildPattern, len(p))
	for i, c := range p {
		best[i] = c
	}
	bestNM, err := s.NMWild(best)
	if err != nil {
		return nil, 0, err
	}
	for pos := 1; pos < len(p); pos++ {
		for run := 1; run <= maxRun; run++ {
			cand := make(WildPattern, 0, len(p)+run)
			for i, c := range p {
				if i == pos {
					for r := 0; r < run; r++ {
						cand = append(cand, Wildcard)
					}
				}
				cand = append(cand, c)
			}
			nm, err := s.NMWild(cand)
			if err != nil {
				return nil, 0, err
			}
			if nm > bestNM {
				best, bestNM = cand, nm
			}
		}
	}
	return best, bestNM, nil
}
