// Package core implements the primary contribution of the TrajPattern
// paper: the trajectory-pattern model over imprecise trajectories, the
// match and normalized-match (NM) measures, the min-max property, the
// TrajPattern top-k mining algorithm with 1-extension pruning, the
// pattern-group presentation of the results, and the Section 5 extensions
// (wildcard/gap patterns and the minimum-length variant).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"trajpattern/internal/geom"
	"trajpattern/internal/grid"
)

// Pattern is a trajectory pattern P = (p₁, …, pₘ): an ordered list of grid
// cell indices interpreted as the possible positions of an object at m
// consecutive snapshots (Section 3.3). The empty pattern is invalid.
type Pattern []int

// Len returns the pattern length m. A pattern of length 1 is a singular
// pattern.
func (p Pattern) Len() int { return len(p) }

// Clone returns a copy of p.
func (p Pattern) Clone() Pattern { return append(Pattern(nil), p...) }

// Key returns a canonical string identity for map keys and dedup.
func (p Pattern) Key() string {
	var b strings.Builder
	for i, c := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// ParsePattern is the inverse of Key.
func ParsePattern(key string) (Pattern, error) {
	if key == "" {
		return nil, fmt.Errorf("core: empty pattern key")
	}
	parts := strings.Split(key, ",")
	p := make(Pattern, len(parts))
	for i, s := range parts {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("core: bad pattern key %q: %w", key, err)
		}
		p[i] = v
	}
	return p, nil
}

// Equal reports whether p and q are identical position-for-position.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Concat returns the pattern obtained by appending q to the end of p, the
// candidate-generation operation of Section 4.
func (p Pattern) Concat(q Pattern) Pattern {
	out := make(Pattern, 0, len(p)+len(q))
	out = append(out, p...)
	return append(out, q...)
}

// IsSuperPatternOf reports whether p is a super-pattern of q per
// Definition 3: q appears in p as a contiguous segment. Every pattern is a
// super-pattern of itself; the empty q is not a valid sub-pattern.
func (p Pattern) IsSuperPatternOf(q Pattern) bool {
	if len(q) == 0 || len(q) > len(p) {
		return false
	}
outer:
	for i := 0; i+len(q) <= len(p); i++ {
		for j := range q {
			if p[i+j] != q[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// IsProperSuperPatternOf reports whether p is a proper super-pattern of q
// (a super-pattern that is strictly longer, Definition 3).
func (p Pattern) IsProperSuperPatternOf(q Pattern) bool {
	return len(p) > len(q) && p.IsSuperPatternOf(q)
}

// DropFirst returns p without its first position, or nil for length <= 1.
func (p Pattern) DropFirst() Pattern {
	if len(p) <= 1 {
		return nil
	}
	return p[1:].Clone()
}

// DropLast returns p without its last position, or nil for length <= 1.
func (p Pattern) DropLast() Pattern {
	if len(p) <= 1 {
		return nil
	}
	return p[:len(p)-1].Clone()
}

// Centers maps the pattern's cell indices to cell-center points on g.
func (p Pattern) Centers(g *grid.Grid) []geom.Point {
	out := make([]geom.Point, len(p))
	for i, c := range p {
		out[i] = g.CenterAt(c)
	}
	return out
}

// Validate reports whether every position is a valid cell index of g.
func (p Pattern) Validate(g *grid.Grid) error {
	if len(p) == 0 {
		return fmt.Errorf("core: empty pattern")
	}
	for i, c := range p {
		if c < 0 || c >= g.NumCells() {
			return fmt.Errorf("core: position %d has cell %d outside grid of %d cells", i, c, g.NumCells())
		}
	}
	return nil
}

// Format renders the pattern with cell centers for human consumption,
// e.g. "(0.15,0.25)→(0.25,0.25)".
func (p Pattern) Format(g *grid.Grid) string {
	var b strings.Builder
	for i, c := range p {
		if i > 0 {
			b.WriteString("→")
		}
		pt := g.CenterAt(c)
		fmt.Fprintf(&b, "(%.3g,%.3g)", pt.X, pt.Y)
	}
	return b.String()
}

// ScoredPattern pairs a pattern with its NM value in a dataset.
type ScoredPattern struct {
	Pattern Pattern
	NM      float64
}
