package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"trajpattern/internal/grid"
)

func TestPatternsRoundTrip(t *testing.T) {
	in := []ScoredPattern{
		{Pattern: Pattern{1, 2, 3}, NM: -4.5},
		{Pattern: Pattern{0}, NM: -0.25},
	}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPatterns(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("count = %d", len(out))
	}
	for i := range in {
		if !out[i].Pattern.Equal(in[i].Pattern) || out[i].NM != in[i].NM {
			t.Errorf("entry %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestPatternsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "patterns.json")
	in := []ScoredPattern{{Pattern: Pattern{5, 6}, NM: -1}}
	if err := SavePatterns(path, in); err != nil {
		t.Fatal(err)
	}
	g := grid.NewSquare(4)
	out, err := LoadPatterns(path, func(p Pattern) error { return p.Validate(g) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Pattern.Equal(in[0].Pattern) {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadPatternsValidation(t *testing.T) {
	if _, err := ReadPatterns(strings.NewReader("not json"), nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPatterns(strings.NewReader(`{"version":99,"patterns":[]}`), nil); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadPatterns(strings.NewReader(`{"version":1,"patterns":[{"cells":[],"nm":0}]}`), nil); err == nil {
		t.Error("empty pattern accepted")
	}
	// Validator rejects out-of-grid cells.
	g := grid.NewSquare(2)
	in := `{"version":1,"patterns":[{"cells":[99],"nm":0}]}`
	if _, err := ReadPatterns(strings.NewReader(in), func(p Pattern) error { return p.Validate(g) }); err == nil {
		t.Error("out-of-grid cell accepted")
	}
}

func TestWritePatternsRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePatterns(&buf, []ScoredPattern{{Pattern: nil, NM: 0}}); err == nil {
		t.Error("empty pattern accepted on write")
	}
}

func TestLoadPatternsMissingFile(t *testing.T) {
	if _, err := LoadPatterns(filepath.Join(t.TempDir(), "nope.json"), nil); err == nil {
		t.Error("missing file accepted")
	}
}
