package supervisor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"trajpattern/internal/core/shard"
	"trajpattern/internal/obs"
	"trajpattern/internal/retry"
	"trajpattern/internal/trace"
)

// Supervision defaults.
const (
	// DefaultMaxAttempts is the per-shard attempt budget (first launch
	// plus relaunches).
	DefaultMaxAttempts = 3
	// DefaultGrace is how long a signalled worker gets to checkpoint and
	// exit before SIGKILL.
	DefaultGrace = 3 * time.Second
)

// FailureKind names the way a shard's supervision ended.
type FailureKind string

const (
	// FailCrash: the worker exited non-zero or died on a signal.
	FailCrash FailureKind = "crash"
	// FailStall: the worker was killed because its checkpoint file made
	// no progress within the stall deadline.
	FailStall FailureKind = "stall"
	// FailWallTimeout: the worker was killed at the hard wall timeout.
	FailWallTimeout FailureKind = "wall-timeout"
	// FailFingerprintMismatch: the worker refused its resume checkpoint
	// as belonging to a different problem. Permanent.
	FailFingerprintMismatch FailureKind = "fingerprint-mismatch"
	// FailConfig: the worker rejected its configuration or usage.
	// Permanent.
	FailConfig FailureKind = "config"
	// FailSpawn: the worker process could not be started at all.
	FailSpawn FailureKind = "spawn"
	// FailCancelled: the supervisor's own context ended.
	FailCancelled FailureKind = "cancelled"
)

// ShardFailure is the typed reason a shard gave up: which shard, what
// killed it, how many attempts were burned, and whether retrying could
// ever have helped.
type ShardFailure struct {
	Shard    int
	Kind     FailureKind
	Attempts int
	// Permanent reports that the relaunch loop stopped because retrying
	// cannot succeed (fingerprint mismatch, config rejection,
	// cancellation) rather than because the budget ran out.
	Permanent bool
	Err       error
}

// Error implements error.
func (f *ShardFailure) Error() string {
	if f == nil {
		return "supervisor: shard failure"
	}
	return fmt.Sprintf("shard %d: %s after %d attempt(s): %v", f.Shard, f.Kind, f.Attempts, f.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (f *ShardFailure) Unwrap() error {
	if f == nil {
		return nil
	}
	return f.Err
}

// ShardOutcome is one shard's supervision record.
type ShardOutcome struct {
	Shard    int
	Attempts int
	// Completed reports the shard reached its terminal checkpoint.
	Completed bool
	// Status is the worker's final in-band report, when one parsed.
	Status *WorkerStatus
	// Failure is set iff Completed is false.
	Failure *ShardFailure
}

// RunResult is the whole run's supervision record.
type RunResult struct {
	// Outcomes is indexed by shard.
	Outcomes []ShardOutcome
	// Failures lists the failed shards' reasons in shard order; empty
	// means every shard completed.
	Failures []*ShardFailure
}

// Config shapes one supervised run.
type Config struct {
	// Shards is the shard count; Command is invoked for each index in
	// [0, Shards).
	Shards int
	// CheckpointPrefix is the per-shard checkpoint path prefix the
	// workers write under (shard.CheckpointPath names the files). The
	// stall detector watches these files.
	CheckpointPrefix string
	// Command builds the worker command for one shard. The supervisor
	// owns Stdout (the status line) and Stderr (forwarded to Log) unless
	// the command already set them.
	Command func(shard int) *exec.Cmd
	// Procs caps concurrently running workers. <=0 or >Shards means one
	// worker per shard.
	Procs int
	// MaxAttempts is the per-shard attempt budget (first launch plus
	// relaunches). <=0 means DefaultMaxAttempts.
	MaxAttempts int
	// Stall is the progress deadline: a worker whose checkpoint file
	// mtime does not advance for this long is killed and the attempt
	// counted as a stall. 0 disables hang detection.
	Stall time.Duration
	// StallPoll is the mtime polling cadence; <=0 derives Stall/4
	// clamped to [25ms, 1s].
	StallPoll time.Duration
	// WallTimeout is the per-attempt hard cap; a worker still running
	// after this long is killed. 0 disables it.
	WallTimeout time.Duration
	// Grace is the SIGTERM-to-SIGKILL window. <=0 means DefaultGrace.
	Grace time.Duration
	// Backoff schedules the relaunch delays. Nil uses retry defaults
	// (50ms base doubling to a 2s cap, no jitter).
	Backoff *retry.Policy
	// Metrics, when non-nil, receives shard.attempts / shard.restarts /
	// shard.stalls counters and the shard.restart_latency histogram.
	Metrics *obs.Registry
	// Tracer, when non-nil, records supervise.run / supervise.shard
	// spans.
	Tracer *trace.Tracer
	// Log receives worker stderr and supervision notes. Nil discards.
	Log io.Writer
}

// sup is the resolved runtime state of one Run call.
type sup struct {
	cfg            Config
	maxAttempts    int
	stallPoll      time.Duration
	grace          time.Duration
	log            io.Writer
	tl             *trace.Local
	attempts       *obs.Counter
	restarts       *obs.Counter
	stalls         *obs.Counter
	restartLatency *obs.Histogram
	logMu          sync.Mutex
}

// Run supervises every shard to its terminal checkpoint or its attempt
// budget. Shard failures are reported in the result, never as the error
// — graceful degradation is the caller's to apply; the error covers
// only misconfiguration of the supervision itself.
func Run(ctx context.Context, cfg Config) (*RunResult, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("supervisor: shard count %d", cfg.Shards)
	}
	if cfg.Command == nil {
		return nil, fmt.Errorf("supervisor: nil Command")
	}
	if cfg.Stall > 0 && cfg.CheckpointPrefix == "" {
		return nil, fmt.Errorf("supervisor: stall detection needs a checkpoint prefix to watch")
	}
	s := &sup{
		cfg:            cfg,
		maxAttempts:    cfg.MaxAttempts,
		stallPoll:      cfg.StallPoll,
		grace:          cfg.Grace,
		log:            cfg.Log,
		tl:             cfg.Tracer.Local(),
		attempts:       cfg.Metrics.Counter("shard.attempts"),
		restarts:       cfg.Metrics.Counter("shard.restarts"),
		stalls:         cfg.Metrics.Counter("shard.stalls"),
		restartLatency: cfg.Metrics.Histogram("shard.restart_latency"),
	}
	if s.maxAttempts <= 0 {
		s.maxAttempts = DefaultMaxAttempts
	}
	if s.stallPoll <= 0 {
		s.stallPoll = cfg.Stall / 4
		if s.stallPoll < 25*time.Millisecond {
			s.stallPoll = 25 * time.Millisecond
		}
		if s.stallPoll > time.Second {
			s.stallPoll = time.Second
		}
	}
	if s.grace <= 0 {
		s.grace = DefaultGrace
	}
	if s.log == nil {
		s.log = io.Discard
	}

	procs := cfg.Procs
	if procs <= 0 || procs > cfg.Shards {
		procs = cfg.Shards
	}
	var runSpan *trace.Span
	if s.tl != nil {
		runSpan = s.tl.Span("supervise.run", trace.Attrs{
			"shards": cfg.Shards, "procs": procs, "max_attempts": s.maxAttempts,
		})
	}
	defer runSpan.End()

	sem := make(chan struct{}, procs)
	outcomes := make([]ShardOutcome, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = s.runShard(ctx, i)
		}(i)
	}
	wg.Wait()

	res := &RunResult{Outcomes: outcomes}
	for i := range outcomes {
		if f := outcomes[i].Failure; f != nil {
			res.Failures = append(res.Failures, f)
		}
	}
	runSpan.Attr("failures", len(res.Failures))
	return res, nil
}

// runShard drives one shard's launch/relaunch loop to completion,
// permanent failure, or budget exhaustion.
func (s *sup) runShard(ctx context.Context, i int) ShardOutcome {
	out := ShardOutcome{Shard: i}
	var sp *trace.Span
	if s.tl != nil {
		sp = s.tl.Span("supervise.shard", trace.Attrs{"shard": i})
	}
	defer sp.End()
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		s.attempts.Inc()
		st, fail := s.attempt(ctx, i)
		if st != nil {
			out.Status = st
		}
		if fail == nil {
			out.Completed = true
			sp.Attr("attempts", attempt)
			return out
		}
		fail.Shard = i
		fail.Attempts = attempt
		if fail.Kind == FailStall {
			s.stalls.Inc()
		}
		s.logf("shard %d attempt %d/%d failed (%s): %v", i, attempt, s.maxAttempts, fail.Kind, fail.Err)
		if fail.Permanent || attempt >= s.maxAttempts {
			out.Failure = fail
			sp.Attr("attempts", attempt).Attr("failed", string(fail.Kind))
			return out
		}
		down := time.Now() //trajlint:allow determinism -- restart-latency telemetry only
		if err := s.cfg.Backoff.Wait(ctx, attempt, 0); err != nil {
			out.Failure = &ShardFailure{
				Shard: i, Kind: FailCancelled, Attempts: attempt, Permanent: true, Err: err,
			}
			sp.Attr("attempts", attempt).Attr("failed", string(FailCancelled))
			return out
		}
		s.restarts.Inc()
		s.restartLatency.ObserveDuration(time.Since(down)) //trajlint:allow determinism -- restart-latency telemetry only
		s.logf("shard %d relaunching (attempt %d/%d)", i, attempt+1, s.maxAttempts)
	}
}

// attempt launches one worker process for shard i and watches it to an
// exit, a stall, the wall timeout, or cancellation. A nil failure means
// the shard completed.
func (s *sup) attempt(ctx context.Context, i int) (*WorkerStatus, *ShardFailure) {
	cmd := s.cfg.Command(i)
	if cmd == nil {
		return nil, &ShardFailure{Kind: FailSpawn, Permanent: true,
			Err: errors.New("supervisor: Command built no command")}
	}
	var buf bytes.Buffer
	if cmd.Stdout == nil {
		cmd.Stdout = &buf
	}
	if cmd.Stderr == nil {
		// Serialized on the supervisor's log mutex: concurrent workers
		// share one writer.
		cmd.Stderr = &lockedWriter{mu: &s.logMu, w: s.log}
	}
	if err := cmd.Start(); err != nil {
		return nil, &ShardFailure{Kind: FailSpawn,
			Err: fmt.Errorf("supervisor: start worker: %w", err)}
	}
	// Buffered so the waiter's send always completes; every return path
	// below receives exactly once (directly or through terminate), so
	// the goroutine and the child are both reaped.
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	var stallC <-chan time.Time
	if s.cfg.Stall > 0 {
		ticker := time.NewTicker(s.stallPoll)
		defer ticker.Stop()
		stallC = ticker.C
	}
	var wallC <-chan time.Time
	if s.cfg.WallTimeout > 0 {
		wall := time.NewTimer(s.cfg.WallTimeout)
		defer wall.Stop()
		wallC = wall.C
	}
	ckPath := shard.CheckpointPath(s.cfg.CheckpointPrefix, i, s.cfg.Shards)
	lastMtime := mtimeOf(ckPath)
	lastProgress := time.Now() //trajlint:allow determinism -- stall detection is wall-clock by nature

	status := func() *WorkerStatus { return ParseWorkerStatus(buf.Bytes()) }
	for {
		select {
		case werr := <-waitCh:
			return status(), classifyExit(werr, status())
		case <-stallC:
			if mt := mtimeOf(ckPath); mt.After(lastMtime) {
				lastMtime = mt
				lastProgress = time.Now() //trajlint:allow determinism -- stall detection is wall-clock by nature
				continue
			}
			if time.Since(lastProgress) <= s.cfg.Stall { //trajlint:allow determinism -- stall detection is wall-clock by nature
				continue
			}
			werr, natural := s.terminate(cmd, waitCh)
			if natural {
				return status(), classifyExit(werr, status())
			}
			return status(), &ShardFailure{Kind: FailStall,
				Err: fmt.Errorf("supervisor: no checkpoint progress on %s for %v; worker killed (exit: %v)",
					ckPath, s.cfg.Stall, werr)}
		case <-wallC:
			werr, natural := s.terminate(cmd, waitCh)
			if natural {
				return status(), classifyExit(werr, status())
			}
			return status(), &ShardFailure{Kind: FailWallTimeout,
				Err: fmt.Errorf("supervisor: worker exceeded wall timeout %v; killed (exit: %v)",
					s.cfg.WallTimeout, werr)}
		case <-ctx.Done():
			s.terminate(cmd, waitCh)
			return status(), &ShardFailure{Kind: FailCancelled, Permanent: true,
				Err: context.Cause(ctx)}
		}
	}
}

// terminate stops a worker: SIGTERM (letting it checkpoint and exit
// with ExitInterrupted), then SIGKILL after the grace window. It always
// reaps the wait result. natural reports that the worker had already
// exited on its own before any signal landed — the detector fired on
// the exact completion instant and the exit should be classified, not
// recorded as a kill.
func (s *sup) terminate(cmd *exec.Cmd, waitCh <-chan error) (werr error, natural bool) {
	select {
	case werr = <-waitCh:
		return werr, true
	default:
	}
	if cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGTERM)
	}
	grace := time.NewTimer(s.grace)
	defer grace.Stop()
	select {
	case werr = <-waitCh:
		return werr, false
	case <-grace.C:
	}
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
	return <-waitCh, false
}

// classifyExit maps a worker's exit to a failure, or nil for success.
// Exit codes are the protocol (proto.go); anything not recognizably
// permanent is worth a relaunch.
func classifyExit(werr error, st *WorkerStatus) *ShardFailure {
	if werr == nil {
		return nil
	}
	detail := ""
	if st != nil && st.Error != "" {
		detail = ": " + st.Error
	}
	var ee *exec.ExitError
	if errors.As(werr, &ee) {
		switch ee.ExitCode() {
		case ExitUsage, ExitConfig:
			return &ShardFailure{Kind: FailConfig, Permanent: true,
				Err: fmt.Errorf("supervisor: worker rejected configuration (%v)%s", werr, detail)}
		case ExitFingerprintMismatch:
			return &ShardFailure{Kind: FailFingerprintMismatch, Permanent: true,
				Err: fmt.Errorf("supervisor: worker refused its resume checkpoint (%v)%s", werr, detail)}
		}
	}
	return &ShardFailure{Kind: FailCrash,
		Err: fmt.Errorf("supervisor: worker crashed (%v)%s", werr, detail)}
}

// mtimeOf returns a file's modification time, or the zero time when it
// cannot be statted (not yet written).
func mtimeOf(path string) time.Time {
	if path == "" {
		return time.Time{}
	}
	fi, err := os.Stat(path)
	if err != nil {
		return time.Time{}
	}
	return fi.ModTime()
}

// logf writes one supervision note. Serialized: shard loops run
// concurrently and share the writer.
func (s *sup) logf(format string, args ...any) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.log, "supervisor: "+format+"\n", args...)
}

// lockedWriter serializes writes from concurrent workers' stderr pipes
// onto one underlying writer.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

// Write implements io.Writer.
func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
