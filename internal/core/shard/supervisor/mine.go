package supervisor

import (
	"context"
	"fmt"

	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
)

// Mine runs a supervised sharded mine end to end: every shard is
// executed by a worker process under scfg's supervision, the per-shard
// terminal checkpoints are read back, and the engine's min-max merge
// assembles the global top-k. mcfg.CheckpointPath is mandatory — the
// checkpoint files are the channel between the workers and the merge.
//
// Shard failures never surface as the error. A shard that exhausted its
// attempt budget (or failed permanently) contributes its last good
// checkpoint — possibly nothing — and the result comes back with
// Interrupted set and the first failed shard's typed reason, exactly as
// an in-process run degrades under cancellation. The RunResult carries
// the full per-shard supervision record either way.
func Mine(ctx context.Context, eng *shard.Engine, mcfg core.MinerConfig, scfg Config) (*shard.Result, *RunResult, error) {
	if eng == nil {
		return nil, nil, fmt.Errorf("supervisor: nil engine")
	}
	if mcfg.CheckpointPath == "" {
		return nil, nil, fmt.Errorf("supervisor: supervised mining needs a checkpoint path prefix")
	}
	n := eng.Shards()
	scfg.Shards = n
	if scfg.CheckpointPrefix == "" {
		scfg.CheckpointPrefix = mcfg.CheckpointPath
	}

	run, err := Run(ctx, scfg)
	if err != nil {
		return nil, nil, err
	}

	cks, _, skipped := shard.LoadCheckpoints(scfg.CheckpointPrefix, n)
	// Vet every loaded checkpoint's fingerprint before trusting its
	// state: a file a worker refused (or a leftover from a different
	// problem) must degrade that shard to empty, never merge.
	for i := 0; i < n; i++ {
		if cks[i] == nil {
			continue
		}
		fp, ferr := eng.ShardFingerprint(i, mcfg)
		if ferr != nil {
			return nil, run, ferr
		}
		if cks[i].Fingerprint != fp {
			skipped = append(skipped, shard.SkippedCheckpoint{
				Shard: i,
				Path:  shard.CheckpointPath(scfg.CheckpointPrefix, i, n),
				Err:   &core.FingerprintMismatchError{Checkpoint: cks[i].Fingerprint, Run: fp},
			})
			cks[i] = nil
		}
	}
	states := make([]*core.Checkpoint, n)
	res := &shard.Result{Shards: n, PerShard: make([]core.MinerStats, n)}
	for i := 0; i < n; i++ {
		states[i] = cks[i]
		if cks[i] == nil {
			continue
		}
		res.PerShard[i] = cks[i].Stats
		res.Total.Iterations += cks[i].Stats.Iterations
		res.Total.Candidates += cks[i].Stats.Candidates
		res.Total.Pruned += cks[i].Stats.Pruned
		res.Total.LowCapped += cks[i].Stats.LowCapped
		res.Total.NMEvaluations += cks[i].Stats.NMEvaluations
		if cks[i].Stats.MaxQ > res.Total.MaxQ {
			res.Total.MaxQ = cks[i].Stats.MaxQ
		}
	}

	if len(run.Failures) > 0 {
		res.Interrupted = true
		res.InterruptReason = run.Failures[0].Error()
	}
	// A checkpoint a failed worker left torn is that shard's loss, not
	// the run's: the shard merges as empty, like a cancelled in-process
	// shard that never seeded.
	for _, sk := range skipped {
		if !res.Interrupted {
			res.Interrupted = true
			res.InterruptReason = (&ShardFailure{
				Shard: sk.Shard, Kind: FailCrash, Attempts: 0, Err: sk.Err,
			}).Error()
		}
	}

	patterns, mstats, mreason, err := eng.MergeStates(ctx, mcfg, states)
	if err != nil {
		return nil, run, err
	}
	res.Patterns = patterns
	res.Merge = mstats
	if mreason != "" && !res.Interrupted {
		res.Interrupted = true
		res.InterruptReason = mreason
	}
	return res, run, nil
}
