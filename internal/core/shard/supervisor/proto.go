// Package supervisor executes the shards of a sharded mine as child
// worker processes and keeps them alive until every shard has a
// terminal checkpoint: a crashed worker is relaunched with capped
// exponential backoff (internal/retry) and resumes from its shard's
// last good checkpoint, a wedged worker is detected by its checkpoint
// file's mtime standing still and killed, and a worker that exceeds the
// hard wall timeout is killed likewise. Failures that retrying cannot
// fix — a checkpoint fingerprint mismatch, a config rejection — stop
// that shard's relaunch loop immediately. When a shard exhausts its
// attempt budget the run degrades to a merged result over the shards
// that survived, flagged Interrupted with a typed ShardFailure, exactly
// mirroring the in-process engine's cancellation semantics (PR 4).
//
// The process boundary is this package's whole point: the paper's
// min-max merge (PAPER.md §4) only needs each shard's NM memo to be
// eventually complete, so a shard is a natural unit of supervised,
// retryable work, and a panic or OOM in one worker can no longer take
// the other shards' progress with it.
package supervisor

import (
	"encoding/json"
	"strings"
)

// Worker exit codes. A worker process mines exactly one shard and exits
// with one of these; the supervisor classifies recovery by code, so the
// codes are the protocol and must stay stable.
const (
	// ExitOK: the shard mined to completion and its terminal checkpoint
	// is on disk.
	ExitOK = 0
	// ExitUsage: the worker flags were malformed. Permanent — the
	// supervisor built the command line, so retrying reproduces it.
	ExitUsage = 2
	// ExitTransient: the shard failed in a way a relaunch may fix
	// (I/O error, torn checkpoint it could not read, ...).
	ExitTransient = 3
	// ExitConfig: the dataset or mining configuration was rejected.
	// Permanent — the same inputs fail the same way every time.
	ExitConfig = 4
	// ExitFingerprintMismatch: the shard's resume checkpoint was taken
	// for a different problem (stale dataset, changed config).
	// Permanent — backing off and retrying re-reads the same file.
	ExitFingerprintMismatch = 5
	// ExitInterrupted: the worker stopped early but gracefully (signal
	// or its own wall bound) and checkpointed its progress. Transient —
	// a relaunch resumes where it left off.
	ExitInterrupted = 6
)

// WorkerStatus is the one JSON line a worker writes to stdout before
// exiting, reporting what happened in-band so the supervisor does not
// have to reverse-engineer it from the exit code alone.
type WorkerStatus struct {
	// Shard and Shards identify the slot the worker mined.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Iterations is the shard's cumulative grow-iteration count.
	Iterations int `json:"iterations,omitempty"`
	// Interrupted and Reason mirror core.Result on an early stop.
	Interrupted bool   `json:"interrupted,omitempty"`
	Reason      string `json:"reason,omitempty"`
	// Error carries the failure message on a non-zero exit.
	Error string `json:"error,omitempty"`
}

// ParseWorkerStatus extracts the last status line from a worker's
// stdout. Workers write exactly one line, but the parser scans from the
// end and tolerates preceding noise (a panic dump, stray prints) — a
// crashed worker's stdout is evidence, not a trusted document. Returns
// nil when no line parses.
func ParseWorkerStatus(stdout []byte) *WorkerStatus {
	lines := strings.Split(string(stdout), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		line := strings.TrimSpace(lines[i])
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var st WorkerStatus
		if err := json.Unmarshal([]byte(line), &st); err == nil {
			return &st
		}
	}
	return nil
}
