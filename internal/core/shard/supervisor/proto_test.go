package supervisor

import (
	"errors"
	"fmt"
	"os/exec"
	"testing"

	"trajpattern/internal/testutil/leakcheck"
)

func TestParseWorkerStatus(t *testing.T) {
	defer leakcheck.Check(t)()
	cases := []struct {
		name   string
		stdout string
		want   *WorkerStatus
	}{
		{name: "empty", stdout: "", want: nil},
		{name: "garbage", stdout: "panic: boom\ngoroutine 1 [running]:\n", want: nil},
		{
			name:   "single line",
			stdout: `{"shard":2,"shards":4,"iterations":7}` + "\n",
			want:   &WorkerStatus{Shard: 2, Shards: 4, Iterations: 7},
		},
		{
			name:   "noise before the status",
			stdout: "stray print\n{\"shard\":1,\"shards\":3,\"interrupted\":true,\"reason\":\"wall\"}\n",
			want:   &WorkerStatus{Shard: 1, Shards: 3, Interrupted: true, Reason: "wall"},
		},
		{
			name:   "last parseable line wins",
			stdout: `{"shard":0,"shards":2}` + "\n" + `{"shard":1,"shards":2,"error":"x"}` + "\n",
			want:   &WorkerStatus{Shard: 1, Shards: 2, Error: "x"},
		},
		{
			name:   "torn trailing line ignored",
			stdout: `{"shard":0,"shards":2}` + "\n" + `{"shard":1,"sha`,
			want:   &WorkerStatus{Shard: 0, Shards: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ParseWorkerStatus([]byte(tc.stdout))
			switch {
			case got == nil && tc.want == nil:
			case got == nil || tc.want == nil || *got != *tc.want:
				t.Errorf("ParseWorkerStatus = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// exitError fabricates a real *exec.ExitError with the given code by
// running a shell that exits with it.
func exitError(t *testing.T, code int) error {
	t.Helper()
	err := exec.Command("sh", "-c", fmt.Sprintf("exit %d", code)).Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != code {
		t.Fatalf("could not fabricate exit code %d: %v", code, err)
	}
	return err
}

func TestClassifyExit(t *testing.T) {
	defer leakcheck.Check(t)()
	if got := classifyExit(nil, nil); got != nil {
		t.Errorf("clean exit classified as failure: %+v", got)
	}
	cases := []struct {
		code      int
		kind      FailureKind
		permanent bool
	}{
		{ExitUsage, FailConfig, true},
		{ExitConfig, FailConfig, true},
		{ExitFingerprintMismatch, FailFingerprintMismatch, true},
		{ExitTransient, FailCrash, false},
		{ExitInterrupted, FailCrash, false},
		{1, FailCrash, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("exit-%d", tc.code), func(t *testing.T) {
			fail := classifyExit(exitError(t, tc.code), &WorkerStatus{Error: "detail"})
			if fail == nil {
				t.Fatal("non-zero exit classified as success")
			}
			if fail.Kind != tc.kind || fail.Permanent != tc.permanent {
				t.Errorf("classifyExit(%d) = kind %s permanent %t, want %s/%t",
					tc.code, fail.Kind, fail.Permanent, tc.kind, tc.permanent)
			}
		})
	}
}
