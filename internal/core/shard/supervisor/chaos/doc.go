// Package chaos is the fault-injection harness for the shard worker
// supervisor. It holds no production code: the package's tests re-exec
// the test binary itself as shard workers (TestMain diverts to the
// worker entry point when CHAOS_WORKER=1) and inject one failure mode
// per scenario — SIGKILL mid-iteration, a worker that stalls forever, a
// torn checkpoint file (via faultio), a crash-looping shard, a resume
// checkpoint from a different problem — then assert the supervisor's
// recovery contract: a fault within the attempt budget yields a merged
// top-k identical to the fault-free run, and an exhausted budget
// degrades to the surviving shards' merge with a typed ShardFailure,
// never an error or a hang.
package chaos
