package chaos

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/core/shard/supervisor"
	"trajpattern/internal/retry"
	"trajpattern/internal/testutil/leakcheck"
)

// fastBackoff keeps relaunch delays out of the test budget.
func fastBackoff() *retry.Policy {
	return &retry.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond}
}

// TestRecoveryMatchesReference is the core recovery property: for every
// injected failure mode that leaves the attempt budget unexhausted, the
// supervised run's merged top-k is identical — same patterns, same
// scores, same order — to the fault-free in-process run, and the run
// reports no degradation.
func TestRecoveryMatchesReference(t *testing.T) {
	cases := []struct {
		name     string
		behavior string // fault armed on shard 1; "" = no fault
		attempts int    // expected attempts on shard 1
		stall    time.Duration
	}{
		{name: "clean", behavior: "", attempts: 1},
		{name: "sigkill-mid-iteration", behavior: "kill@2", attempts: 2},
		// The stall deadline must absorb worker startup (dataset read +
		// scorer build, several hundred ms under -race) — the progress
		// clock starts at launch, before the first checkpoint exists.
		{name: "stalled-worker", behavior: "stall@1", attempts: 2, stall: 2 * time.Second},
		{name: "torn-checkpoint", behavior: "tear@2", attempts: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer leakcheck.Check(t)()
			f := newFixture(t, 3)
			want := f.reference()

			const target = 1
			res, run, err := supervisor.Mine(t.Context(), f.eng, f.mcfg, supervisor.Config{
				Command:     f.command(target, tc.behavior),
				Procs:       2,
				MaxAttempts: 3,
				Stall:       tc.stall,
				Grace:       time.Second,
				Backoff:     fastBackoff(),
			})
			if err != nil {
				t.Fatalf("supervised mine: %v", err)
			}
			if len(run.Failures) != 0 {
				t.Fatalf("unexpected shard failures: %v", run.Failures)
			}
			if res.Interrupted {
				t.Fatalf("run degraded: %s", res.InterruptReason)
			}
			if got := run.Outcomes[target].Attempts; got != tc.attempts {
				t.Errorf("shard %d attempts = %d, want %d", target, got, tc.attempts)
			}
			for i, oc := range run.Outcomes {
				if !oc.Completed {
					t.Errorf("shard %d did not complete: %v", i, oc.Failure)
				}
			}
			if !reflect.DeepEqual(res.Patterns, want) {
				t.Errorf("recovered top-k diverged from reference:\n got %+v\nwant %+v", res.Patterns, want)
			}
		})
	}
}

// TestCrashLoopDegradesToSurvivors exhausts one shard's attempt budget
// (it crashes on every attempt) and asserts graceful degradation: no
// error, no hang, the result flagged Interrupted with the shard's typed
// ShardFailure, and the merged answer equal to what the surviving
// shards' states (plus the victim's last good checkpoint) produce.
func TestCrashLoopDegradesToSurvivors(t *testing.T) {
	defer leakcheck.Check(t)()
	f := newFixture(t, 3)

	const target = 2
	const budget = 2
	res, run, err := supervisor.Mine(t.Context(), f.eng, f.mcfg, supervisor.Config{
		Command:     f.command(target, "crashloop@1"),
		MaxAttempts: budget,
		Grace:       time.Second,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatalf("supervised mine: %v", err)
	}
	if !res.Interrupted {
		t.Error("budget-exhausted run not flagged Interrupted")
	}
	if len(run.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly shard %d", run.Failures, target)
	}
	fail := run.Failures[0]
	if fail.Shard != target || fail.Kind != supervisor.FailCrash {
		t.Errorf("failure = %+v, want shard %d crash", fail, target)
	}
	if fail.Attempts != budget {
		t.Errorf("attempts = %d, want the full budget %d", fail.Attempts, budget)
	}
	if fail.Permanent {
		t.Error("crash-loop marked permanent; it exhausted the budget, retries could have helped")
	}
	if res.InterruptReason == "" {
		t.Error("no interrupt reason on a degraded run")
	}

	// The degraded answer must equal the merge over exactly the states
	// the run left behind: full states for the survivors, the victim's
	// last checkpointed iteration (possibly nothing) for shard 2.
	cks, _, skipped := shard.LoadCheckpoints(f.prefix, f.n)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped checkpoints: %v", skipped)
	}
	for i := 0; i < f.n; i++ {
		if i != target && cks[i] == nil {
			t.Fatalf("surviving shard %d left no terminal checkpoint", i)
		}
	}
	want, _, _, err := f.eng.MergeStates(t.Context(), f.mcfg, cks)
	if err != nil {
		t.Fatalf("reference merge: %v", err)
	}
	if !reflect.DeepEqual(res.Patterns, want) {
		t.Errorf("degraded top-k diverged from survivors' merge:\n got %+v\nwant %+v", res.Patterns, want)
	}
}

// TestFingerprintMismatchIsPermanent seeds one shard's checkpoint slot
// with a valid checkpoint from a different problem (different K). The
// worker must refuse it with the typed exit status, the supervisor must
// not burn retries on it, and the stale state must not leak into the
// merge — the answer degrades to the other shards' merge.
func TestFingerprintMismatchIsPermanent(t *testing.T) {
	defer leakcheck.Check(t)()
	f := newFixture(t, 3)

	const target = 1
	// Plant shard 1's checkpoint from a K=7 run of the same dataset.
	bad := f.mcfg
	bad.K = 7
	bad.CheckpointPath = ""
	badRes, err := f.eng.MineShard(t.Context(), target, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	ckPath := shard.CheckpointPath(f.prefix, target, f.n)
	if err := core.SaveCheckpoint(nil, ckPath, badRes.FinalState); err != nil {
		t.Fatal(err)
	}

	res, run, err := supervisor.Mine(t.Context(), f.eng, f.mcfg, supervisor.Config{
		Command:     f.command(target, ""),
		MaxAttempts: 3,
		Grace:       time.Second,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatalf("supervised mine: %v", err)
	}
	if len(run.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly shard %d", run.Failures, target)
	}
	fail := run.Failures[0]
	if fail.Kind != supervisor.FailFingerprintMismatch {
		t.Errorf("failure kind = %s, want %s", fail.Kind, supervisor.FailFingerprintMismatch)
	}
	if !fail.Permanent {
		t.Error("fingerprint mismatch not marked permanent")
	}
	if fail.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (non-retryable)", fail.Attempts)
	}
	if !res.Interrupted {
		t.Error("run with a refused shard not flagged Interrupted")
	}

	// The stale K=7 state must not merge: the answer is the other
	// shards' merge with shard 1 contributing nothing.
	cks, _, _ := shard.LoadCheckpoints(f.prefix, f.n)
	cks[target] = nil
	want, _, _, err := f.eng.MergeStates(t.Context(), f.mcfg, cks)
	if err != nil {
		t.Fatalf("reference merge: %v", err)
	}
	if !reflect.DeepEqual(res.Patterns, want) {
		t.Errorf("merge ingested the refused checkpoint:\n got %+v\nwant %+v", res.Patterns, want)
	}
}

// TestWallTimeoutKillsAndRetries drives the per-attempt hard cap: a
// worker that stalls without a stall detector configured is killed at
// the wall timeout, and the relaunch recovers to the reference answer.
func TestWallTimeoutKillsAndRetries(t *testing.T) {
	defer leakcheck.Check(t)()
	f := newFixture(t, 3)
	want := f.reference()

	const target = 0
	res, run, err := supervisor.Mine(t.Context(), f.eng, f.mcfg, supervisor.Config{
		Command:     f.command(target, "stall@1"),
		MaxAttempts: 3,
		WallTimeout: 2 * time.Second,
		Grace:       250 * time.Millisecond,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatalf("supervised mine: %v", err)
	}
	if len(run.Failures) != 0 {
		t.Fatalf("unexpected shard failures: %v", run.Failures)
	}
	if got := run.Outcomes[target].Attempts; got != 2 {
		t.Errorf("shard %d attempts = %d, want 2", target, got)
	}
	if !reflect.DeepEqual(res.Patterns, want) {
		t.Errorf("recovered top-k diverged from reference:\n got %+v\nwant %+v", res.Patterns, want)
	}
}

// TestCancellationIsPermanent cancels the supervising context while the
// target worker hangs and asserts the run comes back promptly with a
// typed cancelled failure rather than retrying into the void.
func TestCancellationIsPermanent(t *testing.T) {
	defer leakcheck.Check(t)()
	f := newFixture(t, 3)

	ctx, cancel := context.WithTimeout(t.Context(), time.Second)
	defer cancel()
	const target = 1
	_, run, err := supervisor.Mine(ctx, f.eng, f.mcfg, supervisor.Config{
		Command:     f.command(target, "stall@1"),
		MaxAttempts: 5,
		Grace:       250 * time.Millisecond,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatalf("supervised mine: %v", err)
	}
	var found *supervisor.ShardFailure
	for _, fl := range run.Failures {
		if fl.Shard == target {
			found = fl
		}
	}
	if found == nil {
		t.Fatalf("no failure recorded for the hung shard; failures = %v", run.Failures)
	}
	if found.Kind != supervisor.FailCancelled || !found.Permanent {
		t.Errorf("failure = %+v, want permanent %s", found, supervisor.FailCancelled)
	}
	if !errors.Is(found, context.DeadlineExceeded) {
		t.Errorf("failure does not unwrap to the context cause: %v", found)
	}
}
