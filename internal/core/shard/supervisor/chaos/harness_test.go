package chaos

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"trajpattern/internal/cli"
	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/datagen"
	"trajpattern/internal/faultio"
	"trajpattern/internal/traj"
)

// TestMain doubles as the worker binary: the supervisor under test
// launches this very test executable with CHAOS_WORKER=1, and the
// process becomes a shard worker (with an injected fault) instead of a
// test run. This keeps the harness self-contained — no helper binary to
// build or ship.
func TestMain(m *testing.M) {
	if os.Getenv("CHAOS_WORKER") == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// Env keys of the worker protocol. The supervisor's Command hook sets
// these instead of flags so the worker side never collides with the
// test binary's own flag set.
const (
	envWorker   = "CHAOS_WORKER"
	envSlot     = "CHAOS_SLOT" // "i/n"
	envData     = "CHAOS_IN"
	envPrefix   = "CHAOS_CKPT"
	envK        = "CHAOS_K"
	envGridN    = "CHAOS_GRIDN"
	envMaxLen   = "CHAOS_MAXLEN"
	envBehavior = "CHAOS_BEHAVIOR" // "", "kill@N", "stall@N", "tear@N", "crashloop@N"
	envDir      = "CHAOS_DIR"      // marker directory: a fired fault disarms itself
)

// workerMain runs one shard to its checkpoint exactly like the real
// `-shard-worker` mode, with the configured fault armed. Faults other
// than crashloop fire once per shard (a marker file in CHAOS_DIR
// disarms them), so the supervisor's relaunch gets a healthy worker.
func workerMain() int {
	var o cli.ShardWorkerOptions
	if _, err := fmt.Sscanf(os.Getenv(envSlot), "%d/%d", &o.Shard, &o.Shards); err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker: bad slot %q: %v\n", os.Getenv(envSlot), err)
		return 2
	}
	o.DataPath = os.Getenv(envData)
	o.CheckpointPath = os.Getenv(envPrefix)
	o.K = envInt(envK)
	o.GridN = envInt(envGridN)
	o.MinLen = 1
	o.MaxLen = envInt(envMaxLen)
	o.DeltaMul = 1
	o.CheckpointEvery = 1
	o.Resume = true

	behavior := os.Getenv(envBehavior)
	if behavior != "" {
		name, iter := parseBehavior(behavior)
		marker := filepath.Join(os.Getenv(envDir), fmt.Sprintf("fired-%d", o.Shard))
		fired := false
		if _, err := os.Stat(marker); err == nil {
			fired = true
		}
		mark := func() { os.WriteFile(marker, []byte(name), 0o644) } //nolint:errcheck // marker only
		switch {
		case fired && name != "crashloop":
			// Fault already fired on an earlier attempt: behave cleanly.
		case name == "kill", name == "crashloop":
			o.OnProgress = func(p core.Progress) {
				if p.Iteration >= iter {
					mark()
					syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // about to die
					select {}                                  // unreachable: waiting for the kill to land
				}
			}
		case name == "stall":
			o.OnProgress = func(p core.Progress) {
				if p.Iteration >= iter {
					mark()
					select {} // hang mid-iteration: the checkpoint stops advancing
				}
			}
		case name == "tear":
			// Every checkpoint this attempt writes is torn mid-file, then
			// the worker dies: the relaunch must tolerate the torn resume
			// file and still converge.
			fl := faultio.NewFaults()
			fl.TearTargetBytes = 64
			o.CheckpointFS = fl
			o.OnProgress = func(p core.Progress) {
				if p.Iteration >= iter {
					mark()
					syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // about to die
					select {}
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "chaos worker: unknown behavior %q\n", behavior)
			return 2
		}
	}
	return cli.RunShardWorker(context.Background(), os.Stdout, os.Stderr, o)
}

func envInt(key string) int {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker: bad %s=%q: %v\n", key, os.Getenv(key), err)
		os.Exit(2)
	}
	return v
}

// parseBehavior splits "kill@3" into ("kill", 3); a missing @ means
// iteration 1.
func parseBehavior(s string) (string, int) {
	name, at, ok := strings.Cut(s, "@")
	if !ok {
		return name, 1
	}
	n, err := strconv.Atoi(at)
	if err != nil || n < 1 {
		n = 1
	}
	return name, n
}

// fixture is one chaos scenario's world: a seeded zebra dataset on
// disk, the in-process engine over the identical dataset (read back
// from that file so worker and reference share bit-identical inputs),
// and the miner config both sides run.
type fixture struct {
	t      *testing.T
	dir    string
	data   string
	prefix string
	n      int
	gridN  int
	eng    *shard.Engine
	mcfg   core.MinerConfig
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	dir := t.TempDir()
	ds, err := datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: 9, NumGroups: 3, AvgLen: 16, Seed: 11,
	}, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "zebra.jsonl")
	if err := traj.WriteFile(data, ds); err != nil {
		t.Fatal(err)
	}
	// Read the dataset back: the reference engine must see exactly the
	// floats the worker processes will parse, or the fingerprints drift.
	ds, err = traj.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	const gridN = 8
	g := cli.FitGrid(ds, gridN)
	s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.NewEngine(s, n)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != n {
		t.Fatalf("engine built %d shards, want %d", eng.Shards(), n)
	}
	prefix := filepath.Join(dir, "ck")
	return &fixture{
		t: t, dir: dir, data: data, prefix: prefix, n: n, gridN: gridN,
		eng: eng,
		mcfg: core.MinerConfig{
			K: 4, MinLen: 1, MaxLen: 6,
			CheckpointPath: prefix, CheckpointEvery: 1,
		},
	}
}

// command builds the supervisor's Command hook: shard target runs with
// the given behavior armed, every other shard runs clean.
func (f *fixture) command(target int, behavior string) func(int) *exec.Cmd {
	f.t.Helper()
	exe, err := os.Executable()
	if err != nil {
		f.t.Fatal(err)
	}
	return func(i int) *exec.Cmd {
		b := ""
		if i == target {
			b = behavior
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			fmt.Sprintf("%s=%d/%d", envSlot, i, f.n),
			envData+"="+f.data,
			envPrefix+"="+f.prefix,
			fmt.Sprintf("%s=%d", envK, f.mcfg.K),
			fmt.Sprintf("%s=%d", envGridN, f.gridN),
			fmt.Sprintf("%s=%d", envMaxLen, f.mcfg.MaxLen),
			envBehavior+"="+b,
			envDir+"="+f.dir,
		)
		return cmd
	}
}

// reference mines the same problem fully in-process (no checkpoint
// files, no workers) and returns the converged top-k.
func (f *fixture) reference() []core.ScoredPattern {
	f.t.Helper()
	mcfg := f.mcfg
	mcfg.CheckpointPath = ""
	res, err := f.eng.Mine(f.t.Context(), mcfg, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	if res.Interrupted {
		f.t.Fatalf("reference run interrupted: %s", res.InterruptReason)
	}
	return res.Patterns
}
