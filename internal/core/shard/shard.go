// Package shard partitions a trajectory dataset across N shards, runs the
// TrajPattern seed-and-grow search per shard on a work-stealing worker
// pool, and merges the per-shard candidate sets into a global top-k under
// the paper's min-max property (PAPER.md §4): a pattern's global NM is the
// sum of its per-shard NMs, so per-shard upper bounds give a sound global
// prune. DESIGN.md ("Sharded mining") maps the merge rule to the paper.
//
// The package threads the single-partition runtime contracts through the
// new layer: context cancellation degrades to a best-so-far answer
// (Result.Interrupted), per-shard obs counters land under "shard.NN.*",
// trace spans cover the run, each shard's search, and the merge, and
// per-shard checkpoints extend the core fingerprint with the shard slot so
// a sharded run resumes shard-by-shard with byte-identical results.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
	"trajpattern/internal/traj"
)

// Engine mines a dataset in N contiguous partitions. Build one with
// NewEngine and reuse it across runs: the per-shard scorers keep their
// log-probability caches warm, exactly like a single core.Scorer does.
type Engine struct {
	full    *core.Scorer
	scorers []*core.Scorer // one per shard; nil when shards == 1
	sizes   []int          // trajectories per shard, for spans and stats
	workers int            // concurrent shard searches (pool width)
}

// NewEngine partitions the scorer's dataset into `shards` contiguous
// slices of near-equal trajectory count (sizes differ by at most one) and
// builds one scorer per shard. shards <= 0 means GOMAXPROCS; the count is
// clamped to the number of trajectories so every shard holds data.
//
// With one shard the engine delegates to core.Mine on the original scorer
// unchanged — same counters, same checkpoints, byte-identical results —
// so `Shards: 1` is always safe to route through the engine.
//
// The per-shard scorers split the full scorer's worker budget (at least
// one each) and share its metrics registry and tracer: scorer-level
// counters stay aggregated under their usual "scorer.*" names, while the
// engine runs up to min(shards, Workers) shard searches concurrently.
func NewEngine(s *core.Scorer, shards int) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("shard: nil scorer")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	data := s.Dataset()
	if shards > len(data) {
		shards = len(data)
	}
	if shards < 1 {
		shards = 1
	}
	cfg := s.Config()
	e := &Engine{full: s, workers: shards}
	if cfg.Workers < e.workers {
		e.workers = cfg.Workers
	}
	if e.workers < 1 {
		e.workers = 1
	}
	if shards == 1 {
		e.sizes = []int{len(data)}
		return e, nil
	}
	scfg := cfg
	scfg.Workers = cfg.Workers / shards
	if scfg.Workers < 1 {
		scfg.Workers = 1
	}
	e.scorers = make([]*core.Scorer, shards)
	e.sizes = make([]int, shards)
	lo := 0
	for i := 0; i < shards; i++ {
		// First (len%shards) shards take one extra trajectory.
		size := len(data) / shards
		if i < len(data)%shards {
			size++
		}
		part := data[lo : lo+size]
		sc, err := core.NewScorer(append(traj.Dataset{}, part...), scfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, shards, err)
		}
		e.scorers[i] = sc
		e.sizes[i] = size
		lo += size
	}
	return e, nil
}

// Shards returns the effective shard count (after clamping).
func (e *Engine) Shards() int { return len(e.sizes) }

// Result is the output of a sharded Mine call. Patterns and the
// interruption fields mirror core.Result; the stats break the work down
// per shard and report what the merge did.
type Result struct {
	// Patterns holds the global top-k, best first, under the same
	// deterministic order as core.Mine (NM descending, length ascending,
	// key ascending). The NM values are exact sums over all shards,
	// accumulated in fixed shard order.
	Patterns []core.ScoredPattern
	// Interrupted reports that at least one shard stopped early (context
	// cancelled or MaxWallTime elapsed) or that the merge's rescoring was
	// cancelled. Patterns still holds the best answer derivable from the
	// completed work — graceful degradation, not an error.
	Interrupted bool
	// InterruptReason is the first interrupted shard's reason (by shard
	// index), or the merge's; empty when Interrupted is false.
	InterruptReason string
	// Shards is the effective shard count of the run.
	Shards int
	// PerShard holds each shard's miner statistics, indexed by shard.
	PerShard []core.MinerStats
	// Total is the field-wise sum of PerShard (MaxQ is the maximum).
	Total core.MinerStats
	// Merge reports the candidate-merging work.
	Merge MergeStats
	// ShardWallNS holds each shard's search wall time in nanoseconds,
	// indexed by shard. Timing-class telemetry: never part of any
	// deterministic comparison, but the raw input to Skew.
	ShardWallNS []int64
	// Skew is the post-merge wall-time imbalance summary: parallel
	// efficiency is bounded by the slowest shard, so when a scaling gate
	// fails, Skew names the shard that dragged the curve down.
	Skew Skew
}

// Skew summarizes the wall-time imbalance of one sharded run.
type Skew struct {
	// SlowestShard and FastestShard are shard indices (by wall time).
	SlowestShard int `json:"slowest_shard"`
	FastestShard int `json:"fastest_shard"`
	// MaxWallNS and MinWallNS are those shards' wall times.
	MaxWallNS int64 `json:"max_wall_ns"`
	MinWallNS int64 `json:"min_wall_ns"`
	// Ratio is MaxWallNS/MinWallNS: 1.0 is perfectly balanced, and the
	// run's parallel efficiency cannot exceed mean/max wall. Zero when
	// unmeasurable (no shards or zero-duration walls).
	Ratio float64 `json:"ratio"`
}

// computeSkew reduces per-shard wall times to the imbalance summary.
func computeSkew(wallNS []int64) Skew {
	var s Skew
	if len(wallNS) == 0 {
		return s
	}
	s.MinWallNS = wallNS[0]
	s.MaxWallNS = wallNS[0]
	for i, w := range wallNS {
		if w > s.MaxWallNS {
			s.MaxWallNS = w
			s.SlowestShard = i
		}
		if w < s.MinWallNS {
			s.MinWallNS = w
			s.FastestShard = i
		}
	}
	if s.MinWallNS > 0 {
		s.Ratio = float64(s.MaxWallNS) / float64(s.MinWallNS)
	}
	return s
}

// Mine runs the sharded search: every shard mines its partition with the
// given configuration (Seeds defaulting to the FULL dataset's observed
// cells, so every shard scores the same singular set and the merge bound
// below is always available), then the per-shard candidate sets are
// merged into the global top-k.
//
// resume, when non-nil, must hold exactly Shards() entries: entry i
// resumes shard i from its checkpoint (nil entries start fresh). Use
// LoadCheckpoints to read them back. cfg.Resume must be nil — it cannot
// name a shard.
//
// cfg.CheckpointPath is treated as a path prefix: shard i writes
// CheckpointPath(prefix, i, n). cfg.MaxWallTime bounds each shard's
// search individually. cfg.Shards is ignored (the Engine's own count,
// fixed at construction, wins).
func (e *Engine) Mine(ctx context.Context, cfg core.MinerConfig, resume []*core.Checkpoint) (*Result, error) {
	n := e.Shards()
	if resume != nil && len(resume) != n {
		return nil, fmt.Errorf("shard: resume holds %d checkpoints, engine has %d shards", len(resume), n)
	}
	if n == 1 {
		sc := cfg
		sc.Shards = 0
		if resume != nil && resume[0] != nil {
			if sc.Resume != nil {
				return nil, fmt.Errorf("shard: both cfg.Resume and resume[0] set")
			}
			sc.Resume = resume[0]
		}
		start := time.Now() //trajlint:allow determinism -- shard wall telemetry only; never part of the mined result
		res, err := core.Mine(ctx, e.full, sc)
		if err != nil {
			return nil, err
		}
		wall := int64(time.Since(start)) //trajlint:allow determinism -- shard wall telemetry only; never part of the mined result
		return &Result{
			Patterns:        res.Patterns,
			Interrupted:     res.Interrupted,
			InterruptReason: res.InterruptReason,
			Shards:          1,
			PerShard:        []core.MinerStats{res.Stats},
			Total:           res.Stats,
			ShardWallNS:     []int64{wall},
			Skew:            computeSkew([]int64{wall}),
		}, nil
	}
	if cfg.Resume != nil {
		return nil, fmt.Errorf("shard: cfg.Resume cannot address a shard; pass per-shard checkpoints via the resume argument")
	}

	seeds := cfg.Seeds
	if seeds == nil {
		seeds = e.full.ObservedCells(1)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("shard: no seed cells")
	}

	parent := cfg.Metrics
	tl := cfg.Tracer.Local()
	var runSpan *trace.Span
	if tl != nil {
		attrs := trace.Attrs{"shards": n, "k": cfg.K, "seeds": len(seeds)}
		if id := trace.RequestIDFrom(ctx); id != "" {
			attrs["request_id"] = id
		}
		runSpan = tl.Span("shard.run", attrs)
	}
	defer runSpan.End()

	// OnProgress callbacks arrive from concurrent shard searches; the
	// single-partition contract is one caller at a time, so serialize.
	progress := cfg.OnProgress
	if progress != nil {
		var mu sync.Mutex
		orig := progress
		progress = func(p core.Progress) {
			mu.Lock()
			defer mu.Unlock()
			orig(p)
		}
	}

	results := make([]*core.Result, n)
	errs := make([]error, n)
	regs := make([]*obs.Registry, n)
	wallNS := make([]int64, n)
	wallHist := parent.Histogram("shard.wall")
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() {
			shardStart := time.Now() //trajlint:allow determinism -- per-shard wall telemetry only; never part of the mined result
			defer func() {
				wallNS[i] = int64(time.Since(shardStart)) //trajlint:allow determinism -- per-shard wall telemetry only; never part of the mined result
				wallHist.ObserveDuration(time.Duration(wallNS[i]))
			}()
			sc := cfg
			sc.Shards = 0
			sc.Seeds = seeds
			sc.OnProgress = progress
			sc.FingerprintExtra = fingerprintExtra(i, n)
			sc.CaptureFinalState = true
			if resume != nil {
				sc.Resume = resume[i]
			}
			if cfg.CheckpointPath != "" {
				sc.CheckpointPath = CheckpointPath(cfg.CheckpointPath, i, n)
			}
			if parent != nil {
				regs[i] = obs.New()
				sc.Metrics = regs[i]
			} else {
				sc.Metrics = nil
			}
			var sp *trace.Span
			if tl != nil {
				sp = tl.Span("shard.mine", trace.Attrs{"shard": i, "trajectories": e.sizes[i]})
			}
			results[i], errs[i] = core.Mine(ctx, e.scorers[i], sc)
			if r := results[i]; r != nil {
				sp.Attr("iterations", r.Stats.Iterations).Attr("q_final", len(qKeys(r)))
				if r.Interrupted {
					sp.Attr("interrupted", r.InterruptReason)
				}
			}
			sp.End()
		}
	}
	runTasks(e.workers, tasks, newPoolMetrics(parent))

	res := &Result{Shards: n, PerShard: make([]core.MinerStats, n)}
	res.ShardWallNS = wallNS
	res.Skew = computeSkew(wallNS)
	// Skew gauges are timing-class (never bench-compared) but scrapable:
	// an operator watching /metrics sees which shard is dragging without
	// waiting for a scaling-gate failure. The ratio is stored in
	// milliunits because gauges are integral.
	parent.Gauge("shard.skew.slowest").Set(int64(res.Skew.SlowestShard))
	parent.Gauge("shard.skew.ratio_milli").Set(int64(res.Skew.Ratio * 1000))
	runSpan.Attr("skew_slowest", res.Skew.SlowestShard).Attr("skew_ratio", res.Skew.Ratio)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, n, errs[i])
		}
		r := results[i]
		res.PerShard[i] = r.Stats
		res.Total.Iterations += r.Stats.Iterations
		res.Total.Candidates += r.Stats.Candidates
		res.Total.Pruned += r.Stats.Pruned
		res.Total.LowCapped += r.Stats.LowCapped
		res.Total.NMEvaluations += r.Stats.NMEvaluations
		if r.Stats.MaxQ > res.Total.MaxQ {
			res.Total.MaxQ = r.Stats.MaxQ
		}
		if r.Interrupted && !res.Interrupted {
			res.Interrupted = true
			res.InterruptReason = fmt.Sprintf("shard %d: %s", i, r.InterruptReason)
		}
		if parent != nil {
			flushPrefixed(parent, fmt.Sprintf("shard.%02d.", i), regs[i].Snapshot())
		}
	}

	states := make([]*core.Checkpoint, n)
	for i, r := range results {
		states[i] = r.FinalState // nil when shard i was cancelled before seeding
	}
	patterns, mstats, mreason, err := e.merge(ctx, cfg, states, parent, tl)
	if err != nil {
		return nil, err
	}
	res.Patterns = patterns
	res.Merge = mstats
	if mreason != "" && !res.Interrupted {
		res.Interrupted = true
		res.InterruptReason = mreason
	}
	if res.Interrupted {
		runSpan.Attr("interrupted", res.InterruptReason)
	}
	runSpan.Attr("candidates", mstats.Candidates).Attr("patterns", len(patterns))
	return res, nil
}

// MineShard mines exactly shard i with the same derived configuration
// Mine builds for that shard in-process — same seeds, same fingerprint
// slot binding, same checkpoint path — so a worker process running one
// shard produces checkpoints and results byte-interchangeable with an
// in-process sharded run. resume, when non-nil, resumes the shard from
// its own checkpoint. The result always carries FinalState, which the
// worker persists as the shard's terminal checkpoint on clean
// completion.
func (e *Engine) MineShard(ctx context.Context, i int, cfg core.MinerConfig, resume *core.Checkpoint) (*core.Result, error) {
	n := e.Shards()
	if i < 0 || i >= n {
		return nil, fmt.Errorf("shard: index %d out of range of %d shards", i, n)
	}
	if cfg.Resume != nil {
		return nil, fmt.Errorf("shard: cfg.Resume cannot address a shard; pass the shard's checkpoint via resume")
	}
	sc := cfg
	sc.Shards = 0
	sc.Resume = resume
	sc.CaptureFinalState = true
	scorer := e.full
	if n > 1 {
		seeds := cfg.Seeds
		if seeds == nil {
			seeds = e.full.ObservedCells(1)
		}
		if len(seeds) == 0 {
			return nil, fmt.Errorf("shard: no seed cells")
		}
		sc.Seeds = seeds
		sc.FingerprintExtra = fingerprintExtra(i, n)
		scorer = e.scorers[i]
	}
	if cfg.CheckpointPath != "" {
		sc.CheckpointPath = CheckpointPath(cfg.CheckpointPath, i, n)
	}
	return core.Mine(ctx, scorer, sc)
}

// ShardFingerprint returns the fingerprint shard i's checkpoints carry
// under cfg — the exact value MineShard's miner stamps — so checkpoint
// files of external provenance (worker processes, leftovers from an
// earlier run) can be vetted before their state is merged.
func (e *Engine) ShardFingerprint(i int, cfg core.MinerConfig) (string, error) {
	n := e.Shards()
	if i < 0 || i >= n {
		return "", fmt.Errorf("shard: index %d out of range of %d shards", i, n)
	}
	sc := cfg
	sc.Shards = 0
	sc.Resume = nil
	scorer := e.full
	if n > 1 {
		seeds := cfg.Seeds
		if seeds == nil {
			seeds = e.full.ObservedCells(1)
		}
		if len(seeds) == 0 {
			return "", fmt.Errorf("shard: no seed cells")
		}
		sc.Seeds = seeds
		sc.FingerprintExtra = fingerprintExtra(i, n)
		scorer = e.scorers[i]
	}
	return sc.Fingerprint(scorer)
}

// MergeStates combines per-shard terminal states into the global top-k
// without running any search: states must hold Shards() entries, where
// entry i is shard i's final state (from Result.FinalState or a
// checkpoint file a worker process wrote) and nil entries mean that
// shard contributed nothing. The supervisor uses it to assemble a
// merged answer from whatever checkpoints survived its workers.
//
// The returned reason is non-empty when merge-time rescoring was
// cancelled and the result degraded to the fully-known candidates.
func (e *Engine) MergeStates(ctx context.Context, cfg core.MinerConfig, states []*core.Checkpoint) ([]core.ScoredPattern, MergeStats, string, error) {
	if len(states) != e.Shards() {
		return nil, MergeStats{}, "", fmt.Errorf("shard: %d states for %d shards", len(states), e.Shards())
	}
	return e.merge(ctx, cfg, states, cfg.Metrics, cfg.Tracer.Local())
}

// fingerprintExtra binds a per-shard checkpoint to its shard slot: a
// checkpoint taken for shard i of n refuses to resume any other slot or
// any other shard count, even when the sub-datasets happen to have
// identical shapes.
func fingerprintExtra(i, n int) string {
	return fmt.Sprintf("shard=%d/%d", i, n)
}

// qKeys returns the candidate keys a finished shard carried in Q, or nil
// for a shard cancelled before any state existed.
func qKeys(r *core.Result) []string {
	if r.FinalState == nil {
		return nil
	}
	return r.FinalState.Q
}

// flushPrefixed folds a per-shard metrics snapshot into the parent
// registry under the given prefix. Counters add and gauges set, so
// repeated runs accumulate exactly like the single-partition miner's
// counters do. Timers are skipped: their durations are wall-clock noise,
// and the bench gate only compares counters and gauges.
func flushPrefixed(parent *obs.Registry, prefix string, snap obs.Snapshot) {
	for _, name := range sortedNames(snap.Counters) {
		parent.Counter(prefix + name).Add(snap.Counters[name])
	}
	for _, name := range sortedNames(snap.Gauges) {
		parent.Gauge(prefix + name).Set(snap.Gauges[name])
	}
}
