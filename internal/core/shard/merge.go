package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"trajpattern/internal/core"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// MergeStats reports the work of merging per-shard candidate sets into
// the global top-k.
type MergeStats struct {
	// Candidates is the number of distinct length-eligible patterns in
	// the union of the shards' NM memos — every pattern any shard ever
	// scored, not just those surviving in its final Q. A pattern that is
	// globally strong but locally mediocre gets pruned from every shard's
	// Q, yet its evaluations stay in the memos; merging over the memos is
	// what keeps the sharded top-k equal to the single-partition one.
	Candidates int
	// Exact counts candidates whose NM was already known exactly in every
	// shard's memo — no merge-time scoring needed.
	Exact int
	// BoundPruned counts candidates eliminated by the min-max upper bound
	// without ever being scored on their missing shards.
	BoundPruned int
	// Rescored counts the (pattern, shard) evaluations the merge ran to
	// complete the survivors' global NMs.
	Rescored int
}

// cand is one merge candidate: a pattern from some shard's final set,
// with its global NM assembled from per-shard exact values and, until
// rescoring fills them in, min-max upper bounds for the missing shards.
type cand struct {
	key     string
	pat     core.Pattern
	exact   float64 // sum of known per-shard NMs, fixed shard order
	ub      float64 // exact + Σ upper bounds of the missing shards
	missing []int   // shard indices with no memoized NM for this pattern
}

// merge combines the shards' terminal candidate sets into the global
// top-k. The rule, justified by the paper's min-max property (NM is a sum
// over trajectories, hence a sum over shards, and every per-position log
// probability is ≤ 0):
//
//  1. Candidates are the union of the shards' NM memos (every pattern any
//     shard ever scored), restricted to length ≥ MinLen. Final Q sets are
//     not enough: a pattern can rank in the global top-k while being
//     pruned from every shard's local Q, but its per-shard evaluations
//     survive in the memos.
//  2. A candidate's NM on shard s is read from that shard's memo when the
//     shard ever scored it; otherwise it is bounded above by
//     (1/m)·min_j NM1_s(c_j) — the shard-s NM of the pattern's weakest
//     singular cell, which every memo holds because all shards score the
//     same global seed set. (A window sum of m log-probs is at most its
//     smallest term, and the short-trajectory floor case only lowers it.)
//  3. The k-th best among fully-known candidates is the global floor; any
//     candidate whose upper bound falls below it cannot reach the top-k
//     and is pruned unscored.
//  4. Survivors are batch-rescored on exactly their missing shards, in
//     parallel across shards, and global NMs are summed in fixed shard
//     order so the result is deterministic for a given shard count.
//
// Cancellation during rescoring degrades to the fully-known candidates
// (reason non-empty); a scoring panic is a hard error.
func (e *Engine) merge(ctx context.Context, cfg core.MinerConfig, states []*core.Checkpoint,
	parent *obs.Registry, tl *trace.Local) ([]core.ScoredPattern, MergeStats, string, error) {
	n := len(states)
	k := cfg.K
	minLen := cfg.MinLen
	if minLen < 1 {
		minLen = 1
	}
	var stats MergeStats
	var sp *trace.Span
	if tl != nil {
		sp = tl.Span("shard.merge", trace.Attrs{"shards": n, "k": k})
	}
	defer sp.End()
	defer parent.Timer("shard.time.merge").Start()()

	// Build the per-shard memos and, in the same pass, the candidate union:
	// every length-eligible pattern any shard ever scored. Evaluated slices
	// are sorted within each checkpoint, so first-seen order is already
	// deterministic; sorting makes it independent of shard order too.
	memos := make([]map[string]float64, n)
	seen := make(map[string]core.Pattern)
	var keys []string
	for i, st := range states {
		memos[i] = map[string]float64{}
		if st == nil {
			continue
		}
		for _, se := range st.Evaluated {
			pat := core.Pattern(se.Cells)
			key := pat.Key()
			memos[i][key] = se.NM
			if len(pat) < minLen {
				continue
			}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = pat
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	stats.Candidates = len(keys)

	var exact, partial []*cand
	for _, key := range keys {
		c := &cand{key: key, pat: seen[key]}
		for s := 0; s < n; s++ {
			if nm, ok := memos[s][key]; ok {
				c.exact += nm
				c.ub += nm
			} else {
				c.missing = append(c.missing, s)
				c.ub += singularBound(memos[s], c.pat)
			}
		}
		if len(c.missing) == 0 {
			exact = append(exact, c)
		} else {
			partial = append(partial, c)
		}
	}
	stats.Exact = len(exact)
	sortCands(exact)

	// Global floor: with k fully-known candidates in hand, the true top-k
	// all have NM ≥ exact[k-1].exact, so any upper bound below it is out.
	floor := math.Inf(-1)
	if len(exact) >= k {
		floor = exact[k-1].exact
	}
	survivors := partial[:0]
	for _, c := range partial {
		if c.ub < floor {
			stats.BoundPruned++
			continue
		}
		survivors = append(survivors, c)
	}

	// Rescore each survivor on exactly its missing shards, batched per
	// shard and run concurrently on the same pool as the searches.
	reason := ""
	if len(survivors) > 0 {
		byShard := make([][]core.Pattern, n)
		for _, c := range survivors {
			for _, s := range c.missing {
				byShard[s] = append(byShard[s], c.pat)
			}
		}
		vals := make([][]float64, n)
		errs := make([]error, n)
		tasks := make([]func(), 0, n)
		for s := 0; s < n; s++ {
			if len(byShard[s]) == 0 {
				continue
			}
			s := s
			stats.Rescored += len(byShard[s])
			tasks = append(tasks, func() {
				vals[s], errs[s] = e.scorers[s].ScoreAll(ctx, byShard[s])
			})
		}
		runTasks(e.workers, tasks, newPoolMetrics(parent))
		for s := 0; s < n; s++ {
			if errs[s] == nil {
				continue
			}
			var pe *core.ScorePanicError
			if errors.As(errs[s], &pe) {
				return nil, stats, "", fmt.Errorf("shard %d/%d: merge rescoring: %w", s, n, errs[s])
			}
			// Cancelled: the partial candidates cannot be completed, so
			// the fully-known set is the best answer still derivable.
			reason = fmt.Sprintf("merge rescoring: %v", context.Cause(ctx))
			survivors = nil
			break
		}
		for s := 0; s < n && survivors != nil; s++ {
			for i, p := range byShard[s] {
				memos[s][p.Key()] = vals[s][i]
			}
		}
		for _, c := range survivors {
			c.exact = 0
			for s := 0; s < n; s++ {
				c.exact += memos[s][c.key]
			}
		}
	}

	final := append(append([]*cand{}, exact...), survivors...)
	sortCands(final)
	if len(final) > k {
		final = final[:k]
	}
	out := make([]core.ScoredPattern, len(final))
	for i, c := range final {
		out[i] = core.ScoredPattern{Pattern: c.pat, NM: c.exact}
	}

	if parent != nil {
		parent.Counter("shard.merge.candidates").Add(int64(stats.Candidates))
		parent.Counter("shard.merge.exact").Add(int64(stats.Exact))
		parent.Counter("shard.merge.pruned").Add(int64(stats.BoundPruned))
		parent.Counter("shard.merge.rescored").Add(int64(stats.Rescored))
	}
	sp.Attr("candidates", stats.Candidates).Attr("pruned", stats.BoundPruned).Attr("rescored", stats.Rescored)
	if reason != "" {
		sp.Attr("interrupted", reason)
	}
	return out, stats, reason, nil
}

// singularBound returns a sound upper bound on a pattern's NM in the
// shard behind memo: (1/m) times the shard NM of the pattern's weakest
// singular cell. Every per-position log probability is ≤ 0, so a window
// sum of m of them is at most its minimum term, which for the best window
// is at most the singular NM of that cell; the short-trajectory case
// contributes m·floor/m = floor per trajectory to both sides. A cell
// absent from the memo (a shard cancelled before seeding) falls back to
// 0, the global maximum of any NM contribution.
func singularBound(memo map[string]float64, pat core.Pattern) float64 {
	best := 0.0
	found := false
	for _, cell := range pat {
		nm1, ok := memo[strconv.Itoa(cell)]
		if !ok {
			return 0
		}
		if !found || nm1 < best {
			best = nm1
			found = true
		}
	}
	return best / float64(len(pat))
}

// sortCands orders candidates exactly like core.Mine orders its answer:
// NM descending, then length ascending, then key ascending.
func sortCands(cs []*cand) {
	sort.Slice(cs, func(i, j int) bool {
		//trajlint:allow floatcmp -- comparator tie-break: exact inequality keeps the order total and deterministic
		if cs[i].exact != cs[j].exact {
			return cs[i].exact > cs[j].exact
		}
		if len(cs[i].pat) != len(cs[j].pat) {
			return len(cs[i].pat) < len(cs[j].pat)
		}
		return cs[i].key < cs[j].key
	})
}

// sortedNames returns the keys of a snapshot map in sorted order, so
// flushes and dumps iterate deterministically.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
