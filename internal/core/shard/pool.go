package shard

import "sync"

// runTasks executes a fixed batch of independent tasks on up to `workers`
// goroutines using work-stealing deques: task i is dealt to deque i mod w,
// each worker drains its own deque from the back (LIFO keeps the freshly
// dealt work warm), and an idle worker steals from the front of its peers'
// deques (FIFO takes the oldest — largest remaining — job first), scanning
// peers in a fixed round-robin order starting at its right neighbour.
//
// Shard mining jobs are coarse and their durations skew with the data
// partition, so stealing is what keeps late workers from idling while one
// deque still holds queued shards (the `-shards 16` on 4 cores case).
// Tasks only ever write to their own result slot, so the stealing order —
// the one scheduling-dependent choice here — cannot affect any output.
func runTasks(workers int, tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}

	d := &deques{queues: make([][]int, workers)}
	for i := range tasks {
		w := i % workers
		d.queues[w] = append(d.queues[w], i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := d.next(self)
				if !ok {
					return
				}
				tasks[i]()
			}
		}(w)
	}
	wg.Wait()
}

// deques is the shared work-stealing state of one runTasks call. One
// mutex guards all queues: the tasks are coarse (whole shard searches),
// so queue operations are far off any hot path and coarse locking keeps
// the invariants trivial.
type deques struct {
	mu     sync.Mutex
	queues [][]int
}

// next returns the next task index for worker self: the back of its own
// deque, else the front of the first non-empty peer deque in round-robin
// scan order. ok is false when every deque is empty.
func (d *deques) next(self int) (task int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if q := d.queues[self]; len(q) > 0 {
		task = q[len(q)-1]
		d.queues[self] = q[:len(q)-1]
		return task, true
	}
	n := len(d.queues)
	for off := 1; off < n; off++ {
		victim := (self + off) % n
		if q := d.queues[victim]; len(q) > 0 {
			task = q[0]
			d.queues[victim] = q[1:]
			return task, true
		}
	}
	return 0, false
}
