package shard

import (
	"sync"
	"time"

	"trajpattern/internal/obs"
)

// poolMetrics carries the optional utilization telemetry of one runTasks
// call. Every handle may be nil (nil-safe per the obs contract); the zero
// value disables collection entirely, which is what tests and metric-less
// runs pass.
//
// Steal counts are scheduling-dependent — which worker drains which deque
// varies run to run — so "shard.pool.*" counters are excluded from the
// deterministic bench-gate comparison (cli.nondeterministicFragments),
// like the scorer's per-worker counters.
type poolMetrics struct {
	steals *obs.Counter   // tasks taken from a peer's deque
	busy   *obs.Timer     // time inside tasks, one observation per task
	idle   *obs.Timer     // per-worker wall time not spent inside tasks
	task   *obs.Histogram // per-task duration distribution
}

// newPoolMetrics resolves the pool's handles on a registry (all nil on a
// nil registry, disabling collection).
func newPoolMetrics(r *obs.Registry) poolMetrics {
	return poolMetrics{
		steals: r.Counter("shard.pool.steals"),
		busy:   r.Timer("shard.pool.busy"),
		idle:   r.Timer("shard.pool.idle"),
		task:   r.Histogram("shard.pool.task"),
	}
}

// runTasks executes a fixed batch of independent tasks on up to `workers`
// goroutines using work-stealing deques: task i is dealt to deque i mod w,
// each worker drains its own deque from the back (LIFO keeps the freshly
// dealt work warm), and an idle worker steals from the front of its peers'
// deques (FIFO takes the oldest — largest remaining — job first), scanning
// peers in a fixed round-robin order starting at its right neighbour.
//
// Shard mining jobs are coarse and their durations skew with the data
// partition, so stealing is what keeps late workers from idling while one
// deque still holds queued shards (the `-shards 16` on 4 cores case).
// Tasks only ever write to their own result slot, so the stealing order —
// the one scheduling-dependent choice here — cannot affect any output.
func runTasks(workers int, tasks []func(), pm poolMetrics) {
	if len(tasks) == 0 {
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			runTask(t, pm)
		}
		return
	}

	d := &deques{queues: make([][]int, workers)}
	for i := range tasks {
		w := i % workers
		d.queues[w] = append(d.queues[w], i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			workerStart := time.Now() //trajlint:allow determinism -- busy/idle utilization telemetry only; never part of the mined result
			var busy time.Duration
			for {
				i, stolen, ok := d.next(self)
				if !ok {
					break
				}
				if stolen {
					pm.steals.Inc()
				}
				busy += runTask(tasks[i], pm)
			}
			// Idle is the worker's wall time minus its task time: the
			// mutex waits, steal scans and scheduler gaps a skewed
			// partition turns into wasted parallelism.
			pm.idle.Observe(time.Since(workerStart) - busy) //trajlint:allow determinism -- worker idle telemetry only; never part of the mined result
		}(w)
	}
	wg.Wait()
}

// runTask runs one task under the pool's duration instrumentation and
// returns its duration.
func runTask(t func(), pm poolMetrics) time.Duration {
	start := time.Now() //trajlint:allow determinism -- task-duration telemetry only; never part of the mined result
	t()
	d := time.Since(start) //trajlint:allow determinism -- task-duration telemetry only; never part of the mined result
	pm.busy.Observe(d)
	pm.task.ObserveDuration(d)
	return d
}

// deques is the shared work-stealing state of one runTasks call. One
// mutex guards all queues: the tasks are coarse (whole shard searches),
// so queue operations are far off any hot path and coarse locking keeps
// the invariants trivial.
type deques struct {
	mu     sync.Mutex
	queues [][]int
}

// next returns the next task index for worker self: the back of its own
// deque, else the front of the first non-empty peer deque in round-robin
// scan order (stolen is true for the latter). ok is false when every
// deque is empty.
func (d *deques) next(self int) (task int, stolen, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if q := d.queues[self]; len(q) > 0 {
		task = q[len(q)-1]
		d.queues[self] = q[:len(q)-1]
		return task, false, true
	}
	n := len(d.queues)
	for off := 1; off < n; off++ {
		victim := (self + off) % n
		if q := d.queues[victim]; len(q) > 0 {
			task = q[0]
			d.queues[victim] = q[1:]
			return task, true, true
		}
	}
	return 0, false, false
}
