package shard

import (
	"context"
	"math"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/datagen"
	"trajpattern/internal/grid"
	"trajpattern/internal/obs"
	"trajpattern/internal/testutil/leakcheck"
)

// zebraScorer builds a scorer over a small seeded zebra dataset on an
// n×n unit-square grid with δ equal to the cell size.
func zebraScorer(t *testing.T, seed uint64, zebras, avgLen, n int) *core.Scorer {
	t.Helper()
	ds, err := datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: zebras, NumGroups: 3, AvgLen: avgLen, Seed: seed,
	}, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.NewSquare(n)
	s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: g.CellWidth()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func patternKeys(ps []core.ScoredPattern) []string {
	keys := make([]string, len(ps))
	for i, p := range ps {
		keys[i] = p.Pattern.Key()
	}
	return keys
}

// TestShardedTopKMatchesUnsharded is the merge-soundness property test:
// on seeded datagen datasets, the sharded engine must return exactly the
// single-partition miner's top-k — same patterns in the same order —
// across k values and shard counts, including counts that do not divide
// the object count evenly.
func TestShardedTopKMatchesUnsharded(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		s := zebraScorer(t, seed, 11, 24, 10)
		for _, shards := range []int{1, 2, 3, 8} {
			eng, err := NewEngine(s, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5, 20} {
				cfg := core.MinerConfig{K: k, MaxLowQ: 4 * k}
				want, err := core.Mine(context.Background(), s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Mine(context.Background(), cfg, nil)
				if err != nil {
					t.Fatalf("seed=%d shards=%d k=%d: %v", seed, shards, k, err)
				}
				if got.Interrupted {
					t.Fatalf("seed=%d shards=%d k=%d: unexpectedly interrupted: %s", seed, shards, k, got.InterruptReason)
				}
				wk, gk := patternKeys(want.Patterns), patternKeys(got.Patterns)
				if len(wk) != len(gk) {
					t.Fatalf("seed=%d shards=%d k=%d: %d patterns, want %d", seed, shards, k, len(gk), len(wk))
				}
				for i := range wk {
					if wk[i] != gk[i] {
						t.Errorf("seed=%d shards=%d k=%d rank %d: pattern %s, want %s",
							seed, shards, k, i, gk[i], wk[i])
					}
					// Summation regrouping across shards may move the
					// merged NM by ulps, never more.
					if d := math.Abs(want.Patterns[i].NM - got.Patterns[i].NM); d > 1e-9*(1+math.Abs(want.Patterns[i].NM)) {
						t.Errorf("seed=%d shards=%d k=%d rank %d: NM %v, want %v",
							seed, shards, k, i, got.Patterns[i].NM, want.Patterns[i].NM)
					}
				}
			}
		}
	}
}

// TestShardSingularBoundIsSound checks the merge's min-max inequality
// directly: for every shard and a family of multi-cell patterns, the
// bound computed from singular NMs must dominate the true shard NM.
func TestShardSingularBoundIsSound(t *testing.T) {
	s := zebraScorer(t, 5, 9, 20, 8)
	eng, err := NewEngine(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	seeds := s.ObservedCells(1)
	for si, sc := range eng.scorers {
		memo := map[string]float64{}
		for _, c := range seeds {
			memo[strconv.Itoa(c)] = sc.NM(core.Pattern{c})
		}
		for i := 0; i+2 < len(seeds); i += 3 {
			p := core.Pattern{seeds[i], seeds[i+1], seeds[i+2]}
			nm := sc.NM(p)
			if ub := singularBound(memo, p); nm > ub+1e-12 {
				t.Errorf("shard %d: NM(%s) = %v exceeds bound %v", si, p.Key(), nm, ub)
			}
		}
	}
	// A cell missing from the memo must fall back to the global maximum 0.
	if ub := singularBound(map[string]float64{}, core.Pattern{1, 2}); ub != 0 {
		t.Errorf("empty-memo bound = %v, want 0", ub)
	}
}

// TestShardEngineClamps checks partition shapes: shard counts above the
// trajectory count clamp, and uneven divisions differ by at most one.
func TestShardEngineClamps(t *testing.T) {
	s := zebraScorer(t, 1, 7, 12, 8)
	eng, err := NewEngine(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 7 {
		t.Fatalf("Shards() = %d, want clamp to 7", eng.Shards())
	}
	eng, err = NewEngine(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	total, min, max := 0, eng.sizes[0], eng.sizes[0]
	for _, sz := range eng.sizes {
		total += sz
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if total != 7 || max-min > 1 {
		t.Fatalf("partition sizes %v do not cover 7 trajectories near-evenly", eng.sizes)
	}
	if _, err := NewEngine(nil, 2); err == nil {
		t.Fatal("nil scorer accepted")
	}
}

// TestShardMineCancelledContextDegrades: a cancelled context must yield a
// best-so-far (possibly empty) result with Interrupted set, not an error.
func TestShardMineCancelledContextDegrades(t *testing.T) {
	s := zebraScorer(t, 2, 8, 16, 8)
	eng, err := NewEngine(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.Mine(ctx, core.MinerConfig{K: 5}, nil)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if !res.Interrupted || res.InterruptReason == "" {
		t.Fatalf("cancelled run not marked interrupted: %+v", res)
	}
}

// TestShardCheckpointResumeMatchesUninterrupted interrupts a sharded run
// at an iteration bound, resumes every shard from its checkpoint, and
// requires the resumed run's answer to equal the uninterrupted run's
// exactly (same patterns, bit-equal NMs).
func TestShardCheckpointResumeMatchesUninterrupted(t *testing.T) {
	defer leakcheck.Check(t)()
	s := zebraScorer(t, 7, 10, 20, 10)
	n := 4
	eng, err := NewEngine(s, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MinerConfig{K: 8, MaxLowQ: 32}
	full, err := eng.Mine(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	prefix := filepath.Join(t.TempDir(), "ck")
	short := cfg
	short.MaxIters = 2
	short.CheckpointPath = prefix
	if _, err := eng.Mine(context.Background(), short, nil); err != nil {
		t.Fatal(err)
	}
	cks, found, skipped := LoadCheckpoints(prefix, n)
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v, want none", skipped)
	}
	if found != n {
		t.Fatalf("found %d checkpoints, want %d", found, n)
	}
	resumed, err := eng.Mine(context.Background(), cfg, cks)
	if err != nil {
		t.Fatal(err)
	}
	fk, rk := patternKeys(full.Patterns), patternKeys(resumed.Patterns)
	if len(fk) != len(rk) {
		t.Fatalf("resumed run: %d patterns, want %d", len(rk), len(fk))
	}
	for i := range fk {
		//trajlint:allow floatcmp -- resume is replay: NMs must be bit-equal, not merely close
		if fk[i] != rk[i] || full.Patterns[i].NM != resumed.Patterns[i].NM {
			t.Errorf("rank %d: resumed (%s, %v) != uninterrupted (%s, %v)",
				i, rk[i], resumed.Patterns[i].NM, fk[i], full.Patterns[i].NM)
		}
	}
}

// TestShardCheckpointRefusesWrongSlot: a checkpoint taken for one shard
// slot must not resume another, even though the partitions have the same
// shape — the fingerprint carries the slot.
func TestShardCheckpointRefusesWrongSlot(t *testing.T) {
	s := zebraScorer(t, 9, 8, 16, 8)
	n := 2
	eng, err := NewEngine(s, n)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(t.TempDir(), "ck")
	cfg := core.MinerConfig{K: 4, MaxIters: 2, CheckpointPath: prefix}
	if _, err := eng.Mine(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
	cks, _, _ := LoadCheckpoints(prefix, n)
	cks[0], cks[1] = cks[1], cks[0]
	if _, err := eng.Mine(context.Background(), core.MinerConfig{K: 4}, cks); err == nil {
		t.Fatal("swapped per-shard checkpoints accepted")
	}
}

// TestShardMetricsFlushPrefixed: per-shard miner counters land under
// "shard.NN.miner.*", merge counters under "shard.merge.*", and no
// unprefixed miner counters leak from the shard searches.
func TestShardMetricsFlushPrefixed(t *testing.T) {
	s := zebraScorer(t, 4, 8, 16, 8)
	eng, err := NewEngine(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	if _, err := eng.Mine(context.Background(), core.MinerConfig{K: 4, Metrics: reg}, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"shard.00.miner.iterations", "shard.01.miner.iterations", "shard.merge.candidates"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q missing or zero; have %v", name, snap.Counters)
		}
	}
	if _, ok := snap.Counters["miner.iterations"]; ok {
		t.Error("unprefixed miner.iterations leaked from a shard search")
	}
}

// TestShardSingleDelegates: a one-shard engine must behave exactly like
// core.Mine on the original scorer — same patterns, same NMs, and the
// plain unprefixed counter names the bench baseline expects.
func TestShardSingleDelegates(t *testing.T) {
	s := zebraScorer(t, 6, 6, 14, 8)
	reg := obs.New()
	cfg := core.MinerConfig{K: 3, Metrics: reg}
	want, err := core.Mine(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Mine(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 1 || len(eng.scorers) != 0 {
		t.Fatalf("one-shard engine built shard scorers: %+v", got)
	}
	wk, gk := patternKeys(want.Patterns), patternKeys(got.Patterns)
	for i := range wk {
		//trajlint:allow floatcmp -- delegation must be bit-identical
		if wk[i] != gk[i] || want.Patterns[i].NM != got.Patterns[i].NM {
			t.Fatalf("delegated result differs at rank %d", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["miner.iterations"] == 0 {
		t.Error("one-shard engine did not use the plain miner counters")
	}
	for name := range snap.Counters {
		if len(name) >= 6 && name[:6] == "shard." {
			t.Errorf("one-shard engine emitted sharded counter %q", name)
		}
	}
}

// TestShardPoolExecutesEveryTask: every task runs exactly once for any
// worker/task-count combination, including stealing-heavy shapes.
func TestShardPoolExecutesEveryTask(t *testing.T) {
	defer leakcheck.Check(t)()
	for _, tc := range []struct{ workers, tasks int }{
		{1, 5}, {2, 2}, {3, 10}, {8, 3}, {4, 64}, {2, 0},
	} {
		ran := make([]int32, tc.tasks)
		tasks := make([]func(), tc.tasks)
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&ran[i], 1) }
		}
		runTasks(tc.workers, tasks, poolMetrics{})
		for i, c := range ran {
			if c != 1 {
				t.Errorf("workers=%d tasks=%d: task %d ran %d times", tc.workers, tc.tasks, i, c)
			}
		}
	}
}

// TestShardPoolSteals drives the deque state machine directly: a worker
// with an empty deque must take the oldest entry of the next non-empty
// peer, and local pops must come from the back.
func TestShardPoolSteals(t *testing.T) {
	defer leakcheck.Check(t)()
	d := &deques{queues: [][]int{{0, 2}, {1}, {}}}
	if i, stolen, ok := d.next(0); !ok || i != 2 || stolen {
		t.Fatalf("local pop = %d (stolen=%v), want back entry 2, not stolen", i, stolen)
	}
	if i, stolen, ok := d.next(2); !ok || i != 0 || !stolen {
		t.Fatalf("steal = %d (stolen=%v), want front of first non-empty peer (0), stolen", i, stolen)
	}
	if i, stolen, ok := d.next(2); !ok || i != 1 || !stolen {
		t.Fatalf("second steal = %d (stolen=%v), want 1, stolen", i, stolen)
	}
	if _, _, ok := d.next(1); ok {
		t.Fatal("drained deques still yielded work")
	}
}

// TestShardMineRejectsBadResume covers the engine's argument contract.
func TestShardMineRejectsBadResume(t *testing.T) {
	s := zebraScorer(t, 8, 6, 12, 8)
	eng, err := NewEngine(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Mine(context.Background(), core.MinerConfig{K: 2}, make([]*core.Checkpoint, 3)); err == nil {
		t.Fatal("mismatched resume length accepted")
	}
	if _, err := eng.Mine(context.Background(), core.MinerConfig{K: 2, Resume: &core.Checkpoint{Version: core.CheckpointVersion}}, nil); err == nil {
		t.Fatal("cfg.Resume accepted on a multi-shard engine")
	}
}
