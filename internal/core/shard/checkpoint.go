package shard

import (
	"errors"
	"fmt"
	"os"

	"trajpattern/internal/core"
)

// CheckpointPath returns the checkpoint file for shard i of n under the
// given path prefix — "prefix.shard-002-of-008". With one shard it
// returns the prefix itself, so a single-shard run reads and writes the
// same file as the unsharded miner.
func CheckpointPath(prefix string, i, n int) string {
	if n <= 1 {
		return prefix
	}
	return fmt.Sprintf("%s.shard-%03d-of-%03d", prefix, i, n)
}

// SkippedCheckpoint reports one per-shard checkpoint file that was
// present but unreadable — torn by a crash mid-write, truncated, or
// corrupted on disk.
type SkippedCheckpoint struct {
	// Shard is the shard index whose checkpoint was skipped.
	Shard int
	// Path is the file that failed to load.
	Path string
	// Err is the load failure (CRC mismatch, bad trailer, ...).
	Err error
}

// LoadCheckpoints reads the per-shard checkpoints under prefix for an
// n-shard run. Missing files yield nil entries — those shards start
// fresh — and found reports how many were present, so a caller can tell
// "resuming 3 of 4 shards" from "starting fresh". A present-but-corrupt
// checkpoint (torn write, truncation, bit rot) also yields a nil entry,
// but is additionally reported in skipped: one shard losing its saved
// work must not void every other shard's, yet restarting it silently
// would hide that the work was lost. Callers log each skip.
func LoadCheckpoints(prefix string, n int) (cks []*core.Checkpoint, found int, skipped []SkippedCheckpoint) {
	cks = make([]*core.Checkpoint, n)
	for i := 0; i < n; i++ {
		path := CheckpointPath(prefix, i, n)
		ck, err := core.LoadCheckpoint(path)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				skipped = append(skipped, SkippedCheckpoint{Shard: i, Path: path, Err: err})
			}
			continue
		}
		cks[i] = ck
		found++
	}
	return cks, found, skipped
}
