package shard

import (
	"errors"
	"fmt"
	"os"

	"trajpattern/internal/core"
)

// CheckpointPath returns the checkpoint file for shard i of n under the
// given path prefix — "prefix.shard-002-of-008". With one shard it
// returns the prefix itself, so a single-shard run reads and writes the
// same file as the unsharded miner.
func CheckpointPath(prefix string, i, n int) string {
	if n <= 1 {
		return prefix
	}
	return fmt.Sprintf("%s.shard-%03d-of-%03d", prefix, i, n)
}

// LoadCheckpoints reads the per-shard checkpoints under prefix for an
// n-shard run. Missing files yield nil entries — those shards start
// fresh — and found reports how many were present, so a caller can tell
// "resuming 3 of 4 shards" from "starting fresh". A present-but-corrupt
// checkpoint is an error: silently restarting a shard the caller thought
// was resumable would burn its saved work without a word.
func LoadCheckpoints(prefix string, n int) (cks []*core.Checkpoint, found int, err error) {
	cks = make([]*core.Checkpoint, n)
	for i := 0; i < n; i++ {
		ck, err := core.LoadCheckpoint(CheckpointPath(prefix, i, n))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return nil, 0, fmt.Errorf("shard %d/%d: %w", i, n, err)
		}
		cks[i] = ck
		found++
	}
	return cks, found, nil
}
