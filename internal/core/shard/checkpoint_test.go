package shard

import (
	"context"
	"path/filepath"
	"testing"

	"trajpattern/internal/core"
	"trajpattern/internal/faultio"
)

// TestLoadCheckpointsSkipsTornFile: a torn per-shard checkpoint (the
// on-disk result of power loss mid-install, produced through the
// faultio injector's TearTargetBytes knob) must not void the other
// shards' saved work — the torn shard is reported as skipped and
// restarts fresh, while the rest resume and the run still matches the
// uninterrupted answer.
func TestLoadCheckpointsSkipsTornFile(t *testing.T) {
	s := zebraScorer(t, 9, 8, 16, 8)
	n := 3
	eng, err := NewEngine(s, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MinerConfig{K: 4, MaxLowQ: 16}
	full, err := eng.Mine(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	prefix := filepath.Join(t.TempDir(), "ck")
	short := cfg
	short.MaxIters = 2
	short.CheckpointPath = prefix
	if _, err := eng.Mine(context.Background(), short, nil); err != nil {
		t.Fatal(err)
	}

	// Tear shard 1's checkpoint: reinstall it with only its first 64
	// bytes, exactly as a reordered rename after power loss would leave
	// it. The write itself reports success — only the reader notices.
	torn := 1
	path := CheckpointPath(prefix, torn, n)
	ck, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	fl := faultio.NewFaults()
	fl.TearTargetBytes = 64
	if err := core.SaveCheckpoint(fl, path, ck); err != nil {
		t.Fatalf("torn install reported failure: %v", err)
	}

	cks, found, skipped := LoadCheckpoints(prefix, n)
	if found != n-1 {
		t.Fatalf("found = %d, want %d", found, n-1)
	}
	if len(skipped) != 1 || skipped[0].Shard != torn || skipped[0].Path != path {
		t.Fatalf("skipped = %+v, want shard %d at %s", skipped, torn, path)
	}
	if skipped[0].Err == nil {
		t.Fatal("skipped entry carries no error")
	}
	if cks[torn] != nil {
		t.Fatal("torn shard still yielded a checkpoint")
	}
	for i := 0; i < n; i++ {
		if i != torn && cks[i] == nil {
			t.Fatalf("healthy shard %d lost its checkpoint", i)
		}
	}

	// The torn shard restarts fresh; the answer still matches.
	resumed, err := eng.Mine(context.Background(), cfg, cks)
	if err != nil {
		t.Fatal(err)
	}
	fk, rk := patternKeys(full.Patterns), patternKeys(resumed.Patterns)
	if len(fk) != len(rk) {
		t.Fatalf("resumed run: %d patterns, want %d", len(rk), len(fk))
	}
	for i := range fk {
		//trajlint:allow floatcmp -- resume is replay: NMs must be bit-equal, not merely close
		if fk[i] != rk[i] || full.Patterns[i].NM != resumed.Patterns[i].NM {
			t.Errorf("rank %d: resumed (%s, %v) != uninterrupted (%s, %v)",
				i, rk[i], resumed.Patterns[i].NM, fk[i], full.Patterns[i].NM)
		}
	}
}

// TestMineShardMatchesInProcessShard: a shard mined through MineShard
// (the worker-process entry point) writes the same checkpoint and
// returns the same final state as the same shard mined inside Mine, so
// supervised and in-process runs are freely interchangeable.
func TestMineShardMatchesInProcessShard(t *testing.T) {
	s := zebraScorer(t, 11, 8, 16, 8)
	n := 2
	eng, err := NewEngine(s, n)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inPrefix := filepath.Join(dir, "in")
	outPrefix := filepath.Join(dir, "out")
	cfg := core.MinerConfig{K: 4, MaxLowQ: 16}

	incfg := cfg
	incfg.CheckpointPath = inPrefix
	want, err := eng.Mine(context.Background(), incfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	outcfg := cfg
	outcfg.CheckpointPath = outPrefix
	states := make([]*core.Checkpoint, n)
	for i := 0; i < n; i++ {
		res, err := eng.MineShard(context.Background(), i, outcfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalState == nil {
			t.Fatalf("shard %d: MineShard returned no final state", i)
		}
		states[i] = res.FinalState
	}

	patterns, _, reason, err := eng.MergeStates(context.Background(), cfg, states)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("merge degraded: %s", reason)
	}
	wk, gk := patternKeys(want.Patterns), patternKeys(patterns)
	if len(wk) != len(gk) {
		t.Fatalf("MergeStates: %d patterns, want %d", len(gk), len(wk))
	}
	for i := range wk {
		//trajlint:allow floatcmp -- same shard partition, same merge: NMs must be bit-equal
		if wk[i] != gk[i] || want.Patterns[i].NM != patterns[i].NM {
			t.Errorf("rank %d: (%s, %v) != in-process (%s, %v)",
				i, gk[i], patterns[i].NM, wk[i], want.Patterns[i].NM)
		}
	}

	// The per-shard checkpoints written along the way must be
	// byte-identical: MineShard derives the exact in-process config.
	for i := 0; i < n; i++ {
		in, err := core.LoadCheckpoint(CheckpointPath(inPrefix, i, n))
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.LoadCheckpoint(CheckpointPath(outPrefix, i, n))
		if err != nil {
			t.Fatal(err)
		}
		if in.Fingerprint != out.Fingerprint {
			t.Errorf("shard %d: fingerprint %s != in-process %s", i, out.Fingerprint, in.Fingerprint)
		}
		if in.Iteration != out.Iteration || len(in.Evaluated) != len(out.Evaluated) {
			t.Errorf("shard %d: checkpoint state diverged (%d iters/%d evals vs %d/%d)",
				i, out.Iteration, len(out.Evaluated), in.Iteration, len(in.Evaluated))
		}
	}
}
