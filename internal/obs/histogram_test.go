package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Start()()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram reported Count=%d Sum=%g", h.Count(), h.Sum())
	}
	var r *Registry
	if r.Histogram("x") != nil || r.HistogramWith("x", []float64{1}) != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	s := h.snapshot()
	// le semantics: a value equal to a bound lands in that bound's bucket.
	want := []int64{2, 2, 2, 1} // (≤1)=0.5,1  (≤2)=1.5,2  (≤4)=3,4  (+Inf)=100
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || h.Count() != 7 {
		t.Fatalf("Count: snapshot %d, live %d, want 7", s.Count, h.Count())
	}
	if got, want := s.Sum, 0.5+1+1.5+2+3+4+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum %g, want %g", got, want)
	}
}

func TestHistogramRegistryFirstRegistrationWins(t *testing.T) {
	r := New()
	a := r.HistogramWith("h", []float64{1, 2})
	b := r.HistogramWith("h", []float64{100})
	if a != b {
		t.Fatal("same name must return the same histogram")
	}
	if got := len(a.snapshot().Bounds); got != 2 {
		t.Fatalf("bounds overwritten: got %d, want the original 2", got)
	}
	if got := len(r.Histogram("d").snapshot().Bounds); got != len(DefaultDurationBuckets) {
		t.Fatalf("default buckets: got %d bounds, want %d", got, len(DefaultDurationBuckets))
	}
}

func TestHistogramConcurrentConsistency(t *testing.T) {
	h := newHistogram(DefaultDurationBuckets)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*i%97) / 10)
			}
		}(g)
	}
	// Snapshots taken while observers run must stay internally consistent:
	// Count equals the sum of bucket counts by construction, and never
	// exceeds the total that will eventually land.
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.snapshot()
			var n int64
			for _, c := range s.Counts {
				n += c
			}
			if n != s.Count {
				t.Errorf("racing snapshot: bucket sum %d != Count %d", n, s.Count)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("final Count %d, want %d", got, goroutines*per)
	}
}

func TestSnapshotIncludesHistograms(t *testing.T) {
	r := New()
	r.HistogramWith("lat", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	hs, ok := s.Histograms["lat"]
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot missing histogram: %+v", s.Histograms)
	}
	if out := s.String(); !strings.Contains(out, "histograms:") || !strings.Contains(out, "lat") {
		t.Fatalf("String() missing histogram section:\n%s", out)
	}
	js, err := s.JSON()
	if err != nil || !strings.Contains(string(js), `"histograms"`) {
		t.Fatalf("JSON missing histograms (err=%v):\n%s", err, js)
	}
}
