package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the increments go through a pre-resolved handle, half
			// through registry lookup, exercising both access paths.
			c := r.Counter("shared")
			for i := 0; i < perWorker/2; i++ {
				c.Inc()
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("peak")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i <= 500; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 7500 {
		t.Errorf("peak gauge = %d, want 7500", got)
	}
}

func TestTimer(t *testing.T) {
	r := New()
	tm := r.Timer("phase")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	stop := tm.Start()
	stop()
	if got := tm.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if tm.Total() < 15*time.Millisecond {
		t.Errorf("total = %v, want >= 15ms", tm.Total())
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	mk := func() *Registry {
		r := New()
		// Touch instruments in different orders to prove ordering comes
		// from the snapshot, not insertion.
		r.Counter("b.count").Add(2)
		r.Gauge("z.gauge").Set(7)
		r.Counter("a.count").Add(1)
		r.Timer("t.timer").Observe(time.Second)
		return r
	}
	r1, r2 := mk(), mk()
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	if s1.String() != s2.String() {
		t.Errorf("renderings differ:\n%s\n%s", s1, s2)
	}
	text := s1.String()
	if strings.Index(text, "a.count") > strings.Index(text, "b.count") {
		t.Errorf("counters not sorted:\n%s", text)
	}
	// Repeated snapshots of an unchanged registry are identical.
	if !reflect.DeepEqual(s1, r1.Snapshot()) {
		t.Error("re-snapshot of unchanged registry differs")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("miner.candidates.fresh").Add(42)
	r.Gauge("miner.q.peak").Set(99)
	r.Timer("miner.time.total").Observe(1234 * time.Microsecond)
	s := r.Snapshot()

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed snapshot:\n%+v\n%+v", s, back)
	}
	// Marshaling is deterministic (encoding/json sorts map keys).
	again, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("JSON marshaling not deterministic")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(4)
	s := r.Snapshot()
	if s.Counter("c") != 3 || s.Counter("absent") != 0 {
		t.Errorf("counter accessor: %d / %d", s.Counter("c"), s.Counter("absent"))
	}
	if s.Gauge("g") != 4 || s.Gauge("absent") != 0 {
		t.Errorf("gauge accessor: %d / %d", s.Gauge("g"), s.Gauge("absent"))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	if c != nil || g != nil || tm != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.SetMax(2)
	tm.Observe(time.Second)
	tm.Start()()
	if c.Value() != 0 || g.Value() != 0 || tm.Total() != 0 || tm.Count() != 0 {
		t.Error("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if s.String() != "" {
		t.Errorf("empty snapshot renders %q", s.String())
	}
}

// TestTimerConcurrentSpans hammers one timer with overlapping spans from
// many goroutines: the invocation count must be exact and the accumulated
// total at least the sum of the known sleep floors (spans overlap in wall
// time but accumulate independently).
func TestTimerConcurrentSpans(t *testing.T) {
	r := New()
	tm := r.Timer("phase")
	const workers, spans = 8, 25
	sleep := time.Millisecond
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				// Alternate pre-resolved and registry-resolved handles, and
				// interleave explicit Observe with Start/stop spans.
				if i%2 == 0 {
					stop := tm.Start()
					time.Sleep(sleep)
					stop()
				} else {
					r.Timer("phase").Observe(sleep)
				}
			}
		}()
	}
	wg.Wait()
	if got := tm.Count(); got != workers*spans {
		t.Errorf("timer count = %d, want %d", got, workers*spans)
	}
	if min := time.Duration(workers*spans) * sleep; tm.Total() < min {
		t.Errorf("timer total = %v, want >= %v", tm.Total(), min)
	}
	snap := r.Snapshot()
	ts := snap.Timers["phase"]
	if ts.Count != workers*spans || time.Duration(ts.TotalNS) != tm.Total() {
		t.Errorf("snapshot timer %+v disagrees with live timer (%d, %v)",
			ts, tm.Count(), tm.Total())
	}
}

// TestSnapshotTimerDurationsRoundTrip pins that timer durations survive
// the JSON round trip exactly, at nanosecond precision, across several
// timers (the counter/gauge round trip is covered above).
func TestSnapshotTimerDurationsRoundTrip(t *testing.T) {
	r := New()
	durations := map[string]time.Duration{
		"miner.time.total":     12345678901 * time.Nanosecond,
		"miner.time.iteration": 987654321 * time.Nanosecond,
		"scorer.time.batch":    1 * time.Nanosecond,
	}
	for name, d := range durations {
		tm := r.Timer(name)
		tm.Observe(d)
		tm.Observe(d) // two spans: count 2, total 2d
	}
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for name, d := range durations {
		ts, ok := back.Timers[name]
		if !ok {
			t.Fatalf("timer %s lost in round trip", name)
		}
		if ts.Count != 2 || ts.TotalNS != 2*int64(d) {
			t.Errorf("%s round-tripped to %+v, want count 2 total %d", name, ts, 2*int64(d))
		}
	}
	// The rendered form carries the durations too.
	text := back.String()
	if !strings.Contains(text, "2 × ") {
		t.Errorf("rendered snapshot missing timer section:\n%s", text)
	}
}

// TestProvenance checks the build/host stamp: the runtime-derived fields
// are always present, and the stamped report serializes both sections.
func TestProvenance(t *testing.T) {
	p := CollectProvenance()
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" {
		t.Errorf("runtime fields missing: %+v", p)
	}
	if p.GOMAXPROCS < 1 || p.NumCPU < 1 {
		t.Errorf("processor counts missing: %+v", p)
	}

	r := New()
	r.Counter("miner.seeds").Add(7)
	rep := NewReport(r.Snapshot())
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Provenance Provenance `json:"provenance"`
		Metrics    Snapshot   `json:"metrics"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Provenance.GoVersion != p.GoVersion {
		t.Errorf("provenance lost in round trip: %+v", back.Provenance)
	}
	if back.Metrics.Counter("miner.seeds") != 7 {
		t.Errorf("metrics lost in round trip: %+v", back.Metrics)
	}
}
