// Package slogx is the repo's structured-logging setup: a thin, nil-safe
// wrapper over log/slog with the two handler formats the CLIs expose
// behind -log-format ("text" and "json") and canonical attribute
// constructors for the fields the serving path correlates on
// (request_id, route, status).
//
// Like the obs handle types, a nil *Logger is a valid "disabled" logger:
// every method is a no-op on a nil receiver, so call sites log
// unconditionally and pay one branch when structured logging is off
// (-log-format=plain keeps the legacy fmt.Fprintf status lines and hands
// the code a nil *Logger).
package slogx

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"
)

// Options configures New. The zero value is usable: JSON format at info
// level to os.Stderr.
type Options struct {
	// Format selects the handler: "json" (default) or "text". "plain" and
	// "" both mean "no structured logger" to flag-parsing callers; New
	// itself treats only the handler formats.
	Format string
	// Level is the minimum level: "debug", "info" (default), "warn",
	// "error". Unknown strings fall back to info.
	Level string
	// W is the destination (default os.Stderr).
	W io.Writer
	// OmitTime drops the time attribute from records, so test output is
	// byte-comparable across runs.
	OmitTime bool
}

// ParseLevel maps a -log-level flag string onto a slog.Level, defaulting
// to info for anything unrecognized.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Logger is a nil-safe structured logger. Obtain one from New; pass nil
// to disable logging at every call site transparently.
type Logger struct {
	s *slog.Logger
}

// New builds a Logger for the given options. Format "text" selects the
// slog text handler; anything else (including the default "") selects
// JSON. Callers that support -log-format=plain should map that to a nil
// *Logger themselves rather than calling New.
func New(opts Options) *Logger {
	w := opts.W
	if w == nil {
		w = os.Stderr
	}
	hopts := &slog.HandlerOptions{Level: ParseLevel(opts.Level)}
	if opts.OmitTime {
		hopts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	var h slog.Handler
	if strings.EqualFold(opts.Format, "text") {
		h = slog.NewTextHandler(w, hopts)
	} else {
		h = slog.NewJSONHandler(w, hopts)
	}
	return &Logger{s: slog.New(h)}
}

// With returns a Logger that adds attrs to every record. Nil in, nil out.
func (l *Logger) With(attrs ...slog.Attr) *Logger {
	if l == nil {
		return nil
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return &Logger{s: l.s.With(args...)}
}

// Enabled reports whether records at level would be emitted (false on a
// nil logger).
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	return l.s.Enabled(context.Background(), level)
}

// Debug logs at debug level. No-op on a nil logger.
func (l *Logger) Debug(msg string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.s.LogAttrs(context.Background(), slog.LevelDebug, msg, attrs...)
}

// Info logs at info level. No-op on a nil logger.
func (l *Logger) Info(msg string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.s.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// Warn logs at warn level. No-op on a nil logger.
func (l *Logger) Warn(msg string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.s.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
}

// Error logs at error level. No-op on a nil logger.
func (l *Logger) Error(msg string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.s.LogAttrs(context.Background(), slog.LevelError, msg, attrs...)
}

// RequestID is the canonical request-correlation attribute; the same ID
// appears on the response's X-Request-ID header and the run's trace
// spans.
func RequestID(id string) slog.Attr { return slog.String("request_id", id) }

// Route is the matched route pattern (not the raw URL, which may carry
// user data).
func Route(route string) slog.Attr { return slog.String("route", route) }

// Status is the final HTTP status code of a request.
func Status(code int) slog.Attr { return slog.Int("status", code) }

// Duration is the wall-clock duration of the logged operation.
func Duration(d time.Duration) slog.Attr { return slog.Duration("duration", d) }

// Err is the canonical error attribute ("error" key, Error() value); nil
// maps to an empty string so call sites need no branch.
func Err(err error) slog.Attr {
	if err == nil {
		return slog.String("error", "")
	}
	return slog.String("error", err.Error())
}
