package slogx

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", RequestID("r"))
	l.Warn("w")
	l.Error("e", Err(nil))
	if l.With(Route("/x")) != nil {
		t.Fatal("With on nil must return nil")
	}
	if l.Enabled(slog.LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestJSONRecordsCarryCanonicalAttrs(t *testing.T) {
	var b strings.Builder
	l := New(Options{Format: "json", W: &b, OmitTime: true})
	l = l.With(Route("/v1/score"))
	l.Info("request done", RequestID("req-00000042"), Status(200))

	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, b.String())
	}
	if _, hasTime := rec["time"]; hasTime {
		t.Fatalf("OmitTime left a time attr: %v", rec)
	}
	for k, want := range map[string]any{
		"msg":        "request done",
		"level":      "INFO",
		"route":      "/v1/score",
		"request_id": "req-00000042",
		"status":     float64(200),
	} {
		if rec[k] != want {
			t.Errorf("attr %q = %v, want %v (record %v)", k, rec[k], want, rec)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := New(Options{Level: "warn", W: &b, OmitTime: true})
	l.Info("dropped")
	l.Warn("kept")
	out := b.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filter wrong:\n%s", out)
	}
	if !l.Enabled(slog.LevelError) || l.Enabled(slog.LevelDebug) {
		t.Fatal("Enabled disagrees with the configured level")
	}
}

func TestTextFormat(t *testing.T) {
	var b strings.Builder
	New(Options{Format: "text", W: &b, OmitTime: true}).Info("hello", Status(429))
	if out := b.String(); !strings.Contains(out, "msg=hello") || !strings.Contains(out, "status=429") {
		t.Fatalf("text handler output unexpected:\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo, "": slog.LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestErrAttr(t *testing.T) {
	if Err(nil).Value.String() != "" {
		t.Fatal("Err(nil) must be empty")
	}
}
