package obs

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
)

// Provenance identifies the build and host that produced a metrics
// snapshot or benchmark result, so baselines compared across machines and
// PRs are attributable: a counter drift flagged by the bench gate reads
// differently when the two runs came from different commits, Go versions
// or GOMAXPROCS settings.
type Provenance struct {
	// GitCommit is the VCS revision the binary was built from (empty when
	// the build had no VCS stamping, e.g. `go test` binaries).
	GitCommit string `json:"git_commit,omitempty"`
	// GitDirty reports uncommitted changes at build time.
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CollectProvenance captures the current build and host identity.
func CollectProvenance() Provenance {
	p := Provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitCommit = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
	}
	return p
}

// Report is the stamped JSON form of a snapshot: the metrics plus the
// provenance of the run that produced them. The CLIs emit this shape
// (trajmine -metricsout, the debug server's /metrics?format=json).
type Report struct {
	Provenance Provenance `json:"provenance"`
	Metrics    Snapshot   `json:"metrics"`
}

// NewReport stamps a snapshot with the current build provenance.
func NewReport(s Snapshot) Report {
	return Report{Provenance: CollectProvenance(), Metrics: s}
}

// JSON returns the report serialized as indented JSON.
func (r Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
