// Package obs is a small, dependency-free observability layer for the
// miner's hot paths: atomic counters, gauges and phase timers collected in
// a Registry whose Snapshot serializes deterministically to text and JSON.
//
// The design goal is zero cost when disabled: every handle type (*Counter,
// *Gauge, *Timer) and *Registry itself treat a nil receiver as a no-op, so
// instrumented code resolves handles once up front —
//
//	m := cfg.Metrics.Counter("miner.candidates.fresh") // nil when Metrics is nil
//	...
//	m.Add(int64(len(fresh))) // single predictable branch when disabled
//
// — and pays only a nil check per event when no registry is attached.
// When a registry is attached, updates are single atomic operations and
// safe for concurrent use.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (by convention) atomic counter.
// All methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value (or maximum) gauge. All methods are safe
// on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates the duration and invocation count of a phase. All
// methods are safe on a nil receiver.
type Timer struct {
	totalNS atomic.Int64
	count   atomic.Int64
}

// Start begins one timed phase and returns the function that ends it.
// On a nil timer the returned stop function is a no-op.
func (t *Timer) Start() (stop func()) {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Observe records one phase of duration d.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.totalNS.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.totalNS.Load())
}

// Count returns how many phases were observed.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Registry is a named collection of counters, gauges and timers. The zero
// value is not usable; call New. A nil *Registry is a valid "disabled"
// registry: its lookup methods return nil handles, whose updates are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the histogram registered under name, creating it on
// first use with DefaultDurationBuckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramWith(name, DefaultDurationBuckets)
}

// HistogramWith returns the histogram registered under name, creating it
// on first use with the given upper bounds (sorted copy; an implicit +Inf
// bucket is always appended). An already-registered name keeps its
// original buckets — first registration wins, so a layout is fixed for
// the registry's lifetime. Returns nil on a nil registry.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// TimerStat is the snapshot form of one Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Snapshot is a point-in-time copy of a registry's instruments. Map keys
// are instrument names; encoding/json marshals them sorted, so the JSON
// form is deterministic, as is String.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Timers     map[string]TimerStat     `json:"timers,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot copies the current instrument values. A nil registry yields the
// zero Snapshot. Instruments updated concurrently with Snapshot land in
// either the old or the new state per instrument.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStat, len(r.timers))
		for name, t := range r.timers {
			s.Timers[name] = TimerStat{Count: t.Count(), TotalNS: int64(t.Total())}
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStat, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Counter returns the snapshotted value of the named counter (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted value of the named gauge (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// String renders the snapshot as aligned text with every section sorted by
// name, so equal snapshots render identically.
func (s Snapshot) String() string {
	var b strings.Builder
	section := func(title string, names []string, value func(string) string) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		width := 0
		for _, n := range names {
			if len(n) > width {
				width = len(n)
			}
		}
		fmt.Fprintf(&b, "%s:\n", title)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-*s  %s\n", width, n, value(n))
		}
	}
	section("counters", keys(s.Counters), func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	})
	section("gauges", keys(s.Gauges), func(n string) string {
		return fmt.Sprintf("%d", s.Gauges[n])
	})
	section("timers", keys(s.Timers), func(n string) string {
		t := s.Timers[n]
		return fmt.Sprintf("%d × %v total", t.Count, time.Duration(t.TotalNS))
	})
	section("histograms", keys(s.Histograms), func(n string) string {
		h := s.Histograms[n]
		return fmt.Sprintf("%d obs, sum %g", h.Count, h.Sum)
	})
	return b.String()
}

// JSON returns the snapshot serialized as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
