package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateProm is a strict line-format validator for the Prometheus text
// exposition subset WriteProm emits. It enforces, per family: a HELP line
// immediately followed by a TYPE line for the same metric name, at least
// one sample, no duplicate or interleaved families, legal metric and
// label names, legal label-value escaping (only \\, \" and \n), and no
// timestamps. For histogram families it additionally checks the bucket
// invariants scrapers rely on: `le` bounds strictly ascending, cumulative
// bucket counts monotone non-decreasing, a final `+Inf` bucket, and
// `+Inf` bucket count == `_count`. For summaries it requires `_count`
// and `_sum`. Returns nil for conformant input, or an error naming the
// first offending line.
func ValidateProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type familyState struct {
		name string
		typ  string
		// histogram state
		buckets   int
		lastLE    float64
		lastCount int64
		infCount  int64
		sawInf    bool
		sawSum    bool
		sawCount  bool
		countVal  int64
		samples   int
	}
	seen := map[string]bool{}
	var fam *familyState
	var pendingHelp string // metric name from a HELP line awaiting its TYPE
	lineNo := 0

	closeFamily := func() error {
		if fam == nil {
			return nil
		}
		if fam.samples == 0 {
			return fmt.Errorf("family %q has no samples", fam.name)
		}
		switch fam.typ {
		case "histogram":
			if !fam.sawInf {
				return fmt.Errorf("histogram %q has no +Inf bucket", fam.name)
			}
			if !fam.sawSum || !fam.sawCount {
				return fmt.Errorf("histogram %q missing _sum or _count", fam.name)
			}
			if fam.infCount != fam.countVal {
				return fmt.Errorf("histogram %q: +Inf bucket %d != _count %d", fam.name, fam.infCount, fam.countVal)
			}
		case "summary":
			if !fam.sawSum || !fam.sawCount {
				return fmt.Errorf("summary %q missing _sum or _count", fam.name)
			}
		}
		fam = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if line == "" {
			return fail("blank line")
		}

		if strings.HasPrefix(line, "# HELP ") {
			if pendingHelp != "" {
				return fail("HELP %q while HELP %q awaits its TYPE", line, pendingHelp)
			}
			if err := closeFamily(); err != nil {
				return fail("%v", err)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, ok := strings.Cut(rest, " ")
			if !ok || doc == "" {
				return fail("HELP without docstring")
			}
			if !validPromName(name) {
				return fail("invalid metric name %q in HELP", name)
			}
			if seen[name] {
				return fail("duplicate family %q", name)
			}
			if err := checkEscapes(doc, false); err != nil {
				return fail("HELP docstring for %q: %v", name, err)
			}
			pendingHelp = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fail("TYPE without a type")
			}
			if pendingHelp == "" {
				return fail("TYPE %q without preceding HELP", name)
			}
			if name != pendingHelp {
				return fail("TYPE for %q does not match preceding HELP for %q", name, pendingHelp)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown metric type %q", typ)
			}
			seen[name] = true
			fam = &familyState{name: name, typ: typ, lastLE: math.Inf(-1)}
			pendingHelp = ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fail("unexpected comment %q (only HELP and TYPE allowed)", line)
		}
		if pendingHelp != "" {
			return fail("sample line while HELP %q awaits its TYPE", pendingHelp)
		}
		if fam == nil {
			return fail("sample outside any HELP/TYPE family")
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fail("%v", err)
		}
		fam.samples++

		switch fam.typ {
		case "counter", "gauge", "untyped":
			if name != fam.name {
				return fail("sample %q inside family %q", name, fam.name)
			}
			if (fam.typ == "counter") && (value < 0 || math.IsNaN(value)) {
				return fail("counter %q has negative or NaN value %v", name, value)
			}
		case "summary":
			switch name {
			case fam.name + "_count":
				fam.sawCount = true
				if value < 0 || value != math.Trunc(value) {
					return fail("summary %q _count %v is not a non-negative integer", fam.name, value)
				}
			case fam.name + "_sum":
				fam.sawSum = true
			case fam.name:
				if _, ok := labels["quantile"]; !ok {
					return fail("summary sample %q lacks a quantile label", name)
				}
			default:
				return fail("sample %q inside summary family %q", name, fam.name)
			}
		case "histogram":
			switch name {
			case fam.name + "_bucket":
				leStr, ok := labels["le"]
				if !ok {
					return fail("histogram bucket for %q lacks an le label", fam.name)
				}
				if fam.sawInf {
					return fail("histogram %q has buckets after +Inf", fam.name)
				}
				le, perr := strconv.ParseFloat(leStr, 64)
				if perr != nil || math.IsNaN(le) {
					return fail("histogram %q: unparsable le %q", fam.name, leStr)
				}
				if le <= fam.lastLE {
					return fail("histogram %q: le %q not strictly ascending (previous %v)", fam.name, leStr, fam.lastLE)
				}
				if value < 0 || value != math.Trunc(value) {
					return fail("histogram %q: bucket count %v is not a non-negative integer", fam.name, value)
				}
				count := int64(value)
				if fam.buckets > 0 && count < fam.lastCount {
					return fail("histogram %q: cumulative bucket count decreased (%d after %d)", fam.name, count, fam.lastCount)
				}
				fam.buckets++
				fam.lastLE = le
				fam.lastCount = count
				if math.IsInf(le, 1) {
					fam.sawInf = true
					fam.infCount = count
				}
			case fam.name + "_sum":
				fam.sawSum = true
			case fam.name + "_count":
				fam.sawCount = true
				if value < 0 || value != math.Trunc(value) {
					return fail("histogram %q: _count %v is not a non-negative integer", fam.name, value)
				}
				fam.countVal = int64(value)
			default:
				return fail("sample %q inside histogram family %q", name, fam.name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if pendingHelp != "" {
		return fmt.Errorf("EOF: HELP %q without TYPE", pendingHelp)
	}
	if err := closeFamily(); err != nil {
		return fmt.Errorf("EOF: %v", err)
	}
	if len(seen) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

// parsePromSample splits one sample line into base metric name, label
// map, and value, validating names, escaping, and the absence of
// timestamps along the way.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parsePromLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		rest = " " + rest
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if !strings.HasPrefix(rest, " ") {
		return "", nil, 0, fmt.Errorf("missing space before value in %q", line)
	}
	rest = rest[1:]
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("expected exactly one value (no timestamp) in %q", line)
	}
	value, err = parsePromValue(rest)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, value, nil
}

// parsePromLabels parses the interior of a {…} label set.
func parsePromLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s)
		}
		lname := s[:eq]
		if !validPromLabelName(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %q value is not quoted", lname)
		}
		s = s[1:]
		// Scan to the closing unescaped quote.
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q: trailing backslash", lname)
				}
				i++
				switch s[i] {
				case '\\', '"', 'n':
					val.WriteByte('\\')
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("label %q: illegal escape \\%c", lname, s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", lname)
		}
		if _, dup := labels[lname]; dup {
			return nil, fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = unescapeLabel(val.String())
		if s == "" {
			break
		}
		if !strings.HasPrefix(s, ",") {
			return nil, fmt.Errorf("expected ',' between labels, got %q", s)
		}
		s = s[1:]
	}
	return labels, nil
}

func unescapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}

// parsePromValue parses a sample value, accepting the spelled-out
// infinities and NaN the format defines.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validPromName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validPromLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validPromLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkEscapes verifies a HELP docstring (or, with quoted=true, a raw
// label value) uses only legal escape sequences.
func checkEscapes(s string, quoted bool) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) {
			return fmt.Errorf("trailing backslash")
		}
		i++
		switch s[i] {
		case '\\', 'n':
		case '"':
			if !quoted {
				return fmt.Errorf(`\" escape outside a quoted value`)
			}
		default:
			return fmt.Errorf("illegal escape \\%c", s[i])
		}
	}
	return nil
}
