package obs

import (
	"strings"
	"testing"
	"time"
)

func testReport() Report {
	r := New()
	r.Counter("miner.nm.evals").Add(42)
	r.Counter("weird name/with:chars").Inc()
	r.Gauge("serve.inflight").Set(3)
	r.Timer("miner.phase.extend").Observe(1500 * time.Millisecond)
	h := r.HistogramWith("serve.latency/v1/score", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	rep := NewReport(r.Snapshot())
	rep.Provenance.GitCommit = `abc"def\ghi`
	return rep
}

func TestWritePromValidates(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, testReport()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidateProm(strings.NewReader(out)); err != nil {
		t.Fatalf("encoder output failed its own validator: %v\n%s", err, out)
	}
	for _, want := range []string{
		"trajpattern_build_info{",
		`git_commit="abc\"def\\ghi"`,
		"# TYPE miner_nm_evals counter",
		"miner_nm_evals 42",
		"# TYPE serve_inflight gauge",
		"# TYPE miner_phase_extend summary",
		"miner_phase_extend_sum 1.5",
		"# TYPE serve_latency_v1_score histogram",
		`serve_latency_v1_score_bucket{le="0.01"} 1`,
		`serve_latency_v1_score_bucket{le="0.1"} 2`,
		`serve_latency_v1_score_bucket{le="1"} 2`,
		`serve_latency_v1_score_bucket{le="+Inf"} 3`,
		"serve_latency_v1_score_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	rep := testReport()
	var a, b strings.Builder
	if err := WriteProm(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, rep); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renderings of the same report differ")
	}
}

func TestWritePromNameCollision(t *testing.T) {
	r := New()
	r.Counter("a.b").Inc()
	r.Counter("a/b").Inc()
	var b strings.Builder
	if err := WriteProm(&b, NewReport(r.Snapshot())); err != nil {
		t.Fatal(err)
	}
	if err := ValidateProm(strings.NewReader(b.String())); err != nil {
		t.Fatalf("colliding sanitized names produced invalid exposition: %v\n%s", err, b.String())
	}
}

func TestValidatePromRejects(t *testing.T) {
	cases := map[string]string{
		"type without help": "# TYPE x counter\nx 1\n",
		"help without type": "# HELP x doc\nx 1\n",
		"mismatched pair":   "# HELP x doc\n# TYPE y counter\ny 1\n",
		"duplicate family":  "# HELP x doc\n# TYPE x counter\nx 1\n# HELP x doc\n# TYPE x counter\nx 2\n",
		"no samples":        "# HELP x doc\n# TYPE x counter\n# HELP y doc\n# TYPE y counter\ny 1\n",
		"bad metric name":   "# HELP 1x doc\n# TYPE 1x counter\n1x 1\n",
		"bad escape":        "# HELP x doc\n# TYPE x gauge\nx{l=\"a\\t\"} 1\n",
		"unterminated":      "# HELP x doc\n# TYPE x gauge\nx{l=\"a} 1\n",
		"timestamp":         "# HELP x doc\n# TYPE x counter\nx 1 1700000000\n",
		"negative counter":  "# HELP x doc\n# TYPE x counter\nx -1\n",
		"non-monotone buckets": "# HELP x doc\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_sum 1\nx_count 5\n",
		"descending le": "# HELP x doc\n# TYPE x histogram\n" +
			"x_bucket{le=\"2\"} 1\nx_bucket{le=\"1\"} 2\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 2\n",
		"missing +Inf": "# HELP x doc\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_sum 1\nx_count 1\n",
		"+Inf != count": "# HELP x doc\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 3\n",
		"summary missing sum": "# HELP x doc\n# TYPE x summary\nx_count 1\n",
		"blank line":          "# HELP x doc\n# TYPE x counter\n\nx 1\n",
		"stray sample":        "x 1\n",
		"empty input":         "",
	}
	for name, in := range cases {
		if err := ValidateProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted malformed input:\n%s", name, in)
		}
	}
}

func TestValidatePromAcceptsMinimal(t *testing.T) {
	in := "# HELP x one metric\n# TYPE x gauge\nx{l=\"a\\\\b\\\"c\\nd\"} 1\n"
	if err := ValidateProm(strings.NewReader(in)); err != nil {
		t.Fatalf("minimal valid input rejected: %v", err)
	}
}
