package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format this
// package emits (Prometheus text format 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm encodes a provenance-stamped report in the Prometheus text
// exposition format: provenance as an info-style labeled gauge
// (trajpattern_build_info 1), counters and gauges under their sanitized
// snapshot names, timers as quantile-less summaries (name_count /
// name_sum, sum in seconds), and histograms as classic cumulative-bucket
// histograms (name_bucket{le="…"} / name_sum / name_count). Every family
// carries a HELP/TYPE pair, families are emitted in sorted name order
// after build_info, and the whole rendering is deterministic for a given
// snapshot. ValidateProm checks exactly this grammar.
func WriteProm(w io.Writer, r Report) error {
	var b strings.Builder

	b.WriteString("# HELP trajpattern_build_info Build and host provenance of the process that produced these metrics.\n")
	b.WriteString("# TYPE trajpattern_build_info gauge\n")
	p := r.Provenance
	labels := []string{
		promLabel("git_commit", p.GitCommit),
		promLabel("git_dirty", strconv.FormatBool(p.GitDirty)),
		promLabel("go_version", p.GoVersion),
		promLabel("goos", p.GOOS),
		promLabel("goarch", p.GOARCH),
		promLabel("gomaxprocs", strconv.Itoa(p.GOMAXPROCS)),
		promLabel("num_cpu", strconv.Itoa(p.NumCPU)),
	}
	fmt.Fprintf(&b, "trajpattern_build_info{%s} 1\n", strings.Join(labels, ","))

	s := r.Metrics
	type family struct {
		name string // sanitized exposition name
		emit func(b *strings.Builder, name string)
	}
	var fams []family
	used := map[string]bool{"trajpattern_build_info": true}
	add := func(orig string, emit func(b *strings.Builder, name string)) {
		name := promName(orig)
		// Distinct snapshot names can sanitize identically ("a.b" and
		// "a/b"); suffix deterministically rather than emit a duplicate
		// family, which the validator rejects.
		for used[name] {
			name += "_"
		}
		used[name] = true
		fams = append(fams, family{name: name, emit: emit})
	}

	for _, n := range sortedNames(s.Counters) {
		v := s.Counters[n]
		add(n, func(b *strings.Builder, name string) {
			fmt.Fprintf(b, "# HELP %s trajpattern counter %s\n", name, promHelp(n))
			fmt.Fprintf(b, "# TYPE %s counter\n", name)
			fmt.Fprintf(b, "%s %d\n", name, v)
		})
	}
	for _, n := range sortedNames(s.Gauges) {
		v := s.Gauges[n]
		add(n, func(b *strings.Builder, name string) {
			fmt.Fprintf(b, "# HELP %s trajpattern gauge %s\n", name, promHelp(n))
			fmt.Fprintf(b, "# TYPE %s gauge\n", name)
			fmt.Fprintf(b, "%s %d\n", name, v)
		})
	}
	for _, n := range sortedNames(s.Timers) {
		t := s.Timers[n]
		add(n, func(b *strings.Builder, name string) {
			fmt.Fprintf(b, "# HELP %s trajpattern timer %s (sum in seconds)\n", name, promHelp(n))
			fmt.Fprintf(b, "# TYPE %s summary\n", name)
			fmt.Fprintf(b, "%s_count %d\n", name, t.Count)
			fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(float64(t.TotalNS)/1e9))
		})
	}
	for _, n := range sortedNames(s.Histograms) {
		h := s.Histograms[n]
		add(n, func(b *strings.Builder, name string) {
			fmt.Fprintf(b, "# HELP %s trajpattern histogram %s\n", name, promHelp(n))
			fmt.Fprintf(b, "# TYPE %s histogram\n", name)
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
			}
			if len(h.Counts) > 0 {
				cum += h.Counts[len(h.Counts)-1]
			}
			fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(h.Sum))
			fmt.Fprintf(b, "%s_count %d\n", name, cum)
		})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit(&b, f.name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a dotted snapshot name onto the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune becomes '_', and a leading
// digit gets a '_' prefix.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promHelp escapes a HELP docstring: backslashes and newlines only (the
// format's two escape sequences for help text).
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabel renders one name="value" pair with label-value escaping
// (backslash, double quote, newline).
func promLabel(name, value string) string {
	value = strings.ReplaceAll(value, `\`, `\\`)
	value = strings.ReplaceAll(value, `"`, `\"`)
	value = strings.ReplaceAll(value, "\n", `\n`)
	return name + `="` + value + `"`
}

// promFloat renders a float sample value (or bucket bound) the way
// Prometheus expects: shortest round-trip decimal, +Inf/-Inf/NaN spelled
// out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedNames returns the sorted key set of a string-keyed map.
func sortedNames[V any](m map[string]V) []string {
	out := keys(m)
	sort.Strings(out)
	return out
}
