package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultDurationBuckets are the log-linear upper bounds (in seconds) a
// Registry.Histogram uses when the caller does not pick its own: a 1-2.5-5
// progression per decade from 100µs to 50s. The progression is fixed so
// every run of the same binary snapshots identical bucket layouts — the
// distribution is comparable across runs even though the counts are
// timing-class (never part of the deterministic bench gate).
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50,
}

// Histogram is a fixed-bucket histogram of float64 observations (by
// convention seconds, matching Prometheus). Buckets are chosen once at
// creation and never change; observations land in the first bucket whose
// upper bound is >= the value, with an implicit +Inf overflow bucket. All
// methods are safe on a nil receiver and for concurrent use.
//
// Count is derived from the bucket counts, so a snapshot's +Inf cumulative
// bucket always equals its count even when observations race the snapshot
// — the invariant the Prometheus exposition (and its conformance
// validator) rely on. Sum may trail the bucket counts by in-flight
// observations; no format-level invariant ties it to them.
type Histogram struct {
	bounds []float64      // ascending upper bounds; immutable after creation
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf overflow
	sum    atomicFloat
}

// atomicFloat is a float64 accumulated with a CAS loop over its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// newHistogram builds a histogram over a defensive sorted copy of bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. NaN observations are dropped — one poisoned
// measurement must not corrupt the running sum forever.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v != v { // NaN
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v ("le" semantics)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Start begins one timed phase and returns the function that ends it by
// observing the elapsed duration. On a nil histogram the returned stop
// function is a no-op.
func (h *Histogram) Start() (stop func()) {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.ObserveDuration(time.Since(start)) }
}

// Count returns the number of observations (0 for a nil histogram),
// derived from the bucket counts.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// HistogramStat is the snapshot form of one Histogram. Bounds and Counts
// are parallel except that Counts carries one extra trailing entry, the
// +Inf overflow bucket; counts are per-bucket, not cumulative.
type HistogramStat struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// snapshot copies the histogram's state. Count is the sum of the copied
// bucket counts, so the stat is internally consistent even under
// concurrent observation.
func (h *Histogram) snapshot() HistogramStat {
	s := HistogramStat{
		Sum:    h.sum.load(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}
