package report

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trajpattern/internal/geom"
)

func TestValidateFixTable(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		obj   string
		time  float64
		loc   geom.Point
		field string // "" means accept
	}{
		{name: "valid", obj: "zebra-1", time: 1.5, loc: geom.Pt(2, 3)},
		{name: "valid negative time", obj: "z", time: -10, loc: geom.Pt(0, 0)},
		{name: "valid max-length obj", obj: strings.Repeat("a", MaxObjectIDLen), time: 0, loc: geom.Pt(0, 0)},
		{name: "empty obj", obj: "", time: 1, loc: geom.Pt(0, 0), field: "obj"},
		{name: "oversized obj", obj: strings.Repeat("a", MaxObjectIDLen+1), time: 1, loc: geom.Pt(0, 0), field: "obj"},
		{name: "newline in obj", obj: "ze\nbra", time: 1, loc: geom.Pt(0, 0), field: "obj"},
		{name: "NUL in obj", obj: "ze\x00bra", time: 1, loc: geom.Pt(0, 0), field: "obj"},
		{name: "DEL in obj", obj: "ze\x7fbra", time: 1, loc: geom.Pt(0, 0), field: "obj"},
		{name: "NaN time", obj: "z", time: nan, loc: geom.Pt(0, 0), field: "time"},
		{name: "+Inf time", obj: "z", time: inf, loc: geom.Pt(0, 0), field: "time"},
		{name: "-Inf time", obj: "z", time: -inf, loc: geom.Pt(0, 0), field: "time"},
		{name: "NaN x", obj: "z", time: 1, loc: geom.Pt(nan, 0), field: "loc.x"},
		{name: "Inf x", obj: "z", time: 1, loc: geom.Pt(inf, 0), field: "loc.x"},
		{name: "NaN y", obj: "z", time: 1, loc: geom.Pt(0, nan), field: "loc.y"},
		{name: "-Inf y", obj: "z", time: 1, loc: geom.Pt(0, -inf), field: "loc.y"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateFix(tc.obj, tc.time, tc.loc)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("ValidateFix rejected a valid report: %v", err)
				}
				return
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error %v (%T), want *ValidationError", err, err)
			}
			if ve.Field != tc.field {
				t.Fatalf("rejected field %q, want %q (err: %v)", ve.Field, tc.field, err)
			}
		})
	}
}

func TestCheckOrderTable(t *testing.T) {
	cases := []struct {
		name    string
		prev    float64
		got     float64
		hasPrev bool
		reject  bool
	}{
		{name: "first report always in order", prev: 0, got: -100, hasPrev: false},
		{name: "strictly increasing", prev: 1, got: 2, hasPrev: true},
		{name: "equal time rejected", prev: 2, got: 2, hasPrev: true, reject: true},
		{name: "regression rejected", prev: 5, got: 4.5, hasPrev: true, reject: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckOrder("obj-1", tc.prev, tc.got, tc.hasPrev)
			if !tc.reject {
				if err != nil {
					t.Fatalf("CheckOrder rejected an in-order report: %v", err)
				}
				return
			}
			var oe *OrderError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v (%T), want *OrderError", err, err)
			}
			if oe.Obj != "obj-1" || oe.Prev != tc.prev || oe.Got != tc.got {
				t.Fatalf("OrderError fields = %+v, want obj-1/%v/%v", oe, tc.prev, tc.got)
			}
		})
	}
}

func TestWireErrorMessagesCarryPaths(t *testing.T) {
	err := ValidateFix("z", math.NaN(), geom.Pt(0, 0))
	if !strings.Contains(err.Error(), "time") {
		t.Fatalf("ValidationError message %q does not name the field", err)
	}
	oerr := CheckOrder("zebra-7", 9, 3, true)
	msg := oerr.Error()
	if !strings.Contains(msg, "zebra-7") || !strings.Contains(msg, "9") || !strings.Contains(msg, "3") {
		t.Fatalf("OrderError message %q does not carry object and times", msg)
	}
	// Nil typed errors still produce usable messages (nilguard contract).
	if (*ValidationError)(nil).Error() == "" || (*OrderError)(nil).Error() == "" {
		t.Fatal("nil error receivers must still describe themselves")
	}
}
