// Package report simulates the location reporting scheme of Section 3.1 of
// the TrajPattern paper: a set of mobile devices that know their own
// (true) locations, and a server that dead-reckons each device's position
// between reports.
//
// The contract is the one the paper requires of any location inference
// method: at any time the server holds a predicted location, and the true
// location follows a distribution around it. A device compares its true
// position against the server's prediction and transmits a report only when
// the deviation exceeds the tolerable uncertainty distance U; each
// transmission may independently be lost with probability LossProb (the
// paper's motivation for choosing the confidence constant c).
//
// The output of the simulation — the reports the server actually received —
// is fed through traj.Synchronize to produce the imprecise trajectories
// that the miners consume.
package report

import (
	"fmt"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

// Config parameterizes the reporting scheme.
type Config struct {
	// U is the tolerable uncertainty distance: a device reports when its
	// true location is more than U from the server's prediction. Must be
	// positive.
	U float64
	// C is the confidence constant relating U to the distribution spread
	// (σ = U/C). C = 2 corresponds to tolerating a 5% message loss. Must
	// be positive.
	C float64
	// LossProb is the probability that any single report transmission is
	// lost. Must be in [0, 1). The initial fix of each device is assumed
	// delivered (a device retries its first registration until it
	// succeeds).
	LossProb float64
}

func (c Config) validate() error {
	switch {
	case c.U <= 0:
		return fmt.Errorf("report: Config.U must be > 0, got %v", c.U)
	case c.C <= 0:
		return fmt.Errorf("report: Config.C must be > 0, got %v", c.C)
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("report: Config.LossProb must be in [0,1), got %v", c.LossProb)
	}
	return nil
}

// Result captures one device's simulation: the reports the server received
// plus transmission statistics.
type Result struct {
	Received []traj.Report // reports that reached the server, in time order
	Sent     int           // reports the device attempted to transmit
	Lost     int           // attempted reports dropped by the channel
}

// Simulate runs the reporting protocol for one device. times[i] is the
// instant at which the device observes its true position path[i]; both
// slices must have equal, non-zero length and times must be strictly
// increasing. rng drives message loss and may be shared across devices.
func Simulate(times []float64, path []geom.Point, cfg Config, rng *stat.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if len(times) == 0 || len(times) != len(path) {
		return Result{}, fmt.Errorf("report: times (%d) and path (%d) must be equal and non-empty", len(times), len(path))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return Result{}, fmt.Errorf("report: times must be strictly increasing (index %d)", i)
		}
	}

	var res Result
	// The initial fix always reaches the server.
	res.Received = append(res.Received, traj.Report{Time: times[0], Loc: path[0]})
	res.Sent++

	for i := 1; i < len(times); i++ {
		predicted := traj.PredictAt(res.Received, times[i])
		if predicted.Dist(path[i]) <= cfg.U {
			continue // prediction good enough, stay silent
		}
		res.Sent++
		if rng != nil && rng.Bool(cfg.LossProb) {
			res.Lost++
			continue // channel dropped the report; server keeps predicting
		}
		res.Received = append(res.Received, traj.Report{Time: times[i], Loc: path[i]})
	}
	return res, nil
}

// Efficiency summarizes what the reporting scheme saved: the paper's §1
// motivation is that dead reckoning lets devices stay silent most of the
// time.
type Efficiency struct {
	Readings     int     // device-side position readings
	Sent         int     // transmissions attempted
	Lost         int     // transmissions dropped by the channel
	Delivered    int     // reports that reached the server
	SilenceRatio float64 // fraction of readings that required no transmission
}

// Summarize aggregates per-device results. readingsPerDevice is the number
// of position readings each device took (the observation count).
func Summarize(results []Result, readingsPerDevice int) Efficiency {
	var e Efficiency
	for _, r := range results {
		e.Readings += readingsPerDevice
		e.Sent += r.Sent
		e.Lost += r.Lost
		e.Delivered += len(r.Received)
	}
	if e.Readings > 0 {
		e.SilenceRatio = 1 - float64(e.Sent)/float64(e.Readings)
	}
	return e
}

// BuildDataset runs the reporting protocol for every device path and
// synchronizes the received reports onto the snapshot schedule, yielding
// the imprecise location trajectories the miners take as input. All paths
// share the observation times. The sync configuration's U and C are taken
// from cfg so that σ = U/C is consistent with the reporting scheme.
func BuildDataset(times []float64, paths [][]geom.Point, cfg Config, start, interval float64, count int, rng *stat.RNG) (traj.Dataset, []Result, error) {
	ds := make(traj.Dataset, 0, len(paths))
	results := make([]Result, 0, len(paths))
	syncCfg := traj.SyncConfig{Start: start, Interval: interval, Count: count, U: cfg.U, C: cfg.C}
	for i, path := range paths {
		res, err := Simulate(times, path, cfg, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("report: device %d: %w", i, err)
		}
		tr, err := traj.Synchronize(res.Received, syncCfg)
		if err != nil {
			return nil, nil, fmt.Errorf("report: device %d: %w", i, err)
		}
		ds = append(ds, tr)
		results = append(results, res)
	}
	return ds, results, nil
}
