package report

import (
	"fmt"
	"math"
	"strings"

	"trajpattern/internal/geom"
)

// MaxObjectIDLen bounds the object identifier accepted on the ingest
// wire. Long IDs are almost certainly garbage (or an attack on the WAL's
// record framing, which encodes the ID length in two bytes), so the
// bound is generous for real fleets and tiny against both.
const MaxObjectIDLen = 128

// ValidationError is the typed, path-annotated rejection of one wire
// report field: Field names the offending JSON path ("loc.x", "time",
// "obj"), mirroring the path:line annotations the trajectory IO
// hardening gave file decoders. The ingest layer maps it to 400.
type ValidationError struct {
	// Field is the JSON path of the rejected field.
	Field string
	// Msg says what was wrong with it.
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e == nil {
		return "report: invalid report"
	}
	return fmt.Sprintf("report: invalid field %s: %s", e.Field, e.Msg)
}

// OrderError is the typed rejection of an out-of-order per-object
// report: the dead-reckoning model (§3.1) consumes each object's fixes
// in strictly increasing time order, and the ingest windows rely on that
// invariant for deterministic eviction. The ingest layer maps it to 400.
type OrderError struct {
	// Obj is the reporting object.
	Obj string
	// Prev is the object's last accepted report time; Got the rejected
	// report's time (Got <= Prev).
	Prev, Got float64
}

// Error implements error.
func (e *OrderError) Error() string {
	if e == nil {
		return "report: out-of-order report"
	}
	return fmt.Sprintf("report: out-of-order report for object %q: time %v is not after the last accepted %v",
		e.Obj, e.Got, e.Prev)
}

// ValidateFix checks one wire report structurally: a usable object ID
// (non-empty, at most MaxObjectIDLen bytes, no control characters) and
// finite time and coordinates. NaN and ±Inf are rejected outright — a
// single poisoned float would propagate through dead reckoning into
// every probability downstream, the same failure mode the trajectory
// file decoders were hardened against. The returned error is always a
// *ValidationError.
func ValidateFix(obj string, t float64, loc geom.Point) error {
	switch {
	case obj == "":
		return &ValidationError{Field: "obj", Msg: "must not be empty"}
	case len(obj) > MaxObjectIDLen:
		return &ValidationError{Field: "obj", Msg: fmt.Sprintf("exceeds %d bytes (got %d)", MaxObjectIDLen, len(obj))}
	case strings.ContainsFunc(obj, func(r rune) bool { return r < 0x20 || r == 0x7f }):
		return &ValidationError{Field: "obj", Msg: "contains control characters"}
	case math.IsNaN(t):
		return &ValidationError{Field: "time", Msg: "is NaN"}
	case math.IsInf(t, 0):
		return &ValidationError{Field: "time", Msg: fmt.Sprintf("is not finite (%v)", t)}
	case math.IsNaN(loc.X) || math.IsInf(loc.X, 0):
		return &ValidationError{Field: "loc.x", Msg: fmt.Sprintf("is not finite (%v)", loc.X)}
	case math.IsNaN(loc.Y) || math.IsInf(loc.Y, 0):
		return &ValidationError{Field: "loc.y", Msg: fmt.Sprintf("is not finite (%v)", loc.Y)}
	}
	return nil
}

// CheckOrder enforces strictly increasing per-object report times: given
// an object's last accepted time prev, a new report at got must satisfy
// got > prev. hasPrev is false for the object's first report, which is
// always in order. The returned error is always an *OrderError.
func CheckOrder(obj string, prev, got float64, hasPrev bool) error {
	if hasPrev && got <= prev {
		return &OrderError{Obj: obj, Prev: prev, Got: got}
	}
	return nil
}
