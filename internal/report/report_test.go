package report

import (
	"math"
	"testing"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
	"trajpattern/internal/traj"
)

func cfg() Config { return Config{U: 0.5, C: 2, LossProb: 0} }

func times(n int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
	}
	return ts
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{U: 0, C: 2},
		{U: 1, C: 0},
		{U: 1, C: 2, LossProb: -0.1},
		{U: 1, C: 2, LossProb: 1},
	}
	path := []geom.Point{geom.Pt(0, 0)}
	for i, c := range bad {
		if _, err := Simulate(times(1), path, c, nil); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Simulate(nil, nil, cfg(), nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Simulate(times(2), []geom.Point{geom.Pt(0, 0)}, cfg(), nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Simulate([]float64{0, 0}, []geom.Point{{}, {}}, cfg(), nil); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestLinearMotionStaysSilent(t *testing.T) {
	// After the server learns the velocity from the first forced report,
	// perfectly linear motion never needs another report.
	n := 50
	path := make([]geom.Point, n)
	for i := range path {
		path[i] = geom.Pt(float64(i)*0.6, 0) // step 0.6 > U forces one report
	}
	res, err := Simulate(times(n), path, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Initial fix + one report when the unknown velocity first exceeds U;
	// from then on prediction is exact.
	if len(res.Received) != 2 {
		t.Errorf("received %d reports, want 2 (init + one velocity fix)", len(res.Received))
	}
}

func TestStationaryObjectReportsOnce(t *testing.T) {
	n := 20
	path := make([]geom.Point, n)
	for i := range path {
		path[i] = geom.Pt(1, 1)
	}
	res, err := Simulate(times(n), path, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Received) != 1 || res.Sent != 1 {
		t.Errorf("stationary object sent %d, received %d", res.Sent, len(res.Received))
	}
}

func TestDeviationTriggersReport(t *testing.T) {
	// An abrupt jump beyond U must produce a report.
	path := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(2, 2)}
	res, err := Simulate(times(3), path, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Received) != 2 {
		t.Fatalf("received = %d, want 2", len(res.Received))
	}
	if got := res.Received[1]; got.Time != 2 || got.Loc != geom.Pt(2, 2) {
		t.Errorf("jump report = %+v", got)
	}
}

func TestPredictionErrorBoundedWithoutLoss(t *testing.T) {
	// Invariant of the protocol: with a lossless channel, the server's
	// prediction error at every observation instant is at most U (it is
	// corrected the moment it would exceed U).
	rng := stat.NewRNG(11)
	n := 200
	path := make([]geom.Point, n)
	pos := geom.Pt(0.5, 0.5)
	for i := range path {
		pos = pos.Add(geom.Pt(rng.Normal(0, 0.2), rng.Normal(0, 0.2)))
		path[i] = pos
	}
	c := cfg()
	res, err := Simulate(times(n), path, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pred := traj.PredictAt(res.Received, float64(i))
		// At a report instant the prediction list already contains the
		// exact fix, so the error is 0; otherwise it stayed <= U.
		if pred.Dist(path[i]) > c.U+1e-12 {
			t.Fatalf("prediction error %v > U at t=%d", pred.Dist(path[i]), i)
		}
	}
	if res.Lost != 0 {
		t.Errorf("lossless channel lost %d", res.Lost)
	}
}

func TestMessageLoss(t *testing.T) {
	// A high-loss channel on a jittery path loses some reports, and lost
	// reports never appear in Received.
	rng := stat.NewRNG(13)
	n := 300
	path := make([]geom.Point, n)
	for i := range path {
		// Zig-zag guaranteeing frequent reports.
		path[i] = geom.Pt(float64(i%2)*2, float64(i))
	}
	c := Config{U: 0.5, C: 2, LossProb: 0.5}
	res, err := Simulate(times(n), path, c, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Error("expected losses on a 50% channel")
	}
	if res.Sent != len(res.Received)+res.Lost {
		t.Errorf("accounting: sent %d != received %d + lost %d", res.Sent, len(res.Received), res.Lost)
	}
}

func TestBuildDataset(t *testing.T) {
	n := 30
	paths := [][]geom.Point{make([]geom.Point, n), make([]geom.Point, n)}
	for i := 0; i < n; i++ {
		paths[0][i] = geom.Pt(float64(i)*0.1, 0)
		paths[1][i] = geom.Pt(0, float64(i)*0.1)
	}
	ds, results, err := BuildDataset(times(n), paths, cfg(), 0, 1, n, stat.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || len(results) != 2 {
		t.Fatalf("dataset shape %d/%d", len(ds), len(results))
	}
	for _, tr := range ds {
		if tr.Len() != n {
			t.Errorf("trajectory length %d, want %d", tr.Len(), n)
		}
		for _, p := range tr {
			if p.Sigma != cfg().U/cfg().C {
				t.Errorf("sigma = %v, want U/C", p.Sigma)
			}
			if !p.Mean.IsFinite() {
				t.Error("non-finite mean")
			}
		}
	}
	// Interpolated means stay close to the true path for smooth motion.
	for d, tr := range ds {
		for i, p := range tr {
			if p.Mean.Dist(paths[d][i]) > cfg().U+1e-9 {
				t.Errorf("device %d snapshot %d error %v > U", d, i, p.Mean.Dist(paths[d][i]))
			}
		}
	}
}

func TestBuildDatasetPropagatesErrors(t *testing.T) {
	if _, _, err := BuildDataset(times(2), [][]geom.Point{{geom.Pt(0, 0)}}, cfg(), 0, 1, 2, nil); err == nil {
		t.Error("mismatched path length accepted")
	}
}

func TestSummarize(t *testing.T) {
	results := []Result{
		{Received: []traj.Report{{}, {}}, Sent: 3, Lost: 1},
		{Received: []traj.Report{{}}, Sent: 1, Lost: 0},
	}
	e := Summarize(results, 10)
	if e.Readings != 20 || e.Sent != 4 || e.Lost != 1 || e.Delivered != 3 {
		t.Errorf("Efficiency = %+v", e)
	}
	if math.Abs(e.SilenceRatio-0.8) > 1e-12 {
		t.Errorf("SilenceRatio = %v", e.SilenceRatio)
	}
	if got := Summarize(nil, 5); got.SilenceRatio != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	n := 100
	path := make([]geom.Point, n)
	for i := range path {
		path[i] = geom.Pt(math.Sin(float64(i)), math.Cos(float64(i)))
	}
	c := Config{U: 0.3, C: 2, LossProb: 0.3}
	a, err := Simulate(times(n), path, c, stat.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(times(n), path, c, stat.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Received) != len(b.Received) || a.Lost != b.Lost {
		t.Error("same seed produced different simulations")
	}
}
