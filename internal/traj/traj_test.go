package traj

import (
	"math"
	"testing"
	"testing/quick"

	"trajpattern/internal/geom"
)

func TestToVelocity(t *testing.T) {
	loc := Trajectory{
		P(0, 0, 0.1),
		P(1, 0, 0.2),
		P(1, 2, 0.2),
	}
	v := loc.ToVelocity()
	if len(v) != 2 {
		t.Fatalf("velocity length = %d", len(v))
	}
	if v[0].Mean != geom.Pt(1, 0) || v[1].Mean != geom.Pt(0, 2) {
		t.Errorf("velocity means = %v, %v", v[0].Mean, v[1].Mean)
	}
	// σ' = sqrt(σᵢ² + σᵢ₊₁²).
	want := math.Hypot(0.1, 0.2)
	if math.Abs(v[0].Sigma-want) > 1e-15 {
		t.Errorf("velocity sigma = %v, want %v", v[0].Sigma, want)
	}
	// Too-short trajectories.
	if (Trajectory{P(0, 0, 1)}).ToVelocity() != nil {
		t.Error("single-point velocity should be nil")
	}
	if Trajectory(nil).ToVelocity() != nil {
		t.Error("empty velocity should be nil")
	}
}

func TestTrajectoryHelpers(t *testing.T) {
	tr := Trajectory{P(0, 0, 0.1), P(1, 1, 0.3), P(2, 0, 0.2)}
	if tr.Len() != 3 {
		t.Error("Len wrong")
	}
	if got := tr.MaxSigma(); got != 0.3 {
		t.Errorf("MaxSigma = %v", got)
	}
	means := tr.Means()
	if len(means) != 3 || means[1] != geom.Pt(1, 1) {
		t.Errorf("Means = %v", means)
	}
	c := tr.Clone()
	c[0].Mean = geom.Pt(9, 9)
	if tr[0].Mean == c[0].Mean {
		t.Error("Clone not deep")
	}
}

func TestValidate(t *testing.T) {
	good := Trajectory{P(0, 0, 0.1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	bad := Trajectory{P(math.NaN(), 0, 0.1)}
	if bad.Validate() == nil {
		t.Error("NaN mean accepted")
	}
	neg := Trajectory{P(0, 0, -0.1)}
	if neg.Validate() == nil {
		t.Error("negative sigma accepted")
	}
	d := Dataset{good, neg}
	if d.Validate() == nil {
		t.Error("dataset with bad trajectory accepted")
	}
}

func TestDatasetStats(t *testing.T) {
	d := Dataset{
		{P(0, 0, 0.1), P(1, 0, 0.1)},
		{P(0, 1, 0.3), P(2, 2, 0.3), P(3, 3, 0.3), P(4, 4, 0.3)},
	}
	if d.NumTrajectories() != 2 {
		t.Error("NumTrajectories wrong")
	}
	if d.TotalSnapshots() != 6 {
		t.Error("TotalSnapshots wrong")
	}
	if d.AvgLength() != 3 {
		t.Errorf("AvgLength = %v", d.AvgLength())
	}
	want := (0.1*2 + 0.3*4) / 6
	if math.Abs(d.MeanSigma()-want) > 1e-15 {
		t.Errorf("MeanSigma = %v, want %v", d.MeanSigma(), want)
	}
	b := d.Bounds()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(4, 4) {
		t.Errorf("Bounds = %v", b)
	}
	if (Dataset{}).AvgLength() != 0 || (Dataset{}).MeanSigma() != 0 {
		t.Error("empty dataset stats should be 0")
	}
}

func TestDatasetToVelocity(t *testing.T) {
	d := Dataset{
		{P(0, 0, 0.1), P(1, 0, 0.1), P(2, 0, 0.1)},
		{P(5, 5, 0.1)}, // too short: dropped
	}
	v := d.ToVelocity()
	if len(v) != 1 || len(v[0]) != 2 {
		t.Fatalf("velocity dataset shape wrong: %v", v)
	}
}

func TestSplit(t *testing.T) {
	d := Dataset{{P(0, 0, 1)}, {P(1, 1, 1)}, {P(2, 2, 1)}}
	train, test := d.Split(2)
	if len(train) != 2 || len(test) != 1 {
		t.Errorf("Split(2) = %d/%d", len(train), len(test))
	}
	train, test = d.Split(-1)
	if len(train) != 0 || len(test) != 3 {
		t.Error("Split(-1) should clamp")
	}
	train, test = d.Split(10)
	if len(train) != 3 || len(test) != 0 {
		t.Error("Split(10) should clamp")
	}
}

// Property: velocity transform is exact on means — summing velocity means
// reconstructs location differences.
func TestQuickVelocityReconstruction(t *testing.T) {
	f := func(coords []float64) bool {
		var tr Trajectory
		for i := 0; i+1 < len(coords); i += 2 {
			x, y := coords[i], coords[i+1]
			if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e12 || math.Abs(y) > 1e12 {
				return true
			}
			tr = append(tr, P(x, y, 0.1))
		}
		if len(tr) < 2 {
			return true
		}
		v := tr.ToVelocity()
		pos := tr[0].Mean
		for i, vel := range v {
			pos = pos.Add(vel.Mean)
			if pos.Dist(tr[i+1].Mean) > 1e-6*(1+pos.Norm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: velocity sigmas are always at least as large as each
// contributing location sigma (uncertainty only grows under differencing).
func TestQuickVelocitySigmaGrowth(t *testing.T) {
	f := func(sigmas []float64) bool {
		var tr Trajectory
		for _, s := range sigmas {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
			tr = append(tr, P(0, 0, math.Abs(s)))
		}
		if len(tr) < 2 {
			return true
		}
		v := tr.ToVelocity()
		for i, p := range v {
			if p.Sigma+1e-12 < tr[i].Sigma || p.Sigma+1e-12 < tr[i+1].Sigma {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
