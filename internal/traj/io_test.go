package traj

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDataset() Dataset {
	return Dataset{
		{P(0, 0, 0.1), P(1, 0.5, 0.2)},
		{P(-1, 2, 0.05), P(-1.5, 2.5, 0.05), P(-2, 3, 0.05)},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d) {
		t.Fatalf("trajectory count = %d, want %d", len(got), len(d))
	}
	for i := range d {
		if len(got[i]) != len(d[i]) {
			t.Fatalf("trajectory %d length mismatch", i)
		}
		for j := range d[i] {
			if got[i][j] != d[i][j] {
				t.Errorf("point [%d][%d] = %+v, want %+v", i, j, got[i][j], d[i][j])
			}
		}
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	// Valid JSON but structurally invalid trajectory (negative sigma).
	in := `[{"mean":{"X":0,"Y":0},"sigma":-1}]`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}

	// Errors name the 1-based line and record of the offending input so
	// a corrupt row in a million-line file is findable. The bad row here
	// is on line 4 but is only the 3rd record (line 2 is blank).
	good := `[{"mean":{"X":0,"Y":0},"sigma":1}]`
	in = good + "\n\n" + good + "\n" + "not json" + "\n" + good + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("garbage row accepted")
	}
	for _, want := range []string{"line 4", "record 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// File-backed reads additionally name the path.
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := writeRaw(path, in); err != nil {
		t.Fatal(err)
	}
	_, err = ReadFile(path)
	if err == nil {
		t.Fatal("garbage row accepted from file")
	}
	for _, want := range []string{path + ":4", "record 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("file error %q does not mention %q", err, want)
		}
	}
}

func TestReadFileRejectsPoisonedFloats(t *testing.T) {
	// Every way a poisoned float can arrive on disk must be rejected with
	// a path:line error instead of flowing into the scorer: out-of-range
	// exponents (the JSON spelling of Inf/NaN coordinates), negative
	// sigma, and huge-exponent sigma.
	cases := []struct {
		name, row string
	}{
		{"inf x", `[{"mean":{"X":1e400,"Y":0},"sigma":1}]`},
		{"inf y", `[{"mean":{"X":0,"Y":-1e999},"sigma":1}]`},
		{"negative sigma", `[{"mean":{"X":0,"Y":0},"sigma":-0.5}]`},
		{"inf sigma", `[{"mean":{"X":0,"Y":0},"sigma":1e400}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "poison.jsonl")
			if err := writeRaw(path, tc.row+"\n"); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFile(path)
			if err == nil {
				t.Fatal("poisoned row accepted")
			}
			for _, want := range []string{path + ":1", "record 1"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not carry %q", err, want)
				}
			}
		})
	}
}

func TestReadEmpty(t *testing.T) {
	d, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 {
		t.Errorf("empty input gave %d trajectories", len(d))
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.jsonl")
	d := sampleDataset()
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2].Mean.X != -2 {
		t.Errorf("file round trip mismatch: %+v", got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReaderStreaming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	d := sampleDataset()
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got int
	for {
		tr, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			break
		}
		if len(tr) != len(d[got]) {
			t.Errorf("trajectory %d length %d, want %d", got, len(tr), len(d[got]))
		}
		got++
	}
	if got != len(d) {
		t.Errorf("streamed %d trajectories, want %d", got, len(d))
	}
	// Next after EOF keeps returning (nil, nil).
	if tr, err := r.Next(); err != nil || tr != nil {
		t.Errorf("post-EOF Next = %v, %v", tr, err)
	}
	// Double close is fine.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := writeRaw(path, `[{"mean":{"X":0,"Y":0},"sigma":-1}]`+"\n"); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Error("invalid trajectory accepted by streaming reader")
	}
	if _, err := OpenReader(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestWritePreservesPrecision(t *testing.T) {
	d := Dataset{{P(math.Pi, math.E, 1.0/3.0)}}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := got[0][0]
	if p.Mean.X != math.Pi || p.Mean.Y != math.E || p.Sigma != 1.0/3.0 {
		t.Errorf("precision lost: %+v", p)
	}
}
