package traj

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trajpattern/internal/geom"
)

// addTestdataSeeds adds every file under testdata/ matching glob as a seed
// input, so the corpus starts from realistic on-disk shapes rather than
// only hand-written literals.
func addTestdataSeeds(f *testing.F, glob string) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", glob))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatalf("no testdata seeds match %q", glob)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzReadDataset checks that the dataset decoder never panics on
// arbitrary input, that everything it accepts is structurally safe to hand
// to the scorer (finite coordinates, finite non-negative sigmas), and that
// accepted datasets re-encode and re-read stably.
func FuzzReadDataset(f *testing.F) {
	addTestdataSeeds(f, "fuzz_seed_*.jsonl")
	f.Add("")
	f.Add("[]")
	f.Add(`[{"mean":{"X":0,"Y":0},"sigma":0}]`)
	f.Add(`[{"mean":{"X":1e400,"Y":0},"sigma":1}]`)
	f.Add(`[{"mean":{"X":0,"Y":0},"sigma":-1}]`)
	f.Add(`[{"mean":{"X":0,"Y":0},"sigma":1e400}]`)
	f.Add("{")
	f.Add("null")
	f.Fuzz(func(t *testing.T, in string) {
		ds, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("Read accepted invalid dataset: %v", err)
		}
		// The scorer's contract: no poisoned floats past the decoder.
		for i, tr := range ds {
			for j, p := range tr {
				if !p.Mean.IsFinite() {
					t.Fatalf("accepted non-finite mean at [%d][%d]: %v", i, j, p.Mean)
				}
				if math.IsNaN(p.Sigma) || math.IsInf(p.Sigma, 0) || p.Sigma < 0 {
					t.Fatalf("accepted poisoned sigma at [%d][%d]: %v", i, j, p.Sigma)
				}
			}
		}
		var out bytes.Buffer
		if err := Write(&out, ds); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		ds2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(ds2) != len(ds) {
			t.Fatalf("round trip changed trajectory count: %d vs %d", len(ds2), len(ds))
		}
		for i := range ds {
			if len(ds2[i]) != len(ds[i]) {
				t.Fatalf("round trip changed trajectory %d length", i)
			}
			for j := range ds[i] {
				if ds2[i][j] != ds[i][j] {
					t.Fatalf("round trip changed point [%d][%d]", i, j)
				}
			}
		}
	})
}

// FuzzSynchronize checks that synchronization never panics and always
// produces a structurally valid trajectory of the requested length for
// valid configurations.
func FuzzSynchronize(f *testing.F) {
	f.Add(3, 1.0, 0.5, float64(0), float64(0), float64(1), float64(1))
	f.Add(1, 0.1, 2.0, float64(5), float64(5), float64(5), float64(5))
	f.Fuzz(func(t *testing.T, count int, u, c, t0, x0, t1, x1 float64) {
		if count < 1 || count > 1000 {
			return
		}
		if u <= 0 || u > 1e6 || c <= 0 || c > 1e6 {
			return
		}
		if !finite(t0) || !finite(x0) || !finite(t1) || !finite(x1) {
			return
		}
		reports := []Report{
			{Time: t0, Loc: geom.Pt(x0, x0)},
			{Time: t1, Loc: geom.Pt(x1, x1)},
		}
		tr, err := Synchronize(reports, SyncConfig{
			Start: 0, Interval: 1, Count: count, U: u, C: c,
		})
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		if len(tr) != count {
			t.Fatalf("length %d != %d", len(tr), count)
		}
		for i, p := range tr {
			if p.Sigma != u/c {
				t.Fatalf("snapshot %d sigma %v != U/C", i, p.Sigma)
			}
		}
	})
}

func finite(v float64) bool {
	return v == v && v < 1e300 && v > -1e300
}
