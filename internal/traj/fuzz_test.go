package traj

import (
	"bytes"
	"strings"
	"testing"

	"trajpattern/internal/geom"
)

// FuzzRead checks that the dataset decoder never panics on arbitrary
// input and that everything it accepts re-encodes and re-reads stably.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, Dataset{
		{P(0, 0, 0.1), P(1, 1, 0.2)},
		{P(-1, 2, 0.05)},
	})
	f.Add(buf.String())
	f.Add("")
	f.Add("[]")
	f.Add(`[{"mean":{"X":0,"Y":0},"sigma":0}]`)
	f.Add(`[{"mean":{"X":1e400,"Y":0},"sigma":1}]`)
	f.Add("{")
	f.Add("null")
	f.Fuzz(func(t *testing.T, in string) {
		ds, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("Read accepted invalid dataset: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, ds); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		ds2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(ds2) != len(ds) {
			t.Fatalf("round trip changed trajectory count: %d vs %d", len(ds2), len(ds))
		}
		for i := range ds {
			if len(ds2[i]) != len(ds[i]) {
				t.Fatalf("round trip changed trajectory %d length", i)
			}
			for j := range ds[i] {
				if ds2[i][j] != ds[i][j] {
					t.Fatalf("round trip changed point [%d][%d]", i, j)
				}
			}
		}
	})
}

// FuzzSynchronize checks that synchronization never panics and always
// produces a structurally valid trajectory of the requested length for
// valid configurations.
func FuzzSynchronize(f *testing.F) {
	f.Add(3, 1.0, 0.5, float64(0), float64(0), float64(1), float64(1))
	f.Add(1, 0.1, 2.0, float64(5), float64(5), float64(5), float64(5))
	f.Fuzz(func(t *testing.T, count int, u, c, t0, x0, t1, x1 float64) {
		if count < 1 || count > 1000 {
			return
		}
		if u <= 0 || u > 1e6 || c <= 0 || c > 1e6 {
			return
		}
		if !finite(t0) || !finite(x0) || !finite(t1) || !finite(x1) {
			return
		}
		reports := []Report{
			{Time: t0, Loc: geom.Pt(x0, x0)},
			{Time: t1, Loc: geom.Pt(x1, x1)},
		}
		tr, err := Synchronize(reports, SyncConfig{
			Start: 0, Interval: 1, Count: count, U: u, C: c,
		})
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		if len(tr) != count {
			t.Fatalf("length %d != %d", len(tr), count)
		}
		for i, p := range tr {
			if p.Sigma != u/c {
				t.Fatalf("snapshot %d sigma %v != U/C", i, p.Sigma)
			}
		}
	})
}

func finite(v float64) bool {
	return v == v && v < 1e300 && v > -1e300
}
