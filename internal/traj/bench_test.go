package traj

import (
	"bytes"
	"testing"

	"trajpattern/internal/geom"
	"trajpattern/internal/stat"
)

func benchDataset(n, ln int) Dataset {
	rng := stat.NewRNG(11)
	d := make(Dataset, n)
	for i := range d {
		tr := make(Trajectory, ln)
		for j := range tr {
			tr[j] = P(rng.Float64(), rng.Float64(), 0.02)
		}
		d[i] = tr
	}
	return d
}

func BenchmarkToVelocity(b *testing.B) {
	d := benchDataset(50, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ToVelocity()
	}
}

func BenchmarkSynchronize(b *testing.B) {
	rng := stat.NewRNG(12)
	reports := make([]Report, 50)
	for i := range reports {
		reports[i] = Report{Time: float64(i * 2), Loc: geom.Pt(rng.Float64(), rng.Float64())}
	}
	cfg := SyncConfig{Start: 0, Interval: 1, Count: 100, U: 0.05, C: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synchronize(reports, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteRead(b *testing.B) {
	d := benchDataset(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
