package traj

import (
	"math"
	"testing"

	"trajpattern/internal/geom"
)

func validCfg() SyncConfig {
	return SyncConfig{Start: 0, Interval: 1, Count: 5, U: 0.2, C: 2}
}

func TestSyncConfigValidation(t *testing.T) {
	cases := []SyncConfig{
		{Interval: 0, Count: 5, U: 1, C: 1},
		{Interval: 1, Count: 0, U: 1, C: 1},
		{Interval: 1, Count: 5, U: 0, C: 1},
		{Interval: 1, Count: 5, U: 1, C: 0},
	}
	for i, cfg := range cases {
		if _, err := Synchronize([]Report{{Time: 0}}, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Synchronize(nil, validCfg()); err == nil {
		t.Error("empty report list accepted")
	}
}

func TestSigma(t *testing.T) {
	cfg := validCfg()
	if got := cfg.Sigma(); got != 0.1 {
		t.Errorf("Sigma = %v, want U/C = 0.1", got)
	}
}

func TestSynchronizeLinearMotion(t *testing.T) {
	// Object moves at constant velocity (1, 2) per time unit, reporting at
	// t=0 and t=1; dead reckoning must extrapolate exactly.
	reports := []Report{
		{Time: 0, Loc: geom.Pt(0, 0)},
		{Time: 1, Loc: geom.Pt(1, 2)},
	}
	tr, err := Synchronize(reports, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5 {
		t.Fatalf("len = %d", len(tr))
	}
	for i, want := range []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 2), geom.Pt(2, 4), geom.Pt(3, 6), geom.Pt(4, 8),
	} {
		if tr[i].Mean.Dist(want) > 1e-12 {
			t.Errorf("snapshot %d = %v, want %v", i, tr[i].Mean, want)
		}
		if tr[i].Sigma != 0.1 {
			t.Errorf("snapshot %d sigma = %v", i, tr[i].Sigma)
		}
	}
}

func TestSynchronizeBeforeFirstReport(t *testing.T) {
	reports := []Report{{Time: 10, Loc: geom.Pt(3, 4)}}
	cfg := validCfg() // snapshots at t=0..4, all before the report
	tr, err := Synchronize(reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr {
		if p.Mean != geom.Pt(3, 4) {
			t.Errorf("snapshot %d = %v, want first report location", i, p.Mean)
		}
	}
}

func TestSynchronizeSingleReport(t *testing.T) {
	// One report: no velocity estimate, position held constant.
	reports := []Report{{Time: 0, Loc: geom.Pt(1, 1)}}
	tr, err := Synchronize(reports, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		if p.Mean != geom.Pt(1, 1) {
			t.Errorf("held position = %v", p.Mean)
		}
	}
}

func TestSynchronizeVelocityChange(t *testing.T) {
	// Velocity changes after the second report; snapshots after t=2 must
	// use the newest velocity estimate.
	reports := []Report{
		{Time: 0, Loc: geom.Pt(0, 0)},
		{Time: 1, Loc: geom.Pt(1, 0)}, // v = (1, 0)
		{Time: 2, Loc: geom.Pt(1, 1)}, // v = (0, 1)
	}
	tr, err := Synchronize(reports, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	// t=3: last report (1,1) at t=2, v=(0,1) -> (1, 2).
	if tr[3].Mean.Dist(geom.Pt(1, 2)) > 1e-12 {
		t.Errorf("t=3 = %v, want (1,2)", tr[3].Mean)
	}
	if tr[4].Mean.Dist(geom.Pt(1, 3)) > 1e-12 {
		t.Errorf("t=4 = %v, want (1,3)", tr[4].Mean)
	}
}

func TestSynchronizeUnsortedReports(t *testing.T) {
	sorted := []Report{
		{Time: 0, Loc: geom.Pt(0, 0)},
		{Time: 1, Loc: geom.Pt(1, 2)},
	}
	shuffled := []Report{sorted[1], sorted[0]}
	a, err := Synchronize(sorted, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synchronize(shuffled, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order sensitivity at snapshot %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Input order untouched.
	if shuffled[0].Time != 1 {
		t.Error("Synchronize mutated its input")
	}
}

func TestSynchronizeDuplicateTimes(t *testing.T) {
	// Two reports at the same instant must not divide by zero.
	reports := []Report{
		{Time: 0, Loc: geom.Pt(0, 0)},
		{Time: 0, Loc: geom.Pt(1, 1)},
	}
	tr, err := Synchronize(reports, validCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		if !p.Mean.IsFinite() || math.IsNaN(p.Sigma) {
			t.Fatalf("non-finite output from duplicate times: %+v", p)
		}
	}
}
