package traj

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"trajpattern/internal/faultio"
)

// The on-disk format is JSON lines: one trajectory per line, encoded as an
// array of {"mean":{"X":…,"Y":…},"sigma":…} objects. The format is
// line-oriented so huge datasets can be streamed trajectory by trajectory,
// matching the paper's observation that the whole input never needs to be
// resident (Section 4.4).

// Write encodes the dataset to w, one trajectory per line.
func Write(w io.Writer, d Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, t := range d {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("traj: encoding trajectory %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// decoder reads JSONL trajectories line by line, tracking the 1-based
// line number and record (non-blank line) count so errors pinpoint the
// offending input: "traj: data.jsonl:7: record 5: ...". path is empty
// for in-memory readers, which report the line number alone.
type decoder struct {
	br   *bufio.Reader
	path string
	line int // 1-based line of the record being decoded
	rec  int // 1-based count of non-blank records seen
}

// errf prefixes an error with the decoder's position.
func (d *decoder) errf(format string, args ...any) error {
	pos := fmt.Sprintf("line %d", d.line)
	if d.path != "" {
		pos = fmt.Sprintf("%s:%d", d.path, d.line)
	}
	return fmt.Errorf("traj: %s: record %d: %w", pos, d.rec, fmt.Errorf(format, args...))
}

// next decodes the next trajectory, skipping blank lines, and returns
// (nil, nil) at end of input. Each trajectory is validated structurally
// (finite coordinates, non-negative sigmas).
func (d *decoder) next() (Trajectory, error) {
	for {
		raw, rerr := d.br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			d.line++
			d.rec++
			return nil, d.errf("read: %v", rerr)
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			if rerr == io.EOF {
				return nil, nil
			}
			d.line++
			continue // blank line
		}
		d.line++
		d.rec++
		var t Trajectory
		if err := json.Unmarshal(raw, &t); err != nil {
			return nil, d.errf("decoding trajectory: %v", err)
		}
		if err := t.Validate(); err != nil {
			return nil, d.errf("invalid trajectory: %v", err)
		}
		return t, nil
	}
}

// Read decodes a dataset from r. Blank lines are skipped. Errors carry
// the 1-based line and record number of the offending input.
func Read(r io.Reader) (Dataset, error) {
	d := decoder{br: bufio.NewReader(r)}
	var out Dataset
	for {
		t, err := d.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// WriteFile writes the dataset to the named file atomically (temp file +
// fsync + rename): path always holds either its previous contents or the
// complete dataset, never a torn file.
func WriteFile(path string, d Dataset) error {
	return faultio.WriteFileAtomic(nil, path, func(w io.Writer) error {
		return Write(w, d)
	})
}

// ReadFile reads a dataset from the named file. Errors carry the file
// path and the 1-based line and record number of the offending input.
func ReadFile(path string) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traj: %w", err)
	}
	defer f.Close()
	d := decoder{br: bufio.NewReader(f), path: path}
	var out Dataset
	for {
		t, err := d.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Reader streams trajectories from a JSON-lines file one at a time,
// validating each, so arbitrarily large datasets can be scanned in
// constant memory (the access pattern §4.4 of the paper relies on).
type Reader struct {
	f   *os.File
	dec decoder
}

// OpenReader opens the named dataset file for streaming.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traj: %w", err)
	}
	return &Reader{f: f, dec: decoder{br: bufio.NewReader(f), path: path}}, nil
}

// Next returns the next trajectory, or (nil, nil) at end of file. Errors
// carry the file path and the 1-based line and record number.
func (r *Reader) Next() (Trajectory, error) {
	return r.dec.next()
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
