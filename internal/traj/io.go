package traj

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The on-disk format is JSON lines: one trajectory per line, encoded as an
// array of {"mean":{"X":…,"Y":…},"sigma":…} objects. The format is
// line-oriented so huge datasets can be streamed trajectory by trajectory,
// matching the paper's observation that the whole input never needs to be
// resident (Section 4.4).

// Write encodes the dataset to w, one trajectory per line.
func Write(w io.Writer, d Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, t := range d {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("traj: encoding trajectory %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read decodes a dataset from r. Blank lines are skipped. Each trajectory
// is validated structurally (finite coordinates, non-negative sigmas).
func Read(r io.Reader) (Dataset, error) {
	var d Dataset
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var t Trajectory
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("traj: decoding trajectory %d: %w", i, err)
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		d = append(d, t)
	}
	return d, nil
}

// WriteFile writes the dataset to the named file, creating or truncating it.
func WriteFile(path string, d Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traj: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("traj: closing %s: %w", path, cerr)
		}
	}()
	return Write(f, d)
}

// ReadFile reads a dataset from the named file.
func ReadFile(path string) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traj: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Reader streams trajectories from a JSON-lines file one at a time,
// validating each, so arbitrarily large datasets can be scanned in
// constant memory (the access pattern §4.4 of the paper relies on).
type Reader struct {
	f   *os.File
	dec *json.Decoder
	n   int
}

// OpenReader opens the named dataset file for streaming.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traj: %w", err)
	}
	return &Reader{f: f, dec: json.NewDecoder(bufio.NewReader(f))}, nil
}

// Next returns the next trajectory, or (nil, nil) at end of file.
func (r *Reader) Next() (Trajectory, error) {
	var t Trajectory
	if err := r.dec.Decode(&t); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("traj: decoding trajectory %d: %w", r.n, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("traj: trajectory %d: %w", r.n, err)
	}
	r.n++
	return t, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
