// Package traj defines the trajectory data model of the TrajPattern paper
// (Section 3.2): a trajectory is a per-snapshot sequence of imprecise
// locations, each described by the mean and standard deviation of an
// isotropic 2-D normal distribution over the object's true location.
//
// The package also implements the two transformations the paper applies to
// raw data before mining: synchronizing asynchronous location reports onto
// a common snapshot schedule (sync.go) and converting location trajectories
// into velocity trajectories.
package traj

import (
	"fmt"
	"math"

	"trajpattern/internal/geom"
)

// Point is one snapshot of a trajectory: the true location of the mobile
// object is distributed as N(Mean, Sigma²·I₂).
type Point struct {
	Mean  geom.Point `json:"mean"`
	Sigma float64    `json:"sigma"`
}

// P is shorthand for constructing a Point.
func P(x, y, sigma float64) Point {
	return Point{Mean: geom.Pt(x, y), Sigma: sigma}
}

// Trajectory is the per-snapshot sequence (l₁,σ₁),(l₂,σ₂),… of one mobile
// object. Location and velocity trajectories share this representation.
type Trajectory []Point

// Len returns the number of snapshots.
func (t Trajectory) Len() int { return len(t) }

// Clone returns a deep copy of t.
func (t Trajectory) Clone() Trajectory {
	return append(Trajectory(nil), t...)
}

// Means returns the sequence of expected locations.
func (t Trajectory) Means() []geom.Point {
	out := make([]geom.Point, len(t))
	for i, p := range t {
		out[i] = p.Mean
	}
	return out
}

// MaxSigma returns the largest standard deviation in t, or 0 if empty.
func (t Trajectory) MaxSigma() float64 {
	var m float64
	for _, p := range t {
		if p.Sigma > m {
			m = p.Sigma
		}
	}
	return m
}

// Validate reports the first structural problem in t: non-finite
// coordinates, or sigmas that are negative, NaN or infinite. An infinite
// sigma passes a plain `< 0` test but poisons every probability downstream,
// so it is rejected here (found by FuzzReadDataset).
func (t Trajectory) Validate() error {
	for i, p := range t {
		if !p.Mean.IsFinite() {
			return fmt.Errorf("traj: snapshot %d has non-finite mean %v", i, p.Mean)
		}
		if math.IsNaN(p.Sigma) || math.IsInf(p.Sigma, 0) || p.Sigma < 0 {
			return fmt.Errorf("traj: snapshot %d has invalid sigma %v", i, p.Sigma)
		}
	}
	return nil
}

// ToVelocity converts a location trajectory into a velocity trajectory per
// Section 3.2: entry i is the difference of locations i+1 and i, with mean
// l(i+1)−l(i) and standard deviation sqrt(σᵢ² + σᵢ₊₁²) (the locations'
// prediction errors are assumed independent). The result has Len()−1
// snapshots; a trajectory with fewer than two snapshots yields nil.
func (t Trajectory) ToVelocity() Trajectory {
	if len(t) < 2 {
		return nil
	}
	out := make(Trajectory, len(t)-1)
	for i := 0; i+1 < len(t); i++ {
		out[i] = Point{
			Mean:  t[i+1].Mean.Sub(t[i].Mean),
			Sigma: math.Hypot(t[i].Sigma, t[i+1].Sigma),
		}
	}
	return out
}

// Dataset is the mining input 𝒟: a set of trajectories, all aligned on the
// same snapshot schedule.
type Dataset []Trajectory

// NumTrajectories returns |𝒟|, the paper's parameter S.
func (d Dataset) NumTrajectories() int { return len(d) }

// TotalSnapshots returns the total number of snapshots across all
// trajectories, the dataset "size" N in the complexity analysis.
func (d Dataset) TotalSnapshots() int {
	var n int
	for _, t := range d {
		n += len(t)
	}
	return n
}

// AvgLength returns the average trajectory length, the paper's parameter L.
func (d Dataset) AvgLength() float64 {
	if len(d) == 0 {
		return 0
	}
	return float64(d.TotalSnapshots()) / float64(len(d))
}

// MeanSigma returns the average standard deviation over every snapshot in
// the dataset, used to derive the default pattern-group distance γ = 3σ̄
// (Section 5). It returns 0 for an empty dataset.
func (d Dataset) MeanSigma() float64 {
	var sum float64
	var n int
	for _, t := range d {
		for _, p := range t {
			sum += p.Sigma
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Bounds returns the bounding rectangle of every mean location in the
// dataset, handy for fitting a mining grid to velocity trajectories.
func (d Dataset) Bounds() geom.Rect {
	var pts []geom.Point
	for _, t := range d {
		for _, p := range t {
			pts = append(pts, p.Mean)
		}
	}
	return geom.BoundingRect(pts)
}

// ToVelocity converts every trajectory in the dataset (see
// Trajectory.ToVelocity). Trajectories that become empty are dropped.
func (d Dataset) ToVelocity() Dataset {
	out := make(Dataset, 0, len(d))
	for _, t := range d {
		if v := t.ToVelocity(); len(v) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Validate reports the first structural problem in any trajectory.
func (d Dataset) Validate() error {
	for i, t := range d {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("trajectory %d: %w", i, err)
		}
	}
	return nil
}

// Split partitions the dataset into a training prefix and testing suffix,
// as the prediction experiment does (450 train / 50 test in §6.1). n is the
// number of training trajectories; it is clamped to [0, len(d)].
func (d Dataset) Split(n int) (train, test Dataset) {
	if n < 0 {
		n = 0
	}
	if n > len(d) {
		n = len(d)
	}
	return d[:n], d[n:]
}
