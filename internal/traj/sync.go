package traj

import (
	"fmt"
	"sort"

	"trajpattern/internal/geom"
)

// Report is one asynchronous location fix received by the server: the
// object was at Loc at time Time. Times are in arbitrary units (the
// experiments use minutes).
type Report struct {
	Time float64    `json:"time"`
	Loc  geom.Point `json:"loc"`
}

// SyncConfig describes how the server superimposes synchronous snapshots on
// asynchronous reports (Section 3.2) and the uncertainty model of the
// reporting scheme (Section 3.1): the true location at a snapshot is
// N(predicted, σ²I₂) with σ = U/C, where U is the tolerable uncertainty
// distance (an object reports whenever it strays more than U from its
// predicted position) and C the confidence constant (C=2 bounds the miss
// probability at 5%).
type SyncConfig struct {
	Start    float64 // time of the first snapshot
	Interval float64 // time between snapshots; must be > 0
	Count    int     // number of snapshots to generate; must be > 0
	U        float64 // tolerable uncertainty distance; must be > 0
	C        float64 // confidence constant (typically 1, 2 or 3); must be > 0
}

// Sigma returns the per-snapshot standard deviation σ = U/C.
func (c SyncConfig) Sigma() float64 { return c.U / c.C }

func (c SyncConfig) validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("traj: SyncConfig.Interval must be > 0, got %v", c.Interval)
	case c.Count <= 0:
		return fmt.Errorf("traj: SyncConfig.Count must be > 0, got %d", c.Count)
	case c.U <= 0:
		return fmt.Errorf("traj: SyncConfig.U must be > 0, got %v", c.U)
	case c.C <= 0:
		return fmt.Errorf("traj: SyncConfig.C must be > 0, got %v", c.C)
	}
	return nil
}

// Synchronize interpolates a sequence of asynchronous reports onto the
// snapshot schedule of cfg, producing a location trajectory. At each
// snapshot the expected location is dead-reckoned from the last report at
// or before the snapshot using the linear model of Equation 1
// (predict_loc = last_loc + v·t, with v estimated from the last two
// reports); snapshots before the first report use the first report's
// location. The per-snapshot σ is cfg.Sigma().
//
// Reports are sorted by time internally; the input slice is not modified.
// An error is returned for invalid configuration or an empty report list.
func Synchronize(reports []Report, cfg SyncConfig) (Trajectory, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("traj: Synchronize needs at least one report")
	}
	rs := append([]Report(nil), reports...)
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })

	sigma := cfg.Sigma()
	out := make(Trajectory, cfg.Count)
	for i := range out {
		t := cfg.Start + float64(i)*cfg.Interval
		out[i] = Point{Mean: PredictAt(rs, t), Sigma: sigma}
	}
	return out, nil
}

// PredictAt dead-reckons the expected location at time t from the report
// list rs, which must be sorted by time, using the linear model of
// Equation 1: predict_loc = last_loc + v·(t − last_time) with v estimated
// from the last two reports at or before t. Before the first report the
// first report's location is returned; with a single usable report the
// position is held constant. It panics if rs is empty.
func PredictAt(rs []Report, t float64) geom.Point {
	// Index of the last report with Time <= t.
	k := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t }) - 1
	if k < 0 {
		return rs[0].Loc // before the first report
	}
	last := rs[k]
	if k == 0 {
		return last.Loc // no earlier report to estimate velocity from
	}
	prev := rs[k-1]
	dt := last.Time - prev.Time
	if dt <= 0 {
		return last.Loc
	}
	v := last.Loc.Sub(prev.Loc).Scale(1 / dt)
	return last.Loc.Add(v.Scale(t - last.Time))
}
