package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"trajpattern/internal/obs/slogx"
)

// LogFlags is the -log-format / -log-level pair every CLI exposes. The
// default "plain" format keeps the legacy one-line status output; "text"
// and "json" switch the lifecycle events to structured log/slog records
// (internal/obs/slogx).
type LogFlags struct {
	Format string
	Level  string
}

// Register installs the shared logging flags on fs (the cmds pass
// flag.CommandLine).
func (f *LogFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Format, "log-format", "plain",
		"lifecycle log format: plain (legacy status lines), text or json (structured records)")
	fs.StringVar(&f.Level, "log-level", "info",
		"minimum structured log level: debug, info, warn or error (plain ignores it)")
}

// Logger builds the structured logger the flags select, writing to w.
// "plain" (or empty) returns nil: a nil *slogx.Logger is a no-op, which
// is exactly how the callers keep their legacy plain status lines.
func (f *LogFlags) Logger(w io.Writer) (*slogx.Logger, error) {
	switch strings.ToLower(strings.TrimSpace(f.Format)) {
	case "", "plain":
		return nil, nil
	case "text", "json":
		return slogx.New(slogx.Options{Format: f.Format, Level: f.Level, W: w}), nil
	default:
		return nil, fmt.Errorf("cli: unknown -log-format %q (want plain, text or json)", f.Format)
	}
}

// Lifecycle routes a CLI's operator-facing lifecycle events: structured
// records when Logger is set, the legacy plain lines on W otherwise. The
// plain string is emitted verbatim (plus newline) so existing output
// stays byte-identical in plain mode. The zero value discards
// everything; all methods are safe on it.
type Lifecycle struct {
	W      io.Writer     // plain-line destination (nil = discard)
	Logger *slogx.Logger // nil = plain mode
}

func (l Lifecycle) writer() io.Writer {
	if l.W == nil {
		return io.Discard
	}
	return l.W
}

// Notice emits one informational lifecycle event.
func (l Lifecycle) Notice(plain, msg string, attrs ...slog.Attr) {
	if l.Logger != nil {
		l.Logger.Info(msg, attrs...)
		return
	}
	fmt.Fprintln(l.writer(), plain)
}

// Error emits one error-level lifecycle event.
func (l Lifecycle) Error(plain, msg string, attrs ...slog.Attr) {
	if l.Logger != nil {
		l.Logger.Error(msg, attrs...)
		return
	}
	fmt.Fprintln(l.writer(), plain)
}
