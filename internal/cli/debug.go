package cli

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// MetricsHolder publishes the obs registry of the currently running stage
// so the debug server can snapshot in-flight runs even when the producer
// swaps registries between stages (trajbench uses one registry per
// experiment). All methods are safe on a nil receiver and for concurrent
// use.
type MetricsHolder struct {
	p atomic.Pointer[obs.Registry]
}

// Set publishes r as the current registry (nil clears it).
func (h *MetricsHolder) Set(r *obs.Registry) {
	if h == nil {
		return
	}
	h.p.Store(r)
}

// Registry returns the currently published registry (possibly nil).
func (h *MetricsHolder) Registry() *obs.Registry {
	if h == nil {
		return nil
	}
	return h.p.Load()
}

// Snapshot snapshots the currently published registry; an empty snapshot
// when none is published.
func (h *MetricsHolder) Snapshot() obs.Snapshot { return h.Registry().Snapshot() }

// StartDebugServer serves runtime introspection for an in-flight run on
// addr (e.g. "localhost:6060", or ":0" to pick a free port):
//
//	/debug/pprof/   the standard Go profiler endpoints
//	/debug/vars     expvar (cmdline, memstats)
//	/metrics        the live obs snapshot, text by default,
//	                ?format=json for the provenance-stamped Report,
//	                ?format=prom for Prometheus text exposition
//	/trace/status   live tracer summary (events buffered, open spans,
//	                per-name counts) as JSON
//
// It returns the server's base URL (useful with ":0") and a stop function.
// The caller owns the lifetime: the server does not outlive the process,
// it exists to observe long runs while they happen.
func StartDebugServer(addr string, metrics *MetricsHolder, tr *trace.Tracer) (baseURL string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cli: debug server: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Every branch sets an explicit Content-Type: scrapers and curl
		// must never depend on net/http's sniffing, which would label the
		// Prometheus exposition text/plain without its version parameter.
		snap := metrics.Snapshot()
		switch r.URL.Query().Get("format") {
		case "json":
			writeJSON(w, obs.NewReport(snap))
		case "prom":
			w.Header().Set("Content-Type", obs.PromContentType)
			_ = obs.WriteProm(w, obs.NewReport(snap))
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if text := snap.String(); text != "" {
				fmt.Fprint(w, text)
			} else {
				fmt.Fprintln(w, "(no metrics registry attached, or nothing recorded yet)")
			}
		}
	})
	mux.HandleFunc("/trace/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, tr.Status())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "trajpattern debug server")
		fmt.Fprintln(w, "  /metrics          live obs snapshot (?format=json for stamped JSON, ?format=prom for Prometheus exposition)")
		fmt.Fprintln(w, "  /trace/status     live tracer summary")
		fmt.Fprintln(w, "  /debug/pprof/     Go profiler endpoints")
		fmt.Fprintln(w, "  /debug/vars       expvar")
	})

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return "http://" + ln.Addr().String(), srv.Close, nil
}

// writeJSON writes v as indented JSON with the right content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SaveTrace writes a tracer's records next to each other in both formats:
// the JSONL journal at path and the Chrome trace-event JSON (Perfetto /
// chrome://tracing) at path + ".json". No-op on a nil tracer.
func SaveTrace(path string, tr *trace.Tracer) error {
	if tr == nil || path == "" {
		return nil
	}
	if err := tr.JournalFile(path); err != nil {
		return err
	}
	return tr.WriteChromeTraceFile(path + ".json")
}
