package cli

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/datagen"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// DefaultScalingFloor is the minimum parallel efficiency required at the
// largest shard count when a baseline does not pin its own floor. The
// value is deliberately lenient: efficiency is normalized by
// min(shards, GOMAXPROCS), so it gates "sharding stopped helping /
// started actively hurting", not "this runner is slower than last week's".
const DefaultScalingFloor = 0.35

// DefaultScalingCounts are the shard counts the scaling curve measures.
var DefaultScalingCounts = []int{1, 2, 4}

// ScalingOptions parameterizes RunScaling.
type ScalingOptions struct {
	// Counts are the shard counts to measure; the first entry must be 1
	// (the speedup reference). Nil means DefaultScalingCounts.
	Counts []int
	// Scale shrinks the workload like the bench experiments; zero means 1.
	Scale float64
	// Seed seeds the zebra workload.
	Seed uint64
	// Tracer, when non-nil, records the runs' spans on the shared timeline.
	Tracer *trace.Tracer
}

// ScalingEntry is one shard count's measurement in the scaling block.
type ScalingEntry struct {
	Shards int   `json:"shards"`
	NS     int64 `json:"ns"`
	// Speedup is t(1 shard) / t(Shards); Efficiency divides it by
	// min(Shards, GOMAXPROCS) — the parallelism actually available — so
	// the number is comparable between a 1-CPU container and a 4-CPU
	// runner. Neither is deterministic; the gate applies a lenient floor.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Work holds the deterministic counters of this shard count's run
	// (per-shard miner counters included), compared two-sided like the
	// experiment counters.
	Work map[string]int64 `json:"work,omitempty"`
	// ShardWallNS and Skew carry the run's per-shard wall times and their
	// imbalance summary (shard.Skew): timing-class diagnostics, never
	// compared against a baseline, but printed when the efficiency floor
	// fails so the report names the shard that dragged the curve down.
	ShardWallNS []int64    `json:"shard_wall_ns,omitempty"`
	Skew        shard.Skew `json:"skew,omitempty"`
}

// ScalingResult is the "scaling" block of bench.json: the sharded miner
// run at increasing shard counts over one seeded zebra workload.
type ScalingResult struct {
	Zebras     int    `json:"zebras"`
	AvgLen     int    `json:"avg_len"`
	GridN      int    `json:"grid_n"`
	K          int    `json:"k"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Floor is the efficiency floor this result enforces as a baseline;
	// zero falls back to DefaultScalingFloor at check time.
	Floor   float64        `json:"floor"`
	Entries []ScalingEntry `json:"entries"`
}

// String renders the scaling curve as a small aligned table.
func (r *ScalingResult) String() string {
	out := fmt.Sprintf("scaling: zebra n=%d len=%d grid=%d k=%d seed=%d gomaxprocs=%d\n",
		r.Zebras, r.AvgLen, r.GridN, r.K, r.Seed, r.GoMaxProcs)
	out += "shards      time   speedup   efficiency\n"
	for _, e := range r.Entries {
		out += fmt.Sprintf("%6d  %8.2fs  %8.2f  %11.2f\n",
			e.Shards, time.Duration(e.NS).Seconds(), e.Speedup, e.Efficiency)
	}
	return out
}

// RunScaling measures the sharded miner's scaling curve: the same seeded
// zebra workload mined at each shard count with a fresh scorer (cold
// caches, so the timings are comparable), verifying along the way that
// every shard count returns exactly the 1-shard top-k — a mismatch is an
// error, not a drift.
func RunScaling(ctx context.Context, w io.Writer, o ScalingOptions) (*ScalingResult, error) {
	if o.Scale == 0 {
		o.Scale = 1
	}
	counts := o.Counts
	if counts == nil {
		counts = DefaultScalingCounts
	}
	if len(counts) == 0 || counts[0] != 1 {
		return nil, fmt.Errorf("cli: scaling counts must start with 1, got %v", counts)
	}

	res := &ScalingResult{
		Zebras:     scaled(80, o.Scale),
		AvgLen:     scaled(80, o.Scale),
		GridN:      12,
		K:          10,
		Seed:       o.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Floor:      DefaultScalingFloor,
	}
	ds, err := datagen.ZebraDataset(datagen.ZebraConfig{
		NumZebras: res.Zebras, AvgLen: res.AvgLen, Seed: o.Seed,
	}, 0.01, 1)
	if err != nil {
		return nil, err
	}
	g := FitGrid(ds, res.GridN)

	var refKeys []string
	for _, n := range counts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cli: scaling interrupted before %d shards: %w", n, context.Cause(ctx))
		}
		reg := obs.New()
		s, err := core.NewScorer(ds, core.Config{
			Grid: g, Delta: g.CellWidth(), Metrics: reg, Tracer: o.Tracer,
		})
		if err != nil {
			return nil, err
		}
		eng, err := shard.NewEngine(s, n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		mres, err := eng.Mine(ctx, core.MinerConfig{
			K: res.K, MaxLowQ: 4 * res.K, Metrics: reg, Tracer: o.Tracer,
		}, nil)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("cli: scaling at %d shards: %w", n, err)
		}
		if mres.Interrupted {
			return nil, fmt.Errorf("cli: scaling at %d shards interrupted: %s", n, mres.InterruptReason)
		}

		keys := make([]string, len(mres.Patterns))
		for i, sp := range mres.Patterns {
			keys[i] = sp.Pattern.Key()
		}
		if refKeys == nil {
			refKeys = keys
		} else if !equalKeys(refKeys, keys) {
			return nil, fmt.Errorf(
				"cli: scaling at %d shards returned a different top-%d than 1 shard: %v vs %v (merge soundness violation)",
				n, res.K, keys, refKeys)
		}

		entry := ScalingEntry{
			Shards:      eng.Shards(),
			NS:          elapsed.Nanoseconds(),
			Work:        workCounters(reg.Snapshot()),
			ShardWallNS: mres.ShardWallNS,
			Skew:        mres.Skew,
		}
		if len(res.Entries) > 0 {
			base := float64(res.Entries[0].NS)
			if base > 0 && elapsed.Nanoseconds() > 0 {
				entry.Speedup = base / float64(elapsed.Nanoseconds())
				entry.Efficiency = entry.Speedup / math.Min(float64(entry.Shards), float64(res.GoMaxProcs))
			}
		} else {
			entry.Speedup = 1
			entry.Efficiency = 1
		}
		res.Entries = append(res.Entries, entry)
	}
	fmt.Fprintln(w, res.String())
	return res, nil
}

// scaled shrinks a workload dimension like the exp sweeps do, with a
// floor that keeps the sharded runs meaningful.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 8 {
		v = 8
	}
	return v
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckScaling compares a run's scaling block against a baseline's. Two
// gates apply:
//
//   - The efficiency floor: the current run's largest shard count must
//     reach the baseline's Floor. This is the one wall-clock-derived gate
//     in CI, normalized by available parallelism so it fails on "the
//     sharded engine stopped scaling", not on runner-to-runner noise. It
//     is skipped entirely when the current machine has a single CPU,
//     where no scaling measurement is possible.
//   - The deterministic work counters of each shard count, two-sided
//     within tolPct, exactly like the experiment counters: more work is a
//     regression, less is a silently shrunken workload.
//
// A nil baseline block (older baseline file) checks nothing; a workload
// mismatch makes the blocks incomparable and is itself a violation.
func CheckScaling(baseline, current *ScalingResult, tolPct float64) []string {
	if baseline == nil {
		return nil
	}
	if current == nil {
		return []string{"scaling: baseline has a scaling block but this run measured none (run with -scaling)"}
	}
	if baseline.Zebras != current.Zebras || baseline.AvgLen != current.AvgLen ||
		baseline.GridN != current.GridN || baseline.K != current.K || baseline.Seed != current.Seed {
		return []string{fmt.Sprintf(
			"scaling: baseline workload (n=%d len=%d grid=%d k=%d seed=%d) differs from current (n=%d len=%d grid=%d k=%d seed=%d) — incomparable",
			baseline.Zebras, baseline.AvgLen, baseline.GridN, baseline.K, baseline.Seed,
			current.Zebras, current.AvgLen, current.GridN, current.K, current.Seed)}
	}
	var out []string

	floor := baseline.Floor
	if floor <= 0 {
		floor = DefaultScalingFloor
	}
	// The floor only means something when parallel hardware exists: on a
	// single-CPU machine the "efficiency" of a multi-shard run is a pure
	// overhead ratio, not a scaling measurement, so the gate stands down.
	if len(current.Entries) > 0 && current.GoMaxProcs > 1 {
		last := current.Entries[len(current.Entries)-1]
		if last.Shards > 1 && last.Efficiency < floor {
			msg := fmt.Sprintf(
				"scaling: parallel efficiency %.2f at %d shards is below the floor %.2f (speedup %.2f, gomaxprocs %d)",
				last.Efficiency, last.Shards, floor, last.Speedup, current.GoMaxProcs)
			// Name the shard that dragged the curve down: efficiency is
			// bounded by the slowest shard's wall, so the skew summary is
			// the first diagnostic an operator needs.
			if last.Skew.Ratio > 0 {
				msg += fmt.Sprintf("; slowest shard %d took %.2fs vs fastest shard %d at %.2fs (skew ratio %.2fx)",
					last.Skew.SlowestShard, time.Duration(last.Skew.MaxWallNS).Seconds(),
					last.Skew.FastestShard, time.Duration(last.Skew.MinWallNS).Seconds(),
					last.Skew.Ratio)
			}
			out = append(out, msg)
		}
	}

	curByShards := make(map[int]ScalingEntry, len(current.Entries))
	for _, e := range current.Entries {
		curByShards[e.Shards] = e
	}
	for _, be := range baseline.Entries {
		ce, ok := curByShards[be.Shards]
		if !ok {
			out = append(out, fmt.Sprintf("scaling: shard count %d missing from this run", be.Shards))
			continue
		}
		keys := make([]string, 0, len(be.Work))
		for k := range be.Work {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := be.Work[k]
			cv, ok := ce.Work[k]
			if !ok {
				out = append(out, fmt.Sprintf("scaling[%d]: counter %s missing (baseline %d)", be.Shards, k, bv))
				continue
			}
			if bv == 0 {
				if cv != 0 {
					out = append(out, fmt.Sprintf("scaling[%d]: %s = %d, baseline 0", be.Shards, k, cv))
				}
				continue
			}
			drift := 100 * (float64(cv) - float64(bv)) / float64(bv)
			if drift > tolPct || drift < -tolPct {
				out = append(out, fmt.Sprintf("scaling[%d]: %s = %d vs baseline %d (%+.1f%%, tolerance ±%.4g%%)",
					be.Shards, k, cv, bv, drift, tolPct))
			}
		}
	}
	return out
}
