package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exitFn is swapped by tests so the second-signal abort path can be
// exercised without killing the test process.
var exitFn = os.Exit

// SignalContext returns a child of parent implementing the CLIs'
// two-stage shutdown on SIGINT/SIGTERM. The first signal cancels the
// returned context — long-running stages (Mine, RunBench, StreamNM)
// then drain gracefully and their callers flush partial results and
// trace journals. A second signal aborts the process immediately with
// the conventional exit code 130.
//
// w receives the operator-facing notices (pass os.Stderr); name labels
// them. The returned stop function releases the signal handler and must
// be deferred so a finished command stops intercepting ^C.
func SignalContext(parent context.Context, w io.Writer, name string) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(w, "%s: %v — draining and flushing partial results (signal again to abort)\n", name, sig)
			cancel(fmt.Errorf("%v received", sig))
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			fmt.Fprintf(w, "%s: %v — aborting\n", name, sig)
			exitFn(130)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel(nil)
		})
	}
	return ctx, stop
}
