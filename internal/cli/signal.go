package cli

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exitFn is swapped by tests so the second-signal abort path can be
// exercised without killing the test process.
var exitFn = os.Exit

// SignalContext returns a child of parent implementing the CLIs'
// two-stage shutdown on SIGINT/SIGTERM. The first signal cancels the
// returned context — long-running stages (Mine, RunBench, StreamNM)
// then drain gracefully and their callers flush partial results and
// trace journals. A second signal aborts the process immediately with
// the conventional exit code 130.
//
// w receives the operator-facing notices (pass os.Stderr); name labels
// them. The returned stop function releases the signal handler and must
// be deferred so a finished command stops intercepting ^C.
func SignalContext(parent context.Context, w io.Writer, name string) (context.Context, func()) {
	return SignalContextLogged(parent, Lifecycle{W: w}, name)
}

// SignalContextLogged is SignalContext with the drain notices routed
// through lc: structured records when lc.Logger is set (-log-format=text
// or json), the legacy plain lines on lc.W otherwise.
func SignalContextLogged(parent context.Context, lc Lifecycle, name string) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			lc.Notice(fmt.Sprintf("%s: %v — draining and flushing partial results (signal again to abort)", name, sig),
				"signal received — draining",
				slog.String("cmd", name), slog.String("signal", sig.String()))
			cancel(fmt.Errorf("%v received", sig))
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			lc.Error(fmt.Sprintf("%s: %v — aborting", name, sig),
				"second signal — aborting",
				slog.String("cmd", name), slog.String("signal", sig.String()))
			exitFn(130)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel(nil)
		})
	}
	return ctx, stop
}
