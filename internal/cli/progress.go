package cli

import (
	"fmt"
	"io"
	"sync"
	"time"

	"trajpattern/internal/core"
)

// DefaultProgressInterval is the minimum delay between two progress lines
// when ProgressOptions leave the interval unset.
const DefaultProgressInterval = 500 * time.Millisecond

// ProgressPrinter renders a miner's live state as a throttled one-line
// status (iteration, |H|/|Q|, answer fill, candidate count, ETA bound),
// the -progress flag of trajmine and trajbench. Updates arrive on the
// mining goroutine and are rate-limited so a fast run costs a handful of
// writes; Done flushes the final state. All methods are safe on a nil
// receiver, so callers can hold an optional printer without guards.
type ProgressPrinter struct {
	w     io.Writer
	every time.Duration

	mu     sync.Mutex
	start  time.Time
	last   time.Time
	latest core.Progress
	dirty  bool
	wrote  bool
}

// NewProgressPrinter returns a printer writing to w at most once per
// interval (DefaultProgressInterval when interval <= 0).
func NewProgressPrinter(w io.Writer, interval time.Duration) *ProgressPrinter {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &ProgressPrinter{w: w, every: interval, start: time.Now()}
}

// Update records the miner's state and prints it if the throttle allows.
// It is the function to install as MinerConfig.OnProgress.
func (p *ProgressPrinter) Update(u core.Progress) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latest = u
	p.dirty = true
	now := time.Now()
	if !p.last.IsZero() && now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	p.print()
}

// Done prints the final state (if any update was never printed) and
// terminates the status line. Call it once after the run.
func (p *ProgressPrinter) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty {
		p.print()
	}
	if p.wrote {
		fmt.Fprintln(p.w)
	}
}

// print renders the latest update. Caller holds p.mu.
func (p *ProgressPrinter) print() {
	u := p.latest
	line := fmt.Sprintf("iter %d/%d  |H|=%d |Q|=%d  answer %d/%d  candidates %d  %s",
		u.Iteration, u.MaxIters, u.HighSize, u.QSize, u.AnswerSize, u.K,
		u.Candidates, etaString(u))
	// \r + padding redraws in place on a terminal; each line still ends up
	// on its own row in a captured log.
	fmt.Fprintf(p.w, "\r%-78s", line)
	p.dirty = false
	p.wrote = true
}

// etaString bounds the time remaining. The miner usually terminates well
// before MaxIters, so the per-iteration extrapolation is reported as an
// upper bound rather than an estimate.
func etaString(u core.Progress) string {
	if u.Iteration <= 0 || u.Elapsed <= 0 {
		return ""
	}
	if u.Iteration >= u.MaxIters {
		return fmt.Sprintf("elapsed %s", u.Elapsed.Round(100*time.Millisecond))
	}
	per := u.Elapsed / time.Duration(u.Iteration)
	eta := per * time.Duration(u.MaxIters-u.Iteration)
	return fmt.Sprintf("elapsed %s, ETA ≤ %s",
		u.Elapsed.Round(100*time.Millisecond), eta.Round(100*time.Millisecond))
}
