package cli

import (
	"fmt"
	"io"
	"sync"
	"time"

	"trajpattern/internal/core"
)

// DefaultProgressInterval is the minimum delay between two progress lines
// when ProgressOptions leave the interval unset.
const DefaultProgressInterval = 500 * time.Millisecond

// etaWindow bounds the sliding window of the iterations/sec estimate:
// samples older than this (on the miner's elapsed clock) are dropped, so
// the rate tracks the current mining phase instead of averaging in the
// cheap early iterations.
const etaWindow = 10 * time.Second

// progressSample is one Update's position on the iteration clock.
type progressSample struct {
	iter    int
	elapsed time.Duration
}

// ProgressPrinter renders a miner's live state as a throttled one-line
// status (iteration, |H|/|Q|, answer fill, candidate count, ETA bound),
// the -progress flag of trajmine and trajbench. Updates arrive on the
// mining goroutine and are rate-limited so a fast run costs a handful of
// writes; Done flushes the final state. All methods are safe on a nil
// receiver, so callers can hold an optional printer without guards.
type ProgressPrinter struct {
	w     io.Writer
	every time.Duration

	mu      sync.Mutex
	start   time.Time
	last    time.Time
	latest  core.Progress
	samples []progressSample
	dirty   bool
	wrote   bool
}

// NewProgressPrinter returns a printer writing to w at most once per
// interval (DefaultProgressInterval when interval <= 0).
func NewProgressPrinter(w io.Writer, interval time.Duration) *ProgressPrinter {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &ProgressPrinter{w: w, every: interval, start: time.Now()}
}

// Update records the miner's state and prints it if the throttle allows.
// It is the function to install as MinerConfig.OnProgress.
func (p *ProgressPrinter) Update(u core.Progress) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latest = u
	p.dirty = true
	// Every update feeds the rate window, printed or not: the throttle
	// limits terminal writes, not the estimate's resolution.
	if n := len(p.samples); n == 0 || u.Iteration > p.samples[n-1].iter {
		p.samples = append(p.samples, progressSample{iter: u.Iteration, elapsed: u.Elapsed})
	}
	for len(p.samples) > 1 && u.Elapsed-p.samples[0].elapsed > etaWindow {
		p.samples = p.samples[1:]
	}
	now := time.Now()
	if !p.last.IsZero() && now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	p.print()
}

// Done prints the final state (if any update was never printed) and
// terminates the status line. Call it once after the run.
func (p *ProgressPrinter) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty {
		p.print()
	}
	if p.wrote {
		fmt.Fprintln(p.w)
	}
}

// print renders the latest update. Caller holds p.mu.
func (p *ProgressPrinter) print() {
	u := p.latest
	line := fmt.Sprintf("iter %d/%d  |H|=%d |Q|=%d  answer %d/%d  candidates %d  %s",
		u.Iteration, u.MaxIters, u.HighSize, u.QSize, u.AnswerSize, u.K,
		u.Candidates, p.etaString(u))
	// \r + padding redraws in place on a terminal; each line still ends up
	// on its own row in a captured log.
	fmt.Fprintf(p.w, "\r%-78s", line)
	p.dirty = false
	p.wrote = true
}

// rate returns iterations/sec over the sliding window, or the whole-run
// average when the window has no spread yet (first updates, or updates
// faster than the elapsed clock's resolution). Zero means "no estimate".
// Caller holds p.mu.
func (p *ProgressPrinter) rate(u core.Progress) float64 {
	if n := len(p.samples); n > 1 {
		dIter := p.samples[n-1].iter - p.samples[0].iter
		dT := (p.samples[n-1].elapsed - p.samples[0].elapsed).Seconds()
		if dIter > 0 && dT > 0 {
			return float64(dIter) / dT
		}
	}
	if u.Iteration > 0 && u.Elapsed > 0 {
		return float64(u.Iteration) / u.Elapsed.Seconds()
	}
	return 0
}

// etaString bounds the time remaining from the sliding-window rate. The
// miner usually terminates well before MaxIters, so the extrapolation is
// reported as an upper bound rather than an estimate. Caller holds p.mu.
func (p *ProgressPrinter) etaString(u core.Progress) string {
	if u.Iteration <= 0 || u.Elapsed <= 0 {
		return ""
	}
	rate := p.rate(u)
	if u.Iteration >= u.MaxIters || rate <= 0 {
		return fmt.Sprintf("elapsed %s", u.Elapsed.Round(100*time.Millisecond))
	}
	eta := time.Duration(float64(u.MaxIters-u.Iteration) / rate * float64(time.Second))
	return fmt.Sprintf("elapsed %s, %.1f it/s, ETA ≤ %s",
		u.Elapsed.Round(100*time.Millisecond), rate, eta.Round(100*time.Millisecond))
}
