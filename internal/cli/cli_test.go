package cli

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"trajpattern/internal/core"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"zebra", "tpr", "posture"} {
		ds, err := Generate(GenOptions{Kind: kind, N: 8, Len: 20, U: 0.02, C: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(ds) != 8 {
			t.Errorf("%s: %d trajectories", kind, len(ds))
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestGenerateBus(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "bus", U: 0.01, C: 2, Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("empty bus dataset")
	}
	if ds[0].Len() != 100 {
		t.Errorf("velocity length = %d", ds[0].Len())
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate(GenOptions{Kind: "nope"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFitGrid(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "tpr", N: 5, Len: 20, U: 0.02, C: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := FitGrid(ds, 8)
	if g.NumCells() != 64 {
		t.Errorf("cells = %d", g.NumCells())
	}
	for _, tr := range ds {
		for _, p := range tr {
			if !g.Bounds().Contains(p.Mean) {
				t.Fatalf("grid does not cover %v", p.Mean)
			}
		}
	}
	// Square even for skewed data (up to float rounding of min/max
	// corners derived from center ± side/2).
	if d := g.Bounds().Width() - g.Bounds().Height(); d > 1e-12 || d < -1e-12 {
		t.Errorf("grid not square: %v vs %v", g.Bounds().Width(), g.Bounds().Height())
	}
}

func TestMineAllMeasures(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 10, Len: 25, U: 0.02, C: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, measure := range []string{"nm", "pb", "match"} {
		var buf bytes.Buffer
		pats, err := Mine(context.Background(), &buf, ds, MineOptions{
			K: 4, GridN: 8, MinLen: 1, MaxLen: 3, DeltaMul: 1,
			Measure: measure, Groups: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", measure, err)
		}
		if len(pats) != 4 {
			t.Errorf("%s: %d patterns", measure, len(pats))
		}
		out := buf.String()
		if !strings.Contains(out, "dataset:") {
			t.Errorf("%s: missing header:\n%s", measure, out)
		}
		if !strings.Contains(out, "pattern groups") {
			t.Errorf("%s: missing groups section", measure)
		}
	}
}

func TestMineViz(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 6, Len: 20, U: 0.02, C: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Mine(context.Background(), &buf, ds, MineOptions{
		K: 3, GridN: 8, MinLen: 1, MaxLen: 3, DeltaMul: 1,
		Measure: "nm", Viz: true,
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "data density") || !strings.Contains(out, "best pattern") {
		t.Errorf("viz sections missing:\n%s", out)
	}
}

func TestMineErrors(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 4, Len: 15, U: 0.02, C: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Mine(context.Background(), &buf, nil, MineOptions{K: 1, GridN: 4, MaxLen: 2, DeltaMul: 1, Measure: "nm"}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Mine(context.Background(), &buf, ds, MineOptions{K: 1, GridN: 4, MaxLen: 2, DeltaMul: 1, Measure: "bogus"}); err == nil {
		t.Error("bogus measure accepted")
	}
	if _, err := Mine(context.Background(), &buf, ds, MineOptions{K: 0, GridN: 4, MaxLen: 2, DeltaMul: 1, Measure: "nm"}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestMineSavePatterns(t *testing.T) {
	ds, err := Generate(GenOptions{Kind: "zebra", N: 6, Len: 20, U: 0.02, C: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pats.json"
	var buf bytes.Buffer
	if _, err := Mine(context.Background(), &buf, ds, MineOptions{
		K: 3, GridN: 8, MinLen: 1, MaxLen: 3, DeltaMul: 1,
		Measure: "nm", SavePath: path,
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadPatterns(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Errorf("loaded %d patterns", len(loaded))
	}
}
