package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/exp"
	"trajpattern/internal/faultio"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// BenchSchema versions the bench.json layout; bump on incompatible change.
const BenchSchema = 1

// DefaultBenchTolerance is the -check drift tolerance (percent) applied
// when BenchOptions.TolPct is unset.
const DefaultBenchTolerance = 15

// benchExperiments is the canonical experiment order of the trajbench tool.
var benchExperiments = []string{
	"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
	"a1", "a2", "a3", "a4", "a5", "a6",
}

// BenchOptions parameterizes a trajbench run.
type BenchOptions struct {
	// Experiments selects experiment ids; nil or ["all"] runs everything.
	Experiments []string
	// Scale shrinks the workloads, as in the individual experiments.
	Scale float64
	// Seed is the shared random seed.
	Seed uint64
	// ShowMetrics prints each experiment's obs snapshot after its table.
	ShowMetrics bool
	// JSONPath, when non-empty, writes the machine-readable BenchResult
	// (bench.json) there.
	JSONPath string
	// CheckPath, when non-empty, loads a baseline BenchResult from this
	// file and fails the run when the current results drift beyond TolPct.
	CheckPath string
	// TolPct is the allowed drift percentage for CheckPath comparisons.
	// Zero means DefaultBenchTolerance.
	TolPct float64
	// Scaling additionally runs the sharded miner's scaling curve (see
	// RunScaling) and records it as the result's "scaling" block; with
	// CheckPath set, the block is gated against the baseline's via
	// CheckScaling (efficiency floor + work counters).
	Scaling bool
	// CheckTime additionally gates on wall-clock time (one-sided: slower
	// than baseline by more than TolPct fails). Off by default because
	// wall time is only comparable on the machine that produced the
	// baseline; the default gate uses the deterministic work counters,
	// which are machine-independent.
	CheckTime bool

	// Tracer, when non-nil, records spans and events across every
	// instrumented experiment (the caller writes the files; see SaveTrace).
	Tracer *trace.Tracer
	// Progress, when non-nil, receives per-iteration miner state from the
	// sweep experiments (a ProgressPrinter under -progress).
	Progress func(core.Progress)
	// Holder, when non-nil, has the current experiment's registry published
	// into it so a debug server can watch the run live.
	Holder *MetricsHolder
}

// ExperimentResult is one experiment's entry in bench.json.
type ExperimentResult struct {
	// NS is the experiment's wall time in nanoseconds.
	NS int64 `json:"ns"`
	// Allocs/Bytes are the heap allocation count and volume during the
	// experiment (runtime.MemStats deltas; indicative, not gated).
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
	// Work holds the deterministic obs counters (candidates, prunes, NM
	// evaluations, …) that the -check gate compares. Scheduling-dependent
	// counters (scratch pool, per-worker) are excluded.
	Work map[string]int64 `json:"work,omitempty"`
	// Metrics is the full obs snapshot, including the non-deterministic
	// instruments and timers.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// BenchResult is the machine-readable output of one trajbench run
// (bench.json), comparable across commits via RunBench's check mode.
type BenchResult struct {
	Schema int `json:"schema"`
	// Provenance stamps the build and host that produced the run (commit,
	// Go version, GOOS/GOARCH, GOMAXPROCS), so drift flagged against a
	// baseline is attributable to a code change versus an environment one.
	Provenance  obs.Provenance               `json:"provenance"`
	Scale       float64                      `json:"scale"`
	Seed        uint64                       `json:"seed"`
	Experiments map[string]*ExperimentResult `json:"experiments"`
	// Scaling holds the sharded miner's scaling curve when the run was
	// asked to measure one (BenchOptions.Scaling); absent otherwise, so
	// pre-sharding baselines keep loading unchanged.
	Scaling *ScalingResult `json:"scaling,omitempty"`
}

// nondeterministicFragments mark counter namespaces whose values depend
// on goroutine scheduling or pool reuse; they are reported in Metrics but
// excluded from the Work map the regression gate compares. Matched by
// substring, not prefix, so per-shard copies ("shard.03.scorer.scratch.…")
// stay excluded too. "shard.pool." covers the work-stealing pool's
// utilization counters (steals vary with which worker drains which deque).
var nondeterministicFragments = []string{"scorer.scratch.", "scorer.worker.", "shard.pool."}

// workCounters extracts the deterministic gate counters from a snapshot.
func workCounters(s obs.Snapshot) map[string]int64 {
	if len(s.Counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.Counters))
next:
	for name, v := range s.Counters {
		for _, p := range nondeterministicFragments {
			if strings.Contains(name, p) {
				continue next
			}
		}
		out[name] = v
	}
	return out
}

// RunBench executes the selected experiments, printing each table to w,
// and returns the machine-readable result. Per BenchOptions it also prints
// obs snapshots, writes bench.json, and compares against a baseline,
// returning a non-nil error if any experiment or the regression check
// failed — the error the trajbench command turns into a non-zero exit.
//
// Cancelling ctx stops the run at the next experiment boundary; an
// experiment cut short mid-run is discarded (its timings would be
// bogus), completed experiments are still written to bench.json, and the
// returned error names the interruption.
func RunBench(ctx context.Context, w io.Writer, o BenchOptions) (*BenchResult, error) {
	if o.Scale == 0 {
		o.Scale = 1
	}
	selected, err := selectExperiments(o.Experiments)
	if err != nil {
		return nil, err
	}

	result := &BenchResult{
		Schema:      BenchSchema,
		Provenance:  obs.CollectProvenance(),
		Scale:       o.Scale,
		Seed:        o.Seed,
		Experiments: make(map[string]*ExperimentResult),
	}

	var failures []string
	for _, id := range benchExperiments {
		if !selected[id] {
			continue
		}
		reg := obs.New()
		o.Holder.Set(reg)
		bus := exp.BusOptions{Scale: o.Scale, Seed: o.Seed}
		sweep := exp.SweepOptions{
			Scale: o.Scale, Seed: o.Seed,
			Metrics: reg, Tracer: o.Tracer, Progress: o.Progress,
		}

		if err := ctx.Err(); err != nil {
			failures = append(failures, fmt.Sprintf("interrupted before %s (%v)", id, context.Cause(ctx)))
			break
		}

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, err := runExperiment(ctx, id, bus, sweep)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)

		if ctx.Err() != nil {
			// The experiment ran against a cancelled context: its miner
			// runs degraded to partial answers and its timings measure an
			// aborted workload, so the entry is dropped rather than
			// recorded as a bogus data point.
			failures = append(failures, fmt.Sprintf("%s: interrupted (%v)", id, context.Cause(ctx)))
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajbench: %s: %v\n", id, err)
			failures = append(failures, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		fmt.Fprintln(w, out.String())
		fmt.Fprintf(w, "(%s completed in %.1fs)\n\n", id, elapsed.Seconds())

		snap := reg.Snapshot()
		er := &ExperimentResult{
			NS:     elapsed.Nanoseconds(),
			Allocs: after.Mallocs - before.Mallocs,
			Bytes:  after.TotalAlloc - before.TotalAlloc,
			Work:   workCounters(snap),
		}
		if len(snap.Counters)+len(snap.Gauges)+len(snap.Timers) > 0 {
			er.Metrics = &snap
			if o.ShowMetrics {
				fmt.Fprintf(w, "%s metrics:\n%s\n", id, snap)
			}
		}
		result.Experiments[id] = er
	}

	if o.Scaling && ctx.Err() == nil {
		sres, err := RunScaling(ctx, w, ScalingOptions{Scale: o.Scale, Seed: o.Seed, Tracer: o.Tracer})
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajbench: scaling: %v\n", err)
			failures = append(failures, fmt.Sprintf("scaling: %v", err))
		} else {
			result.Scaling = sres
		}
	}

	if o.JSONPath != "" {
		if err := writeBenchJSON(o.JSONPath, result); err != nil {
			return result, err
		}
		fmt.Fprintf(w, "wrote %s\n", o.JSONPath)
	}

	if o.CheckPath != "" {
		baseline, err := LoadBenchResult(o.CheckPath)
		if err != nil {
			return result, err
		}
		tol := o.TolPct
		if tol <= 0 {
			tol = DefaultBenchTolerance
		}
		regressions := CheckRegression(baseline, result, tol, o.CheckTime)
		if o.Scaling {
			regressions = append(regressions, CheckScaling(baseline.Scaling, result.Scaling, tol)...)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "trajbench: regression: %s\n", r)
			}
			failures = append(failures, fmt.Sprintf(
				"%d regression(s) beyond %.4g%% against %s", len(regressions), tol, o.CheckPath))
		} else {
			fmt.Fprintf(w, "check against %s passed (tolerance %.4g%%)\n", o.CheckPath, tol)
		}
	}

	if len(failures) > 0 {
		return result, fmt.Errorf("trajbench: %s", strings.Join(failures, "; "))
	}
	return result, nil
}

// selectExperiments resolves the -exp selection, rejecting unknown ids so
// a typo in a CI command fails loudly instead of silently running nothing.
func selectExperiments(ids []string) (map[string]bool, error) {
	known := make(map[string]bool, len(benchExperiments))
	for _, id := range benchExperiments {
		known[id] = true
	}
	selected := map[string]bool{}
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	for _, raw := range ids {
		id := strings.TrimSpace(strings.ToLower(raw))
		if id == "all" {
			for _, k := range benchExperiments {
				selected[k] = true
			}
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("cli: unknown experiment %q (want %s or all)",
				id, strings.Join(benchExperiments, ", "))
		}
		selected[id] = true
	}
	return selected, nil
}

// runExperiment dispatches one experiment id.
func runExperiment(ctx context.Context, id string, bus exp.BusOptions, sweep exp.SweepOptions) (fmt.Stringer, error) {
	switch id {
	case "e1":
		r, err := exp.RunE1(ctx, exp.E1Options{Bus: bus})
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	case "e2":
		r, err := exp.RunE2(ctx, exp.E2Options{Bus: bus})
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	case "e3":
		return derefSeries(exp.RunE3(ctx, sweep))
	case "e4":
		return derefSeries(exp.RunE4(ctx, sweep))
	case "e5":
		return derefSeries(exp.RunE5(ctx, sweep))
	case "e6":
		return derefSeries(exp.RunE6(ctx, sweep))
	case "e7":
		return derefSeries(exp.RunE7(ctx, exp.E7Options{Sweep: sweep}))
	case "e8":
		r, err := exp.RunE8(ctx, exp.E8Options{Seed: sweep.Seed})
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	case "e9":
		r, err := exp.RunE9(ctx, exp.E9Options{Bus: bus})
		if err != nil {
			return nil, err
		}
		return r.Table, nil
	case "a1":
		return derefTable(exp.RunA1(ctx, sweep))
	case "a2":
		return derefTable(exp.RunA2(ctx, sweep))
	case "a3":
		return derefTable(exp.RunA3(ctx, sweep))
	case "a4":
		return derefTable(exp.RunA4(ctx, sweep))
	case "a5":
		return derefTable(exp.RunA5(ctx, sweep))
	case "a6":
		return derefTable(exp.RunA6(ctx, sweep))
	default:
		return nil, fmt.Errorf("cli: unknown experiment %q", id)
	}
}

func derefSeries(s *exp.Series, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return *s, nil
}

func derefTable(t *exp.Table, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return *t, nil
}

// writeBenchJSON writes r as indented JSON, atomically (temp file +
// fsync + rename) so an interrupted run never leaves a torn bench.json.
func writeBenchJSON(path string, r *BenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("cli: marshal bench result: %w", err)
	}
	if err := faultio.WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	}); err != nil {
		return fmt.Errorf("cli: write bench result: %w", err)
	}
	return nil
}

// LoadBenchResult reads a bench.json written by RunBench.
func LoadBenchResult(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: read baseline: %w", err)
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("cli: parse baseline %s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("cli: baseline %s has schema %d, want %d (regenerate with -json)",
			path, r.Schema, BenchSchema)
	}
	return &r, nil
}

// CheckRegression compares the current run against a baseline and returns
// one description per violation. Work counters are deterministic for a
// fixed scale and seed, so they are compared two-sided: any drift beyond
// tolPct — more work (a perf regression) or less (a silently shrunken
// workload) — is flagged, as is a counter that disappeared. Wall time is
// compared only when checkTime is set, one-sided (slower fails), because it
// is only meaningful against a baseline from the same machine.
func CheckRegression(baseline, current *BenchResult, tolPct float64, checkTime bool) []string {
	var out []string
	if baseline.Scale != current.Scale || baseline.Seed != current.Seed {
		return []string{fmt.Sprintf(
			"baseline was produced at scale=%v seed=%d, current run is scale=%v seed=%d — incomparable",
			baseline.Scale, baseline.Seed, current.Scale, current.Seed)}
	}
	ids := make([]string, 0, len(baseline.Experiments))
	for id := range baseline.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		base := baseline.Experiments[id]
		cur, ok := current.Experiments[id]
		if !ok {
			continue // not part of this run (e.g. -exp subset)
		}
		keys := make([]string, 0, len(base.Work))
		for k := range base.Work {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := base.Work[k]
			cv, ok := cur.Work[k]
			if !ok {
				out = append(out, fmt.Sprintf("%s: counter %s missing (baseline %d)", id, k, bv))
				continue
			}
			if bv == 0 {
				if cv != 0 {
					out = append(out, fmt.Sprintf("%s: %s = %d, baseline 0", id, k, cv))
				}
				continue
			}
			drift := 100 * (float64(cv) - float64(bv)) / float64(bv)
			if drift > tolPct || drift < -tolPct {
				out = append(out, fmt.Sprintf("%s: %s = %d vs baseline %d (%+.1f%%, tolerance ±%.4g%%)",
					id, k, cv, bv, drift, tolPct))
			}
		}
		if checkTime && base.NS > 0 {
			drift := 100 * (float64(cur.NS) - float64(base.NS)) / float64(base.NS)
			if drift > tolPct {
				out = append(out, fmt.Sprintf("%s: wall time %v vs baseline %v (%+.1f%%, tolerance %.4g%%)",
					id, time.Duration(cur.NS), time.Duration(base.NS), drift, tolPct))
			}
		}
	}
	return out
}
