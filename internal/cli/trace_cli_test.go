package cli

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/obs"
	"trajpattern/internal/trace"
)

// traceNameCounts tallies records per name, the determinism fingerprint.
func traceNameCounts(tr *trace.Tracer) map[string]int {
	out := map[string]int{}
	for _, e := range tr.Events() {
		out[e.Name]++
	}
	return out
}

// mineTraced runs one NM mine with a fresh tracer and returns it.
func mineTraced(t *testing.T, extra func(*MineOptions)) *trace.Tracer {
	t.Helper()
	ds, err := Generate(GenOptions{Kind: "zebra", N: 8, Len: 20, U: 0.02, C: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	o := MineOptions{
		K: 3, GridN: 8, MinLen: 1, MaxLen: 3, DeltaMul: 1,
		Measure: "nm", Groups: true, Tracer: tr,
	}
	if extra != nil {
		extra(&o)
	}
	var buf bytes.Buffer
	if _, err := Mine(context.Background(), &buf, ds, o); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMineTraceEndToEnd(t *testing.T) {
	var updates []core.Progress
	tr := mineTraced(t, func(o *MineOptions) {
		o.OnProgress = func(u core.Progress) { updates = append(updates, u) }
	})

	counts := traceNameCounts(tr)
	if counts["miner.run"] != 1 {
		t.Errorf("miner.run spans = %d, want 1", counts["miner.run"])
	}
	if counts["miner.iteration"] == 0 {
		t.Error("no miner.iteration spans")
	}
	if counts["scorer.batch"] == 0 {
		t.Error("no scorer.batch spans")
	}
	if counts["groups.cluster"] != 1 {
		t.Errorf("groups.cluster spans = %d, want 1", counts["groups.cluster"])
	}
	if len(updates) == 0 {
		t.Error("OnProgress never fired")
	}

	// Fixed seed, fixed options: the trace fingerprint is deterministic.
	again := traceNameCounts(mineTraced(t, nil))
	// The progress callback must not change what gets traced.
	if !reflect.DeepEqual(counts, again) {
		t.Errorf("trace fingerprint not deterministic:\n%v\n%v", counts, again)
	}
}

func TestMineMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	mineTraced(t, func(o *MineOptions) { o.MetricsOut = path })

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Provenance obs.Provenance `json:"provenance"`
		Metrics    obs.Snapshot   `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("metrics report not valid JSON: %v", err)
	}
	if rep.Provenance.GoVersion == "" {
		t.Error("metrics report missing provenance stamp")
	}
	if rep.Metrics.Counter("miner.candidates.fresh") == 0 {
		t.Errorf("metrics report missing miner counters: %+v", rep.Metrics.Counters)
	}
}

func TestSaveTrace(t *testing.T) {
	tr := mineTraced(t, nil)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}

	// The journal is one JSON object per line.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line %d not valid JSON: %v", lines+1, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != tr.Len() {
		t.Errorf("journal has %d lines, tracer has %d records", lines, tr.Len())
	}

	// The sibling file is a valid Chrome trace.
	raw, err := os.ReadFile(path + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) != tr.Len() {
		t.Errorf("chrome trace has %d events, tracer has %d records",
			len(chrome.TraceEvents), tr.Len())
	}

	// Disabled tracing writes nothing.
	if err := SaveTrace(filepath.Join(t.TempDir(), "none"), nil); err != nil {
		t.Errorf("nil tracer SaveTrace: %v", err)
	}
	if err := SaveTrace("", tr); err != nil {
		t.Errorf("empty path SaveTrace: %v", err)
	}
}

func TestProgressPrinter(t *testing.T) {
	var buf bytes.Buffer
	// A huge interval isolates the throttle: only the first update prints
	// until Done flushes the last one.
	p := NewProgressPrinter(&buf, time.Hour)
	u := core.Progress{Iteration: 1, MaxIters: 16, QSize: 10, HighSize: 3,
		AnswerSize: 2, K: 5, Candidates: 40, Elapsed: 2 * time.Second}
	p.Update(u)
	first := buf.String()
	if !strings.Contains(first, "iter 1/16") || !strings.Contains(first, "|Q|=10") {
		t.Errorf("first update not printed: %q", first)
	}
	if !strings.Contains(first, "ETA") {
		t.Errorf("extrapolation missing: %q", first)
	}

	u.Iteration = 2
	p.Update(u)
	if got := buf.String(); got != first {
		t.Errorf("throttled update printed anyway: %q", got)
	}

	p.Done()
	out := buf.String()
	if !strings.Contains(out, "iter 2/16") {
		t.Errorf("Done did not flush the pending update: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Done did not terminate the status line: %q", out)
	}

	// Nil printer: Update is installable as a callback and does nothing.
	var np *ProgressPrinter
	np.Update(u)
	np.Done()
}

func TestProgressETASlidingWindow(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressPrinter(&buf, time.Nanosecond) // effectively unthrottled
	// A steady 2 it/s on the miner's elapsed clock: iterations 1..4 at
	// half-second spacing.
	for i := 1; i <= 4; i++ {
		p.Update(core.Progress{Iteration: i, MaxIters: 10, K: 5,
			Elapsed: time.Duration(i) * 500 * time.Millisecond})
	}
	p.Done()
	out := buf.String()
	if !strings.Contains(out, "2.0 it/s") {
		t.Errorf("sliding-window rate missing: %q", out)
	}
	// Six iterations remain at 2 it/s → a 3s upper bound.
	if !strings.Contains(out, "ETA ≤ 3s") {
		t.Errorf("ETA not derived from the window rate: %q", out)
	}
}

func TestMetricsHolder(t *testing.T) {
	var nilHolder *MetricsHolder
	nilHolder.Set(obs.New()) // no panic
	if s := nilHolder.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil holder snapshot: %+v", s)
	}

	h := &MetricsHolder{}
	if h.Registry() != nil {
		t.Error("empty holder has a registry")
	}
	r := obs.New()
	r.Counter("x").Add(3)
	h.Set(r)
	if h.Snapshot().Counter("x") != 3 {
		t.Error("holder snapshot missing published registry")
	}
	h.Set(nil)
	if h.Registry() != nil {
		t.Error("holder not cleared")
	}
}

func TestDebugServer(t *testing.T) {
	reg := obs.New()
	reg.Counter("miner.candidates.fresh").Add(7)
	holder := &MetricsHolder{}
	holder.Set(reg)
	tr := trace.New()
	tr.Local().Event("miner.candidate.admitted", trace.Attrs{"pattern": "1"})

	url, stop, err := StartDebugServer("127.0.0.1:0", holder, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "miner.candidates.fresh") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json = %d", code)
	}
	var rep struct {
		Provenance obs.Provenance `json:"provenance"`
		Metrics    obs.Snapshot   `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/metrics?format=json not valid JSON: %v\n%s", err, body)
	}
	if rep.Provenance.GoVersion == "" || rep.Metrics.Counter("miner.candidates.fresh") != 7 {
		t.Errorf("stamped report wrong: %+v", rep)
	}

	code, body = get("/trace/status")
	if code != http.StatusOK {
		t.Fatalf("/trace/status = %d", code)
	}
	var st trace.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/trace/status not valid JSON: %v\n%s", err, body)
	}
	if !st.Enabled || st.Events != 1 || st.ByName["miner.candidate.admitted"] != 1 {
		t.Errorf("trace status = %+v", st)
	}

	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/trace/status") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d %q", code, body[:min(len(body), 80)])
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// TestDebugServerNilSources checks the endpoints degrade gracefully when
// no registry or tracer is attached (trajbench before its first
// experiment, or a run without -trace).
func TestDebugServerNilSources(t *testing.T) {
	url, stop, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "no metrics") {
		t.Errorf("/metrics without registry = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(url + "/trace/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st trace.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Error("nil tracer reports Enabled")
	}
}

// TestRunBenchTraced checks the bench harness threads the tracer and
// holder through a real experiment and stamps the result with provenance.
func TestRunBenchTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	tr := trace.New()
	holder := &MetricsHolder{}
	var buf bytes.Buffer
	res, err := RunBench(context.Background(), &buf, BenchOptions{
		Experiments: []string{"e3"},
		Scale:       0.15,
		Seed:        1,
		Tracer:      tr,
		Holder:      holder,
	})
	if err != nil {
		t.Fatalf("RunBench: %v\n%s", err, buf.String())
	}
	if res.Provenance.GoVersion == "" || res.Provenance.GOARCH == "" {
		t.Errorf("bench result missing provenance: %+v", res.Provenance)
	}
	counts := traceNameCounts(tr)
	if counts["miner.run"] == 0 || counts["scorer.batch"] == 0 {
		t.Errorf("bench trace missing miner spans: %v", counts)
	}
	if holder.Snapshot().Counter("scorer.nm.evals") == 0 {
		t.Error("holder does not expose the experiment registry")
	}

	// The old committed baseline layout (schema 1 with go_version fields)
	// still loads: the gate only reads schema, scale, seed and work.
	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"schema":1,"go_version":"go1.22","goos":"linux","goarch":"amd64","scale":0.15,"seed":1,"experiments":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBenchResult(legacy)
	if err != nil {
		t.Fatalf("legacy baseline rejected: %v", err)
	}
	if got := CheckRegression(base, res, 15, false); len(got) != 0 {
		t.Errorf("legacy baseline comparison: %v", got)
	}
}
