//go:build unix

package cli

import (
	"bytes"
	"context"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// raise sends sig to this process and fails the test on error.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), sig); err != nil {
		t.Fatalf("kill: %v", err)
	}
}

func TestSignalContextFirstSignalCancels(t *testing.T) {
	var buf bytes.Buffer
	ctx, stop := SignalContext(context.Background(), &buf, "testtool")
	defer stop()

	raise(t, syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
	if cause := context.Cause(ctx); cause == nil || !strings.Contains(cause.Error(), "terminated") {
		t.Errorf("cause = %v, want a signal description", cause)
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Errorf("notice %q does not mention draining", buf.String())
	}
}

func TestSignalContextSecondSignalAborts(t *testing.T) {
	exited := make(chan int, 1)
	exitFn = func(code int) {
		exited <- code
		select {} // the real os.Exit never returns; park the goroutine
	}
	defer func() { exitFn = os.Exit }()

	var buf bytes.Buffer
	ctx, stop := SignalContext(context.Background(), &buf, "testtool")
	defer stop()

	raise(t, syscall.SIGTERM)
	<-ctx.Done()
	raise(t, syscall.SIGTERM)
	select {
	case code := <-exited:
		if code != 130 {
			t.Errorf("exit code = %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not abort")
	}
	if !strings.Contains(buf.String(), "aborting") {
		t.Errorf("notice %q does not mention aborting", buf.String())
	}
}

func TestSignalContextStopReleasesHandler(t *testing.T) {
	var buf bytes.Buffer
	ctx, stop := SignalContext(context.Background(), &buf, "testtool")
	stop()
	stop() // idempotent
	// After stop the context is released (cancelled with a nil cause →
	// context.Canceled), not left dangling.
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not release the context")
	}
}
