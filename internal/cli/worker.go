package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"trajpattern/internal/core"
	"trajpattern/internal/core/shard"
	"trajpattern/internal/core/shard/supervisor"
	"trajpattern/internal/faultio"
	"trajpattern/internal/traj"
)

// ShardWorkerOptions parameterizes one shard-worker invocation: the
// hidden `-shard-worker i/n` mode both trajmine and trajserve dispatch
// to, in which the process mines exactly one shard to its checkpoint
// file and exits with a typed status (supervisor exit codes).
//
// The mining knobs must mirror the supervising parent's exactly — the
// checkpoint fingerprint hashes them, so any drift makes the worker
// refuse its own resume checkpoint.
type ShardWorkerOptions struct {
	// Shard and Shards select the slot: mine shard Shard of Shards.
	Shard  int
	Shards int
	// DataPath is the trajectory file; the worker rebuilds the full
	// engine from it so its partition matches the parent's.
	DataPath string

	K        int
	GridN    int
	MinLen   int
	MaxLen   int
	MaxLowQ  int
	DeltaMul float64

	MaxIters    int
	MaxWallTime time.Duration
	// CheckpointPath is the per-shard checkpoint path *prefix* (the
	// worker derives its own file via shard.CheckpointPath). Required:
	// the checkpoint file is the worker's entire output channel.
	CheckpointPath  string
	CheckpointEvery int
	// Resume restores the shard's checkpoint before mining. Missing or
	// unreadable files start fresh — a supervised relaunch must always
	// be able to pass Resume.
	Resume bool

	// CheckpointFS overrides the checkpoint filesystem (fault-injection
	// tests); nil means the real OS.
	CheckpointFS faultio.FS
	// OnProgress, when non-nil, observes each grow iteration (chaos
	// harness hook for crash- and stall-at-iteration behaviors).
	OnProgress func(core.Progress)
}

// RunShardWorker mines one shard and reports through the supervisor
// protocol: a WorkerStatus JSON line on stdout and a typed exit code as
// the return value. Human-readable diagnostics go to stderr. ctx
// cancellation (the supervisor's SIGTERM) drains gracefully: progress
// up to the last iteration boundary stays checkpointed and the worker
// exits ExitInterrupted.
func RunShardWorker(ctx context.Context, stdout, stderr io.Writer, o ShardWorkerOptions) int {
	st := supervisor.WorkerStatus{Shard: o.Shard, Shards: o.Shards}
	emit := func(code int) int {
		b, err := json.Marshal(st)
		if err == nil {
			fmt.Fprintln(stdout, string(b))
		}
		return code
	}
	fail := func(code int, err error) int {
		st.Error = err.Error()
		fmt.Fprintf(stderr, "shard-worker: %v\n", err)
		return emit(code)
	}

	if o.Shards < 1 || o.Shard < 0 || o.Shard >= o.Shards {
		return fail(supervisor.ExitUsage, fmt.Errorf("cli: shard slot %d/%d out of range", o.Shard, o.Shards))
	}
	if o.DataPath == "" {
		return fail(supervisor.ExitUsage, errors.New("cli: shard worker needs -in"))
	}
	if o.CheckpointPath == "" {
		return fail(supervisor.ExitUsage, errors.New("cli: shard worker needs -checkpoint"))
	}

	ds, err := traj.ReadFile(o.DataPath)
	if err != nil {
		return fail(supervisor.ExitConfig, err)
	}
	if len(ds) == 0 {
		return fail(supervisor.ExitConfig, errors.New("cli: empty dataset"))
	}
	g := FitGrid(ds, o.GridN)
	s, err := core.NewScorer(ds, core.Config{Grid: g, Delta: o.DeltaMul * g.CellWidth()})
	if err != nil {
		return fail(supervisor.ExitConfig, err)
	}
	eng, err := shard.NewEngine(s, o.Shards)
	if err != nil {
		return fail(supervisor.ExitConfig, err)
	}
	if eng.Shards() != o.Shards {
		return fail(supervisor.ExitConfig,
			fmt.Errorf("cli: dataset partitions into %d shards, supervisor expects %d", eng.Shards(), o.Shards))
	}

	mcfg := core.MinerConfig{
		K: o.K, MinLen: o.MinLen, MaxLen: o.MaxLen, MaxLowQ: o.MaxLowQ,
		MaxIters: o.MaxIters, MaxWallTime: o.MaxWallTime,
		CheckpointPath: o.CheckpointPath, CheckpointEvery: o.CheckpointEvery,
		CheckpointFS: o.CheckpointFS, OnProgress: o.OnProgress,
	}

	ckPath := shard.CheckpointPath(o.CheckpointPath, o.Shard, o.Shards)
	var resume *core.Checkpoint
	if o.Resume {
		ck, err := core.LoadCheckpoint(ckPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing saved yet: fresh start.
		case err != nil:
			// Torn or corrupt: the saved work is gone either way, so
			// restart the shard rather than crash-loop on the bad file.
			fmt.Fprintf(stderr, "shard-worker: checkpoint %s unreadable (%v); starting fresh\n", ckPath, err)
		default:
			resume = ck
		}
	}

	res, err := eng.MineShard(ctx, o.Shard, mcfg, resume)
	if err != nil {
		var fpe *core.FingerprintMismatchError
		if errors.As(err, &fpe) {
			return fail(supervisor.ExitFingerprintMismatch, err)
		}
		var ce *core.ConfigError
		if errors.As(err, &ce) {
			return fail(supervisor.ExitConfig, err)
		}
		return fail(supervisor.ExitTransient, err)
	}

	st.Iterations = res.Stats.Iterations
	st.Interrupted = res.Interrupted
	st.Reason = res.InterruptReason
	if res.Interrupted {
		// The last iteration-boundary checkpoint is already on disk.
		// FinalState here is mid-search state; persisting it would break
		// byte-identical resume, so it is deliberately dropped.
		return emit(supervisor.ExitInterrupted)
	}
	if res.FinalState == nil {
		return fail(supervisor.ExitTransient, errors.New("cli: miner returned no final state"))
	}
	if err := core.SaveCheckpoint(o.CheckpointFS, ckPath, res.FinalState); err != nil {
		return fail(supervisor.ExitTransient, fmt.Errorf("cli: save terminal checkpoint: %w", err))
	}
	return emit(supervisor.ExitOK)
}

// ShardWorkerMain is the process entry point behind `-shard-worker`:
// hosts dispatch here with the arguments after the mode flag, the first
// of which is the "i/n" slot. The remaining flags mirror the parent's
// mining knobs. Returns the process exit code.
func ShardWorkerMain(args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "shard-worker: missing i/n slot argument")
		return supervisor.ExitUsage
	}
	var o ShardWorkerOptions
	if _, err := fmt.Sscanf(args[0], "%d/%d", &o.Shard, &o.Shards); err != nil {
		fmt.Fprintf(os.Stderr, "shard-worker: bad slot %q (want i/n): %v\n", args[0], err)
		return supervisor.ExitUsage
	}
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.StringVar(&o.DataPath, "in", "", "input trajectory file")
	fs.IntVar(&o.K, "k", 10, "number of patterns to mine")
	fs.IntVar(&o.GridN, "gridn", 12, "grid side")
	fs.IntVar(&o.MinLen, "minlen", 1, "minimum pattern length")
	fs.IntVar(&o.MaxLen, "maxlen", 8, "maximum pattern length")
	fs.IntVar(&o.MaxLowQ, "maxlowq", 0, "low 1-extension retention cap (0 = miner default)")
	fs.Float64Var(&o.DeltaMul, "delta", 1, "δ as a multiple of the cell size")
	fs.IntVar(&o.MaxIters, "maxiters", 0, "bound the grow iterations")
	fs.DurationVar(&o.MaxWallTime, "maxwall", 0, "wall-clock budget")
	fs.StringVar(&o.CheckpointPath, "checkpoint", "", "checkpoint path prefix")
	fs.IntVar(&o.CheckpointEvery, "checkpoint-every", 1, "checkpoint cadence in iterations")
	fs.BoolVar(&o.Resume, "resume", false, "restore the shard's checkpoint before mining")
	if err := fs.Parse(args[1:]); err != nil {
		return supervisor.ExitUsage
	}
	// First SIGTERM/SIGINT drains gracefully to an ExitInterrupted with
	// progress checkpointed; a second aborts (SignalContext semantics).
	ctx, stop := SignalContext(context.Background(), os.Stderr, "shard-worker")
	defer stop()
	return RunShardWorker(ctx, os.Stdout, os.Stderr, o)
}
